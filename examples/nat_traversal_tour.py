#!/usr/bin/env python3
"""NAT traversal tour: STUN classification and hole punching, NAT by NAT.

Walks through the connection-layer machinery of §II.B: for every pair
of NAT behaviours, a fresh two-site WAN is built, both drivers classify
their NATs via STUN, and a punch is attempted — printing which
combinations punch classically (cone types), which need the predicted-
port fan (sequential-allocating symmetric NATs, whose stride the STUN
probe infers), and which fall back to relay (random-allocating
symmetric against a port-restricted filter) — plus what the 2-byte
CONNECT_PULSE keepalive costs an idle tunnel.

Run:  python examples/nat_traversal_tour.py
"""

from repro import Simulator, WavnetEnvironment

NAT_TYPES = ["full-cone", "restricted-cone", "port-restricted",
             "symmetric-sequential", "symmetric-random"]


def try_pair(nat_a: str, nat_b: str):
    sim = Simulator(seed=5)
    env = WavnetEnvironment(sim, default_latency=0.020)
    env.add_host("a", nat_type=nat_a, punch_timeout=4.0)
    env.add_host("b", nat_type=nat_b, punch_timeout=4.0)
    env.up()
    try:
        conn = env.connect("a", "b")
    except TimeoutError:
        conn = None
    return sim, env, conn


def main() -> None:
    print("== hole punching matrix (rows: A's NAT, cols: B's NAT)")
    header = "".join(f"{n[:9]:>11}" for n in NAT_TYPES)
    print(f"{'':>20}{header}")
    for nat_a in NAT_TYPES:
        cells = []
        for nat_b in NAT_TYPES:
            _sim, _env, conn = try_pair(nat_a, nat_b)
            if conn is None:
                cells.append("FAIL")
            elif conn.relayed:
                cells.append("relay")
            else:
                cells.append("punched")
        print(f"{nat_a:>20}" + "".join(f"{c:>11}" for c in cells))
    print("   (the paper relays every symmetric cell; port prediction"
          " punches the sequential-allocation ones direct, and the"
          " rendezvous-relay fallback covers the rest)")

    print("== keepalive cost on an idle port-restricted tunnel")
    sim, env, conn = try_pair("port-restricted", "port-restricted")
    t0, sent0 = sim.now, conn.bytes_sent
    sim.run(until=t0 + 300)
    rate = (conn.bytes_sent - sent0) / (sim.now - t0)
    print(f"   {rate:.1f} B/s of CONNECT_PULSE payload keeps the NAT "
          f"binding alive ({conn.pulses_received} pulses received in 5 min)")
    print("== tunnel still usable after 5 idle minutes:",
          "yes" if conn.usable else "no")


if __name__ == "__main__":
    main()
