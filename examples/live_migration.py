#!/usr/bin/env python3
"""WAN live migration: move an HTTP-serving VM closer to its clients.

Reproduces the paper's headline scenario (§III.C / Tables III-IV) as a
script: a VM at the SIAT site serves HTTP to a client in Hong Kong; we
live-migrate it over WAVNet to an HKU host *while the client keeps
requesting*, and watch connection time collapse and throughput jump.

Run:  python examples/live_migration.py
"""

from repro import Hypervisor, Simulator
from repro.apps.ab import ApacheBench
from repro.apps.httpd import HttpServer
from repro.net.addresses import IPv4Address
from repro.scenarios.sites import build_real_wan
from repro.vm.dirty import HotColdDirtyModel

VM_IP = IPv4Address("10.99.1.1")


def measure(sim, client_host, label):
    ab = ApacheBench(client_host, VM_IP, path="/file8k", concurrency=4)
    report = sim.run_coro(ab.run_for(8.0))
    mn, mean, mx = report.connect_ms()
    print(f"   [{label}] {report.requests_per_second:6.1f} req/s   "
          f"connect min/mean/max = {mn:.1f}/{mean:.1f}/{mx:.1f} ms")
    return report


def main() -> None:
    sim = Simulator(seed=11)
    print("== building the Table I testbed (hku1, hku2, siat)")
    wan = build_real_wan(sim, site_names=["hku1", "hku2", "siat"])
    wan.env.up().connect()

    vmms = {name: Hypervisor(wh.host, wh.driver.attach_port)
            for name, wh in wan.hosts.items()}
    print("== booting a 48 MB web-server VM at SIAT (Shenzhen)")
    vm = vmms["siat"].create_vm("webvm", memory_mb=48,
                                dirty_model=HotColdDirtyModel(hot_fraction=0.02))
    vm.configure_network(VM_IP, "10.99.0.0/16")
    HttpServer(vm.guest)
    sim.run(until=sim.timeout(3.0))

    client = wan.host("hku1").host
    print("== load from the HKU client, VM still at SIAT (74 ms away)")
    before = measure(sim, client, "before")

    print("== live-migrating the VM SIAT -> HKU2 over the WAVNet tunnel")
    report = sim.run_coro(
        vmms["siat"].migrate(vm, vmms["hku2"], wan.host("hku2").virtual_ip))
    print(f"   {report.n_rounds} pre-copy rounds, "
          f"{report.bytes_transferred / 1e6:.0f} MB moved, "
          f"total {report.total_time:.1f}s, "
          f"downtime {report.downtime * 1000:.0f} ms")

    print("== same load, VM now at HKU2 (0.5 ms away)")
    after = measure(sim, client, "after ")

    speedup = after.requests_per_second / before.requests_per_second
    print(f"== migration made the service {speedup:.1f}x faster for this "
          "client, without breaking a single TCP connection")


if __name__ == "__main__":
    main()
