#!/usr/bin/env python3
"""Locality-sensitive virtual clusters: grouping + MPI over the WAN.

Reproduces §II.D / Figs 13-14 in miniature:

1. generate a PlanetLab-like 200-host latency matrix;
2. select an 8-host cluster with the paper's O(N·k) locality-sensitive
   algorithm and another at random;
3. run an FFT-style MPI kernel (all-to-all transposes every iteration)
   on both and compare.

Run:  python examples/virtual_cluster.py
"""

import numpy as np

from repro import Simulator, locality_sensitive_group, random_group
from repro.apps.mpi import MpiJob, ft_program
from repro.net.addresses import IPv4Address
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_public_host
from repro.scenarios.planetlab import planetlab_latency_matrix

K = 8


def run_ft_on(members, lm, seed):
    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=0.050)
    hosts, ips = [], []
    for i, _idx in enumerate(members):
        host = make_public_host(sim, cloud, f"n{i}", f"8.9.0.{i + 1}",
                                network="8.9.0.0/24", tcp_mss=8192,
                                access_bandwidth_bps=50e6)
        hosts.append(host)
        ips.append(IPv4Address(f"8.9.0.{i + 1}"))
    for i, a in enumerate(members):
        for j, b in enumerate(members[i + 1:], start=i + 1):
            cloud.set_rtt(f"n{i}", f"n{j}", float(lm.m[a, b]))
    job = MpiJob(hosts, ips, ft_program((64, 64, 32), iterations=4),
                 base_flops=2e9)
    return sim.run_coro(job.run())


def main() -> None:
    print("== generating a PlanetLab-like latency matrix (200 hosts)")
    lm = planetlab_latency_matrix(200, seed=3)
    off = lm.m[~np.eye(len(lm), dtype=bool)]
    print(f"   pairwise RTT: median {np.median(off) * 1000:.0f} ms, "
          f"p95 {np.percentile(off, 95) * 1000:.0f} ms, "
          f"max {off.max() * 1000:.0f} ms")

    print(f"== selecting a {K}-host cluster (locality-sensitive, Formula 1)")
    good = locality_sensitive_group(lm, K, max_latency=0.2, fallback=True)
    print(f"   members {good.names(lm)}")
    print(f"   avg intra-cluster RTT {good.average_latency * 1000:.1f} ms, "
          f"max {good.max_latency * 1000:.1f} ms "
          f"({good.candidates_examined} candidates examined)")

    rng = np.random.default_rng(1)
    rand = random_group(lm, K, rng)
    print(f"== random selection for comparison: avg "
          f"{rand.average_latency * 1000:.0f} ms, "
          f"max {rand.max_latency * 1000:.0f} ms")

    print("== running the FT (FFT) kernel on both clusters")
    t_good = run_ft_on(list(good.members), lm, seed=21)
    t_rand = run_ft_on(list(rand.members), lm, seed=22)
    print(f"   locality-sensitive cluster: {t_good:7.1f} s")
    print(f"   random cluster:             {t_rand:7.1f} s")
    print(f"== locality-aware placement ran {t_rand / t_good:.1f}x faster "
          "(FFT is all-to-all; every transpose pays the worst pair)")


if __name__ == "__main__":
    main()
