#!/usr/bin/env python3
"""Quickstart: two NATed desktops join WAVNet and form a virtual LAN.

Builds the smallest useful WAVNet deployment — a WAN cloud, a STUN
server pair, one rendezvous server, and two hosts behind different
kinds of NAT — then:

1. starts both drivers (STUN classification + rendezvous registration);
2. lets ``alice`` discover ``bob`` through the CAN-backed resource
   directory and punch a direct UDP tunnel to him;
3. pings across the virtual LAN and runs a small TCP transfer over it.

Run:  python examples/quickstart.py
"""

from repro import Simulator, WavnetEnvironment
from repro.apps.ping import Pinger
from repro.net.tcp import drain_bytes, stream_bytes


def main() -> None:
    sim = Simulator(seed=7)
    env = WavnetEnvironment(sim, default_latency=0.030)  # 60 ms RTT WAN
    alice = env.add_host("alice", nat_type="port-restricted")
    bob = env.add_host("bob", nat_type="full-cone")

    print("== starting drivers (STUN + rendezvous registration)")
    env.up()
    for wav_host in (alice, bob):
        driver = wav_host.driver
        ip, port = driver.public_endpoint
        print(f"   {driver.name}: NAT={driver.nat_type.value:>15}  "
              f"public endpoint={ip}:{port}  virtual IP={driver.virtual_ip}")

    print("== alice looks up bob and punches a direct connection")
    conn = env.connect("alice", "bob")
    print(f"   established in {conn.established_at:.3f}s sim time; "
          f"remote endpoint {conn.remote[0]}:{conn.remote[1]}")

    print("== ping over the virtual LAN")
    pinger = Pinger(alice.host.stack, bob.virtual_ip, interval=0.5)
    result = sim.run_coro(pinger.run(5))
    print(f"   {result.received}/{result.sent} replies, "
          f"rtt min/mean/max = {result.min_rtt() * 1000:.1f}/"
          f"{result.mean_rtt() * 1000:.1f}/{result.max_rtt() * 1000:.1f} ms")

    print("== 1 MB TCP transfer over the tunnel")
    listener = bob.host.tcp.listen(5001)
    done = {}

    def server(sim):
        tcp_conn = yield listener.accept()
        done["bytes"] = yield from drain_bytes(tcp_conn)
        done["t"] = sim.now

    def client(sim):
        tcp_conn = alice.host.tcp.connect(bob.virtual_ip, 5001)
        yield tcp_conn.wait_established()
        done["t0"] = sim.now
        yield from stream_bytes(tcp_conn, 1_000_000)
        tcp_conn.close()

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run(until=sim.now + 120)
    rate = done["bytes"] * 8 / (done["t"] - done["t0"]) / 1e6
    print(f"   transferred {done['bytes']:,} bytes at {rate:.1f} Mbps")
    print("== done: two NATed hosts share an Ethernet segment across the WAN")


if __name__ == "__main__":
    main()
