#!/bin/sh
# Full verification: every test, then every table/figure benchmark.
# Outputs land in test_output.txt / bench_output.txt and benchmarks/out/.
set -x
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt
python benchmarks/bench_kernel_events.py --check 2>&1 | tee /root/repo/bench_kernel_output.txt
python benchmarks/bench_churn_recovery.py --check 2>&1 | tee /root/repo/bench_churn_output.txt
python benchmarks/bench_sweep_parallel.py --check 2>&1 | tee /root/repo/bench_sweep_output.txt
python benchmarks/bench_fluid_agreement.py --check 2>&1 | tee /root/repo/bench_fluid_agreement_output.txt
python benchmarks/bench_fluid_scale.py --check 2>&1 | tee /root/repo/bench_fluid_scale_output.txt
python benchmarks/bench_scale_endpoints.py --check 2>&1 | tee /root/repo/bench_scale_output.txt
python benchmarks/bench_fairness.py --check 2>&1 | tee /root/repo/bench_fairness_output.txt
python benchmarks/bench_pdes_speedup.py --check 2>&1 | tee /root/repo/bench_pdes_output.txt
python benchmarks/bench_traversal.py --check 2>&1 | tee /root/repo/bench_traversal_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
