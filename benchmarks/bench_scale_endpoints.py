"""Control-plane scalability: registrations at 10^4-10^6 endpoints.

A fig08-style curve for the struct-of-arrays control plane: each rung
runs the ``registration_storm`` scenario (fill the HostTable through
batched fleet registration, regional outage, mass reconnect with
admission control, hot-zone splitting, and punch probes through the
loaded brokering path) at one endpoint count and reports

* ``fill_ops_per_sec`` / ``reconnect_ops_per_sec`` — control-plane
  registration throughput (simulated time);
* ``punch_p50_s`` / ``punch_p95_s`` — punch-coordination latency for
  materialized hosts connecting while the storm runs;
* ``bytes_per_endpoint`` — steady-state control-plane memory per idle
  endpoint (table columns + name index + CAN handle stores);
* ``rss_per_endpoint`` — measured peak-RSS growth per endpoint (each
  rung runs in its own subprocess so the deltas don't pollute each
  other);
* admission shedding and CAN split counters.

Results land in ``BENCH_scale.json`` at the repo root. ``--quick``
runs only the 10^4 rung (the CI ``scale-smoke`` job); ``--check``
enforces ops/sec floors and the <= 2 KB/endpoint steady-state ceiling.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scale.json"

RUNGS = (10_000, 100_000, 1_000_000)
QUICK_RUNGS = (10_000,)
SEED = 7

MIN_FILL_OPS = 1500.0       # ops/sec floor at the quick rung
MAX_BYTES_PER_ENDPOINT = 2048.0  # steady-state ceiling (ISSUE acceptance)


def storm_params(n: int) -> dict:
    """One parameterization per rung: admission scales with the storm
    so the front of the wave is shed but the bucket never dominates,
    and the hot-zone limit scales so splitting stays load-driven."""
    return {
        "seed": SEED,
        "n_endpoints": n,
        "n_rendezvous": 4,
        "n_regions": 8,
        "batch": 512,
        "admission_rate": n / 4,
        "admission_burst": n / 8,
        "hot_zone_limit": max(1024, n // 32),
    }


def run_rung(n: int) -> dict:
    """Run one rung in-process and fold in peak-RSS accounting."""
    import resource

    from repro.scenarios.storm import registration_storm

    rss_scale = 1024  # ru_maxrss is KiB on Linux
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * rss_scale
    _sim, payload = registration_storm(**storm_params(n))
    rss_peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * rss_scale
    lat = sorted(payload.pop("punch_latency_s"))

    def pct(p: float) -> float | None:
        return lat[min(int(p * len(lat)), len(lat) - 1)] if lat else None

    payload.update({
        "punch_samples": len(lat),
        "punch_p50_s": pct(0.50),
        "punch_p95_s": pct(0.95),
        "rss_peak_bytes": rss_peak,
        "rss_delta_bytes": max(rss_peak - rss_before, 0),
        "rss_per_endpoint": max(rss_peak - rss_before, 0) / n,
    })
    return payload


def run_all(rungs=RUNGS) -> dict:
    """One subprocess per rung so each peak-RSS measurement starts from
    a fresh interpreter."""
    curve = []
    for n in rungs:
        proc = subprocess.run(
            [sys.executable, __file__, "--rung", str(n)],
            capture_output=True, text=True, check=True)
        curve.append(json.loads(proc.stdout))
    return {"seed": SEED, "rungs": curve}


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def render(results: dict) -> str:
    lines = ["Control-plane scale (registration storm, 4-server fleet, "
             "8 regions)"]
    lines.append(f"  {'endpoints':>10} {'fill ops/s':>11} {'reconn ops/s':>13} "
                 f"{'punch p95':>10} {'B/ep':>7} {'RSS B/ep':>9} "
                 f"{'rejects':>8} {'splits':>7}")
    for r in results["rungs"]:
        p95 = r["punch_p95_s"]
        lines.append(
            f"  {r['n_endpoints']:>10,} {r['fill_ops_per_sec']:>11,.0f} "
            f"{r['reconnect_ops_per_sec']:>13,.0f} "
            f"{(f'{p95 * 1e3:.0f}ms' if p95 is not None else '-'):>10} "
            f"{r['bytes_per_endpoint']:>7.0f} {r['rss_per_endpoint']:>9.0f} "
            f"{r['admission_rejected']:>8,} {r['can_splits']:>7}")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    for r in results["rungs"]:
        n = r["n_endpoints"]
        if r["fill_ops_per_sec"] < MIN_FILL_OPS:
            print(f"FAIL: {n} endpoints: fill {r['fill_ops_per_sec']:.0f} "
                  f"ops/s below floor {MIN_FILL_OPS:.0f}")
            ok = False
        if r["bytes_per_endpoint"] > MAX_BYTES_PER_ENDPOINT:
            print(f"FAIL: {n} endpoints: {r['bytes_per_endpoint']:.0f} "
                  f"steady-state B/endpoint above ceiling "
                  f"{MAX_BYTES_PER_ENDPOINT:.0f}")
            ok = False
        if r["reconnected"] != r["outage_endpoints"]:
            print(f"FAIL: {n} endpoints: reconnect storm recovered "
                  f"{r['reconnected']}/{r['outage_endpoints']}")
            ok = False
        if r["punch_samples"] == 0:
            print(f"FAIL: {n} endpoints: no punch-coordination samples")
            ok = False
    if ok:
        top = results["rungs"][-1]
        print(f"ok: {top['n_endpoints']:,} endpoints at "
              f"{top['fill_ops_per_sec']:,.0f} registrations/s, "
              f"{top['bytes_per_endpoint']:.0f} B/endpoint steady state")
    return ok


def main(argv: list[str]) -> int:
    if "--rung" in argv:
        n = int(argv[argv.index("--rung") + 1])
        print(json.dumps(run_rung(n)))
        return 0
    quick = "--quick" in argv
    results = run_all(QUICK_RUNGS if quick else RUNGS)
    if not quick:
        # Only the full curve lands in BENCH_scale.json; the smoke rung
        # must not overwrite it.
        write_json(results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_scale_endpoints(run_once, emit):
    """Benchmark-suite entry point (quick rung only: the full curve is
    a run_all.sh / standalone target)."""
    results = run_once(run_all, QUICK_RUNGS)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
