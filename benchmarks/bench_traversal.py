"""NAT-traversal benchmark: direct-connect rate and repair latency.

Two families, both through the experiment plane (DESIGN.md §16):

* **Matrix** — every NAT×NAT cell (cone types plus sequential- and
  random-allocating symmetric NATs) punched by WAVNet with port
  prediction and by the IPOP baseline's simultaneous-hello bootstrap.
  Reports the direct-connect rate per system; the paper's boundary
  (every symmetric cell relays) is what prediction moves.
* **Migration** — an established pair whose NAT reboots, healed either
  by QUIC-style path migration (stable connection ID + path validation)
  or by the classic liveness-death → re-punch loop at identical
  detection/backoff knobs. Reports both repair-latency distributions.

Gates (``--check``):

* every WAVNet matrix cell is usable and lands direct exactly where
  prediction says it should (``expected_direct``), across all seeds;
* WAVNet's direct rate strictly exceeds IPOP's (which relays all
  symmetric cells);
* migration repair p95 < 2 s (vs ~32 s p95 for the churn bench's
  re-punch path) and beats the matched re-punch baseline's p95.

Results land in ``BENCH_traversal.json`` at the repo root. Run
standalone (``python benchmarks/bench_traversal.py [--check]``) or via
pytest.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exp import Sweep, SweepRunner, aggregate  # noqa: E402
from repro.scenarios.traversal import NAT_SPECS, expected_direct  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_traversal.json"

MATRIX_SEEDS = (7, 42)
MIGRATION_SEEDS = (7, 11, 23, 42, 101)
MIGRATION_GATE_P95_S = 2.0


def matrix_sweep(scenario: str, seeds=MATRIX_SEEDS) -> Sweep:
    return (Sweep(f"traversal-{scenario}", scenario)
            .add_axis("nat_a", list(NAT_SPECS))
            .add_axis("nat_b", list(NAT_SPECS))
            .add_axis("seed", list(seeds)))


def migration_sweep(seeds=MIGRATION_SEEDS) -> Sweep:
    return (Sweep("traversal-migration", "migration_repair")
            .add_axis("migration", [True, False])
            .add_axis("seed", list(seeds)))


def _cells(payloads) -> dict:
    """(nat_a, nat_b) -> per-seed payload list."""
    cells: dict = {}
    for p in payloads:
        cells.setdefault((p["nat_a"], p["nat_b"]), []).append(p)
    return cells


def run_all(workers: int = 1) -> dict:
    wav = SweepRunner(matrix_sweep("traversal_pair"),
                      workers=workers, force=True).run()
    ipop = SweepRunner(matrix_sweep("ipop_traversal"),
                       workers=workers, force=True).run()
    mig = SweepRunner(migration_sweep(), workers=workers, force=True).run()

    matrix = []
    mismatches = unusable = 0
    ipop_cells = _cells(ipop.payloads)
    for (nat_a, nat_b), runs in sorted(_cells(wav.payloads).items()):
        want = expected_direct(nat_a, nat_b)
        direct = all(r["direct"] for r in runs)
        relay = all(r["relayed"] for r in runs)
        usable = all(r["usable"] for r in runs)
        ipop_direct = all(r["direct"] for r in ipop_cells[(nat_a, nat_b)])
        consistent = (direct if want else relay)
        mismatches += 0 if consistent else 1
        unusable += 0 if usable else 1
        matrix.append({
            "nat_a": nat_a, "nat_b": nat_b,
            "expected_direct": want,
            "wavnet_direct": direct,
            "wavnet_usable": usable,
            "ipop_direct": ipop_direct,
        })

    arms = {True: [], False: []}
    healed = {True: True, False: True}
    by_migration_ok = True
    for p in mig.payloads:
        arms[p["migration"]].extend(p["repair_seconds"])
        healed[p["migration"]] &= p["healed"]
        if p["migration"] and not p["healed_by_migration"]:
            by_migration_ok = False
    migration_dist = aggregate.distribution(arms[True])
    repunch_dist = aggregate.distribution(arms[False])

    return {
        "nat_specs": list(NAT_SPECS),
        "matrix_seeds": list(MATRIX_SEEDS),
        "migration_seeds": list(MIGRATION_SEEDS),
        "matrix": matrix,
        "matrix_mismatches": mismatches,
        "matrix_unusable": unusable,
        "wavnet_direct_cells": sum(1 for c in matrix if c["wavnet_direct"]),
        "ipop_direct_cells": sum(1 for c in matrix if c["ipop_direct"]),
        "total_cells": len(matrix),
        "migration_repair_seconds": migration_dist,
        "repunch_repair_seconds": repunch_dist,
        "all_healed": healed[True] and healed[False],
        "all_migrations_validated": by_migration_ok,
        "migration_gate_p95_s": MIGRATION_GATE_P95_S,
    }


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _grid(results: dict, key: str) -> list[str]:
    cells = {(c["nat_a"], c["nat_b"]): c for c in results["matrix"]}
    names = results["nat_specs"]
    lines = [" " * 20 + "".join(f"{n[:9]:>11}" for n in names)]
    for a in names:
        row = "".join(f"{'direct' if cells[(a, b)][key] else 'relay':>11}"
                      for b in names)
        lines.append(f"{a[:20]:>20}{row}")
    return lines


def render(results: dict) -> str:
    mig, rep = (results["migration_repair_seconds"],
                results["repunch_repair_seconds"])
    lines = ["NAT traversal matrix (WAVNet, port prediction on):"]
    lines += _grid(results, "wavnet_direct")
    lines.append(f"  direct cells: wavnet {results['wavnet_direct_cells']}"
                 f"/{results['total_cells']}  "
                 f"ipop {results['ipop_direct_cells']}"
                 f"/{results['total_cells']}")
    lines.append("NAT-reboot repair latency:")
    lines.append(f"  path migration    n={mig.get('count', 0):<3} "
                 f"mean {mig.get('mean_s', '-')}s  p95 {mig.get('p95_s', '-')}s  "
                 f"max {mig.get('max_s', '-')}s")
    lines.append(f"  re-punch baseline n={rep.get('count', 0):<3} "
                 f"mean {rep.get('mean_s', '-')}s  p95 {rep.get('p95_s', '-')}s  "
                 f"max {rep.get('max_s', '-')}s")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    if results["matrix_unusable"]:
        print(f"FAIL: {results['matrix_unusable']} matrix cells had no "
              "usable connection")
        ok = False
    if results["matrix_mismatches"]:
        print(f"FAIL: {results['matrix_mismatches']} matrix cells "
              "disagree with the prediction model")
        ok = False
    if results["wavnet_direct_cells"] <= results["ipop_direct_cells"]:
        print("FAIL: port prediction did not beat the IPOP baseline's "
              "direct-connect rate")
        ok = False
    if not results["all_healed"] or not results["all_migrations_validated"]:
        print("FAIL: a NAT-reboot run failed to heal (or healed without "
              "path validation in the migration arm)")
        ok = False
    mig_p95 = results["migration_repair_seconds"].get("p95_s", float("inf"))
    rep_p95 = results["repunch_repair_seconds"].get("p95_s", 0.0)
    if mig_p95 >= MIGRATION_GATE_P95_S:
        print(f"FAIL: migration repair p95 {mig_p95}s >= "
              f"{MIGRATION_GATE_P95_S}s gate")
        ok = False
    if mig_p95 >= rep_p95:
        print(f"FAIL: migration p95 {mig_p95}s not faster than re-punch "
              f"baseline p95 {rep_p95}s")
        ok = False
    if ok:
        print(f"ok: {results['wavnet_direct_cells']}/"
              f"{results['total_cells']} cells direct "
              f"(ipop {results['ipop_direct_cells']}), migration p95 "
              f"{mig_p95}s vs re-punch {rep_p95}s")
    return ok


def main(argv: list[str]) -> int:
    workers = 1
    if "--workers" in argv:
        workers = int(argv[argv.index("--workers") + 1])
    results = run_all(workers=workers)
    write_json(results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_traversal(run_once, emit):
    """Benchmark-suite entry point: record the traversal matrix and the
    migration/repair latency split, and enforce the gates."""
    results = run_once(run_all)
    write_json(results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
