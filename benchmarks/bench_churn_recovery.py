"""Churn-recovery benchmark: how fast does the mesh heal itself?

Runs the scripted churn scenario (rendezvous-server kill + restore,
host-driver crash/restore, NAT reboot, access-link flap) over several
seeds and reports the distributions the failure plane exists to measure:

* ``repair_seconds``   — outage duration per repaired tunnel, from the
  liveness-declared death to the re-punched connection (the drivers'
  ``<h>.driver.repair.seconds`` histograms).
* ``failover_seconds`` — time for a driver to re-register with a backup
  rendezvous server after its primary dies
  (``<h>.driver.rvz.failover_seconds``).
* ``frames_lost``      — application frames dropped for lack of a usable
  tunnel during outages (``<h>.driver.frames.dropped_outage``).

Every run must end converged: all running hosts registered with a
running rendezvous server and every pair connected by a usable tunnel —
with nobody calling ``connect()`` after the mesh was first built.
Results land in ``BENCH_churn.json`` at the repo root.

Run standalone (``python benchmarks/bench_churn_recovery.py``) or via
pytest. ``--check`` exits non-zero if any seed fails to converge or no
repairs/failovers were exercised.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.net.icmp import Pinger  # noqa: E402
from repro.scenarios.churn import (  # noqa: E402
    build_churn_env,
    mesh_converged,
    scripted_churn_plan,
)
from repro.sim import Simulator  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_churn.json"

SEEDS = (7, 11, 23, 42, 101)
HORIZON = 220.0  # sim-seconds past the established mesh


def run_seed(seed: int, n_hosts: int = 4, n_rendezvous: int = 2) -> dict:
    sim = Simulator(seed=seed)
    env = build_churn_env(sim, n_hosts=n_hosts, n_rendezvous=n_rendezvous)
    plan = scripted_churn_plan(sim, env).arm()
    # Ring traffic for the whole run: hosts that lose their tunnel drop
    # these pings into ``frames.dropped_outage`` until repair lands.
    names = list(env.hosts)
    for i, name in enumerate(names):
        nxt = env.hosts[names[(i + 1) % len(names)]]
        pinger = Pinger(env.hosts[name].host.stack, nxt.virtual_ip,
                        interval=1.0, timeout=1.0)
        sim.process(pinger.run(int(HORIZON) - 5), name=f"churn-ping:{name}")
    sim.run(until=sim.now + HORIZON)

    repair, failover = [], []
    frames_lost = repairs = failovers = 0
    for name in env.hosts:
        scope = sim.metrics.scope(f"{name}.driver")
        repair.extend(scope.histogram("repair.seconds").values.tolist())
        failover.extend(scope.histogram("rvz.failover_seconds").values.tolist())
        frames_lost += int(scope.value("frames.dropped_outage"))
        repairs += int(scope.value("repair.success"))
        failovers += int(scope.value("rvz.failovers"))
    return {
        "seed": seed,
        "faults_injected": len(plan),
        "repairs": repairs,
        "failovers": failovers,
        "repair_seconds": repair,
        "failover_seconds": failover,
        "frames_lost": frames_lost,
        "converged": mesh_converged(env),
    }


def _dist(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0}
    arr = np.asarray(samples, dtype=float)
    return {
        "count": len(samples),
        "mean_s": round(float(arr.mean()), 3),
        "p50_s": round(float(np.percentile(arr, 50)), 3),
        "p95_s": round(float(np.percentile(arr, 95)), 3),
        "max_s": round(float(arr.max()), 3),
    }


def run_all() -> dict:
    runs = [run_seed(seed) for seed in SEEDS]
    repair = [s for r in runs for s in r["repair_seconds"]]
    failover = [s for r in runs for s in r["failover_seconds"]]
    return {
        "seeds": list(SEEDS),
        "repair_seconds": _dist(repair),
        "failover_seconds": _dist(failover),
        "frames_lost_total": sum(r["frames_lost"] for r in runs),
        "repairs_total": sum(r["repairs"] for r in runs),
        "failovers_total": sum(r["failovers"] for r in runs),
        "all_converged": all(r["converged"] for r in runs),
        "per_seed": [
            {k: v for k, v in r.items()
             if k not in ("repair_seconds", "failover_seconds")}
            for r in runs
        ],
    }


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def render(results: dict) -> str:
    rep, fo = results["repair_seconds"], results["failover_seconds"]
    lines = ["Churn recovery (scripted rendezvous kill / host crash / "
             "NAT reboot / link flap)"]
    lines.append(f"  seeds: {results['seeds']}  "
                 f"converged: {results['all_converged']}")
    lines.append(f"  tunnel re-punch   n={rep.get('count', 0):<4} "
                 f"mean {rep.get('mean_s', '-')}s  p50 {rep.get('p50_s', '-')}s  "
                 f"p95 {rep.get('p95_s', '-')}s  max {rep.get('max_s', '-')}s")
    lines.append(f"  rvz failover      n={fo.get('count', 0):<4} "
                 f"mean {fo.get('mean_s', '-')}s  p50 {fo.get('p50_s', '-')}s  "
                 f"p95 {fo.get('p95_s', '-')}s  max {fo.get('max_s', '-')}s")
    lines.append(f"  frames lost during outages: "
                 f"{results['frames_lost_total']}")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    if not results["all_converged"]:
        print("FAIL: a seed ended without full mesh convergence")
        ok = False
    if results["repairs_total"] == 0:
        print("FAIL: no tunnel repairs were exercised")
        ok = False
    if results["failovers_total"] == 0:
        print("FAIL: no rendezvous failovers were exercised")
        ok = False
    if ok:
        print("ok: all seeds converged "
              f"({results['repairs_total']} repairs, "
              f"{results['failovers_total']} failovers)")
    return ok


def main(argv: list[str]) -> int:
    results = run_all()
    write_json(results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_churn_recovery(run_once, emit):
    """Benchmark-suite entry point: record recovery distributions and
    enforce convergence."""
    results = run_once(run_all)
    write_json(results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
