"""Churn-recovery benchmark: how fast does the mesh heal itself?

Runs the scripted churn scenario (rendezvous-server kill + restore,
host-driver crash/restore, NAT reboot, access-link flap) over several
seeds and reports the distributions the failure plane exists to measure:

* ``repair_seconds``   — outage duration per repaired tunnel, from the
  liveness-declared death to the re-punched connection (the drivers'
  ``<h>.driver.repair.seconds`` histograms).
* ``failover_seconds`` — time for a driver to re-register with a backup
  rendezvous server after its primary dies
  (``<h>.driver.rvz.failover_seconds``).
* ``frames_lost``      — application frames dropped for lack of a usable
  tunnel during outages (``<h>.driver.frames.dropped_outage``).

Every run must end converged: all running hosts registered with a
running rendezvous server and every pair connected by a usable tunnel —
with nobody calling ``connect()`` after the mesh was first built.

The per-seed runs go through the experiment plane: a ``seed`` axis over
the registered ``churn_recovery`` scenario, executed by
:class:`repro.exp.SweepRunner` (``force=True`` so the benchmark always
measures real work). Results land in ``BENCH_churn.json`` at the repo
root.

Run standalone (``python benchmarks/bench_churn_recovery.py``) or via
pytest. ``--check`` exits non-zero if any seed fails to converge or no
repairs/failovers were exercised.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exp import Sweep, SweepRunner, aggregate  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_churn.json"

SEEDS = (7, 11, 23, 42, 101)
HORIZON = 220.0  # sim-seconds past the established mesh


def churn_sweep(seeds=SEEDS) -> Sweep:
    return (Sweep("churn", "churn_recovery",
                  base_params={"horizon": HORIZON})
            .add_axis("seed", list(seeds)))


def run_all(workers: int = 1) -> dict:
    result = SweepRunner(churn_sweep(), workers=workers, force=True).run()
    runs = result.payloads
    repair = aggregate.merge_samples(result, "repair_seconds")
    failover = aggregate.merge_samples(result, "failover_seconds")
    return {
        "seeds": list(SEEDS),
        "repair_seconds": aggregate.distribution(repair),
        "failover_seconds": aggregate.distribution(failover),
        "frames_lost_total": sum(r["frames_lost"] for r in runs),
        "repairs_total": sum(r["repairs"] for r in runs),
        "failovers_total": sum(r["failovers"] for r in runs),
        "all_converged": all(r["converged"] for r in runs),
        "per_seed": [
            {k: v for k, v in r.items()
             if k not in ("repair_seconds", "failover_seconds")}
            for r in runs
        ],
    }


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def render(results: dict) -> str:
    rep, fo = results["repair_seconds"], results["failover_seconds"]
    lines = ["Churn recovery (scripted rendezvous kill / host crash / "
             "NAT reboot / link flap)"]
    lines.append(f"  seeds: {results['seeds']}  "
                 f"converged: {results['all_converged']}")
    lines.append(f"  tunnel re-punch   n={rep.get('count', 0):<4} "
                 f"mean {rep.get('mean_s', '-')}s  p50 {rep.get('p50_s', '-')}s  "
                 f"p95 {rep.get('p95_s', '-')}s  max {rep.get('max_s', '-')}s")
    lines.append(f"  rvz failover      n={fo.get('count', 0):<4} "
                 f"mean {fo.get('mean_s', '-')}s  p50 {fo.get('p50_s', '-')}s  "
                 f"p95 {fo.get('p95_s', '-')}s  max {fo.get('max_s', '-')}s")
    lines.append(f"  frames lost during outages: "
                 f"{results['frames_lost_total']}")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    if not results["all_converged"]:
        print("FAIL: a seed ended without full mesh convergence")
        ok = False
    if results["repairs_total"] == 0:
        print("FAIL: no tunnel repairs were exercised")
        ok = False
    if results["failovers_total"] == 0:
        print("FAIL: no rendezvous failovers were exercised")
        ok = False
    if ok:
        print("ok: all seeds converged "
              f"({results['repairs_total']} repairs, "
              f"{results['failovers_total']} failovers)")
    return ok


def main(argv: list[str]) -> int:
    workers = 1
    if "--workers" in argv:
        workers = int(argv[argv.index("--workers") + 1])
    results = run_all(workers=workers)
    write_json(results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_churn_recovery(run_once, emit):
    """Benchmark-suite entry point: record recovery distributions and
    enforce convergence."""
    results = run_once(run_all)
    write_json(results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
