"""Ablation — grouping algorithm quality/runtime frontier.

Compares the paper's O(N·k) locality-sensitive algorithm against the
O(C(N,k)) brute-force optimum (small instances only), a greedy grower,
and random selection — the quality-vs-cost trade that justifies §II.D's
approximation claim.
"""

import time

import numpy as np

from repro.analysis.tables import ShapeCheck, render_table
from repro.core.grouping import (
    brute_force_group,
    greedy_group,
    locality_sensitive_group,
    random_group,
)
from repro.scenarios.planetlab import planetlab_latency_matrix


def run_experiment():
    small = planetlab_latency_matrix(24, seed=5)   # brute force feasible
    large = planetlab_latency_matrix(300, seed=6)  # realistic scale
    rng = np.random.default_rng(2)
    out = {}

    def timed(fn, *args, **kwargs):
        t0 = time.perf_counter()
        res = fn(*args, **kwargs)
        return res, time.perf_counter() - t0

    out["small"] = {
        "brute": timed(brute_force_group, small, 5),
        "ls": timed(locality_sensitive_group, small, 5),
        "greedy": timed(greedy_group, small, 5),
        "random": timed(random_group, small, 5, rng),
    }
    out["large"] = {
        "ls": timed(locality_sensitive_group, large, 16),
        "greedy": timed(greedy_group, large, 16),
        "random": timed(random_group, large, 16, rng),
    }
    return out


def test_ablation_grouping(run_once, emit):
    out = run_once(run_experiment)
    rows = []
    for scale, algos in out.items():
        for name, (res, secs) in algos.items():
            rows.append((scale, name, res.average_latency * 1000,
                         res.candidates_examined, secs * 1000))
    emit(render_table(
        "Ablation - grouping algorithms (avg latency in ms, wall ms)",
        ["instance", "algorithm", "avg latency", "candidates", "wall (ms)"],
        [(s, n, round(a, 2), c, round(w, 2)) for s, n, a, c, w in rows]))
    check = ShapeCheck("ablation/grouping")
    small = out["small"]
    opt = small["brute"][0].average_latency
    check.expect("locality-sensitive within 25% of brute-force optimum",
                 small["ls"][0].average_latency <= opt * 1.25,
                 f"{small['ls'][0].average_latency * 1000:.2f} vs "
                 f"{opt * 1000:.2f} ms")
    check.expect("brute force examines far more candidates",
                 small["brute"][0].candidates_examined
                 > 20 * small["ls"][0].candidates_examined)
    large = out["large"]
    check.expect("at N=300: LS candidates <= N*(k+1) (O(N*k) claim)",
                 large["ls"][0].candidates_examined <= 300 * 17,
                 f"{large['ls'][0].candidates_examined}")
    check.expect("LS beats random by an order of magnitude at N=300",
                 large["ls"][0].average_latency * 10
                 <= large["random"][0].average_latency,
                 f"{large['ls'][0].average_latency * 1000:.1f} vs "
                 f"{large['random'][0].average_latency * 1000:.0f} ms")
    check.expect("greedy is competitive but LS is no worse than 1.5x greedy",
                 large["ls"][0].average_latency
                 <= 1.5 * large["greedy"][0].average_latency + 1e-6)
    emit(check.render())
    check.print_and_assert()
