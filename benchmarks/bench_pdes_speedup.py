"""PDES benchmark: serial vs site-partitioned execution of a single
simulation, with a byte-identity proof.

Runs two scenarios twice each — serially via ``run_spec`` and split
over 4 partition processes via ``run_partitioned`` — and records both
wall clocks in ``BENCH_pdes.json``:

* ``pdes_mesh`` — the fig08-style 4-site tunnel mesh (one partition per
  site, netperf streams crossing every partition boundary). The packet
  work splits evenly across the sites, so this case carries the >= 2x
  speedup floor.
* ``pdes_storm`` — the registration storm at 150k endpoints (control
  plane in one partition, one lane per region in the others). Every
  registration/keepalive mutation lands in the control partition, so
  the parallel fraction is bounded (Amdahl) — the speedup is reported,
  not gated.

The merged partitioned envelope MUST be byte-identical to the serial
one (always enforced, on any machine); the speedup floor is only
enforced when at least 4 CPUs are visible to this process — a
single-core container cannot speed anything up by forking.

Run standalone (``python benchmarks/bench_pdes_speedup.py [--check]``)
or via pytest.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sys
from time import perf_counter

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exp.spec import ExperimentSpec, envelope_bytes, run_spec  # noqa: E402
from repro.sim.pdes import run_partitioned  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pdes.json"

PARTITIONS = 4
SPEEDUP_FLOOR = 2.0
MIN_CPUS_FOR_FLOOR = 4

# (scenario, params, seed, speedup floor or None)
CASES = [
    ("pdes_mesh", {"partitions": PARTITIONS, "n_sites": 4,
                   "hosts_per_site": 1, "duration": 6.0}, 5, SPEEDUP_FLOOR),
    ("pdes_storm", {"partitions": PARTITIONS, "n_endpoints": 150_000,
                    "n_regions": 3, "batch": 2048,
                    "keepalive_interval": 3.0, "lat_scale": 5.0,
                    "horizon": 50.0}, 5, None),
]


def visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_case(scenario: str, params: dict, seed: int,
             floor: float | None) -> dict:
    spec = ExperimentSpec(scenario, params=params, seed=seed)
    t0 = perf_counter()
    serial = run_spec(spec)
    serial_wall = perf_counter() - t0
    t0 = perf_counter()
    part = run_partitioned(spec)
    part_wall = perf_counter() - t0
    serial_bytes = envelope_bytes(serial)
    part_bytes = envelope_bytes(part)
    return {
        "scenario": scenario,
        "params": params,
        "events": serial["obs"]["events_dispatched"],
        "serial_wall_s": round(serial_wall, 3),
        "partitions": PARTITIONS,
        "partitioned_wall_s": round(part_wall, 3),
        "speedup": round(serial_wall / part_wall, 3),
        "speedup_floor": floor,
        "byte_identical": serial_bytes == part_bytes,
        "envelope_sha256": hashlib.sha256(serial_bytes).hexdigest(),
        "partitioned_envelope_sha256":
            hashlib.sha256(part_bytes).hexdigest(),
    }


def run_all() -> dict:
    return {
        "cpus_visible": visible_cpus(),
        "cases": [run_case(*case) for case in CASES],
    }


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def render(results: dict) -> str:
    lines = [f"PDES single-run partitioning, "
             f"{results['cpus_visible']} CPU(s) visible"]
    for case in results["cases"]:
        lines.append(
            f"  {case['scenario']:<16} serial {case['serial_wall_s']:7.2f}s   "
            f"{case['partitions']} partitions {case['partitioned_wall_s']:7.2f}s   "
            f"speedup {case['speedup']:.2f}x   "
            f"byte-identical: {case['byte_identical']}")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    enforce = results["cpus_visible"] >= MIN_CPUS_FOR_FLOOR
    for case in results["cases"]:
        if not case["byte_identical"]:
            print(f"FAIL: {case['scenario']} partitioned envelope differs "
                  "from serial")
            ok = False
        floor = case["speedup_floor"]
        if enforce and floor is not None and case["speedup"] < floor:
            print(f"FAIL: {case['scenario']} speedup {case['speedup']:.2f}x "
                  f"below {floor}x floor on "
                  f"{results['cpus_visible']} CPUs")
            ok = False
    if ok:
        floor = (f"speedup floor enforced ({SPEEDUP_FLOOR}x)" if enforce
                 else f"speedup floor waived on "
                      f"{results['cpus_visible']} CPU(s)")
        worst = min(c["speedup"] for c in results["cases"])
        print(f"ok: byte-identical, worst speedup {worst:.2f}x; {floor}")
    return ok


def main(argv: list[str]) -> int:
    results = run_all()
    write_json(results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_pdes_speedup(run_once, emit):
    """Benchmark-suite entry point: serial vs partitioned wall clock
    plus the byte-identity assertion."""
    results = run_once(run_all)
    write_json(results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
