"""Fluid-plane scalability: 10^4 concurrent bulk flows vs packet TCP.

The fluid plane's reason to exist is scale: a bulk transfer costs one
calendar event per rate change instead of one per segment. This bench
runs the ``fluid_fanout`` experiment scenario (10,000 concurrent 64 KB
transfers over 10 host pairs) at both fidelities through the experiment
plane (``repro.exp``), so each run is a cached, deterministic
:class:`ExperimentSpec` envelope, and gates on the PR's two scalability
claims:

* **Wall clock** — the fluid run is >= 10x faster than the packet run.
* **Events** — the fluid run dispatches >= 100x fewer simulator events.

Both runs must complete every flow. Aggregate goodput is *reported*
but not gated: at 1,000 flows per access link the fair share sits
below one segment per RTT, where packet TCP sheds load through queue
overflow and retransmission timeouts — a collapse regime the max-min
model intentionally idealizes. Cross-fidelity *agreement* is gated in
``bench_fluid_agreement.py`` on matched steady-state regimes; this
bench measures what fidelity costs.

Results merge into ``BENCH_fluid.json`` under ``"scale"``. Run
standalone (``python benchmarks/bench_fluid_scale.py [--check]``) or
via pytest; ``--check`` is the CI gate.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exp.spec import ExperimentSpec  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fluid.json"

N_FLOWS = 10_000
WALL_SPEEDUP_FLOOR = 10.0
EVENTS_RATIO_FLOOR = 100.0


def run_fanout(fidelity: str, n_flows: int = N_FLOWS) -> dict:
    spec = ExperimentSpec(scenario="fluid_fanout", seed=7,
                          params={"fidelity": fidelity, "n_flows": n_flows})
    return spec.run()


def run_all(n_flows: int = N_FLOWS) -> dict:
    rows = {}
    for fidelity in ("packet", "fluid"):
        env = run_fanout(fidelity, n_flows)
        rows[fidelity] = {
            "completed": env["payload"]["completed"],
            "sim_seconds": round(env["payload"]["sim_seconds"], 3),
            "goodput_mbps": round(env["payload"]["goodput_mbps"], 2),
            "events_dispatched": env["obs"]["events_dispatched"],
            "wall_seconds": round(env["wall_seconds"], 3),
        }
    pkt, fld = rows["packet"], rows["fluid"]
    return {
        "n_flows": n_flows,
        "packet": pkt,
        "fluid": fld,
        "wall_speedup": round(pkt["wall_seconds"] /
                              max(fld["wall_seconds"], 1e-9), 1),
        "events_ratio": round(pkt["events_dispatched"] /
                              max(fld["events_dispatched"], 1), 1),
        "goodput_rel_delta": round(
            (fld["goodput_mbps"] - pkt["goodput_mbps"]) /
            pkt["goodput_mbps"], 4),
        "wall_speedup_floor": WALL_SPEEDUP_FLOOR,
        "events_ratio_floor": EVENTS_RATIO_FLOOR,
    }


def merge_json(section: str, payload: dict) -> None:
    data = {}
    if OUT_PATH.exists():
        data = json.loads(OUT_PATH.read_text())
    data[section] = payload
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def render(results: dict) -> str:
    lines = [f"Fluid-plane scalability: {results['n_flows']:,} "
             "concurrent 64 KB flows over 10 pairs"]
    for fidelity in ("packet", "fluid"):
        r = results[fidelity]
        lines.append(f"  {fidelity:<7} wall {r['wall_seconds']:>8.3f}s  "
                     f"events {r['events_dispatched']:>12,}  "
                     f"sim {r['sim_seconds']:>7.3f}s  "
                     f"goodput {r['goodput_mbps']:>8.2f} Mbps  "
                     f"completed {r['completed']:,}")
    lines.append(f"  wall speedup {results['wall_speedup']}x "
                 f"(floor {WALL_SPEEDUP_FLOOR:.0f}x), "
                 f"event ratio {results['events_ratio']}x "
                 f"(floor {EVENTS_RATIO_FLOOR:.0f}x), "
                 f"goodput delta {results['goodput_rel_delta']:+.2%}")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    for fidelity in ("packet", "fluid"):
        if results[fidelity]["completed"] != results["n_flows"]:
            print(f"FAIL {fidelity}: {results[fidelity]['completed']} of "
                  f"{results['n_flows']} flows completed")
            ok = False
    if results["wall_speedup"] < WALL_SPEEDUP_FLOOR:
        print(f"FAIL wall speedup {results['wall_speedup']}x "
              f"< floor {WALL_SPEEDUP_FLOOR:.0f}x")
        ok = False
    if results["events_ratio"] < EVENTS_RATIO_FLOOR:
        print(f"FAIL events ratio {results['events_ratio']}x "
              f"< floor {EVENTS_RATIO_FLOOR:.0f}x")
        ok = False
    return ok


def main(argv: list[str]) -> int:
    results = run_all()
    merge_json("scale", results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_fluid_scale(run_once, emit):
    """Benchmark-suite entry point: record the runs, enforce the gates."""
    results = run_once(run_all)
    merge_json("scale", results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
