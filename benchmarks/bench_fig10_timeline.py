"""Figure 10 — ICMP RTT and HTTP throughput during VM live migration.

A VM serving HTTP (1 KB file, concurrent AB load) migrates from
OffCam/SIAT/AIST to HKU while a second HKU host pings it. Paper
observations per subfigure:

* RTT is high and AB throughput modest while the VM is remote;
* during migration AB throughput dips and some pings are lost;
* downtime is sub-second to ~2 s (2.1 s AIST, 1.0 s SIAT, 0.6 s OffCam);
* after cutover RTT drops to local (<15 ms) and AB throughput jumps
  several-fold.
"""

import numpy as np

from repro.analysis.tables import ShapeCheck, render_table, render_series
from repro.apps.ab import ApacheBench
from repro.apps.httpd import HttpServer
from repro.apps.ping import Pinger
from repro.net.addresses import IPv4Address
from repro.scenarios.sites import build_real_wan
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor

VM_IP = IPv4Address("10.99.1.1")
SOURCES = ["aist", "siat", "offcam"]
MIGRATE_AT = 10.0
TOTAL = 40.0
# Paper uses ab -c 50 "for illustration"; 3 workers keep the packet-level
# simulation tractable while showing the same dip-and-jump timeline.
CONCURRENCY = 3


def run_source(src_name, seed):
    sim = Simulator(seed=seed)
    wan = build_real_wan(sim, site_names=["hku1", "hku2", src_name],
                         tcp_mss=1460)
    sim.run(until=sim.process(wan.env.start_all()))
    sim.run(until=sim.process(wan.env.connect_full_mesh()))
    vmms = {n: Hypervisor(wan.host(n).host, wan.host(n).driver.attach_port)
            for n in ("hku2", src_name)}
    vm = vmms[src_name].create_vm("webvm", memory_mb=32,
                                  dirty_model=HotColdDirtyModel(hot_fraction=0.02),
                                  tcp_mss=1460)
    vm.configure_network(VM_IP, "10.99.0.0/16")
    HttpServer(vm.guest)
    sim.run(until=sim.timeout(3.0))
    t0 = sim.now

    client = wan.host("hku1").host
    ab = ApacheBench(client, VM_IP, path="/file1k", concurrency=CONCURRENCY)
    ab_proc = sim.process(ab.run_for(TOTAL))
    pinger = Pinger(client.stack, VM_IP, interval=0.25, timeout=1.0)
    ping_proc = sim.process(pinger.run(int(TOTAL / 0.25) - 8))

    def migrate(sim):
        yield sim.timeout(MIGRATE_AT)
        report = yield sim.process(vmms[src_name].migrate(
            vm, vmms["hku2"], wan.host("hku2").virtual_ip))
        return report

    mig_proc = sim.process(migrate(sim))
    sim.run(until=ab_proc)
    sim.run(until=ping_proc)
    report = mig_proc.value
    ping = ping_proc.value
    ab_report = ab.report

    # Phase statistics relative to t0.
    def rtts_between(a, b):
        return [rtt * 1000 for (ts, rtt) in ping.samples
                if rtt is not None and a <= ts - t0 < b]

    mig_end = MIGRATE_AT + report.total_time
    ab_t, ab_r = ab_report.throughput_series(1.0)
    ab_t = ab_t - t0

    def ab_between(a, b):
        sel = (ab_t >= a) & (ab_t < b)
        return float(np.mean(ab_r[sel])) if sel.any() else 0.0

    lost_times = [ts - t0 for (ts, rtt) in ping.samples if rtt is None]
    return {
        "report": report,
        "rtt_before": float(np.mean(rtts_between(1, MIGRATE_AT))),
        "rtt_after": float(np.mean(rtts_between(mig_end + 2, TOTAL))),
        "ab_before": ab_between(1, MIGRATE_AT),
        "ab_during": ab_between(MIGRATE_AT, mig_end),
        "ab_after": ab_between(mig_end + 2, TOTAL),
        "lost": len(lost_times),
        "lost_in_window": sum(1 for t in lost_times
                              if MIGRATE_AT - 1 <= t <= mig_end + 2),
        "series": (list(np.round(ab_t, 1)), list(np.round(ab_r, 1))),
    }


def run_experiment():
    return {src: run_source(src, 80 + i) for i, src in enumerate(SOURCES)}


def test_fig10_timeline(run_once, emit):
    out = run_once(run_experiment)
    rows = []
    for src in SOURCES:
        r = out[src]
        rows.append((f"{src}-hku", round(r["rtt_before"], 1), round(r["rtt_after"], 1),
                     round(r["ab_before"], 0), round(r["ab_during"], 0),
                     round(r["ab_after"], 0),
                     round(r["report"].downtime, 2), r["lost"]))
    emit(render_table(
        "Figure 10 - RTT and AB throughput across live migration "
        f"(migration at t={MIGRATE_AT:.0f}s)",
        ["pair", "RTT pre(ms)", "RTT post(ms)", "AB pre(r/s)",
         "AB during", "AB post", "downtime(s)", "pings lost"], rows))
    check = ShapeCheck("Fig 10")
    for src in SOURCES:
        r = out[src]
        check.expect(f"{src}: post-migration RTT < 15 ms",
                     r["rtt_after"] < 15, f"{r['rtt_after']:.1f}")
        check.expect(f"{src}: RTT drops after migration",
                     r["rtt_after"] < r["rtt_before"] / 2)
        check.expect(f"{src}: AB throughput jumps after migration",
                     r["ab_after"] > 1.5 * r["ab_before"],
                     f"{r['ab_before']:.0f} -> {r['ab_after']:.0f}")
        check.expect(f"{src}: throughput dips during migration",
                     r["ab_during"] < r["ab_after"],
                     f"during {r['ab_during']:.0f} vs after {r['ab_after']:.0f}")
        check.expect(f"{src}: sub-3s downtime",
                     r["report"].downtime < 3.0, f"{r['report'].downtime:.2f}s")
        check.expect(f"{src}: ping loss confined to the migration window",
                     r["lost"] == r["lost_in_window"] and r["lost"] > 0,
                     f"{r['lost_in_window']}/{r['lost']}")
    emit(check.render())
    check.print_and_assert()
