"""Thin shim: the stack builders are a supported scenario module now —
import from :mod:`repro.scenarios.stacks` (kept so ``from stacks import
...`` in older benchmark code keeps working)."""

from repro.scenarios.stacks import (  # noqa: F401
    SITE_PATH_RTT,
    StackPair,
    ipop_pair,
    physical_pair,
    stack_pair,
    wavnet_pair,
)
