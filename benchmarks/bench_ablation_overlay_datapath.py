"""Ablation — direct data path vs routing through the overlay.

WAVNet's central design choice (§II.B): after connection setup, "the
actual data transmission ... does not involve the DHT overlay". This
ablation quantifies that choice by comparing, on the same 25 ms WAN:

* WAVNet       — direct punched tunnel (the paper's design);
* IPOP direct  — P2P stack on the data path but a direct overlay edge;
* IPOP relayed — same stack with direct links disabled (max_direct=0,
  no shortcuts): every packet relays through intermediate hosts.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.netperf import netperf_stream, netserver
from repro.apps.ping import Pinger
from repro.baselines.ipop import IpopConfig, IpopOverlay
from repro.net.addresses import IPv4Address
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_natted_site

from repro.scenarios.stacks import ipop_pair, wavnet_pair
from repro.sim import Simulator

RTT = 0.025
BW = 50e6
DURATION = 10.0


def relayed_ipop():
    """Six IPOP nodes in a ring with no shortcuts: traffic between two
    ring-distant nodes must relay through intermediates."""
    sim = Simulator(seed=31)
    cloud = WanCloud(sim, default_latency=RTT / 2)
    overlay = IpopOverlay(sim, config=IpopConfig(max_direct=0, n_shortcuts=0))
    for i in range(6):
        site = make_natted_site(sim, cloud, f"s{i}", f"8.4.0.{i + 1}",
                                lan_subnet=f"192.168.{40 + i}.0/24",
                                access_bandwidth_bps=BW, tcp_mss=1460)
        overlay.add_node(site.hosts[0], f"10.128.0.{i + 1}", nat=site.nat)
    sim.run(until=sim.process(overlay.build_ring()))
    nodes = sorted(overlay.nodes.values(), key=lambda n: n.ring_id)
    src, dst = nodes[0], nodes[len(nodes) // 2]
    return sim, src.host, dst.host, dst.virtual_ip, overlay


def measure(sim, host_a, host_b, ip_b):
    sim.process(netserver(host_b))
    ping = sim.process(Pinger(host_a.stack, ip_b, interval=0.3, timeout=3.0).run(6))
    sim.run(until=ping)
    stream = sim.process(netperf_stream(host_a, ip_b, duration=DURATION))
    sim.run(until=stream)
    rtts = ping.value.rtts[1:]
    return (sum(rtts) / len(rtts) * 1000, stream.value.throughput_mbps)


def run_experiment():
    rows = []
    wav = wavnet_pair(RTT, BW, seed=32)
    rows.append(("WAVNet (direct tunnel)",) + measure(wav.sim, wav.host_a,
                                                      wav.host_b, wav.ip_b))
    ipop = ipop_pair(RTT, BW, seed=33)
    rows.append(("IPOP (direct edge)",) + measure(ipop.sim, ipop.host_a,
                                                  ipop.host_b, ipop.ip_b))
    sim, a, b, ip, overlay = relayed_ipop()
    relays = lambda: sum(n.packets_relayed for n in overlay.nodes.values())
    before = relays()
    row = ("overlay-routed (relayed)",) + measure(sim, a, b, ip)
    rows.append(row)
    rows_relayed = relays() - before
    return rows, rows_relayed


def test_ablation_overlay_datapath(run_once, emit):
    rows, n_relayed = run_once(run_experiment)
    emit(render_table(
        "Ablation - data path design: direct tunnel vs overlay routing "
        f"(RTT {RTT * 1000:.0f} ms, {BW / 1e6:.0f} Mbps)",
        ["data path", "RTT (ms)", "netperf (Mbps)"],
        [(n, round(r, 1), round(t, 1)) for n, r, t in rows]))
    emit(f"packets relayed through intermediate hosts: {n_relayed:,}")
    check = ShapeCheck("ablation/overlay-datapath")
    wav_rtt, wav_thp = rows[0][1], rows[0][2]
    dir_rtt, dir_thp = rows[1][1], rows[1][2]
    rel_rtt, rel_thp = rows[2][1], rows[2][2]
    check.expect("direct tunnel has the lowest RTT",
                 wav_rtt <= dir_rtt and wav_rtt < rel_rtt,
                 f"{wav_rtt:.1f} / {dir_rtt:.1f} / {rel_rtt:.1f}")
    check.expect("relaying inflates RTT by >= 50%",
                 rel_rtt > 1.5 * wav_rtt)
    check.expect("direct tunnel has the highest throughput",
                 wav_thp > dir_thp and wav_thp > rel_thp,
                 f"{wav_thp:.1f} / {dir_thp:.1f} / {rel_thp:.1f}")
    # (Relaying spreads the user-level CPU cost across hosts, so its
    # *throughput* can exceed the two-node direct P2P edge; its latency
    # penalty above is what the paper's design argument rests on.)
    check.expect("direct tunnel >= 2x either overlay datapath",
                 wav_thp >= 2 * max(dir_thp, rel_thp),
                 f"{wav_thp:.1f} vs {dir_thp:.1f}/{rel_thp:.1f}")
    check.expect("relays actually occurred", n_relayed > 0)
    emit(check.render())
    check.print_and_assert()
