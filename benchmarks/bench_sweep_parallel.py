"""Sweep-runner benchmark: serial vs sharded execution of the 8-seed
churn sweep, with a byte-identity proof.

Runs the catalog's ``churn8`` sweep twice — ``workers=1`` and
``workers=4`` — and records both wall clocks in ``BENCH_sweep.json``
along with the canonical envelope bytes' digests. The simulations are
deterministic and independent, so the sharded result MUST be
byte-identical to the serial one (always enforced); the speedup is
whatever the machine's cores allow and is reported honestly —
``--check`` only enforces the >= 3x floor when at least 4 CPUs are
visible to this process (a single-core container cannot speed anything
up by forking).

Run standalone (``python benchmarks/bench_sweep_parallel.py [--check]``)
or via pytest.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sys
import tempfile
from time import perf_counter

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exp import SweepRunner, get_sweep  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

PARALLEL_WORKERS = 4
SPEEDUP_FLOOR = 3.0
MIN_CPUS_FOR_FLOOR = 4


def visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(workers: int, out_dir: pathlib.Path):
    runner = SweepRunner(get_sweep("churn8"), workers=workers,
                         out_dir=out_dir, force=True)
    t0 = perf_counter()
    result = runner.run()
    return perf_counter() - t0, result


def run_all() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as td:
        tmp = pathlib.Path(td)
        serial_wall, serial = _timed_run(1, tmp / "serial")
        parallel_wall, parallel = _timed_run(PARALLEL_WORKERS, tmp / "parallel")
    serial_bytes = serial.result_bytes()
    parallel_bytes = parallel.result_bytes()
    return {
        "sweep": "churn8",
        "points": len(serial),
        "cpus_visible": visible_cpus(),
        "serial_wall_s": round(serial_wall, 3),
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 3),
        "byte_identical": serial_bytes == parallel_bytes,
        "envelopes_sha256": hashlib.sha256(serial_bytes).hexdigest(),
        "parallel_envelopes_sha256":
            hashlib.sha256(parallel_bytes).hexdigest(),
    }


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def render(results: dict) -> str:
    return (f"Sweep runner: {results['sweep']} ({results['points']} points), "
            f"{results['cpus_visible']} CPU(s) visible\n"
            f"  serial        {results['serial_wall_s']:7.2f}s\n"
            f"  {results['parallel_workers']} workers     "
            f"{results['parallel_wall_s']:7.2f}s   "
            f"speedup {results['speedup']:.2f}x\n"
            f"  byte-identical envelopes: {results['byte_identical']}")


def check(results: dict) -> bool:
    ok = True
    if not results["byte_identical"]:
        print("FAIL: sharded envelopes differ from serial")
        ok = False
    if (results["cpus_visible"] >= MIN_CPUS_FOR_FLOOR
            and results["speedup"] < SPEEDUP_FLOOR):
        print(f"FAIL: speedup {results['speedup']:.2f}x below "
              f"{SPEEDUP_FLOOR}x floor on {results['cpus_visible']} CPUs")
        ok = False
    if ok:
        floor = (f"speedup floor enforced ({SPEEDUP_FLOOR}x)"
                 if results["cpus_visible"] >= MIN_CPUS_FOR_FLOOR
                 else f"speedup floor waived on "
                      f"{results['cpus_visible']} CPU(s)")
        print(f"ok: byte-identical, {results['speedup']:.2f}x; {floor}")
    return ok


def main(argv: list[str]) -> int:
    results = run_all()
    write_json(results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_sweep_parallel(run_once, emit):
    """Benchmark-suite entry point: serial vs sharded wall clock plus
    the byte-identity assertion."""
    results = run_once(run_all)
    write_json(results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
