"""Figure 11 — MPICH heat distribution with/without VM migration.

Four VMs run the heat-distribution MPI job over WAVNet: three at HKU,
one at SIAT. Without migration the SIAT rank's WAN link throttles the
whole job; with migration the SIAT VM moves to an HKU host shortly
after the job starts. Paper numbers (seconds):

    size      w/o migration   with migration   ratio
    64x64     397             121              30.5%
    128x128   1214            179              14.7%
    256x256   3798            365               9.6%->4.7%

Shape: migration always wins, and the relative benefit *grows* with
problem size (the WAN cost scales with the grid, the migration cost is
one-off).
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.mpi import MpiJob, heat_distribution_program
from repro.net.addresses import IPv4Address
from repro.scenarios.sites import build_real_wan
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor

SIZES = [64, 128, 256]
# Jacobi sweeps to convergence grow with the grid dimension; 6*m keeps
# the WAN phase (one halo RTT per iteration) dominant, as in the paper.
ITERATIONS_PER_M = 24
GATHER_EVERY = 4
MIGRATE_AFTER = 5.0
BASE_FLOPS = 4e8


def run_heat(m, migrate, seed):
    sim = Simulator(seed=seed)
    # Three HKU hosts: hku1, hku2, and the OffCam home PC stand in for
    # the paper's three HKU-side machines.
    wan = build_real_wan(sim, site_names=["hku1", "hku2", "offcam", "siat"],
                         tcp_mss=8192)
    sim.run(until=sim.process(wan.env.start_all()))
    sim.run(until=sim.process(wan.env.connect_full_mesh()))
    vmms = {n: Hypervisor(wh.host, wh.driver.attach_port)
            for n, wh in wan.hosts.items()}
    placements = [("hku1", "10.99.1.1"), ("hku2", "10.99.1.2"),
                  ("offcam", "10.99.1.3"), ("siat", "10.99.1.4")]
    vms = []
    for i, (site, vip) in enumerate(placements):
        vm = vmms[site].create_vm(f"rank{i}", memory_mb=24,
                                  dirty_model=HotColdDirtyModel(hot_fraction=0.02),
                                  tcp_mss=8192)
        vm.configure_network(vip, "10.99.0.0/16")
        vms.append(vm)
    sim.run(until=sim.timeout(2.0))
    job = MpiJob([vm.guest for vm in vms],
                 [IPv4Address(vip) for _s, vip in placements],
                 heat_distribution_program(m, ITERATIONS_PER_M * m,
                                           gather_every=GATHER_EVERY),
                 base_flops=BASE_FLOPS)
    run_proc = sim.process(job.run())
    mig_time = 0.0
    if migrate:
        def migrate_siat(sim):
            yield sim.timeout(MIGRATE_AFTER)
            report = yield sim.process(vmms["siat"].migrate(
                vms[3], vmms["hku1"], wan.host("hku1").virtual_ip))
            return report.total_time

        mig_proc = sim.process(migrate_siat(sim))
    sim.run(until=run_proc)
    if migrate:
        mig_time = mig_proc.value if mig_proc.triggered else float("nan")
    return run_proc.value, mig_time


def run_experiment():
    rows = []
    for m in SIZES:
        t_wo, _ = run_heat(m, migrate=False, seed=90 + m)
        t_w, mig = run_heat(m, migrate=True, seed=90 + m)
        rows.append((m, t_wo, t_w, mig, t_w / t_wo))
    return rows


def test_fig11_mpi_heat(run_once, emit):
    rows = run_once(run_experiment)
    emit(render_table(
        "Figure 11 - MPI heat distribution execution time (s) "
        f"({ITERATIONS_PER_M}*m iterations, gather every {GATHER_EVERY})",
        ["size", "w/o migration", "with migration", "migration time",
         "with/without"],
        [(f"{m}x{m}", round(a, 1), round(b, 1), round(c, 1), f"{r:.1%}")
         for m, a, b, c, r in rows]))
    check = ShapeCheck("Fig 11")
    ratios = []
    for m, t_wo, t_w, _mig, ratio in rows:
        check.expect(f"{m}x{m}: migration wins", t_w < t_wo,
                     f"{t_w:.0f} vs {t_wo:.0f}s")
        check.expect(f"{m}x{m}: with-migration <= 50% of without",
                     ratio <= 0.50, f"{ratio:.1%}")
        ratios.append(ratio)
    check.expect("relative benefit grows with problem size",
                 ratios[0] > ratios[1] > ratios[2],
                 " > ".join(f"{r:.1%}" for r in ratios))
    check.expect("without-migration time grows ~linearly+ in m",
                 rows[2][1] > 1.8 * rows[1][1]
                 and rows[1][1] > 1.8 * rows[0][1],
                 f"{rows[0][1]:.0f} / {rows[1][1]:.0f} / {rows[2][1]:.0f}")
    emit(check.render())
    check.print_and_assert()
