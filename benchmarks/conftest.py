"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it
runs the experiment once under ``benchmark.pedantic`` (simulations are
deterministic — repetition adds nothing), prints the same rows/series
the paper reports, saves them under ``benchmarks/out/``, and asserts the
paper's comparative *shape* claims via :class:`ShapeCheck`.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark
    timer and hand back its return value."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture
def emit(request):
    """Print a rendered result block and persist it to benchmarks/out/."""

    def _emit(text: str) -> None:
        name = request.node.name
        print(f"\n{text}\n")
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        with open(path, "a") as fh:
            fh.write(text + "\n")

    # Truncate this test's output file at the start of the run.
    name = request.node.name
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text("")
    return _emit
