"""Figure 9 — VM network bandwidth during live migration (emulated WAN).

netperf TCP_STREAM to a 256 MB VM, polled every 500 ms; migration is
triggered mid-stream. Paper results:

* LAN     — ~95% of native throughout; migration takes ~20 s.
* WAVNet  — ~60% of native; migration <30 s; the netperf session
  continues seamlessly after the gratuitous ARP.
* IPOP    — <10% of native; migration ~130 s; after the VM moves the
  session STALLS (the overlay keeps routing to the source host).

We reproduce all three curves with a scaled VM (64 MB) so the packet-
level simulation stays tractable; timing ratios between stacks are what
matter, not absolute seconds.
"""

import numpy as np

from repro.analysis.tables import ShapeCheck, render_series
from repro.apps.netperf import netperf_stream, netserver
from repro.baselines.ipop import IpopOverlay
from repro.net.addresses import IPv4Address
from repro.net.l2 import Bridge, patch
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_lan, make_natted_site
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor, bridge_attach

VM_MB = 64
LAN_BW = 100e6
WAN_BW = 100e6
POLL = 0.5
MIGRATE_AT = 10.0
TOTAL = 60.0
DIRTY = dict(hot_fraction=0.02, hot_rate=2000, cold_rate=5)
# LAN/WAVNet run a jumbo-segment abstraction to keep the packet-level
# simulation tractable; IPOP keeps 1460 (its 1280 B P2P MTU + host 1500
# MTU fragmentation is part of what is being measured).
MSS = 8192


def timeline_lan():
    """Native LAN: migration between two hosts on one switch."""
    sim = Simulator(seed=61)
    lan = make_lan(sim, 3, subnet="172.16.0.0/24", name="dc",
                   link_bandwidth_bps=LAN_BW, tcp_mss=MSS)
    src, dst, client = lan.hosts
    vmms = []
    for phys in (src, dst):
        bridge = Bridge(sim, name=f"{phys.name}.br0")
        patch(bridge.new_port("uplink"), lan.switch.new_port())
        vmms.append(Hypervisor(phys, bridge_attach(bridge)))
    vm = vmms[0].create_vm("vm", memory_mb=VM_MB,
                           dirty_model=HotColdDirtyModel(**DIRTY), tcp_mss=MSS)
    vm.configure_network("172.16.0.100", "172.16.0.0/24")
    return _run(sim, client, IPv4Address("172.16.0.100"), vm, vmms,
                IPv4Address("172.16.0.11"))


def timeline_wavnet():
    sim = Simulator(seed=62)
    env = WavnetEnvironment(sim, default_latency=0.0005)
    for name in ("src", "dst", "cli"):
        env.add_host(name, access_bandwidth_bps=WAN_BW, tcp_mss=MSS)
    sim.run(until=sim.process(env.start_all()))
    sim.run(until=sim.process(env.connect_full_mesh()))
    vmms = {n: Hypervisor(env.hosts[n].host, env.hosts[n].driver.attach_port)
            for n in ("src", "dst")}
    vm = vmms["src"].create_vm("vm", memory_mb=VM_MB,
                               dirty_model=HotColdDirtyModel(**DIRTY), tcp_mss=MSS)
    vm.configure_network("10.99.1.1", "10.99.0.0/16")
    return _run(sim, env.hosts["cli"].host, IPv4Address("10.99.1.1"), vm,
                [vmms["src"], vmms["dst"]], env.hosts["dst"].virtual_ip)


def timeline_ipop():
    """IPOP: VM attached behind the source node; the directory entry is
    never updated, so the stream stalls after migration. Migration
    traffic itself crosses the IPOP overlay (slow)."""
    sim = Simulator(seed=63)
    cloud = WanCloud(sim, default_latency=0.0005)
    overlay = IpopOverlay(sim)
    sites = {}
    for i, name in enumerate(("src", "dst", "cli")):
        site = make_natted_site(sim, cloud, name, f"8.7.0.{i + 1}",
                                lan_subnet=f"192.168.{70 + i}.0/24",
                                access_bandwidth_bps=WAN_BW, tcp_mss=1460)
        overlay.add_node(site.hosts[0], f"10.128.0.{i + 1}", nat=site.nat)
        sites[name] = site
    sim.run(until=sim.process(overlay.build_ring()))
    node_src = overlay.nodes["src.h0"]
    node_dst = overlay.nodes["dst.h0"]
    vmm_src = Hypervisor(sites["src"].hosts[0],
                         lambda port, label: node_src.attach_vm_port(
                             port, IPv4Address("10.128.0.100"), None, label))
    # attach_vm_port needs the MAC: create VM first, then attach manually.
    from repro.vm.machine import VirtualMachine
    vm = VirtualMachine(sim, "vm", VM_MB, sites["src"].hosts[0].mac_mint,
                        dirty_model=HotColdDirtyModel(**DIRTY), tcp_mss=1460)
    vm.configure_network("10.128.0.100", "10.128.0.0/16",
                         gateway=overlay.phantom_gateway)
    vm.guest.stack.arp_cache[overlay.phantom_gateway] = (node_src._bridge_mac,
                                                         float("inf"))
    node_src.attach_vm_port(vm.vif.port, vm.ip, vm.mac, "vif-vm")
    vm.current_host = "src"

    client = sites["cli"].hosts[0]
    sim.process(netserver(vm.guest))
    warm = sim.timeout(2.0)
    sim.run(until=warm)
    t_start = sim.now
    p = sim.process(netperf_stream(client, IPv4Address("10.128.0.100"),
                                   duration=TOTAL, interval=POLL))

    def migrate(sim):
        yield sim.timeout(MIGRATE_AT)
        t0 = sim.now
        # Migration transfers VM memory between the hosts *over IPOP*.
        from repro.net.tcp import drain_bytes, stream_bytes
        listener = sites["dst"].hosts[0].tcp.listen(8002)

        def sink(sim):
            conn = yield listener.accept()
            yield from drain_bytes(conn)

        sim.process(sink(sim))
        conn = sites["src"].hosts[0].tcp.connect(IPv4Address("10.128.0.2"), 8002)
        yield conn.wait_established()
        yield from stream_bytes(conn, vm.memory_bytes())
        conn.close()
        # Cutover: source node forgets the VM; directory stays stale.
        vm.pause()
        node_src.detach_vm_ip(vm.ip)
        yield sim.timeout(0.15)
        return sim.now - t0

    mig = sim.process(migrate(sim))
    sim.run(until=p)
    if not mig.triggered:
        sim.run(until=mig)  # IPOP's slow migration outlives the stream
    result = p.value
    result.times = [t - t_start for t in result.times]
    return result, mig.value


def _run(sim, client_host, vm_ip, vm, vmms, dest_ip):
    sim.process(netserver(vm.guest))
    sim.run(until=sim.timeout(2.0))
    t_start = sim.now
    p = sim.process(netperf_stream(client_host, vm_ip, duration=TOTAL,
                                   interval=POLL))

    def migrate(sim):
        yield sim.timeout(MIGRATE_AT)
        report = yield sim.process(vmms[0].migrate(vm, vmms[1], dest_ip))
        return report

    mig = sim.process(migrate(sim))
    sim.run(until=p)
    if not mig.triggered:
        sim.run(until=mig)
    result = p.value
    result.times = [t - t_start for t in result.times]
    # Migration duration comes from the trace, not the report object —
    # the "migrate" span the hypervisor opened covers connect..resume.
    span = sim.trace.spans("migrate")[-1]
    return result, span["dur"]


def run_experiment():
    out = {}
    out["LAN"] = timeline_lan()
    out["WAVNet"] = timeline_wavnet()
    out["IPOP"] = timeline_ipop()
    return out


def test_fig09_migration_bw(run_once, emit):
    out = run_once(run_experiment)
    times = out["LAN"][0].times
    series = {}
    for name in ("LAN", "WAVNet", "IPOP"):
        rates = out[name][0].rates_mbps
        series[name] = [f"{r:.1f}" for r in rates[:len(times)]]
    emit(render_series("Figure 9 - VM netperf Mbps during live migration "
                       f"(migration at t={MIGRATE_AT:.0f}s, 500ms polls)",
                       "t(s)", [f"{t:.1f}" for t in times[:len(series['LAN'])]],
                       series))
    emit(f"migration time: LAN={out['LAN'][1]:.1f}s  WAVNet={out['WAVNet'][1]:.1f}s  "
         f"IPOP={out['IPOP'][1]:.1f}s")
    check = ShapeCheck("Fig 9")

    def phase_mean(result, t0, t1):
        t, r = np.asarray(result.times), np.asarray(result.rates_mbps)
        sel = (t >= t0) & (t < t1)
        return float(r[sel].mean()) if sel.any() else 0.0

    lan_res, lan_mig = out["LAN"]
    wav_res, wav_mig = out["WAVNet"]
    ipop_res, ipop_mig = out["IPOP"]
    lan_pre = phase_mean(lan_res, 2, MIGRATE_AT)
    wav_pre = phase_mean(wav_res, 2, MIGRATE_AT)
    ipop_pre = phase_mean(ipop_res, 2, MIGRATE_AT)
    check.expect("pre-migration: LAN ~ native (>=70 Mbps)", lan_pre >= 70,
                 f"{lan_pre:.1f}")
    check.expect("pre-migration: WAVNet >= 50% of LAN",
                 wav_pre >= 0.5 * lan_pre, f"{wav_pre:.1f} vs {lan_pre:.1f}")
    check.expect("pre-migration: IPOP <= 25% of LAN",
                 ipop_pre <= 0.25 * lan_pre, f"{ipop_pre:.1f} vs {lan_pre:.1f}")
    check.expect("migration: WAVNet comparable to LAN (< 2.5x)",
                 wav_mig < 2.5 * lan_mig, f"{wav_mig:.1f} vs {lan_mig:.1f}")
    check.expect("migration: IPOP much slower (> 3x LAN)",
                 ipop_mig > 3 * lan_mig, f"{ipop_mig:.1f} vs {lan_mig:.1f}")
    # Post-migration behaviour.
    lan_post = phase_mean(lan_res, MIGRATE_AT + lan_mig + 5, TOTAL)
    wav_post = phase_mean(wav_res, MIGRATE_AT + wav_mig + 5, TOTAL)
    ipop_post = phase_mean(ipop_res, MIGRATE_AT + ipop_mig + 5, TOTAL)
    check.expect("post-migration: LAN session continues", lan_post >= 0.7 * lan_pre,
                 f"{lan_post:.1f}")
    check.expect("post-migration: WAVNet session continues",
                 wav_post >= 0.7 * wav_pre, f"{wav_post:.1f} vs pre {wav_pre:.1f}")
    check.expect("post-migration: IPOP session stalls (< 5% of its pre rate)",
                 ipop_post <= 0.05 * max(ipop_pre, 0.1),
                 f"{ipop_post:.2f} vs pre {ipop_pre:.1f}")
    emit(check.render())
    check.print_and_assert()
