"""Table II — network latency by ICMP request/response.

Paper rows (mean RTT, ms):

    pair       Physical   WAVNet   IPOP
    HKU-SIAT   74.244     74.207   74.596
    HKU-PU     30.233     30.753   31.187
    SIAT-PU    219.427    219.783  220.533

Shape to preserve: all three stacks within a fraction of a millisecond
of each other on WAN paths (packet-handling overhead amortized by
propagation delay), with the virtual stacks adding a small positive
overhead and IPOP >= WAVNet.

The 3x3 grid (site pair x stack) is a two-group zip sweep over the
registered ``stack_ping`` scenario: ``pair`` zipped to its RTT,
crossed with ``stack`` zipped to its seed.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.exp import Sweep, SweepRunner, aggregate
from repro.scenarios.sites import pair_rtt_ms

PAIRS = [("hku1", "siat"), ("hku1", "pu"), ("siat", "pu")]
BANDWIDTH = 50e6
PROBES = 12


def table2_sweep() -> Sweep:
    return (Sweep("table2", "stack_ping",
                  base_params={"bandwidth_mbps": BANDWIDTH / 1e6,
                               "probes": PROBES})
            .zip_axes(pair=[f"{a.upper()}-{b.upper()}" for a, b in PAIRS],
                      rtt_ms=[pair_rtt_ms(a, b) for a, b in PAIRS])
            .zip_axes(stack=["physical", "wavnet", "ipop"],
                      seed=[1, 2, 3]))


def run_experiment():
    result = SweepRunner(table2_sweep(), force=True).run()
    for p in result:
        assert p.payload["replies"] > 2, "ping produced no replies"
        assert p.payload["lost"] == 0, "probes lost on an idle path"
    return aggregate.table_rows(result, row_axis="pair", col_axis="stack",
                                key="mean_rtt_ms")


def test_table2_latency(run_once, emit):
    rows = run_once(run_experiment)
    emit(render_table(
        "Table II - network latency by ICMP request/response (mean RTT, ms)",
        ["sites", "Physical", "WAVNet", "IPOP"], rows))
    check = ShapeCheck("Table II")
    for name, phys, wav, ipop in rows:
        # Paper's own worst case is IPOP on HKU-PU: +3.2% over physical.
        check.expect(f"{name}: WAVNet within 4% of physical",
                     wav <= phys * 1.04, f"{wav:.2f} vs {phys:.2f}")
        check.expect(f"{name}: IPOP within 5% of physical",
                     ipop <= phys * 1.05, f"{ipop:.2f} vs {phys:.2f}")
        check.expect(f"{name}: overheads ordered phys <= wavnet <= ipop",
                     phys <= wav + 0.05 and wav <= ipop + 0.05,
                     f"{phys:.2f} / {wav:.2f} / {ipop:.2f}")
    emit(check.render())
    check.print_and_assert()
