"""Table II — network latency by ICMP request/response.

Paper rows (mean RTT, ms):

    pair       Physical   WAVNet   IPOP
    HKU-SIAT   74.244     74.207   74.596
    HKU-PU     30.233     30.753   31.187
    SIAT-PU    219.427    219.783  220.533

Shape to preserve: all three stacks within a fraction of a millisecond
of each other on WAN paths (packet-handling overhead amortized by
propagation delay), with the virtual stacks adding a small positive
overhead and IPOP >= WAVNet.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.ping import Pinger
from repro.scenarios.sites import pair_rtt_ms

from stacks import ipop_pair, physical_pair, wavnet_pair

PAIRS = [("hku1", "siat"), ("hku1", "pu"), ("siat", "pu")]
BANDWIDTH = 50e6
PROBES = 12


def ping_mean_ms(pair, n_warmup=2):
    pinger = Pinger(pair.host_a.stack, pair.ip_b, interval=0.5, timeout=5.0)
    proc = pair.sim.process(pinger.run(PROBES))
    pair.sim.run(until=proc)
    # Read RTTs back out of the metrics registry (the Pinger records each
    # probe into ``<stack>.ping.rtt``) rather than the process result.
    series = pair.metrics.series(f"{pair.host_a.stack.name}.ping.rtt")
    rtts = series.values[n_warmup:].tolist()
    assert rtts, "ping produced no replies"
    assert pair.metrics.value(f"{pair.host_a.stack.name}.ping.lost") == 0, \
        "probes lost on an idle path"
    return sum(rtts) / len(rtts) * 1000.0


def run_experiment():
    rows = []
    for a, b in PAIRS:
        rtt = pair_rtt_ms(a, b) / 1000.0
        phys = ping_mean_ms(physical_pair(rtt, BANDWIDTH, seed=1))
        wav = ping_mean_ms(wavnet_pair(rtt, BANDWIDTH, seed=2))
        ipop = ping_mean_ms(ipop_pair(rtt, BANDWIDTH, seed=3))
        rows.append((f"{a.upper()}-{b.upper()}", phys, wav, ipop))
    return rows


def test_table2_latency(run_once, emit):
    rows = run_once(run_experiment)
    emit(render_table(
        "Table II - network latency by ICMP request/response (mean RTT, ms)",
        ["sites", "Physical", "WAVNet", "IPOP"], rows))
    check = ShapeCheck("Table II")
    for name, phys, wav, ipop in rows:
        # Paper's own worst case is IPOP on HKU-PU: +3.2% over physical.
        check.expect(f"{name}: WAVNet within 4% of physical",
                     wav <= phys * 1.04, f"{wav:.2f} vs {phys:.2f}")
        check.expect(f"{name}: IPOP within 5% of physical",
                     ipop <= phys * 1.05, f"{ipop:.2f} vs {phys:.2f}")
        check.expect(f"{name}: overheads ordered phys <= wavnet <= ipop",
                     phys <= wav + 0.05 and wav <= ipop + 0.05,
                     f"{phys:.2f} / {wav:.2f} / {ipop:.2f}")
    emit(check.render())
    check.print_and_assert()
