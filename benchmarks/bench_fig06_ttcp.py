"""Figure 6 — ttcp bandwidth over WAN (HKU-SIAT), buf size 16384 B.

Paper: transfer sizes 64/128/256 MB; both WAVNet and IPOP reach 57-85%
of the physical rate, with WAVNet ahead of IPOP in (almost) all cases.
The HKU-SIAT path is 74.2 ms RTT with an 18.6 Mbps bottleneck.

We scale transfer sizes 8x down (8/16/32 MB) to keep the packet-level
simulation fast; rates are steady-state so the scaling does not change
the comparison.
"""

from repro.analysis.tables import ShapeCheck, render_series
from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
from repro.scenarios.sites import pair_rtt_ms

from repro.scenarios.stacks import ipop_pair, physical_pair, wavnet_pair

RTT = pair_rtt_ms("hku1", "siat") / 1000.0
BANDWIDTH = 18.6e6
SIZES_MB = [8, 16, 32]
BUF = 16384
# 18.6 Mbps x 74 ms BDP = 172 kB; era-typical tuned buffers ~ 2 x BDP
# (window-limited just below path capacity, the stable operating point).
BUFS = dict(send_buf=327680, recv_buf=327680)


def run_ttcp(pair, size_bytes):
    sim = pair.sim
    rx = sim.process(ttcp_receiver(pair.host_b))
    tx = sim.process(ttcp_transfer(pair.host_a, pair.ip_b, size_bytes, buf_size=BUF))
    sim.run(until=tx)
    return tx.value.rate_kbps


def run_experiment():
    series = {"Physical": [], "WAVNet": [], "IPOP": []}
    for mb in SIZES_MB:
        size = mb * 1024 * 1024
        series["Physical"].append(run_ttcp(physical_pair(RTT, BANDWIDTH, seed=1, **BUFS), size))
        series["WAVNet"].append(run_ttcp(wavnet_pair(RTT, BANDWIDTH, seed=2, **BUFS), size))
        series["IPOP"].append(run_ttcp(ipop_pair(RTT, BANDWIDTH, seed=3, **BUFS), size))
    return series


def test_fig06_ttcp(run_once, emit):
    series = run_once(run_experiment)
    labels = [f"{mb}MB" for mb in SIZES_MB]
    emit(render_series(
        "Figure 6 - TTCP benchmarking over WAN (HKU-SIAT), KB/s (sizes scaled /8)",
        "transfer", labels, series))
    check = ShapeCheck("Fig 6")
    for i, label in enumerate(labels):
        phys = series["Physical"][i]
        wav = series["WAVNet"][i]
        ipop = series["IPOP"][i]
        check.expect(f"{label}: WAVNet in 57-100% of physical",
                     0.57 * phys <= wav <= phys,
                     f"{wav:.0f} vs {phys:.0f} KB/s ({wav / phys:.0%})")
        check.expect(f"{label}: IPOP in 25-100% of physical",
                     0.25 * phys <= ipop <= phys,
                     f"{ipop:.0f} vs {phys:.0f} KB/s ({ipop / phys:.0%})")
        check.expect(f"{label}: WAVNet outperforms IPOP",
                     wav >= ipop, f"{wav:.0f} vs {ipop:.0f}")
    # As in the paper, both virtual stacks' rates improve with transfer
    # size (ramp cost amortizes); IPOP reaches >=40% by the largest size.
    check.expect("IPOP ratio climbs with transfer size",
                 series["IPOP"][0] < series["IPOP"][-1])
    check.expect("largest transfer: IPOP >= 40% of physical",
                 series["IPOP"][-1] >= 0.40 * series["Physical"][-1])
    emit(check.render())
    check.print_and_assert()
