"""Fluid vs packet data-plane agreement: fig06 / fig07 / table4 cells.

The fluid plane (``repro.net.fluid``) replaces per-segment TCP with one
max-min-fair flow per transfer. This bench replays the paper's three
throughput experiments at both fidelities and gates on two claims:

* **Agreement** — every cell's fluid steady-state throughput is within
  +-5% of the packet plane's.
* **Event reduction** — across the cell set the packet plane dispatches
  >= 100x more simulator events than the fluid plane.

Cell protocols (why each looks the way it does — DESIGN.md §12):

* *fig06-style* — bulk ttcp at 74.2 ms / 18.6 Mbps, measured by size
  differencing: rate = (S2-S1)*8/(t2-t1) for 8 MB and 16 MB transfers.
  Differencing cancels the slow-start transient in both planes, so the
  comparison is the steady state the paper's 16 MB transfers measure.
* *fig07-style* — netperf tails at RTT 20 ms under shaping, buffers
  tuned to BDP + half the bottleneck queue. Tuning keeps packet TCP out
  of its perpetual-AIMD-sawtooth regime (rwnd > BDP + queue means
  standing loss), which is real TCP behavior but not a steady state a
  rate model can or should reproduce. The tail is the mean of the
  second half of a 12 s run. IPOP runs only its wire-limited cells
  (6.25 / 12.5 Mbps): shaped near or above its user-level-stack CPU
  ceiling the packet plane is metastable between two regimes, which is
  packet-fidelity territory by design.
* *table4-style* — ApacheBench request throughput against the HTTP
  server at 74.2 ms / 18.6 Mbps. The /file64k cell runs at concurrency
  2: at c=8 the workers' 24-segment slow-start bursts collide in the
  shaped queue, a packet-level queueing effect the fluid plane's
  round-latency model deliberately does not carry.

Results merge into ``BENCH_fluid.json`` under ``"agreement"`` (the
scalability half lives in ``bench_fluid_scale.py``). Run standalone
(``python benchmarks/bench_fluid_agreement.py [--quick] [--check]``) or
via pytest. ``--check`` exits non-zero when a cell exceeds +-5% or the
event ratio drops below 100x — the CI perf-smoke gate (with --quick).
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.ab import ApacheBench  # noqa: E402
from repro.apps.httpd import HttpServer  # noqa: E402
from repro.apps.netperf import netperf_stream, netserver  # noqa: E402
from repro.apps.ttcp import ttcp_receiver, ttcp_transfer  # noqa: E402
from repro.core.options import TransferOptions  # noqa: E402
from repro.scenarios.fluid import fluidify  # noqa: E402
from repro.scenarios.stacks import (ipop_pair, physical_pair,  # noqa: E402
                                    wavnet_pair)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fluid.json"

MB = 1024 * 1024
DELTA_LIMIT_PCT = 5.0
EVENTS_RATIO_FLOOR = 100.0

PAIRS = {"physical": (physical_pair, 1),
         "wavnet": (wavnet_pair, 2),
         "ipop": (ipop_pair, 3)}

# Paper's measured WAN path for fig06 / table4.
FIG06_RTT, FIG06_BW = 0.0742, 18.6e6
FIG07_RTT = 0.020
FIG07_RATES = {"physical": (6.25, 12.5, 25.0, 50.0, 100.0),
               "wavnet": (6.25, 12.5, 25.0, 50.0, 100.0),
               # Wire-limited cells only; see module docstring.
               "ipop": (6.25, 12.5)}
TABLE4_CELLS = (("/file1k", 8, 64), ("/file8k", 8, 64), ("/file64k", 2, 24))

# CI subset: one stack-diverse slice of each protocol, bulk-heavy so the
# event-ratio gate still measures the fluid plane's point.
QUICK_FIG06 = ("physical", "wavnet")
QUICK_FIG07 = {"physical": (12.5,), "wavnet": (12.5,), "ipop": (12.5,)}
QUICK_TABLE4 = (("/file8k", 8, 64),)


def _mkpair(stack: str, rtt: float, bw: float, **kw):
    mk, seed = PAIRS[stack]
    return mk(rtt, bw, seed=seed, **kw)


# ----------------------------------------------------------------------
# Cell runners. Each returns (packet_value, fluid_value, ev_p, ev_f).
# ----------------------------------------------------------------------

def _ttcp_elapsed(stack: str, nbytes: int, fidelity: str):
    pair = _mkpair(stack, FIG06_RTT, FIG06_BW)
    if fidelity == "fluid":
        fluidify(pair)
    else:
        pair.sim.process(ttcp_receiver(pair.host_b))
    proc = pair.sim.process(
        ttcp_transfer(pair.host_a, pair.ip_b, nbytes,
                      options=TransferOptions(fidelity=fidelity)))
    pair.sim.run(until=proc)
    return proc.value.elapsed, pair.sim.events_dispatched


def fig06_cell(stack: str, s1: int = 8 * MB, s2: int = 16 * MB):
    """Differenced bulk-rate agreement: (s2-s1)*8/(t2-t1)."""
    out = {}
    events = {}
    for fidelity in ("packet", "fluid"):
        t1, e1 = _ttcp_elapsed(stack, s1, fidelity)
        t2, e2 = _ttcp_elapsed(stack, s2, fidelity)
        out[fidelity] = (s2 - s1) * 8 / 1e6 / (t2 - t1)
        events[fidelity] = e1 + e2
    return out["packet"], out["fluid"], events["packet"], events["fluid"]


def fig07_cell(stack: str, rate_mbps: float, duration: float = 12.0):
    """Shaped netperf tail agreement at tuned buffers."""
    bdp_pkts = rate_mbps * 1e6 * FIG07_RTT / 8 / 1460
    buf = int((bdp_pkts + 64) * 1460)
    out = {}
    events = {}
    for fidelity in ("packet", "fluid"):
        pair = _mkpair(stack, FIG07_RTT, rate_mbps * 1e6,
                       send_buf=buf, recv_buf=buf)
        if fidelity == "fluid":
            fluidify(pair)
        else:
            pair.sim.process(netserver(pair.host_b))
        proc = pair.sim.process(netperf_stream(
            pair.host_a, pair.ip_b, duration=duration,
            options=TransferOptions(fidelity=fidelity)))
        pair.sim.run(until=proc)
        rates = proc.value.rates_mbps
        out[fidelity] = sum(rates[len(rates) // 2:]) / (len(rates) -
                                                        len(rates) // 2)
        events[fidelity] = pair.sim.events_dispatched
    return out["packet"], out["fluid"], events["packet"], events["fluid"]


def table4_cell(stack: str, path: str, concurrency: int, n_requests: int):
    """ApacheBench request-throughput agreement."""
    out = {}
    events = {}
    for fidelity in ("packet", "fluid"):
        pair = _mkpair(stack, FIG06_RTT, FIG06_BW)
        if fidelity == "fluid":
            fluidify(pair)
        else:
            HttpServer(pair.host_b)
        ab = ApacheBench(pair.host_a, pair.ip_b, path=path,
                         concurrency=concurrency,
                         options=TransferOptions(fidelity=fidelity))
        proc = pair.sim.process(ab.run_requests(n_requests))
        pair.sim.run(until=proc)
        assert proc.value.requests_failed == 0
        out[fidelity] = proc.value.requests_per_second
        events[fidelity] = pair.sim.events_dispatched
    return out["packet"], out["fluid"], events["packet"], events["fluid"]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def _cell_row(bench: str, stack: str, label: str, packet: float,
              fluid: float, ev_p: int, ev_f: int) -> dict:
    return {
        "bench": bench, "stack": stack, "cell": label,
        "packet": round(packet, 3), "fluid": round(fluid, 3),
        "delta_pct": round((fluid - packet) / packet * 100, 2),
        "events_packet": ev_p, "events_fluid": ev_f,
    }


def run_all(quick: bool = False) -> dict:
    cells = []
    fig06_stacks = QUICK_FIG06 if quick else tuple(PAIRS)
    fig07_rates = QUICK_FIG07 if quick else FIG07_RATES
    table4_cells = QUICK_TABLE4 if quick else TABLE4_CELLS
    for stack in fig06_stacks:
        cells.append(_cell_row("fig06", stack, "ttcp 8->16MB",
                               *fig06_cell(stack)))
    for stack, rates in fig07_rates.items():
        for rate in rates:
            cells.append(_cell_row("fig07", stack, f"{rate:g}Mbps",
                                   *fig07_cell(stack, rate)))
    for stack in ("physical", "wavnet"):
        for path, conc, n in table4_cells:
            cells.append(_cell_row("table4", stack, f"{path} c={conc}",
                                   *table4_cell(stack, path, conc, n)))
    ev_p = sum(c["events_packet"] for c in cells)
    ev_f = sum(c["events_fluid"] for c in cells)
    return {
        "quick": quick,
        "cells": cells,
        "max_abs_delta_pct": max(abs(c["delta_pct"]) for c in cells),
        "events_packet": ev_p,
        "events_fluid": ev_f,
        "events_ratio": round(ev_p / ev_f, 1),
        "delta_limit_pct": DELTA_LIMIT_PCT,
        "events_ratio_floor": EVENTS_RATIO_FLOOR,
    }


def merge_json(section: str, payload: dict) -> None:
    data = {}
    if OUT_PATH.exists():
        data = json.loads(OUT_PATH.read_text())
    data[section] = payload
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def render(results: dict) -> str:
    lines = ["Fluid vs packet agreement (steady-state throughput)"]
    for c in results["cells"]:
        lines.append(f"  {c['bench']:<7} {c['stack']:<9} {c['cell']:<13} "
                     f"packet {c['packet']:>8.3f}  fluid {c['fluid']:>8.3f}  "
                     f"delta {c['delta_pct']:+6.2f}%  "
                     f"events {c['events_packet']:>8}/{c['events_fluid']:<6}")
    lines.append(f"  max |delta| {results['max_abs_delta_pct']:.2f}% "
                 f"(limit {DELTA_LIMIT_PCT:.0f}%), "
                 f"event ratio {results['events_ratio']}x "
                 f"(floor {EVENTS_RATIO_FLOOR:.0f}x)")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    for c in results["cells"]:
        if abs(c["delta_pct"]) > DELTA_LIMIT_PCT:
            print(f"FAIL {c['bench']} {c['stack']} {c['cell']}: "
                  f"delta {c['delta_pct']:+.2f}% exceeds "
                  f"{DELTA_LIMIT_PCT:.0f}%")
            ok = False
    if results["events_ratio"] < EVENTS_RATIO_FLOOR:
        print(f"FAIL events ratio {results['events_ratio']}x "
              f"< floor {EVENTS_RATIO_FLOOR:.0f}x")
        ok = False
    return ok


def main(argv: list[str]) -> int:
    results = run_all(quick="--quick" in argv)
    merge_json("agreement", results)
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_fluid_agreement(run_once, emit):
    """Benchmark-suite entry point: record cells and enforce the gates."""
    results = run_once(run_all)
    merge_json("agreement", results)
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
