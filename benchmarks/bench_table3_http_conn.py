"""Table III — HTTP connection time before/after VM migration.

An HTTP server runs in a VM at SIAT; clients at Sinica and HKU1 measure
ApacheBench connection times; then the VM live-migrates over WAVNet to
HKU2 and the measurement repeats. Paper rows (ping / conn-time mean):

    Sinica -> VM@SIAT   100.3 ms   mean 107 ms
    Sinica -> VM@HKU2    24.8 ms   mean  33 ms
    HKU1   -> VM@SIAT    74.2 ms   mean  80 ms
    HKU1   -> VM@HKU2     0.5 ms   mean   7 ms

Shape: connection time ~ path RTT + a small constant, and migration to
a nearby host slashes it accordingly.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.ab import ApacheBench
from repro.apps.httpd import HttpServer
from repro.net.addresses import IPv4Address
from repro.scenarios.sites import build_real_wan, pair_rtt_ms
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor

VM_IP = IPv4Address("10.99.1.1")
REQUESTS = 25


def run_experiment():
    sim = Simulator(seed=70)
    wan = build_real_wan(sim, site_names=["hku1", "hku2", "siat", "sinica"],
                         tcp_mss=1460)
    sim.run(until=sim.process(wan.env.start_all()))
    sim.run(until=sim.process(wan.env.connect_full_mesh()))
    vmms = {name: Hypervisor(wh.host, wh.driver.attach_port)
            for name, wh in wan.hosts.items()}
    vm = vmms["siat"].create_vm("webvm", memory_mb=48,
                                dirty_model=HotColdDirtyModel(hot_fraction=0.01))
    vm.configure_network(VM_IP, "10.99.0.0/16")
    HttpServer(vm.guest)
    sim.run(until=sim.timeout(3.0))

    rows = []

    def measure(client_name, location_label):
        # Two warmup requests absorb first-contact effects (virtual-LAN
        # ARP resolution) that ab's own output would also show as a
        # one-off outlier.
        warm = ApacheBench(wan.host(client_name).host, VM_IP, path="/file1k",
                           concurrency=1)
        warm_proc = sim.process(warm.run_requests(2))
        sim.run(until=warm_proc)
        ab = ApacheBench(wan.host(client_name).host, VM_IP, path="/file1k",
                         concurrency=1)
        proc = sim.process(ab.run_requests(REQUESTS))
        sim.run(until=proc)
        mn, mean, mx = proc.value.connect_ms()
        rows.append((f"{client_name} to VM@{location_label}",
                     mn, mean, mx))
        return mean

    before = {c: measure(c, "siat") for c in ("sinica", "hku1")}
    mig = sim.process(vmms["siat"].migrate(vm, vmms["hku2"],
                                           wan.host("hku2").virtual_ip))
    sim.run(until=mig)
    after = {c: measure(c, "hku2") for c in ("sinica", "hku1")}
    return rows, before, after, mig.value


def test_table3_http_conn(run_once, emit):
    rows, before, after, report = run_once(run_experiment)
    emit(render_table(
        "Table III - HTTP connection time before/after VM migration (ms)",
        ["client and VM location", "min", "mean", "max"], rows))
    emit(f"migration: {report.total_time:.1f}s total, "
         f"{report.downtime * 1000:.0f}ms downtime, {report.n_rounds} rounds")
    check = ShapeCheck("Table III")
    for client in ("sinica", "hku1"):
        check.expect(f"{client}: migration cuts connection time",
                     after[client] < before[client] / 2,
                     f"{before[client]:.0f} -> {after[client]:.0f} ms")
        # Connection time tracks the path RTT (one RTT + small constant).
        rtt_before = pair_rtt_ms(client, "siat")
        check.expect(f"{client} before: mean within [RTT, RTT+30ms]",
                     rtt_before <= before[client] <= rtt_before + 30,
                     f"{before[client]:.0f} vs RTT {rtt_before:.0f}")
        rtt_after = pair_rtt_ms(client, "hku2")
        check.expect(f"{client} after: mean within [RTT, RTT+30ms]",
                     rtt_after <= after[client] <= rtt_after + 30,
                     f"{after[client]:.0f} vs RTT {rtt_after:.0f}")
    emit(check.render())
    check.print_and_assert()
