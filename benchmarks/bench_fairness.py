"""Bottleneck fairness across congestion-control algorithms and stacks.

ROADMAP item 2 asks whether L2-over-UDP tunneling distorts TCP fairness
the way overlay routing does. This bench runs the
``fairness_bottleneck`` scenario (``repro/scenarios/fairness.py``) for
every registered congestion-control algorithm (reno / cubic / bbr) over
the WAVNet tunnel and the IPOP baseline, at both fidelities, and gates
on:

* **Fairness** — Jain's index over per-flow goodput >= 0.95 at packet
  fidelity (>= 0.99 at fluid: the max-min solver is fair by
  construction, so this is a wiring check).
* **Agreement** — per-flow packet-vs-fluid goodput within +-10%
  (index-matched flows; the scenario's default buffers hold the packet
  plane in its stable ACK-clocked regime, see the scenario docstring).
* **Utilization** — bottleneck wire utilization >= 0.85 at packet
  fidelity (the link is actually saturated, not fair-but-idle).

Also reported, unfloored: a mixed reno/cubic/bbr race on one
bottleneck, the parking-lot topology (long-flow RTT bias vs max-min),
and the elephants-vs-mice mix (short-flow completion times under bulk
load). These characterize inter-algorithm aggression and queueing
effects the max-min solver deliberately does not model.

Results land in ``BENCH_fairness.json``. Run standalone
(``python benchmarks/bench_fairness.py [--quick] [--check]``) or via
pytest; ``--quick --check`` is the CI fairness-smoke gate.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios.fairness import (fairness_bottleneck,  # noqa: E402
                                      fairness_mix, fairness_parking_lot)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fairness.json"

ALGORITHMS = ("reno", "cubic", "bbr")
STACKS = ("wavnet", "ipop")
JAIN_FLOOR_PACKET = 0.95
JAIN_FLOOR_FLUID = 0.99
AGREEMENT_LIMIT_PCT = 10.0
UTILIZATION_FLOOR = 0.85
SEED = 1


def bottleneck_cell(stack: str, cc: str, duration: float) -> dict:
    """One gated cell: the same contended bottleneck at both fidelities."""
    payloads = {}
    for fidelity in ("packet", "fluid"):
        _sim, payloads[fidelity] = fairness_bottleneck(
            seed=SEED, stack=stack, cc=cc, fidelity=fidelity,
            duration=duration)
    pkt, flu = payloads["packet"], payloads["fluid"]
    devs = [abs(a - b) / b * 100.0
            for a, b in zip(pkt["per_flow_mbps"], flu["per_flow_mbps"])]
    return {
        "stack": stack, "cc": cc,
        "packet_mbps": [round(x, 4) for x in pkt["per_flow_mbps"]],
        "fluid_mbps": [round(x, 4) for x in flu["per_flow_mbps"]],
        "jain_packet": round(pkt["jain"], 4),
        "jain_fluid": round(flu["jain"], 4),
        "max_flow_delta_pct": round(max(devs), 2),
        "utilization_packet": round(pkt["utilization"], 3),
        "rtt_inflation": round(pkt["rtt_inflation"], 2),
    }


def extras(duration: float) -> dict:
    """Unfloored characterization runs (see module docstring)."""
    _sim, mixed = fairness_bottleneck(seed=SEED, stack="wavnet",
                                      cc="reno,cubic,bbr",
                                      fidelity="packet", duration=duration)
    lots = {}
    for fidelity in ("packet", "fluid"):
        _sim, lots[fidelity] = fairness_parking_lot(
            seed=SEED, fidelity=fidelity, duration=duration)
    _sim, mice = fairness_mix(seed=SEED, stack="wavnet",
                              fidelity="packet", duration=duration)
    return {
        "mixed_race": {
            "cc": mixed["cc"],
            "per_flow_mbps": [round(x, 4) for x in mixed["per_flow_mbps"]],
            "jain": round(mixed["jain"], 4),
        },
        "parking_lot": {
            fid: {
                "per_flow_mbps": [round(x, 4) for x in p["per_flow_mbps"]],
                "jain": round(p["jain"], 4),
                "long_vs_maxmin": round(p["long_vs_maxmin"], 3),
            } for fid, p in lots.items()
        },
        "elephants_vs_mice": {
            "elephant_mbps": [round(x, 4) for x in mice["elephant_mbps"]],
            "jain_elephants": round(mice["jain_elephants"], 4),
            "mice_done": mice["mice_done"],
            "mice_fct_ms_mean": round(mice["mice_fct_ms_mean"], 1),
            "mice_fct_ms_p95": round(mice["mice_fct_ms_p95"], 1),
        },
    }


def run_all(quick: bool = False) -> dict:
    duration = 30.0 if quick else 40.0
    cells = [bottleneck_cell(stack, cc, duration)
             for stack in STACKS for cc in ALGORITHMS]
    return {
        "quick": quick,
        "duration": duration,
        "cells": cells,
        "extras": extras(duration),
        "jain_floor_packet": JAIN_FLOOR_PACKET,
        "jain_floor_fluid": JAIN_FLOOR_FLUID,
        "agreement_limit_pct": AGREEMENT_LIMIT_PCT,
        "utilization_floor": UTILIZATION_FLOOR,
    }


def render(results: dict) -> str:
    lines = ["Bottleneck fairness (3 flows, 1 Mbps / 200 ms, per-flow Mbps)"]
    for c in results["cells"]:
        lines.append(
            f"  {c['stack']:<7} {c['cc']:<6} "
            f"jain {c['jain_packet']:.4f}/{c['jain_fluid']:.4f}  "
            f"util {c['utilization_packet']:.3f}  "
            f"rtt x{c['rtt_inflation']:.2f}  "
            f"max flow delta {c['max_flow_delta_pct']:+5.2f}%")
    ex = results["extras"]
    mixed = ex["mixed_race"]
    lines.append(f"  mixed race {'/'.join(mixed['cc'])}: "
                 f"{mixed['per_flow_mbps']} jain {mixed['jain']:.4f}")
    for fid, p in ex["parking_lot"].items():
        lines.append(f"  parking lot [{fid}]: long/maxmin "
                     f"{p['long_vs_maxmin']:.3f} jain {p['jain']:.4f}")
    mice = ex["elephants_vs_mice"]
    lines.append(f"  elephants+mice: jain(E) {mice['jain_elephants']:.4f}, "
                 f"{mice['mice_done']} mice, FCT mean "
                 f"{mice['mice_fct_ms_mean']:.0f} ms "
                 f"p95 {mice['mice_fct_ms_p95']:.0f} ms")
    return "\n".join(lines)


def check(results: dict) -> bool:
    ok = True
    for c in results["cells"]:
        where = f"{c['stack']}/{c['cc']}"
        if c["jain_packet"] < JAIN_FLOOR_PACKET:
            print(f"FAIL {where}: packet Jain {c['jain_packet']:.4f} "
                  f"< {JAIN_FLOOR_PACKET}")
            ok = False
        if c["jain_fluid"] < JAIN_FLOOR_FLUID:
            print(f"FAIL {where}: fluid Jain {c['jain_fluid']:.4f} "
                  f"< {JAIN_FLOOR_FLUID}")
            ok = False
        if c["max_flow_delta_pct"] > AGREEMENT_LIMIT_PCT:
            print(f"FAIL {where}: per-flow fluid-vs-packet delta "
                  f"{c['max_flow_delta_pct']:.2f}% > "
                  f"{AGREEMENT_LIMIT_PCT:.0f}%")
            ok = False
        if c["utilization_packet"] < UTILIZATION_FLOOR:
            print(f"FAIL {where}: utilization "
                  f"{c['utilization_packet']:.3f} < {UTILIZATION_FLOOR}")
            ok = False
    return ok


def main(argv: list[str]) -> int:
    results = run_all(quick="--quick" in argv)
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(render(results))
    if "--check" in argv:
        return 0 if check(results) else 1
    return 0


def test_fairness(run_once, emit):
    """Benchmark-suite entry point: record cells and enforce the gates."""
    results = run_once(run_all)
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    emit(render(results))
    assert check(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
