"""Figure 7 — bandwidth utilization under different network conditions.

Emulated WAN, netperf TCP_STREAM, WAN bandwidth shaped to
6.25/12.5/25/50/100 Mbps. Paper: WAVNet has near-to-native performance
at every rate; IPOP tracks the native rate when the WAN is slow
(congested) but collapses to <20% of native when capacity is large —
its user-level stack, not the wire, is the bottleneck.
"""

from repro.analysis.tables import ShapeCheck, render_series
from repro.apps.netperf import netperf_stream, netserver

from repro.scenarios.stacks import ipop_pair, physical_pair, wavnet_pair

RATES_MBPS = [6.25, 12.5, 25, 50, 100]
RTT = 0.001  # emulated WAN: LAN-latency fabric, bandwidth-shaped only
DURATION = 12.0


def run_netperf(pair):
    sim = pair.sim
    sim.process(netserver(pair.host_b))
    p = sim.process(netperf_stream(pair.host_a, pair.ip_b, duration=DURATION))
    sim.run(until=p)
    return p.value.throughput_mbps


def run_experiment():
    abs_series = {"Physical": [], "WAVNet": [], "IPOP": []}
    for rate in RATES_MBPS:
        bw = rate * 1e6
        abs_series["Physical"].append(run_netperf(physical_pair(RTT, bw, seed=1)))
        abs_series["WAVNet"].append(run_netperf(wavnet_pair(RTT, bw, seed=2)))
        abs_series["IPOP"].append(run_netperf(ipop_pair(RTT, bw, seed=3)))
    rel = {name: [v / p if p else 0.0 for v, p in zip(vals, abs_series["Physical"])]
           for name, vals in abs_series.items()}
    return abs_series, rel


def test_fig07_relative_bw(run_once, emit):
    abs_series, rel = run_once(run_experiment)
    emit(render_series("Figure 7 - absolute throughput (Mbps)",
                       "WAN Mbps", RATES_MBPS, abs_series))
    emit(render_series("Figure 7 - bandwidth utilization relative to physical",
                       "WAN Mbps", RATES_MBPS, rel))
    check = ShapeCheck("Fig 7")
    for i, rate in enumerate(RATES_MBPS):
        check.expect(f"{rate} Mbps: WAVNet near-native (>=80%)",
                     rel["WAVNet"][i] >= 0.80,
                     f"{rel['WAVNet'][i]:.0%}")
    check.expect("IPOP near-native when congested (6.25 Mbps >= 70%)",
                 rel["IPOP"][0] >= 0.70, f"{rel['IPOP'][0]:.0%}")
    check.expect("IPOP < 20% of native on the fastest WAN",
                 rel["IPOP"][-1] < 0.20, f"{rel['IPOP'][-1]:.0%}")
    check.expect("IPOP relative bandwidth trends down with WAN capacity",
                 rel["IPOP"][0] > rel["IPOP"][-1] + 0.30
                 and max(rel["IPOP"][3:]) < min(rel["IPOP"][:2]),
                 str([f"{x:.0%}" for x in rel["IPOP"]]))
    check.expect("WAVNet beats IPOP at 50 and 100 Mbps",
                 rel["WAVNet"][3] > rel["IPOP"][3]
                 and rel["WAVNet"][4] > rel["IPOP"][4])
    emit(check.render())
    check.print_and_assert()
