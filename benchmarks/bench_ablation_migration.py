"""Ablation — iterative pre-copy vs naive stop-and-copy.

The paper leans on Xen's pre-copy algorithm for its sub-second
downtimes (Fig 10). Setting ``max_rounds=0`` turns the engine into a
stop-and-copy migrator (pause, ship everything, resume): total time
shrinks slightly but downtime explodes from sub-second to the full
transfer time — the design reason live migration is "live".
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.net.addresses import IPv4Address
from repro.net.l2 import Bridge, patch
from repro.scenarios.builder import make_lan
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor, bridge_attach
from repro.vm.migration import PreCopyConfig

MEM_MB = 64
BW = 200e6


def migrate(config):
    sim = Simulator(seed=37)
    lan = make_lan(sim, 2, subnet="172.16.0.0/24", name="dc",
                   link_bandwidth_bps=BW, tcp_mss=8192)
    src, dst = lan.hosts
    vmms = []
    for phys in (src, dst):
        bridge = Bridge(sim, name=f"{phys.name}.br0")
        patch(bridge.new_port("uplink"), lan.switch.new_port())
        vmms.append(Hypervisor(phys, bridge_attach(bridge)))
    vm = vmms[0].create_vm("vm", memory_mb=MEM_MB,
                           dirty_model=HotColdDirtyModel(hot_fraction=0.03))
    vm.configure_network("172.16.0.100", "172.16.0.0/24")
    p = sim.process(vmms[0].migrate(vm, vmms[1], IPv4Address("172.16.0.11"),
                                    config=config))
    sim.run(until=p)
    return p.value


def run_experiment():
    precopy = migrate(PreCopyConfig())
    stopcopy = migrate(PreCopyConfig(max_rounds=0))
    return precopy, stopcopy


def test_ablation_migration(run_once, emit):
    precopy, stopcopy = run_once(run_experiment)
    rows = [
        ("iterative pre-copy", precopy.n_rounds, round(precopy.total_time, 2),
         round(precopy.downtime, 3), round(precopy.bytes_transferred / 1e6, 1)),
        ("stop-and-copy", stopcopy.n_rounds, round(stopcopy.total_time, 2),
         round(stopcopy.downtime, 3), round(stopcopy.bytes_transferred / 1e6, 1)),
    ]
    emit(render_table(
        f"Ablation - migration strategy ({MEM_MB} MB VM over {BW / 1e6:.0f} Mbps)",
        ["strategy", "rounds", "total (s)", "downtime (s)", "MB moved"], rows))
    check = ShapeCheck("ablation/migration")
    check.expect("pre-copy downtime is sub-second",
                 precopy.downtime < 1.0, f"{precopy.downtime:.3f}s")
    check.expect("stop-and-copy downtime ~ the whole transfer",
                 stopcopy.downtime > 0.9 * stopcopy.total_time,
                 f"{stopcopy.downtime:.2f} of {stopcopy.total_time:.2f}s")
    check.expect("pre-copy cuts downtime by >= 5x",
                 precopy.downtime * 5 < stopcopy.downtime)
    check.expect("pre-copy pays extra bytes for the dirty rounds",
                 precopy.bytes_transferred > stopcopy.bytes_transferred)
    emit(check.render())
    check.print_and_assert()
