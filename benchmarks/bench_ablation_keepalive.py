"""Ablation — CONNECT_PULSE period vs NAT binding timeout.

The paper picks a 5 s pulse against NAT timeouts of "a couple of
minutes". This ablation sweeps the pulse period against a 60 s NAT
timeout and measures (a) whether an idle tunnel survives 10 minutes and
(b) the keepalive overhead in bytes/second — the trade-off the 2-byte
CONNECT_PULSE header is designed to sit on.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.ping import Pinger
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator

NAT_TIMEOUT = 60.0
PULSES = [2.0, 5.0, 20.0, 45.0, 90.0]
IDLE = 600.0


def run_pulse(pulse_interval):
    sim = Simulator(seed=35)
    env = WavnetEnvironment(sim, default_latency=0.020)
    for name in ("a", "b"):
        # Rendezvous keepalives ride the same socket and would refresh an
        # endpoint-independent NAT mapping on their own; park them beyond
        # the experiment so CONNECT_PULSE is the only refresher.
        env.add_host(name, udp_timeout=NAT_TIMEOUT,
                     pulse_interval=pulse_interval,
                     keepalive_interval=10 * IDLE)
    sim.run(until=sim.process(env.start_all()))
    conn = sim.run(until=sim.process(env.connect_pair("a", "b")))
    t0, sent0 = sim.now, conn.bytes_sent
    sim.run(until=t0 + IDLE)
    overhead = (conn.bytes_sent - sent0) / IDLE
    # Liveness probe after the idle period.
    alive = False
    if conn.usable:
        ping = sim.process(Pinger(env.hosts["a"].host.stack,
                                  env.hosts["b"].virtual_ip,
                                  interval=0.3, timeout=2.0).run(3))
        sim.run(until=ping)
        alive = ping.value.lost == 0
    return conn.usable, alive, overhead


def run_experiment():
    return [(p,) + run_pulse(p) for p in PULSES]


def test_ablation_keepalive(run_once, emit):
    rows = run_once(run_experiment)
    emit(render_table(
        f"Ablation - keepalive period vs NAT timeout ({NAT_TIMEOUT:.0f}s), "
        f"{IDLE:.0f}s idle",
        ["pulse period (s)", "conn usable", "traffic flows", "overhead (B/s)"],
        [(p, u, a, round(o, 2)) for p, u, a, o in rows]))
    check = ShapeCheck("ablation/keepalive")
    by_period = {p: (u, a, o) for p, u, a, o in rows}
    for p in (2.0, 5.0, 20.0, 45.0):
        check.expect(f"pulse {p:.0f}s (< timeout) keeps the tunnel alive",
                     by_period[p][0] and by_period[p][1])
    check.expect("pulse 90s (> timeout) loses the binding",
                 not by_period[90.0][1])
    check.expect("paper's 5s period costs under 1 B/s of payload",
                 by_period[5.0][2] < 1.0, f"{by_period[5.0][2]:.2f}")
    check.expect("overhead shrinks with longer periods",
                 by_period[2.0][2] > by_period[5.0][2] > by_period[45.0][2])
    emit(check.render())
    check.print_and_assert()
