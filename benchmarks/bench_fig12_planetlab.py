"""Figure 12 — network latency reported on PlanetLab (400 hosts).

The paper plots all measured host-pair latencies: (a) the full range up
to 10 s showing a heavy tail of pathological pairs; (b) the sub-second
zoom where the bulk lives. PlanetLab is gone, so we generate a synthetic
matrix with the same structure (see repro.scenarios.planetlab) and
report the distribution the scatter plots convey.
"""

import numpy as np

from repro.analysis.tables import ShapeCheck, render_table
from repro.scenarios.planetlab import planetlab_latency_matrix

N_HOSTS = 400


def run_experiment():
    lm = planetlab_latency_matrix(N_HOSTS, seed=12)
    m = lm.m
    iu = np.triu_indices(N_HOSTS, k=1)
    pairs = m[iu]
    return pairs


def test_fig12_planetlab(run_once, emit):
    pairs = run_once(run_experiment)
    ms = pairs * 1000
    pcts = [1, 5, 25, 50, 75, 90, 99, 99.9]
    rows = [(f"p{p}", round(float(np.percentile(ms, p)), 2)) for p in pcts]
    rows.append(("max", round(float(ms.max()), 1)))
    emit(render_table(
        f"Figure 12 - latency distribution over {len(ms):,} PlanetLab-like "
        "host pairs (ms)", ["percentile", "RTT (ms)"], rows))
    buckets = [(0, 1), (1, 10), (10, 100), (100, 1000), (1000, 10001)]
    hist = [(f"{a}-{b}ms", int(((ms >= a) & (ms < b)).sum())) for a, b in buckets]
    emit(render_table("Figure 12 - pair counts by latency bucket",
                      ["bucket", "pairs"], hist))
    check = ShapeCheck("Fig 12")
    check.expect("~80,000 measured pairs (paper: half of 159,600)",
                 70_000 <= len(ms) <= 90_000, f"{len(ms):,}")
    check.expect("heavy tail reaches seconds (Fig 12a)", ms.max() > 1000,
                 f"max {ms.max():.0f} ms")
    check.expect("bulk is sub-second (Fig 12b)",
                 float(np.percentile(ms, 90)) < 1000)
    check.expect("local pairs exist (< 5 ms)", float(ms.min()) < 5)
    check.expect("median in the WAN range 20-400 ms",
                 20 < float(np.median(ms)) < 400, f"{np.median(ms):.0f}")
    emit(check.render())
    check.print_and_assert()
