"""Figure 13 — average and maximum latency within a virtual cluster.

The locality-sensitive grouping algorithm (§II.D) selects k hosts from
the 400-host PlanetLab matrix for k = 2..75. Paper spot values: for
k = 8/16/32/64 the average latency is 1.3/15.4/26.1/54.1 ms with maxima
1.9/25.4/44.8/67.3 ms — orders of magnitude below the raw distribution
(median ~100 ms, tail to 10 s).
"""

import numpy as np

from repro.analysis.tables import ShapeCheck, render_table
from repro.core.grouping import locality_sensitive_group, random_group
from repro.scenarios.planetlab import planetlab_latency_matrix

KS = [2, 4, 8, 16, 24, 32, 48, 64, 75]
SPOT_KS = [8, 16, 32, 64]
# The paper's grouping step "filters those with at least one unreasonable
# or over-large connection"; 200 ms is the over-large threshold here.
MAX_LATENCY = 0.200


def run_experiment():
    lm = planetlab_latency_matrix(400, seed=12)
    rng = np.random.default_rng(0)
    rows = []
    for k in KS:
        res = locality_sensitive_group(lm, k, max_latency=MAX_LATENCY, fallback=True)
        rand = np.median([random_group(lm, k, rng).average_latency
                          for _ in range(15)])
        rows.append((k, res.average_latency * 1000, res.max_latency * 1000,
                     rand * 1000))
    return rows


def test_fig13_grouping(run_once, emit):
    rows = run_once(run_experiment)
    emit(render_table(
        "Figure 13 - intra-cluster latency for locality-sensitive groups (ms)",
        ["k hosts", "avg latency", "max latency", "random median avg"],
        [(k, round(a, 2), round(mx, 2), round(r, 1)) for k, a, mx, r in rows]))
    check = ShapeCheck("Fig 13")
    by_k = {k: (a, mx, r) for k, a, mx, r in rows}
    for k in SPOT_KS:
        avg, mx, rand = by_k[k]
        check.expect(f"k={k}: avg far below random median",
                     avg < rand / 3, f"{avg:.1f} vs {rand:.0f} ms")
        check.expect(f"k={k}: no over-large connection (filter respected)",
                     mx <= MAX_LATENCY * 1000 * 1.001, f"max {mx:.1f} ms")
    avgs = [a for _k, a, _m, _r in rows]
    check.expect("avg latency grows with k (locality gets scarcer)",
                 all(avgs[i] <= avgs[i + 1] + 2 for i in range(len(avgs) - 1)),
                 str([round(a, 1) for a in avgs]))
    check.expect("small clusters are single-digit ms (paper: 1.3ms at k=8)",
                 by_k[8][0] < 10, f"{by_k[8][0]:.1f}")
    check.expect("k=64 average within the paper's magnitude (20-120 ms)",
                 20 <= by_k[64][0] <= 120, f"{by_k[64][0]:.1f}")
    emit(check.render())
    check.print_and_assert()
