"""Table IV — HTTP throughput before/after VM migration.

Same setup as Table III; ApacheBench measures requests/second for 1K,
8K, and 64K files. Paper rows (req/s):

    client->VM             bw(Mbps)   1K     8K     64K
    Sinica->VM@SIAT        18.05      432.9  215.1  45.7
    Sinica->VM@HKU2        21.69      583.3  332.3  53.9
    HKU1->VM@SIAT          18.6       473.1  288.9  56.9
    HKU1->VM@HKU2          79.15      775.5  461.8  128.2

Shape: throughput rises after migration for every file size, most
dramatically for the HKU1 client whose post-migration path is local.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.ab import ApacheBench
from repro.apps.httpd import HttpServer
from repro.net.addresses import IPv4Address
from repro.scenarios.sites import build_real_wan
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor

VM_IP = IPv4Address("10.99.1.1")
FILES = ("/file1k", "/file8k", "/file64k")
DURATION = 8.0
CONCURRENCY = 8


def run_experiment():
    sim = Simulator(seed=71)
    wan = build_real_wan(sim, site_names=["hku1", "hku2", "siat", "sinica"],
                         tcp_mss=1460)
    sim.run(until=sim.process(wan.env.start_all()))
    sim.run(until=sim.process(wan.env.connect_full_mesh()))
    vmms = {name: Hypervisor(wh.host, wh.driver.attach_port)
            for name, wh in wan.hosts.items()}
    vm = vmms["siat"].create_vm("webvm", memory_mb=48,
                                dirty_model=HotColdDirtyModel(hot_fraction=0.01))
    vm.configure_network(VM_IP, "10.99.0.0/16")
    HttpServer(vm.guest)
    sim.run(until=sim.timeout(3.0))

    def measure(client_name):
        rates = []
        for path in FILES:
            ab = ApacheBench(wan.host(client_name).host, VM_IP, path=path,
                             concurrency=CONCURRENCY)
            proc = sim.process(ab.run_for(DURATION))
            sim.run(until=proc)
            rates.append(proc.value.requests_per_second)
        return rates

    results = {}
    for client in ("sinica", "hku1"):
        results[(client, "siat")] = measure(client)
    mig = sim.process(vmms["siat"].migrate(vm, vmms["hku2"],
                                           wan.host("hku2").virtual_ip))
    sim.run(until=mig)
    for client in ("sinica", "hku1"):
        results[(client, "hku2")] = measure(client)
    return results


def test_table4_http_thp(run_once, emit):
    results = run_once(run_experiment)
    rows = [(f"{c} to VM@{loc}",) + tuple(round(r, 1) for r in rates)
            for (c, loc), rates in results.items()]
    emit(render_table(
        "Table IV - HTTP throughput before/after VM migration (req/s, ab -c 8)",
        ["client and VM location", "1K", "8K", "64K"], rows))
    check = ShapeCheck("Table IV")
    for client in ("sinica", "hku1"):
        before = results[(client, "siat")]
        after = results[(client, "hku2")]
        for i, size in enumerate(("1K", "8K", "64K")):
            check.expect(f"{client} {size}: throughput improves after migration",
                         after[i] > before[i],
                         f"{before[i]:.0f} -> {after[i]:.0f} req/s")
        check.expect(f"{client}: smaller files yield more req/s",
                     after[0] > after[1] > after[2])
    # HKU1 gains the most (its post-migration path is campus-local).
    gain_hku = results[("hku1", "hku2")][2] / results[("hku1", "siat")][2]
    gain_sin = results[("sinica", "hku2")][2] / results[("sinica", "siat")][2]
    check.expect("HKU1's 64K gain exceeds Sinica's", gain_hku > gain_sin,
                 f"{gain_hku:.2f}x vs {gain_sin:.2f}x")
    emit(check.render())
    check.print_and_assert()
