"""Figure 8 — Netperf performance while scaling virtual cluster size.

Emulated WAN, virtual clusters of 8/16/24/32/48/64 hosts, full-mesh
WAVNet connections with the 5-second CONNECT_PULSE keepalive on every
one of them. One node runs netperf to a sample of the other members;
the paper's claim: per-host bandwidth does NOT degrade as the cluster
grows — 63 keepalive pulses per 5 s round to ~200 B/s of overhead.

(The paper measures all peers sequentially; we sample 6 peers per
cluster size to keep the packet-level simulation affordable — the
keepalive load, which is the phenomenon under test, is fully present.)

The per-size runs are a zip sweep (``n_hosts`` locked to its seed) over
the registered ``netperf_cluster`` scenario.
"""

from repro.analysis.tables import ShapeCheck, render_series
from repro.exp import Sweep, SweepRunner, aggregate

CLUSTER_SIZES = [8, 16, 24, 32, 48, 64]
WAN_BW = 100e6
SAMPLE_PEERS = 6
DURATION = 5.0
MSS = 8192  # jumbo abstraction: same for every size; only WAVNet measured


def fig08_sweep() -> Sweep:
    return (Sweep("fig08", "netperf_cluster",
                  base_params={"wan_bandwidth_bps": WAN_BW, "tcp_mss": MSS,
                               "udp_timeout": 30.0,
                               "sample_peers": SAMPLE_PEERS,
                               "duration": DURATION})
            .zip_axes(n_hosts=CLUSTER_SIZES,
                      seed=[50 + n for n in CLUSTER_SIZES]))


def run_experiment():
    result = SweepRunner(fig08_sweep(), force=True).run()
    return (aggregate.column(result, "avg_mbps"),
            aggregate.column(result, "connections"),
            aggregate.column(result, "pulses_during_tests"))


def test_fig08_scalability(run_once, emit):
    avg_rates, conn_counts, pulse_counts = run_once(run_experiment)
    emit(render_series(
        "Figure 8 - netperf per-host bandwidth vs virtual cluster size (WAVNet)",
        "hosts", CLUSTER_SIZES,
        {"avg Mbps": avg_rates, "connections": conn_counts,
         "pulses during tests": pulse_counts}))
    check = ShapeCheck("Fig 8")
    check.expect("full mesh established at every size",
                 all(c == n * (n - 1) // 2
                     for c, n in zip(conn_counts, CLUSTER_SIZES)),
                 f"{conn_counts}")
    baseline = avg_rates[0]
    check.expect("bandwidth at 64 hosts within 10% of 8-host baseline",
                 avg_rates[-1] >= 0.90 * baseline,
                 f"{avg_rates[-1]:.1f} vs {baseline:.1f} Mbps")
    check.expect("no monotone degradation trend",
                 min(avg_rates) >= 0.85 * max(avg_rates),
                 f"min {min(avg_rates):.1f} / max {max(avg_rates):.1f}")
    check.expect("keepalive traffic grows with cluster size",
                 pulse_counts[-1] > pulse_counts[0])
    emit(check.render())
    check.print_and_assert()
