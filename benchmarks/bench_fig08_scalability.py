"""Figure 8 — Netperf performance while scaling virtual cluster size.

Emulated WAN, virtual clusters of 8/16/24/32/48/64 hosts, full-mesh
WAVNet connections with the 5-second CONNECT_PULSE keepalive on every
one of them. One node runs netperf to a sample of the other members;
the paper's claim: per-host bandwidth does NOT degrade as the cluster
grows — 63 keepalive pulses per 5 s round to ~200 B/s of overhead.

(The paper measures all peers sequentially; we sample 6 peers per
cluster size to keep the packet-level simulation affordable — the
keepalive load, which is the phenomenon under test, is fully present.)
"""

from repro.analysis.tables import ShapeCheck, render_series
from repro.apps.netperf import netperf_stream, netserver
from repro.scenarios.emulated import build_emulated_wan
from repro.sim import Simulator

CLUSTER_SIZES = [8, 16, 24, 32, 48, 64]
WAN_BW = 100e6
SAMPLE_PEERS = 6
DURATION = 5.0
MSS = 8192  # jumbo abstraction: same for every size; only WAVNet measured


def run_cluster(n_hosts):
    sim = Simulator(seed=50 + n_hosts)
    env, hosts = build_emulated_wan(sim, n_hosts, wan_bandwidth_bps=WAN_BW,
                                    tcp_mss=MSS, udp_timeout=30.0)
    started = sim.process(env.start_all())
    sim.run(until=started)
    mesh = sim.process(env.connect_full_mesh())
    sim.run(until=mesh)
    # Let keepalives run for several pulse periods before measuring.
    sim.run(until=sim.now + 15.0)
    source = hosts[0]
    rates = []
    pulses_before = sum(c.pulses_received
                        for h in hosts for c in h.driver.connections.values())
    for peer in hosts[1:1 + SAMPLE_PEERS]:
        sim.process(netserver(peer.host))
        p = sim.process(netperf_stream(source.host, peer.virtual_ip,
                                       duration=DURATION))
        sim.run(until=p)
        rates.append(p.value.throughput_mbps)
    pulses_after = sum(c.pulses_received
                       for h in hosts for c in h.driver.connections.values())
    n_conns = sum(len(h.driver.connections) for h in hosts) // 2
    return sum(rates) / len(rates), n_conns, pulses_after - pulses_before


def run_experiment():
    avg_rates, conn_counts, pulse_counts = [], [], []
    for n in CLUSTER_SIZES:
        rate, conns, pulses = run_cluster(n)
        avg_rates.append(rate)
        conn_counts.append(conns)
        pulse_counts.append(pulses)
    return avg_rates, conn_counts, pulse_counts


def test_fig08_scalability(run_once, emit):
    avg_rates, conn_counts, pulse_counts = run_once(run_experiment)
    emit(render_series(
        "Figure 8 - netperf per-host bandwidth vs virtual cluster size (WAVNet)",
        "hosts", CLUSTER_SIZES,
        {"avg Mbps": avg_rates, "connections": conn_counts,
         "pulses during tests": pulse_counts}))
    check = ShapeCheck("Fig 8")
    check.expect("full mesh established at every size",
                 all(c == n * (n - 1) // 2
                     for c, n in zip(conn_counts, CLUSTER_SIZES)),
                 f"{conn_counts}")
    baseline = avg_rates[0]
    check.expect("bandwidth at 64 hosts within 10% of 8-host baseline",
                 avg_rates[-1] >= 0.90 * baseline,
                 f"{avg_rates[-1]:.1f} vs {baseline:.1f} Mbps")
    check.expect("no monotone degradation trend",
                 min(avg_rates) >= 0.85 * max(avg_rates),
                 f"min {min(avg_rates):.1f} / max {max(avg_rates):.1f}")
    check.expect("keepalive traffic grows with cluster size",
                 pulse_counts[-1] > pulse_counts[0])
    emit(check.render())
    check.print_and_assert()
