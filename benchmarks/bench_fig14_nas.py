"""Figure 14 — NAS EP and FT on locality-sensitive vs random clusters.

4 or 8 hosts are picked from 64 pre-selected PlanetLab hosts either by
the locality-sensitive method or at random; NAS-style EP (embarrassingly
parallel) and FT (FFT with all-to-all transposes) run over the selected
hosts. Paper shape: random clusters are slower everywhere, but the gap
is modest for EP and dramatic for FT — FFT "highly relies on the
inter-host communication".

The MPI jobs run over a simulated network whose pairwise RTTs are the
PlanetLab matrix entries (problem classes scaled to keep the simulation
affordable; the locality-vs-random ratio is latency-driven and survives
the scaling).
"""

import numpy as np

from repro.analysis.tables import ShapeCheck, render_table
from repro.apps.mpi import MpiJob, ep_program, ft_program
from repro.core.grouping import locality_sensitive_group, random_group
from repro.net.addresses import IPv4Address
from repro.scenarios.builder import make_public_host
from repro.net.wan import WanCloud
from repro.scenarios.planetlab import planetlab_latency_matrix
from repro.sim import Simulator

EP_SAMPLES = {"A": 2**26, "B": 2**28}
# FT grids scaled down from the NAS classes with iteration counts scaled
# up, keeping the kernel latency-dominated (many all-to-all rounds of
# modest size) as the paper's WAN runs were.
FT_GRIDS = {"A": ((32, 32, 32), 24), "B": ((32, 32, 32), 48)}
BASE_FLOPS = 2e9
ACCESS_BW = 50e6


def build_cluster(member_indices, lm, seed):
    """Hosts on a cloud whose pairwise RTTs follow the PlanetLab matrix."""
    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=0.050)
    hosts, ips = [], []
    for i, idx in enumerate(member_indices):
        name = f"n{i}"
        host = make_public_host(sim, cloud, name, f"8.9.0.{i + 1}",
                                network="8.9.0.0/24", tcp_mss=8192,
                                access_bandwidth_bps=ACCESS_BW)
        hosts.append(host)
        ips.append(IPv4Address(f"8.9.0.{i + 1}"))
    for i, a in enumerate(member_indices):
        for j, b in enumerate(member_indices[i + 1:], start=i + 1):
            cloud.set_rtt(f"n{i}", f"n{j}", float(lm.m[a, b]))
    return sim, hosts, ips


def run_job(member_indices, lm, program, seed):
    sim, hosts, ips = build_cluster(member_indices, lm, seed)
    job = MpiJob(hosts, ips, program, base_flops=BASE_FLOPS)
    p = sim.process(job.run())
    sim.run(until=p)
    return p.value


def run_experiment():
    lm = planetlab_latency_matrix(400, seed=12)
    # "64 hosts pre-selected by our locality-sensitive grouping method".
    pool = list(locality_sensitive_group(lm, 64).members)
    rng = np.random.default_rng(7)
    rows = []
    for n_hosts in (4, 8):
        good = list(locality_sensitive_group(lm, n_hosts).members)
        rand = list(rng.choice(pool, size=n_hosts, replace=False))
        for bench, classes in (("EP", EP_SAMPLES), ("FT", FT_GRIDS)):
            for cls, spec in classes.items():
                if bench == "EP":
                    prog_good = ep_program(spec)
                    prog_rand = ep_program(spec)
                else:
                    grid, iters = spec
                    prog_good = ft_program(grid, iters)
                    prog_rand = ft_program(grid, iters)
                t_rand = run_job(rand, lm, prog_rand, seed=100 + n_hosts)
                t_good = run_job(good, lm, prog_good, seed=200 + n_hosts)
                rows.append((f"{bench}({cls})", n_hosts, t_rand, t_good,
                             t_rand / t_good))
    return rows


def test_fig14_nas(run_once, emit):
    rows = run_once(run_experiment)
    emit(render_table(
        "Figure 14 - NAS benchmarks: random vs locality-sensitive cluster (s)",
        ["case", "hosts", "random", "locality", "speedup"],
        [(c, n, round(r, 1), round(g, 1), f"{s:.2f}x") for c, n, r, g, s in rows]))
    check = ShapeCheck("Fig 14")
    speedups = {}
    for case, n, t_rand, t_good, s in rows:
        speedups[(case, n)] = s
        check.expect(f"{case} x{n}: locality-sensitive no slower",
                     s >= 0.98, f"{s:.2f}x")
    for n in (4, 8):
        ep_gain = max(speedups[("EP(A)", n)], speedups[("EP(B)", n)])
        ft_gain = min(speedups[("FT(A)", n)], speedups[("FT(B)", n)])
        check.expect(f"x{n}: FT benefits far more than EP",
                     ft_gain > 1.5 * ep_gain,
                     f"FT {ft_gain:.2f}x vs EP {ep_gain:.2f}x")
        check.expect(f"x{n}: FT speedup substantial (> 1.5x)",
                     ft_gain > 1.5)
    emit(check.render())
    check.print_and_assert()
