"""Table V — VM live migration time among different sites.

The VM (128 MB and 512 MB variants) migrates from each remote site to
HKU over WAVNet. Paper rows:

    pair          RTT(ms)  bw(Mbps)  128M      512M
    OffCam-HKU    4.4      86.39     16 s      120 s
    Sinica-HKU    24.8     42.93     92.5 s    202.5 s
    AIST-HKU      75.8     55.1      107.5 s   208 s
    SIAT-HKU      74.2     18.6      130 s     377.5 s
    SDSC-HKU      217.2    27.17     310.5 s   1023 s

Shapes to preserve: (1) more memory -> longer, but NOT proportionally
(the pre-copy hot set is resent regardless of size); (2) low-bandwidth
and high-RTT paths migrate slower; (3) ordering of pairs by time roughly
follows the paper (OffCam fastest, SDSC slowest).

We scale memory 4x down (32/128 MB) to keep packet-level simulation
affordable; the inter-pair ratios are bandwidth/RTT-driven and survive
the scaling.
"""

from repro.analysis.tables import ShapeCheck, render_table
from repro.scenarios.sites import SITES, build_real_wan, pair_rtt_ms
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel
from repro.vm.hypervisor import Hypervisor

PAIRS = ["offcam", "sinica", "aist", "siat", "sdsc"]
MEM_SIZES = [32, 128]  # paper's 128/512 scaled /4
DIRTY = dict(hot_fraction=0.04, hot_rate=4000, cold_rate=20)


def migrate_once(src_name, memory_mb):
    sim = Simulator(seed=72)
    # Era-typical (untuned) 256 kB socket buffers: long-RTT paths become
    # window-limited, which is exactly why the paper's SDSC-HKU pair is
    # the slowest despite decent bandwidth.
    wan = build_real_wan(sim, site_names=["hku1", src_name], tcp_mss=8192)
    sim.run(until=sim.process(wan.env.start_all()))
    sim.run(until=sim.process(wan.env.connect_full_mesh()))
    vmm_src = Hypervisor(wan.host(src_name).host,
                         wan.host(src_name).driver.attach_port)
    vmm_dst = Hypervisor(wan.host("hku1").host,
                         wan.host("hku1").driver.attach_port)
    vm = vmm_src.create_vm("vm", memory_mb=memory_mb,
                           dirty_model=HotColdDirtyModel(**DIRTY), tcp_mss=8192)
    vm.configure_network("10.99.1.1", "10.99.0.0/16")
    p = sim.process(vmm_src.migrate(vm, vmm_dst, wan.host("hku1").virtual_ip))
    sim.run(until=p)
    return p.value


def run_experiment():
    results = {}
    for src in PAIRS:
        for mem in MEM_SIZES:
            results[(src, mem)] = migrate_once(src, mem)
    return results


def test_table5_migration_time(run_once, emit):
    results = run_once(run_experiment)
    rows = []
    for src in PAIRS:
        spec = SITES[src]
        r_small = results[(src, MEM_SIZES[0])]
        r_big = results[(src, MEM_SIZES[1])]
        rows.append((f"{src}-hku", pair_rtt_ms(src, "hku1"), spec.access_mbps,
                     round(r_small.total_time, 1), round(r_big.total_time, 1)))
    emit(render_table(
        f"Table V - VM live migration time (s), memory scaled /4 "
        f"({MEM_SIZES[0]}M / {MEM_SIZES[1]}M)",
        ["sites", "RTT(ms)", "bw(Mbps)", f"{MEM_SIZES[0]}M", f"{MEM_SIZES[1]}M"],
        rows))
    check = ShapeCheck("Table V")
    times_small = {src: results[(src, MEM_SIZES[0])].total_time for src in PAIRS}
    times_big = {src: results[(src, MEM_SIZES[1])].total_time for src in PAIRS}
    for src in PAIRS:
        ratio = times_big[src] / times_small[src]
        check.expect(f"{src}: bigger VM takes longer", ratio > 1.5,
                     f"x{ratio:.1f}")
        check.expect(f"{src}: time NOT proportional to memory (< 4x)",
                     ratio < 4.2, f"x{ratio:.1f} for 4x memory")
        big = results[(src, MEM_SIZES[1])]
        check.expect(f"{src}: downtime tiny vs total (WWS bailout works)",
                     big.downtime < max(3.0, 0.05 * big.total_time),
                     f"{big.downtime:.2f}s of {big.total_time:.1f}s")
    check.expect("OffCam-HKU is the fastest pair",
                 times_small["offcam"] == min(times_small.values()))
    check.expect("SDSC-HKU is the slowest pair (512M)",
                 times_big["sdsc"] == max(times_big.values()))
    check.expect("SIAT slower than AIST (bandwidth dominates RTT here)",
                 times_big["siat"] > times_big["aist"],
                 f"{times_big['siat']:.0f} vs {times_big['aist']:.0f}")
    emit(check.render())
    check.print_and_assert()
