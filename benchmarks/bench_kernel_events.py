"""Kernel microbenchmark: raw event-loop throughput on the three hot
patterns every WAVNet experiment leans on.

* ``timer_churn`` — punch/keepalive-style timer rearm: processes sleep on
  timeouts and get interrupted away from them, leaving stale calendar
  entries (the pattern of CONNECT_PULSE rearms and punch-loop teardown).
* ``frame_fanout`` — per-frame delivery: a learning switch floods frames
  to N sinks over unshaped links, the ``call_in``/``_Delivery`` path.
* ``ttcp_transfer`` — a Fig-6-style bulk TCP transfer over a fast link:
  segments, ACKs, and retransmit-timer management end to end.

Each workload is deterministic; the score is logical operations per
wall-clock second (op counts are fixed per workload, so scores are
comparable across kernel versions even when the kernel dispatches a
different number of internal events). Results land in
``BENCH_kernel.json`` at the repo root, next to the recorded baselines.

Run standalone (``python benchmarks/bench_kernel_events.py``) or via
pytest. ``--check`` exits non-zero if any score falls more than 3x below
the recorded post-fast-path baseline — the CI perf-smoke floor.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net.addresses import BROADCAST_MAC, mac_factory  # noqa: E402
from repro.net.l2 import Link, Port, Switch  # noqa: E402
from repro.net.packet import ETHERTYPE_IPV4, EthernetFrame, Payload  # noqa: E402
from repro.sim import Interrupt, Simulator  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

# Ops/sec measured on the pre-fast-path kernel (seed of this PR), same
# workloads, same machine. The >=2x acceptance compares against these.
BASELINE_PRE = {
    "timer_churn": 112_841,
    "frame_fanout": 57_408,
    "ttcp_transfer": 13_954,
}

# Ops/sec measured right after the fast path landed. The CI perf-smoke
# floor is a generous 3x below this (runner hardware varies widely).
BASELINE_POST = {
    "timer_churn": 460_000,
    "frame_fanout": 300_000,
    "ttcp_transfer": 43_000,
}


# ----------------------------------------------------------------------
# Workloads. Each returns (logical_ops, events_dispatched).
# ----------------------------------------------------------------------

def timer_churn(n_procs: int = 300, rounds: int = 120) -> tuple[int, int]:
    sim = Simulator(seed=1)

    def sleeper(sim):
        while True:
            try:
                # Long sleep: the interrupt always lands first, so every
                # round abandons one pending timeout on the calendar.
                yield sim.timeout(1e6)
            except Interrupt:
                continue

    procs = [sim.process(sleeper(sim), name=f"sleeper:{i}")
             for i in range(n_procs)]

    def churner(sim):
        for _ in range(rounds):
            yield sim.timeout(1.0)
            for p in procs:
                p.interrupt()

    sim.process(churner(sim), name="churner")
    sim.run(until=rounds + 1.0)
    # One interrupt delivered + one timeout rearmed per proc per round.
    return 2 * n_procs * rounds, sim.events_dispatched


class _Sink:
    __slots__ = ("frames",)

    def __init__(self) -> None:
        self.frames = 0

    def on_frame(self, frame, port) -> None:
        self.frames += 1


def frame_fanout(n_sinks: int = 16, rounds: int = 400,
                 per_round: int = 4) -> tuple[int, int]:
    sim = Simulator(seed=2)
    switch = Switch(sim, forward_delay=5e-6)
    mint = mac_factory()
    sinks = []
    for i in range(n_sinks):
        sink = _Sink()
        port = Port(sink, name=f"sink{i}")
        Link(sim, switch.new_port(), port, latency=0.0001,
             bandwidth_bps=None, name=f"fan{i}")
        sinks.append(sink)
    src = Port(_Sink(), name="src")
    Link(sim, src, switch.new_port(), latency=0.0001,
         bandwidth_bps=None, name="uplink")
    frame = EthernetFrame(mint(), BROADCAST_MAC, ETHERTYPE_IPV4,
                          Payload(256, data=None))

    def blaster(sim):
        for _ in range(rounds):
            for _ in range(per_round):
                src.transmit(frame)
            yield sim.timeout(0.001)

    sim.process(blaster(sim), name="blaster")
    sim.run()
    delivered = sum(s.frames for s in sinks)
    assert delivered == rounds * per_round * n_sinks, delivered
    return delivered, sim.events_dispatched


def ttcp_transfer(total_mb: int = 8) -> tuple[int, int]:
    from repro.apps.ttcp import ttcp_receiver, ttcp_transfer as ttcp_tx
    from repro.scenarios.builder import host_pair

    sim = Simulator(seed=3)
    a, b, _link = host_pair(sim, latency=0.002, bandwidth_bps=1e9)
    sim.process(ttcp_receiver(b), name="ttcp-rx")
    p = sim.process(
        ttcp_tx(a, b.stack.interfaces[0].ip, total_mb * 1024 * 1024),
        name="ttcp-tx")
    sim.run(until=p)
    segments = a.tcp.segments_sent + b.tcp.segments_sent
    return segments, sim.events_dispatched


WORKLOADS = {
    "timer_churn": timer_churn,
    "frame_fanout": frame_fanout,
    "ttcp_transfer": ttcp_transfer,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_all(repeats: int = 3) -> dict:
    results = {}
    for name, fn in WORKLOADS.items():
        best = None
        ops = events = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            ops, events = fn()
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        score = ops / best if best else 0.0
        results[name] = {
            "ops": ops,
            "events_dispatched": events,
            "wall_s": round(best, 4),
            "ops_per_s": round(score),
            "baseline_pre_ops_per_s": BASELINE_PRE[name],
            "baseline_post_ops_per_s": BASELINE_POST[name],
            "speedup_vs_pre": round(score / BASELINE_PRE[name], 2),
        }
    return results


def write_json(results: dict) -> None:
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def check_floor(results: dict) -> bool:
    ok = True
    for name, row in results.items():
        floor = BASELINE_POST[name] / 3
        if row["ops_per_s"] < floor:
            print(f"FAIL {name}: {row['ops_per_s']:.0f} ops/s "
                  f"< floor {floor:.0f} (baseline {BASELINE_POST[name]})")
            ok = False
        else:
            print(f"ok   {name}: {row['ops_per_s']:.0f} ops/s "
                  f"(floor {floor:.0f}, {row['speedup_vs_pre']}x vs pre)")
    return ok


def main(argv: list[str]) -> int:
    results = run_all()
    write_json(results)
    print(json.dumps(results, indent=2))
    if "--check" in argv:
        return 0 if check_floor(results) else 1
    return 0


def test_kernel_microbench(run_once, emit):
    """Benchmark-suite entry point: record scores and enforce the floor."""
    results = run_once(run_all, 1)
    write_json(results)
    lines = ["Kernel event-loop microbenchmark (ops/sec)"]
    for name, row in results.items():
        lines.append(f"  {name:<14} {row['ops_per_s']:>12,} ops/s  "
                     f"wall {row['wall_s']:.3f}s  "
                     f"{row['speedup_vs_pre']}x vs pre-fast-path")
    emit("\n".join(lines))
    assert check_floor(results)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
