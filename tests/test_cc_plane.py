"""Congestion-control strategy plane (repro/net/cc.py).

Two layers of protection:

* **Extraction purity** — hardcoded goldens captured on the build
  *before* Reno/Cubic moved out of ``TcpConnection``: with the default
  algorithm the refactored transport must reproduce the exact event
  counts, clocks, and throughputs of the inlined implementation.
* **Strategy behavior** — registry errors, per-connection/layer/app cc
  threading, Cubic's w_max convergence and TCP-friendliness floor,
  BBR's no-loss-collapse property, and the fluid plane's per-algorithm
  ``rate_cap`` curves.
"""

import math

import pytest

from repro.core.options import TransferOptions
from repro.net.addresses import IPv4Address, mac_factory
from repro.net.cc import (BbrCC, CubicCC, RenoCC, cc_class, cc_names,
                          mathis_rate_bps, slow_start_rounds)
from repro.net.tcp import drain_bytes, stream_bytes
from repro.scenarios.builder import host_pair
from repro.sim import Simulator


def _run_transfer(sim, a, b, nbytes, cc=None, port=5001):
    """Stream ``nbytes`` a->b, run until drained; returns result dict."""
    lst = b.tcp.listen(port)
    res = {}

    def srv(sim):
        conn = yield lst.accept()
        res["got"] = yield from drain_bytes(conn)
        res["t_done"] = sim.now

    def cli(sim):
        conn = a.tcp.connect(IPv4Address("10.0.0.2"), port, cc=cc)
        res["conn"] = conn
        yield conn.wait_established()
        yield from stream_bytes(conn, nbytes)
        conn.close()

    p = sim.process(srv(sim))
    sim.process(cli(sim))
    sim.run(until=p)
    return res


class TestExtractionGoldens:
    """Pre-refactor goldens: the strategy extraction is event-identical."""

    def test_wavnet_ttcp_golden(self):
        from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
        from repro.scenarios.stacks import wavnet_pair

        pair = wavnet_pair(0.0742, 18.6e6, seed=2,
                           send_buf=327680, recv_buf=327680)
        sim = pair.sim
        sim.process(ttcp_receiver(pair.host_b))
        tx = sim.process(ttcp_transfer(pair.host_a, pair.ip_b,
                                       2 * 1024 * 1024, buf_size=16384))
        sim.run(until=tx)
        assert sim.events_dispatched == 70223
        assert sim.now == 8.321956171784915
        assert tx.value.rate_kbps == 1439.4374177960692

    def test_phys_netperf_golden(self):
        from repro.apps.netperf import netperf_stream, netserver
        from repro.scenarios.stacks import physical_pair

        pair = physical_pair(0.020, 50e6, seed=5)
        sim = pair.sim
        sim.process(netserver(pair.host_b))
        p = sim.process(netperf_stream(pair.host_a, pair.ip_b, duration=3.0))
        sim.run(until=p)
        assert sim.events_dispatched == 141662
        assert sim.now == 3.04008192
        assert p.value.throughput_mbps == 46.47562666666667

    def test_ipop_ttcp_golden(self):
        from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
        from repro.scenarios.stacks import ipop_pair

        pair = ipop_pair(0.0742, 18.6e6, seed=3,
                         send_buf=327680, recv_buf=327680)
        sim = pair.sim
        sim.process(ttcp_receiver(pair.host_b))
        tx = sim.process(ttcp_transfer(pair.host_a, pair.ip_b, 1024 * 1024,
                                       buf_size=16384))
        sim.run(until=tx)
        assert sim.events_dispatched == 61042
        assert sim.now == 1.8996153161233158
        assert tx.value.rate_kbps == 836.3972337686617

    def test_wavnet_ab_golden(self):
        from repro.apps.ab import ApacheBench
        from repro.apps.httpd import HttpServer
        from repro.scenarios.stacks import wavnet_pair

        pair = wavnet_pair(0.030, 20e6, seed=7)
        sim = pair.sim
        HttpServer(pair.host_b)
        ab = ApacheBench(pair.host_a, pair.ip_b, path="/file8k",
                         concurrency=4)
        p = sim.process(ab.run_requests(60))
        sim.run(until=p)
        assert sim.events_dispatched == 31849
        assert sim.now == 8.27973915199994
        assert p.value.requests_per_second == 40.59708595921439
        assert p.value.connect_ms() == (30.376319999998458,
                                        32.303527619047564,
                                        60.79824000000045)

    def test_lossy_cubic_golden(self):
        """2% random loss: fast recovery, RTO, and cubic growth all hit."""
        sim = Simulator(seed=7)
        a, b, _ = host_pair(sim, latency=0.005, bandwidth_bps=20e6,
                            loss=0.02, queue_capacity=64)
        lst = b.tcp.listen(5001)
        res = {}

        def srv(sim):
            conn = yield lst.accept()
            res["got"] = yield from drain_bytes(conn)

        def cli(sim):
            conn = a.tcp.connect(IPv4Address("10.0.0.2"), 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 2_000_000)
            conn.close()
            res["rtx"] = conn.retransmits
            res["cwnd"] = conn.cwnd
            res["ssthresh"] = conn.ssthresh

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=300)
        assert sim.events_dispatched == 22456
        assert sim.now == 300.0
        assert res["got"] == 2_000_000
        assert res["rtx"] == 369
        assert res["cwnd"] == 16774
        assert res["ssthresh"] == 12394

    def test_wavnet_fluid_ttcp_golden(self):
        from repro.apps.ttcp import ttcp_transfer
        from repro.scenarios.fluid import fluidify
        from repro.scenarios.stacks import wavnet_pair

        pair = wavnet_pair(0.0742, 18.6e6, seed=2,
                           send_buf=327680, recv_buf=327680)
        sim = pair.sim
        fluidify(pair)
        tx = sim.process(ttcp_transfer(pair.host_a, pair.ip_b,
                                       2 * 1024 * 1024,
                                       options=TransferOptions(
                                           fidelity="fluid")))
        sim.run(until=tx)
        assert sim.events_dispatched == 724
        assert sim.now == 8.074181891091174
        assert tx.value.rate_kbps == 1591.3560850714712

    def test_fluid_ab_golden(self):
        from repro.apps.ab import ApacheBench
        from repro.scenarios.fluid import fluidify
        from repro.scenarios.stacks import physical_pair

        pair = physical_pair(0.030, 20e6, seed=7)
        sim = pair.sim
        fluidify(pair)
        ab = ApacheBench(pair.host_a, pair.ip_b, path="/file8k",
                         concurrency=4,
                         options=TransferOptions(fidelity="fluid"))
        p = sim.process(ab.run_requests(60))
        sim.run(until=p)
        assert sim.events_dispatched == 484
        assert sim.now == 1.5472288515068493
        assert p.value.requests_per_second == 40.7179583929321


class TestRegistry:
    def test_known_names(self):
        assert {"reno", "cubic", "bbr"} <= set(cc_names())
        assert cc_class("reno") is RenoCC
        assert cc_class("cubic") is CubicCC
        assert cc_class("bbr") is BbrCC

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError) as err:
            cc_class("vegas")
        msg = str(err.value)
        assert "vegas" in msg
        for name in cc_names():
            assert name in msg

    def test_connection_rejects_unknown_cc(self):
        sim = Simulator(seed=1)
        a, _b, _ = host_pair(sim)
        with pytest.raises(ValueError, match="registered:"):
            a.tcp.connect(IPv4Address("10.0.0.2"), 80, cc="vegas")


class TestCcThreading:
    """The cc= knob reaches the connection at every layer."""

    def test_layer_default_is_cubic(self):
        sim = Simulator(seed=1)
        a, b, _ = host_pair(sim)
        res = _run_transfer(sim, a, b, 10_000)
        assert isinstance(res["conn"].cc_algo, CubicCC)
        assert res["conn"].cc == "cubic"
        assert res["got"] == 10_000

    def test_connect_override_and_layer_default(self):
        sim = Simulator(seed=1)
        a, b, _ = host_pair(sim)
        a.tcp.cc = "reno"  # layer default
        res = _run_transfer(sim, a, b, 10_000)
        assert isinstance(res["conn"].cc_algo, RenoCC)
        res = _run_transfer(sim, a, b, 10_000, cc="bbr", port=5002)
        assert isinstance(res["conn"].cc_algo, BbrCC)

    def test_host_tcp_cc_kwarg(self):
        from repro.net.stack import Host

        sim = Simulator(seed=1)
        host = Host(sim, "h", mac_factory(), tcp_cc="reno")
        assert host.tcp.cc == "reno"

    def test_passive_open_uses_layer_cc(self):
        sim = Simulator(seed=1)
        a, b, _ = host_pair(sim)
        b.tcp.cc = "reno"
        lst = b.tcp.listen(5001)
        got = {}

        def srv(sim):
            conn = yield lst.accept()
            got["conn"] = conn
            yield from drain_bytes(conn)

        def cli(sim):
            conn = a.tcp.connect(IPv4Address("10.0.0.2"), 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 5_000)
            conn.close()

        p = sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=p)
        assert isinstance(got["conn"].cc_algo, RenoCC)

    def test_ttcp_and_netperf_cc_knob(self):
        from repro.apps.netperf import netperf_stream, netserver
        from repro.apps.ttcp import ttcp_receiver, ttcp_transfer

        sim = Simulator(seed=2)
        a, b, _ = host_pair(sim)
        sim.process(ttcp_receiver(b))
        tx = sim.process(ttcp_transfer(a, IPv4Address("10.0.0.2"), 100_000,
                                       options=TransferOptions(cc="reno")))
        sim.run(until=tx)
        assert tx.value.rate_kbps > 0
        sim.process(netserver(b))
        p = sim.process(netperf_stream(a, IPv4Address("10.0.0.2"),
                                       duration=1.0,
                                       options=TransferOptions(cc="bbr")))
        sim.run(until=p)
        assert p.value.throughput_mbps > 0

    def test_fluid_open_rejects_unknown_cc(self):
        from repro.net.fluid import FluidLink, FluidNetwork, FluidPath

        sim = Simulator(seed=1)
        net = FluidNetwork(sim)
        link = FluidLink("l", capacity_bps=1e6)
        path = FluidPath(links=((link, 1.0),), rtt=0.01)
        with pytest.raises(ValueError, match="registered:"):
            net.open(path=path, size_bytes=1000, cc="vegas")

    def test_cc_trace_series(self):
        from repro.apps.netperf import netperf_stream, netserver

        sim = Simulator(seed=3)
        a, b, _ = host_pair(sim)
        sim.process(netserver(b))
        p = sim.process(netperf_stream(a, IPv4Address("10.0.0.2"),
                                       duration=1.0,
                                       options=TransferOptions(
                                           cc_trace="probe")))
        sim.run(until=p)
        name = a.stack.name
        cwnd = sim.metrics.series(f"{name}.tcp.probe.cwnd").values
        ssthresh = sim.metrics.series(f"{name}.tcp.probe.ssthresh").values
        srtt = sim.metrics.series(f"{name}.tcp.probe.srtt_ms").values
        assert cwnd.size > 10 and cwnd.size == ssthresh.size == srtt.size
        assert cwnd.min() > 0
        assert srtt.max() > 0


class _FakeConn:
    """Minimal transport stand-in for strategy unit tests."""

    class _Sim:
        def __init__(self):
            self.now = 0.0

    def __init__(self, mss=1460):
        self.mss = mss
        self.sim = self._Sim()
        self.bytes_acked_total = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self._min_rtt = 0.05
        self._last_rtt_sample = 0.05
        self.srtt = 0.05


class TestCubicPaths:
    def test_wmax_convergence_after_loss(self):
        """RFC 8312 shape: after a loss at flight W the window drops to
        beta*W, recovers to w_max around t=K (concave region), then
        accelerates past it (convex probing region)."""
        rtt = 0.2
        conn = _FakeConn()
        conn._min_rtt = conn._last_rtt_sample = conn.srtt = rtt
        cc = CubicCC(conn)
        mss = conn.mss
        wmax_seg = 100
        cc.cwnd = wmax_seg * mss
        cc.ssthresh = mss  # force congestion avoidance
        cc.on_dup_ack(wmax_seg * mss)   # loss at flight = w_max
        cc.on_loss_exit()
        assert cc._wmax == pytest.approx(wmax_seg)
        assert cc.cwnd == int(wmax_seg * mss * CubicCC.BETA)
        k = (wmax_seg * (1 - CubicCC.BETA) / CubicCC.C) ** (1 / 3)
        # Drive ACK-clocked growth: one window of ACKs per RTT.
        trajectory = {}
        prev = cc.cwnd
        for step in range(int(2 * k / rtt) + 3):
            conn.sim.now = step * rtt
            for _ in range(cc.cwnd // mss):
                cc.on_ack(mss, cc.cwnd)
            assert cc.cwnd >= prev  # monotone recovery, no re-collapse
            prev = cc.cwnd
            trajectory[conn.sim.now] = cc.cwnd / mss
        # The window re-crosses w_max in the neighborhood of t = K (the
        # TCP-friendliness floor can pull it a little earlier, never
        # later).
        t_cross = min(t for t, w in trajectory.items() if w >= wmax_seg)
        assert 0.4 * k <= t_cross <= 1.2 * k
        # Past K the convex region probes well beyond w_max.
        assert trajectory[max(trajectory)] > wmax_seg * 1.1

    def test_tcp_friendliness_floor(self):
        """Where the cubic curve is flat (t == K, target == cwnd), growth
        must not stall: the Reno floor adds ~mss^2/cwnd per ACK."""
        conn = _FakeConn()
        cc = CubicCC(conn)
        mss = conn.mss
        cc.cwnd = 100 * mss
        cc.ssthresh = mss
        cc._wmax = 100.0
        cc._epoch = 0.0
        k = (100 * (1 - CubicCC.BETA) / CubicCC.C) ** (1 / 3)
        conn.sim.now = k  # exactly at the plateau: target == w_max == cur
        before = cc.cwnd
        cc.on_ack(mss, cc.cwnd)
        assert cc.cwnd - before == max(mss * mss // before, 1)

    def test_rate_cap_floors_at_mathis(self):
        """High loss: the RFC 8312 response dips below Reno; the
        friendliness floor keeps the fluid cap at Mathis. Low loss and
        long RTT: cubic's cap exceeds Reno's (the regime CUBIC was
        designed for)."""
        rtt = 0.1
        for loss in (1e-5, 1e-4, 1e-3, 1e-2):
            assert CubicCC.rate_cap(1460, rtt, loss) >= \
                mathis_rate_bps(1460, rtt, loss)
        assert CubicCC.rate_cap(1460, 0.2, 1e-6) > \
            mathis_rate_bps(1460, 0.2, 1e-6)
        assert CubicCC.rate_cap(1460, 0.1, 0.0) == math.inf


class TestBbrBehavior:
    def test_no_loss_collapse_hooks(self):
        """dup-ACK and recovery exit leave the BBR window model-based."""
        conn = _FakeConn()
        cc = BbrCC(conn)
        cc.mode = "probe_bw"
        cc.btl_bw = 1e6 / 8
        cc.cwnd = 80_000
        before = cc.cwnd
        cc.on_dup_ack(before)
        assert cc.cwnd == before          # no multiplicative decrease
        assert cc.ssthresh == before      # recovery exit becomes a no-op
        cc.on_loss_exit()
        assert cc.cwnd == int(max(cc.CWND_GAIN * cc._bdp_bytes(),
                                  cc.MIN_CWND_SEGMENTS * conn.mss))
        cc.on_rto(before)
        assert cc.cwnd == cc.MIN_CWND_SEGMENTS * conn.mss  # restart ...
        assert cc.btl_bw == 1e6 / 8       # ... but the filter survives

    def test_rate_cap_is_unbounded(self):
        assert BbrCC.rate_cap(1460, 0.1, 0.02) == math.inf

    def test_bbr_beats_reno_under_random_loss(self):
        """The headline property: on a 2%-loss path BBR sustains the
        bandwidth-probed rate while Reno is Mathis-capped well below."""
        done = {}
        for cc in ("reno", "bbr"):
            sim = Simulator(seed=11)
            a, b, _ = host_pair(sim, latency=0.010, bandwidth_bps=20e6,
                                loss=0.02, queue_capacity=64)
            res = _run_transfer(sim, a, b, 1_000_000, cc=cc)
            assert res["got"] == 1_000_000
            done[cc] = res["t_done"]
        assert done["bbr"] < done["reno"] / 2.0


class TestSlowStartRounds:
    def test_matches_hand_rolled_loop(self):
        mss = 1460
        for size, per_rtt in ((1000, 1e9), (8 * 1024, 1e9), (64 * 1024, 1e9),
                              (64 * 1024, 8 * mss), (10 ** 6, 32 * mss)):
            rounds, sent = slow_start_rounds(size, mss, per_rtt)
            # Reference: the loop ab.py used to inline.
            s, cwnd, r = 0, 3 * mss, 1
            while s + cwnd < size and cwnd < per_rtt:
                s += cwnd
                cwnd *= 2
                r += 1
            assert (rounds, sent) == (r, s)

    def test_initial_window_fits_in_one_round(self):
        rounds, sent = slow_start_rounds(3 * 1460, 1460, 1e9)
        assert rounds == 1 and sent == 0
