"""Resilience tests: peer death and reconnection, host re-registration,
rendezvous unavailability, and connection re-establishment — the
"resources may join and leave" dynamics of §II."""


from repro.apps.ping import Pinger
from repro.core.connection import ConnectionState
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator


def build(n=3, seed=66, **kwargs):
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim)
    for i in range(n):
        env.add_host(f"h{i}", **kwargs)
    env.up()
    return sim, env


class TestReconnect:
    def test_reconnect_after_peer_silence(self):
        """A dead connection is detected, torn down, and a fresh connect
        succeeds once the peer is back."""
        sim, env = build(2)
        env.connect("h0", "h1")
        conn1 = env.hosts["h0"].driver.connections["h1"]
        # h1's driver crashes: all of its processes stop and the socket
        # closes (ordered so no process touches the dead socket).
        h1 = env.hosts["h1"].driver
        h1.stop()
        h1.sock.close()
        sim.run(until=sim.now + 90)
        assert conn1.state is ConnectionState.DEAD
        # h1 comes back: rebind the socket and re-register.
        env.hosts["h1"].driver.sock = env.hosts["h1"].host.udp.bind(8777)
        env.hosts["h1"].driver.rpc.sock = env.hosts["h1"].driver.sock
        env.hosts["h1"].driver.tap.up = True
        env.hosts["h1"].driver._rx_proc = sim.process(
            env.hosts["h1"].driver._rx_loop(), name="wav-rx:h1-restarted")
        sim.run_coro(env.hosts["h1"].driver.start())
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        assert p.value.usable

    def test_connections_are_independent(self):
        """h1 dying must not disturb the h0<->h2 tunnel."""
        sim, env = build(3)
        env.connect()
        env.hosts["h1"].driver.stop()
        sim.run(until=sim.now + 90)
        ping = sim.process(Pinger(env.hosts["h0"].host.stack,
                                  env.hosts["h2"].virtual_ip,
                                  interval=0.3).run(3))
        sim.run(until=ping)
        assert ping.value.lost == 0

    def test_switch_forgets_dead_peer_macs(self):
        sim, env = build(2)
        env.connect("h0", "h1")
        ping = sim.process(Pinger(env.hosts["h0"].host.stack,
                                  env.hosts["h1"].virtual_ip).run(2))
        sim.run(until=ping)
        sw = env.hosts["h0"].driver.switch
        assert sw.mac_table  # learned h1's wav0
        env.hosts["h1"].driver.stop()
        sim.run(until=sim.now + 90)
        assert not sw.mac_table


class TestRegistrationLifecycle:
    def test_host_expires_without_keepalive(self):
        sim, env = build(1, keepalive_interval=10_000)
        rvz = env.rendezvous[0]
        assert "h0" in rvz.hosts
        sim.run(until=sim.now + rvz.host_ttl + 10)
        assert rvz.expire_hosts() == ["h0"]
        assert "h0" not in rvz.hosts

    def test_host_stays_registered_with_keepalive(self):
        sim, env = build(1, keepalive_interval=15.0)
        rvz = env.rendezvous[0]
        sim.run(until=sim.now + rvz.host_ttl + 30)
        assert rvz.expire_hosts() == []
        assert "h0" in rvz.hosts

    def test_record_refresh_keeps_resources_discoverable(self):
        sim, env = build(2, keepalive_interval=15.0)
        sim.run(until=sim.now + 300)  # >> record TTL (120s)
        driver = env.hosts["h0"].driver

        def query(sim):
            return (yield from driver.query_resources(limit=8))

        p = sim.process(query(sim))
        sim.run(until=p)
        assert any(r.host_name == "h1" for r in p.value)

    def test_stale_record_vanishes_after_host_stops(self):
        sim, env = build(2, keepalive_interval=15.0)
        env.hosts["h1"].driver.stop()
        if env.hosts["h1"].driver._keepalive_proc is not None:
            pass  # stop() already interrupted it
        sim.run(until=sim.now + 300)
        driver = env.hosts["h0"].driver

        def query(sim):
            return (yield from driver.query_resources(limit=8))

        p = sim.process(query(sim))
        sim.run(until=p)
        assert all(r.host_name != "h1" for r in p.value)
