"""Tests for VMs, dirty models, and pre-copy live migration — including
the paper's headline property: seamless migration over WAVNet with
surviving TCP sessions (§II.C / Fig 5)."""

import pytest

from repro.net.addresses import IPv4Address
from repro.net.icmp import Pinger
from repro.net.l2 import Bridge, patch
from repro.net.tcp import drain_bytes, stream_bytes
from repro.scenarios.builder import make_lan
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel, IdleDirtyModel, UniformDirtyModel
from repro.vm.hypervisor import Hypervisor, bridge_attach


class TestDirtyModels:
    def test_uniform_saturates_at_total(self):
        m = UniformDirtyModel(rate_pages_per_s=1e9)
        assert m.unique_dirty_pages(10.0, 1000) == 1000

    def test_uniform_zero_duration(self):
        m = UniformDirtyModel(1000)
        assert m.unique_dirty_pages(0.0, 1000) == 0

    def test_uniform_monotonic_in_duration(self):
        m = UniformDirtyModel(500)
        values = [m.unique_dirty_pages(t, 100_000) for t in (0.1, 1.0, 10.0, 100.0)]
        assert values == sorted(values)

    def test_uniform_linear_regime(self):
        # Far from saturation, unique ≈ rate * T.
        m = UniformDirtyModel(100)
        assert m.unique_dirty_pages(1.0, 10_000_000) == pytest.approx(100, abs=2)

    def test_hotcold_hot_set_dominates_short_rounds(self):
        m = HotColdDirtyModel(hot_fraction=0.05, hot_rate=10_000, cold_rate=0)
        total = 65536  # 256 MB of pages
        hot = int(total * 0.05)
        dirtied = m.unique_dirty_pages(5.0, total)
        assert dirtied == pytest.approx(hot, rel=0.05)

    def test_hotcold_independent_of_total_for_fixed_hot_pages(self):
        """Same WWS behaviour: more memory does not mean proportionally
        more re-sent pages (Table V's non-proportionality)."""
        m = HotColdDirtyModel(hot_fraction=0.05, hot_rate=5000, cold_rate=10)
        d_small = m.unique_dirty_pages(2.0, 32768)   # 128 MB
        d_big = m.unique_dirty_pages(2.0, 131072)    # 512 MB
        assert d_big < 4 * d_small

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDirtyModel(-1)
        with pytest.raises(ValueError):
            HotColdDirtyModel(hot_fraction=1.5)


def build_lan_with_vmms(sim, latency=0.0005, bandwidth=1e9, mss=8192):
    """Two physical hosts on a LAN, each with a bridge + hypervisor."""
    lan = make_lan(sim, 3, subnet="172.16.0.0/24", name="dc",
                   link_latency=latency, link_bandwidth_bps=bandwidth,
                   tcp_mss=mss)
    h_src, h_dst, h_obs = lan.hosts
    vmms = []
    for phys in (h_src, h_dst):
        bridge = Bridge(sim, name=f"{phys.name}.br0")
        # Bridge uplink joins the LAN switch so VMs reach the LAN.
        patch(bridge.new_port("uplink"), lan.switch.new_port())
        vmms.append(Hypervisor(phys, bridge_attach(bridge)))
    return lan, vmms[0], vmms[1], h_obs


class TestLanMigration:
    def test_vm_serves_traffic_from_bridge(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, observer = build_lan_with_vmms(sim)
        vm = vmm_a.create_vm("vm1", memory_mb=64)
        vm.configure_network("172.16.0.100", "172.16.0.0/24")
        proc = sim.process(Pinger(observer.stack, IPv4Address("172.16.0.100")).run(2))
        sim.run(until=proc)
        assert proc.value.lost == 0

    def test_idle_vm_migrates_in_one_round(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, _obs = build_lan_with_vmms(sim)
        vm = vmm_a.create_vm("vm1", memory_mb=64, dirty_model=IdleDirtyModel())
        vm.configure_network("172.16.0.100", "172.16.0.0/24")
        p = sim.process(vmm_a.migrate(vm, vmm_b, IPv4Address("172.16.0.11")))
        sim.run(until=p)
        report = p.value
        assert report.n_rounds == 1
        assert report.converged
        assert vm.current_host is vmm_b
        assert "vm1" not in vmm_a.vms and "vm1" in vmm_b.vms

    def test_migration_time_scales_with_memory(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, _obs = build_lan_with_vmms(sim)
        times = {}
        for mb in (64, 128):
            vm = vmm_a.create_vm(f"vm{mb}", memory_mb=mb, dirty_model=IdleDirtyModel())
            vm.configure_network(f"172.16.0.{100 + mb % 90}", "172.16.0.0/24")
            p = sim.process(vmm_a.migrate(vm, vmm_b, IPv4Address("172.16.0.11")))
            sim.run(until=p)
            times[mb] = p.value.total_time
        assert times[128] == pytest.approx(2 * times[64], rel=0.25)

    def test_dirty_vm_needs_multiple_rounds(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, _obs = build_lan_with_vmms(sim, bandwidth=200e6)
        vm = vmm_a.create_vm("busy", memory_mb=128,
                             dirty_model=UniformDirtyModel(rate_pages_per_s=4000))
        vm.configure_network("172.16.0.100", "172.16.0.0/24")
        p = sim.process(vmm_a.migrate(vm, vmm_b, IPv4Address("172.16.0.11")))
        sim.run(until=p)
        report = p.value
        assert report.n_rounds >= 2
        assert report.bytes_transferred > vm.memory_bytes()

    def test_downtime_much_smaller_than_total(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, _obs = build_lan_with_vmms(sim)
        vm = vmm_a.create_vm("vm1", memory_mb=128,
                             dirty_model=HotColdDirtyModel(hot_fraction=0.02))
        vm.configure_network("172.16.0.100", "172.16.0.0/24")
        p = sim.process(vmm_a.migrate(vm, vmm_b, IPv4Address("172.16.0.11")))
        sim.run(until=p)
        report = p.value
        assert report.downtime < report.total_time / 3
        assert report.downtime >= 0.15  # at least the resume cost

    def test_gratuitous_arp_redirects_lan_traffic(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, observer = build_lan_with_vmms(sim)
        vm = vmm_a.create_vm("vm1", memory_mb=64, dirty_model=IdleDirtyModel())
        vm.configure_network("172.16.0.100", "172.16.0.0/24")
        warm = sim.process(Pinger(observer.stack, IPv4Address("172.16.0.100")).run(1))
        sim.run(until=warm)
        p = sim.process(vmm_a.migrate(vm, vmm_b, IPv4Address("172.16.0.11")))
        sim.run(until=p)
        after = sim.process(Pinger(observer.stack, IPv4Address("172.16.0.100"),
                                   interval=0.2).run(3))
        sim.run(until=after)
        assert after.value.lost == 0

    def test_cannot_migrate_foreign_vm(self):
        sim = Simulator()
        lan, vmm_a, vmm_b, _obs = build_lan_with_vmms(sim)
        vm = vmm_a.create_vm("vm1", memory_mb=64)

        def bad(sim):
            try:
                yield from vmm_b.migrate(vm, vmm_a, IPv4Address("172.16.0.10"))
            except RuntimeError:
                return "rejected"

        p = sim.process(bad(sim))
        sim.run(until=p)
        assert p.value == "rejected"


def build_wavnet_with_vms(sim, n_hosts=2, **kwargs):
    env = WavnetEnvironment(sim)
    for i in range(n_hosts):
        env.add_host(f"h{i}", tcp_mss=8192, **kwargs)
    started = sim.process(env.start_all())
    sim.run(until=started)
    mesh = sim.process(env.connect_full_mesh())
    sim.run(until=mesh)
    vmms = {}
    for name, wh in env.hosts.items():
        vmms[name] = Hypervisor(wh.host, wh.driver.attach_port)
    return env, vmms


class TestWanMigrationOverWavnet:
    def test_vm_on_virtual_lan_reachable_across_wan(self):
        sim = Simulator(seed=21)
        env, vmms = build_wavnet_with_vms(sim)
        vm = vmms["h0"].create_vm("webvm", memory_mb=64)
        vm.configure_network("10.99.1.1", "10.99.0.0/16")
        observer = env.hosts["h1"].host
        p = sim.process(Pinger(observer.stack, IPv4Address("10.99.1.1")).run(2))
        sim.run(until=p)
        assert p.value.lost == 0

    def test_live_migration_over_wan(self):
        sim = Simulator(seed=22)
        env, vmms = build_wavnet_with_vms(sim)
        vm = vmms["h0"].create_vm("webvm", memory_mb=64, dirty_model=IdleDirtyModel())
        vm.configure_network("10.99.1.1", "10.99.0.0/16")
        dest_vip = env.hosts["h1"].virtual_ip
        p = sim.process(vmms["h0"].migrate(vm, vmms["h1"], dest_vip))
        sim.run(until=p)
        report = p.value
        assert vm.current_host is vmms["h1"]
        assert report.total_time > 0

    def test_tcp_session_survives_wan_migration(self):
        """The paper's headline: an open TCP stream to the VM continues
        across migration because the gratuitous ARP is tunneled at L2."""
        sim = Simulator(seed=23)
        env, vmms = build_wavnet_with_vms(sim, n_hosts=3)
        vm = vmms["h0"].create_vm("webvm", memory_mb=48, dirty_model=IdleDirtyModel())
        vm.configure_network("10.99.1.1", "10.99.0.0/16")
        client = env.hosts["h2"].host
        listener = vm.guest.tcp.listen(5001)
        outcome = {}

        def server(sim):
            conn = yield listener.accept()
            outcome["got"] = yield from drain_bytes(conn)

        def client_proc(sim):
            conn = client.tcp.connect(IPv4Address("10.99.1.1"), 5001)
            yield conn.wait_established()
            # Send half, migrate mid-stream, then the rest.
            yield from stream_bytes(conn, 120_000)
            mig = sim.process(vmms["h0"].migrate(vm, vmms["h1"],
                                                 env.hosts["h1"].virtual_ip))
            yield from stream_bytes(conn, 120_000)
            yield mig
            outcome["report"] = mig.value
            yield from stream_bytes(conn, 120_000)
            conn.close()

        sim.process(server(sim))
        sim.process(client_proc(sim))
        sim.run(until=sim.now + 600)
        assert outcome.get("got") == 360_000
        assert outcome["report"].downtime < 5.0

    def test_ping_loss_confined_to_downtime(self):
        sim = Simulator(seed=24)
        env, vmms = build_wavnet_with_vms(sim, n_hosts=3)
        vm = vmms["h0"].create_vm("webvm", memory_mb=48, dirty_model=IdleDirtyModel())
        vm.configure_network("10.99.1.1", "10.99.0.0/16")
        observer = env.hosts["h2"].host
        pinger = Pinger(observer.stack, IPv4Address("10.99.1.1"),
                        interval=0.25, timeout=0.8)
        ping_proc = sim.process(pinger.run(120))

        def migrate_later(sim):
            yield sim.timeout(5.0)
            report = yield sim.process(
                vmms["h0"].migrate(vm, vmms["h1"], env.hosts["h1"].virtual_ip))
            return report

        mig_proc = sim.process(migrate_later(sim))
        sim.run(until=ping_proc)
        result = ping_proc.value
        report = mig_proc.value
        # Loss happens, but bounded by the downtime window (plus one
        # probe interval + timeout at each edge).
        max_lost = report.downtime / 0.25 + 8
        assert 0 < result.lost <= max_lost
