"""Tests for the PDES plane: windowed execution, the cloud boundary,
partition ownership, fleet-assigned rendezvous routing, registration
guards, CAN zone re-merge, keepalive sweeps — and the headline property,
serial-vs-partitioned byte-identical envelopes for every pdes scenario.
"""

import pytest

from repro.core.hoststate import HostTable
from repro.exp.spec import ExperimentSpec, envelope_bytes, run_spec
from repro.faults.plan import FaultPlan
from repro.net.addresses import BROADCAST_MAC, mac_factory
from repro.net.fluid import FluidLink, FluidNetwork, FluidPath
from repro.net.packet import EthernetFrame
from repro.net.wan import WanCloud
from repro.overlay.fleet import HashRing
from repro.scenarios.storm import StormLane
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import SimulationError, Simulator
from repro.sim.pdes import (
    PartitionContext,
    PdesError,
    execute_spec,
    merge_trace_records,
    pdes_merger,
    run_partitioned,
)


# -- windowed execution (engine) ----------------------------------------


class TestRunWindow:
    def test_end_is_exclusive(self):
        sim = Simulator(seed=1)
        fired = []
        for t in (0.5, 1.0, 1.5):
            sim.call_at(t, lambda t=t: fired.append(t))
        sim.run_window(1.0)
        assert fired == [0.5]
        assert sim.now == 1.0

    def test_clock_advances_to_end_without_events(self):
        sim = Simulator(seed=1)
        sim.run_window(4.0)
        assert sim.now == 4.0

    def test_backward_window_rejected(self):
        sim = Simulator(seed=1)
        sim.run_window(2.0)
        with pytest.raises(SimulationError):
            sim.run_window(1.0)

    def test_final_inclusive_run_picks_up_horizon_events(self):
        # The pdes loop's last step: run(until=h) after run_window(h)
        # dispatches events at exactly h, once.
        sim = Simulator(seed=1)
        fired = []
        sim.call_at(3.0, lambda: fired.append("h"))
        sim.run_window(3.0)
        assert fired == []
        sim.run(until=3.0)
        assert fired == ["h"]


# -- partition context & merger registry --------------------------------


class TestPartitionContext:
    def test_round_robin_ownership(self):
        ctx = PartitionContext(3, 1)
        assert not ctx.serial
        assert [ctx.owner_of(g) for g in range(6)] == [0, 1, 2, 0, 1, 2]
        assert ctx.owned_groups(6) == [1, 4]
        assert ctx.owns(4) and not ctx.owns(3)

    def test_serial_owns_everything(self):
        ctx = PartitionContext(4)
        assert ctx.serial
        assert ctx.owned_groups(5) == [0, 1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionContext(0)
        with pytest.raises(ValueError):
            PartitionContext(2, 2)

    def test_merger_duplicate_registration_rejected(self):
        @pdes_merger("_test_pdes_dup")
        def merge(shards):
            return {}

        pdes_merger("_test_pdes_dup")(merge)  # same fn: idempotent
        with pytest.raises(ValueError, match="already registered"):
            pdes_merger("_test_pdes_dup")(lambda shards: {})


class TestTraceMerge:
    def test_stable_time_order_with_spans(self):
        a = [{"kind": "event", "t": 1.0, "name": "a1"},
             {"kind": "span", "t0": 0.5, "t1": 2.0, "name": "a2"}]
        b = [{"kind": "event", "t": 1.5, "name": "b1"}]
        merged = merge_trace_records([a, b])
        assert [r["name"] for r in merged] == ["a1", "b1", "a2"]


# -- cloud boundary (wan) -----------------------------------------------


_mint = mac_factory()


def _frame(dst):
    return EthernetFrame(src=_mint(), dst=dst, ethertype=0x0800, payload=None)


class TestCloudBoundary:
    def _cloud(self):
        sim = Simulator(seed=0)
        cloud = WanCloud(sim, default_latency=0.025)
        cloud.attach("local")
        cloud.declare_remote_site("far", 1)
        cloud.set_latency("local", "far", 0.03)
        return sim, cloud

    def test_remote_declaration(self):
        _, cloud = self._cloud()
        assert cloud.is_remote("far") and not cloud.is_remote("local")
        assert cloud.remote_partitions() == [1]
        assert cloud.min_remote_latency() == 0.03
        with pytest.raises(ValueError, match="attached locally"):
            cloud.declare_remote_site("local", 1)

    def test_unicast_to_remote_site_is_captured(self):
        sim, cloud = self._cloud()
        far_mac = _mint()
        cloud.mac_table[far_mac] = "far"
        cloud.on_frame(_frame(far_mac), cloud.ports["local"])
        records = cloud.drain_outbox()
        assert len(records) == 1
        partition, deliver, send, src, seq, dst, frame = records[0]
        assert (partition, src, dst) == (1, "local", "far")
        assert deliver == sim.now + 0.03
        assert cloud.drain_outbox() == []  # drained
        assert cloud.frames_carried == 1   # counted on the sender

    def test_broadcast_emits_one_flood_record_per_partition(self):
        _, cloud = self._cloud()
        cloud.declare_remote_site("far2", 1)   # same partition: one record
        cloud.declare_remote_site("far3", 2)
        cloud.on_frame(_frame(BROADCAST_MAC), cloud.ports["local"])
        records = cloud.drain_outbox()
        assert sorted(r[0] for r in records) == [1, 2]
        assert all(r[1] is None and r[5] is None for r in records)

    def test_inject_learns_source_mac_and_schedules(self):
        sim, cloud = self._cloud()
        delivered = []
        # The cloud-side port transmits toward the site; stand in for the
        # access link with a collector.
        cloud.ports["local"].connect(delivered.append)
        frame = _frame(_mint())
        cloud.inject_remote_frame("far", "local", 0.03, frame)
        assert cloud.mac_table[frame.src] == "far"
        assert cloud.frames_carried == 0  # sender already counted it
        sim.run(until=0.05)
        assert delivered == [frame]
        assert sim.now == 0.05

    def test_expand_flood_uses_local_latency_table(self):
        _, cloud = self._cloud()
        cloud.attach("other")
        cloud.set_latency("far", "other", 0.027)
        dests = dict(cloud.expand_flood("far", 10.0))
        assert dests == {"local": 10.0 + 0.03, "other": 10.0 + 0.027}


# -- fleet-aware rendezvous assignment (satellite 1) --------------------


class TestHashRing:
    def test_stable_across_instances(self):
        names = [f"rvz{i}" for i in range(4)]
        a, b = HashRing(names), HashRing(names)
        for endpoint in ("alice", "bob", "s3h7", "host-17"):
            assert a.index(endpoint) == b.index(endpoint)

    def test_order_is_a_permutation_starting_at_primary(self):
        ring = HashRing([f"rvz{i}" for i in range(4)])
        for endpoint in ("alice", "bob", "s3h7"):
            order = ring.order(endpoint)
            assert sorted(order) == [0, 1, 2, 3]
            assert order[0] == ring.index(endpoint)

    def test_endpoints_spread_over_all_servers(self):
        ring = HashRing([f"rvz{i}" for i in range(4)])
        counts = [0] * 4
        for j in range(256):
            counts[ring.index(f"h{j}")] += 1
        assert all(c > 0 for c in counts)

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestFleetAssignment:
    def test_default_endpoint_is_fleet_assigned(self):
        sim = Simulator(seed=2)
        env = WavnetEnvironment(sim, n_rendezvous=3)
        host_id = env.add_endpoint("endpoint-a")
        cfg = env.table.site_config(host_id)
        assert cfg["fleet_assigned"] is True
        assert cfg["rendezvous_index"] == env.ring.index("endpoint-a")
        assert env.assign_rendezvous("endpoint-a") == env.ring.index("endpoint-a")

    def test_explicit_index_overrides_fleet(self):
        sim = Simulator(seed=2)
        env = WavnetEnvironment(sim, n_rendezvous=3)
        host_id = env.add_endpoint("endpoint-b", rendezvous_index=1)
        cfg = env.table.site_config(host_id)
        assert cfg["fleet_assigned"] is False
        assert cfg["rendezvous_index"] == 1

    def test_static_ring_agrees_with_live_fleet(self):
        sim = Simulator(seed=2)
        env = WavnetEnvironment(sim, n_rendezvous=3)
        for endpoint in ("a", "b", "c", "host-17", "s2h9"):
            assert env.ring.index(endpoint) == env.fleet.ring.index(endpoint)

    def test_controlless_env_derives_same_addresses(self):
        sim1 = Simulator(seed=2)
        full = WavnetEnvironment(sim1, n_rendezvous=2)
        sim2 = Simulator(seed=2)
        bare = WavnetEnvironment(sim2, n_rendezvous=2, build_control=False,
                                 control_partition=0)
        assert bare.stun is None
        assert bare.cloud.is_remote("rvz0")
        for i in range(2):
            assert bare.rendezvous_addr(i) == full.rendezvous_addr(i)
        assert bare.stun_primary_ip == full.stun_primary_ip


# -- fault plan group routing -------------------------------------------


class _SpyInjector:
    def __init__(self):
        self.calls = []

    def crash(self, component_id):
        self.calls.append(component_id)


class TestFaultPlanGroups:
    def _plan(self, sim):
        plan = FaultPlan(sim, name="t", injector=_SpyInjector())
        plan.at(5.0, "crash", group=0, component_id="a")
        plan.at(6.0, "crash", group=1, component_id="b")
        plan.at(7.0, "crash", group=2, component_id="c")
        return plan

    def test_partition_arms_only_owned_groups(self):
        sim = Simulator(seed=0)
        plan = self._plan(sim)
        plan.arm(partition=PartitionContext(2, 0))
        sim.run(until=10.0)
        assert plan.injector.calls == ["a", "c"]  # groups 0, 2

    def test_partition_union_is_the_serial_schedule(self):
        serial_sim = Simulator(seed=0)
        serial = self._plan(serial_sim)
        serial.arm(partition=None)
        serial_sim.run(until=10.0)
        fired = []
        for pid in range(2):
            sim = Simulator(seed=0)
            plan = self._plan(sim)
            plan.arm(partition=PartitionContext(2, pid))
            sim.run(until=10.0)
            fired.extend(plan.injector.calls)
        assert sorted(fired) == sorted(serial.injector.calls) == ["a", "b", "c"]


# -- registration-state ownership guard ---------------------------------


class TestHostTableClaim:
    def test_non_owner_mutation_raises(self):
        sim = Simulator(seed=0)
        table = HostTable(sim)
        table.claim_partition(0, PartitionContext(2, 1))  # group 0 -> p0
        with pytest.raises(RuntimeError, match="placement bug"):
            table.touch_names(["anyone"], 0.0)

    def test_owner_mutation_allowed(self):
        sim = Simulator(seed=0)
        table = HostTable(sim)
        table.claim_partition(0, PartitionContext(2, 0))
        assert table.touch_names(["unknown"], 0.0) == 0

    def test_serial_context_unrestricted(self):
        sim = Simulator(seed=0)
        table = HostTable(sim)
        table.claim_partition(0, PartitionContext(2))
        assert table.touch_names([], 0.0) == 0


# -- fluid plane cross-partition guard ----------------------------------


class TestFluidPartitionGuard:
    def test_open_refuses_path_crossing_partition_boundary(self):
        sim = Simulator(seed=0)
        cloud = WanCloud(sim)
        cloud.attach("here")
        cloud.declare_remote_site("there", 1)
        net = FluidNetwork(sim, refresh_interval=0.0)
        link = FluidLink("here.access", 1e9)
        path = FluidPath(links=((link, 1.0),), rtt=0.05,
                         sites=("here", "there"), cloud=cloud)
        net.add_route("src", "1.2.3.4", path)
        with pytest.raises(RuntimeError, match="partition"):
            net.open("src", "1.2.3.4", size_bytes=1000)


# -- CAN zone re-merge under drain (satellite 2) ------------------------


class TestCanRemerge:
    def test_zones_remerge_when_load_drains(self):
        sim = Simulator(seed=13)
        env = WavnetEnvironment(sim, n_rendezvous=2, replication_factor=1,
                                hot_zone_limit=4)
        env.up()
        lane = StormLane(sim, env, region=0, count=48, base_index=0)
        sim.run_coro(lane.register(batch_size=16))

        def can_stats(name):
            return sum(int(sim.metrics.value(f"{s.can.node_id}.can.{name}"))
                       for s in env.rendezvous)

        zones_before = sum(len(s.can.zones) for s in env.rendezvous)
        assert can_stats("splits") >= 1
        assert zones_before > len(env.rendezvous)

        # Drain: drop every stored handle, then let the ping loops run a
        # few maintenance rounds.
        for s in env.rendezvous:
            s.can.handles.clear()
            s.can.handle_replicas.clear()
        sim.run(until=sim.now + 80.0)

        zones_after = sum(len(s.can.zones) for s in env.rendezvous)
        assert can_stats("remerges") >= 1
        assert zones_after < zones_before


# -- batched keepalive sweeps (satellite 3) -----------------------------


class TestKeepaliveSweeps:
    def test_storm_lane_sweeps_batch_keepalives(self):
        spec = ExperimentSpec(
            "registration_storm",
            params={"n_endpoints": 60, "n_rendezvous": 2, "n_regions": 2,
                    "batch": 16, "punch_pairs": 1, "settle": 30.0,
                    "keepalive_interval": 5.0},
            seed=7)
        payload = run_spec(spec)["payload"]
        assert payload["keepalive_sweeps"] > 0
        assert payload["keepalives_acked"] > 0
        # Sweeps are batched: far fewer RPCs than endpoint-keepalives.
        assert payload["keepalive_sweeps"] < payload["keepalives_acked"]


# -- the headline property: byte-identical envelopes --------------------

PDES_GOLDENS = [
    ("pdes_mesh",
     {"partitions": 2, "n_sites": 2, "duration": 2.0, "horizon": 26.0},
     (), ()),
    ("pdes_churn", {"partitions": 2},
     ("faults.injected.*",), ("fault*",)),
    ("pdes_storm", {"partitions": 2, "n_endpoints": 120, "horizon": 40.0},
     (), ("fault*",)),
    ("pdes_fluid_mix", {"partitions": 2}, (), ()),
]


@pytest.mark.parametrize("name,params,metrics,traces", PDES_GOLDENS,
                         ids=[g[0] for g in PDES_GOLDENS])
def test_partitioned_envelope_matches_serial(name, params, metrics, traces):
    spec = ExperimentSpec(name, params=params, seed=5,
                          metrics=metrics, traces=traces)
    serial = run_spec(spec)
    part = run_partitioned(spec)
    assert envelope_bytes(part) == envelope_bytes(serial)
    assert part["obs"]["events_dispatched"] > 0
    assert part["payload"]  # non-trivial result, not an empty dict


class TestExecuteSpec:
    def test_routes_partitioned_specs_through_pdes(self):
        spec = ExperimentSpec("pdes_fluid_mix", params={"partitions": 2},
                              seed=3)
        assert envelope_bytes(execute_spec(spec)) == \
            envelope_bytes(run_partitioned(spec))

    def test_partitions_one_runs_serial(self):
        spec = ExperimentSpec("pdes_fluid_mix", params={"partitions": 1},
                              seed=3)
        assert envelope_bytes(execute_spec(spec)) == \
            envelope_bytes(run_spec(spec))

    def test_worker_error_propagates(self):
        spec = ExperimentSpec("pdes_fluid_mix",
                              params={"partitions": 2, "bogus_param": 1},
                              seed=3)
        with pytest.raises(PdesError, match="bogus_param"):
            run_partitioned(spec)
