"""Tests for the failure plane: component lifecycle, the fault injector
and plans, and the self-healing behaviors they exist to exercise —
connection repair, rendezvous failover, NAT-reboot recovery, and CAN
ungraceful takeover."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.net.l2 import Link, Port
from repro.net.wan import WanCloud
from repro.scenarios.churn import (
    build_churn_env,
    mesh_converged,
    scripted_churn_plan,
)
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Component, LifecycleState, Simulator


class _Probe(Component):
    """Minimal component recording which hooks fired."""

    def __init__(self, sim, name="probe"):
        Component.__init__(self, sim, "probe", name)
        self.calls = []

    def _on_stop(self):
        self.calls.append("stop")

    def _on_crash(self):
        self.calls.append("crash")

    def _on_restore(self):
        self.calls.append("restore")


def _frame():
    from repro.net.addresses import IPv4Address, MacAddress
    from repro.net.packet import EthernetFrame, Payload, UdpDatagram, ipv4
    pkt = ipv4(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
               UdpDatagram(1, 2, Payload(100)))
    return EthernetFrame(MacAddress(1), MacAddress(2), 0x0800, pkt)


class _PortOwner:
    def __init__(self, sim):
        self.sim = sim
        self.frames = 0
        self.port = Port(self, "p")

    def on_frame(self, frame, port):
        self.frames += 1


class TestLifecycle:
    def test_transitions_and_idempotence(self):
        sim = Simulator()
        c = _Probe(sim)
        assert c.running
        c.stop()
        c.stop()  # idempotent
        assert c.lifecycle is LifecycleState.STOPPED
        c.crash()  # stopped -> crashed still loses state
        c.crash()
        assert c.lifecycle is LifecycleState.CRASHED
        c.restore()
        c.restore()
        assert c.running
        assert c.calls == ["stop", "crash", "restore"]

    def test_registry_addressing_and_find(self):
        sim = Simulator()
        a, b = _Probe(sim, "a"), _Probe(sim, "b")
        assert sim.components[a.component_id] is a
        assert a.component_id == "probe:a"
        b.crash()
        crashed = sim.components.find("probe", LifecycleState.CRASHED)
        assert list(crashed.values()) == [b]
        assert len(sim.components.find("probe")) == 2

    def test_duplicate_names_get_suffix(self):
        sim = Simulator()
        a, b = _Probe(sim, "x"), _Probe(sim, "x")
        assert a.component_id == "probe:x"
        assert b.component_id == "probe:x#2"

    def test_transitions_are_observable(self):
        sim = Simulator()
        c = _Probe(sim)
        c.crash()
        c.restore()
        assert sim.metrics.value("faults.lifecycle.crash") == 1
        assert sim.metrics.value("faults.lifecycle.restore") == 1
        events = [e for e in sim.trace.events()
                  if e["name"].startswith("lifecycle.")]
        assert [e["name"] for e in events] == ["lifecycle.crash",
                                               "lifecycle.restore"]
        assert all(e["attrs"]["component"] == c.component_id for e in events)


class TestFaultInjector:
    def test_component_verbs_and_observability(self):
        sim = Simulator()
        c = _Probe(sim)
        inj = FaultInjector(sim)
        inj.crash(c.component_id)
        assert c.lifecycle is LifecycleState.CRASHED
        inj.restore(c.component_id)
        assert c.running
        assert inj.injected == 2
        assert sim.metrics.value("faults.injected.crash") == 1
        assert sim.metrics.value("faults.injected.restore") == 1
        assert len(sim.trace.find("fault")) == 2

    def test_link_flap_recovers(self):
        sim = Simulator()
        a, b = _PortOwner(sim), _PortOwner(sim)
        link = Link(sim, a.port, b.port, latency=0.001, bandwidth_bps=None)
        inj = FaultInjector(sim)
        inj.link_flap(link, down_for=5.0)
        assert not link.running
        a.port.transmit(_frame())
        sim.run(until=10.0)
        assert link.running
        assert b.frames == 0  # the frame offered while down was dropped
        a.port.transmit(_frame())
        sim.run(until=11.0)
        assert b.frames == 1

    def test_loss_burst_restores_prior_loss(self):
        sim = Simulator(seed=1)
        a, b = _PortOwner(sim), _PortOwner(sim)
        link = Link(sim, a.port, b.port, latency=0.0, bandwidth_bps=None,
                    loss=0.1)
        inj = FaultInjector(sim)
        inj.loss_burst(link, loss=0.9, duration=3.0)
        assert link.ab.loss == 0.9
        sim.run(until=5.0)
        assert link.ab.loss == 0.1

    def test_partition_heals_after_duration(self):
        sim = Simulator()
        cloud = WanCloud(sim)
        inj = FaultInjector(sim)
        inj.partition(cloud, ["east"], ["west"], duration=4.0)
        assert cloud.partitioned("east", "west")
        sim.run(until=5.0)
        assert not cloud.partitioned("east", "west")


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        sim = Simulator()
        plan = FaultPlan(sim)
        with pytest.raises(ValueError):
            plan.at(1.0, "meteor_strike")

    def test_arm_is_final(self):
        sim = Simulator()
        c = _Probe(sim)
        plan = FaultPlan(sim).at(1.0, "crash", component_id=c.component_id)
        plan.arm()
        with pytest.raises(RuntimeError):
            plan.at(2.0, "restore", component_id=c.component_id)
        with pytest.raises(RuntimeError):
            plan.arm()

    def test_armed_plan_fires_at_scheduled_times(self):
        sim = Simulator()
        c = _Probe(sim)
        FaultPlan(sim).at(2.0, "crash", component_id=c.component_id) \
                      .at(5.0, "restore", component_id=c.component_id).arm()
        sim.run(until=1.0)
        assert c.running
        sim.run(until=3.0)
        assert c.lifecycle is LifecycleState.CRASHED
        sim.run(until=6.0)
        assert c.running

    def test_random_churn_is_deterministic(self):
        def events_for(seed):
            sim = Simulator(seed=seed)
            ids = [_Probe(sim, f"c{i}").component_id for i in range(3)]
            plan = FaultPlan(sim, name="churn")
            plan.random_churn(ids, start=0.0, stop=300.0, rate=0.05)
            return [(e.at, e.kind, e.kwargs["component_id"])
                    for e in plan.events]

        assert events_for(9) == events_for(9)
        assert len(events_for(9)) > 0
        assert events_for(9) != events_for(10)

    def test_random_churn_pairs_crash_with_restore(self):
        sim = Simulator(seed=5)
        ids = [_Probe(sim, f"c{i}").component_id for i in range(2)]
        plan = FaultPlan(sim, name="pairs")
        plan.random_churn(ids, start=0.0, stop=200.0, rate=0.1)
        crashes = [e for e in plan.events if e.kind == "crash"]
        restores = [e for e in plan.events if e.kind == "restore"]
        assert len(crashes) == len(restores) > 0
        plan.arm()
        sim.run(until=250.0)
        # Every component churned back to RUNNING by the horizon.
        assert all(sim.components[cid].running for cid in ids)


class TestSelfHealing:
    """End-to-end recovery: faults injected mid-run, nobody calls
    connect() again, the control plane heals itself."""

    def test_rendezvous_kill_fails_over_and_reconnects(self):
        """Acceptance: kill a rendezvous server mid-run. Every surviving
        host must re-register with the surviving server and every
        host-pair tunnel must come back on its own."""
        sim = Simulator(seed=21)
        env = build_churn_env(sim, n_hosts=3, n_rendezvous=2)
        rvz0 = env.rendezvous[0]
        FaultPlan(sim, name="kill-rvz").at(
            sim.now + 20.0, "crash", component_id=rvz0.component_id).arm()
        sim.run(until=sim.now + 120.0)
        assert not rvz0.running
        survivor = env.rendezvous[1]
        for name, wav in env.hosts.items():
            assert wav.driver.rendezvous_ip == survivor.ip
            assert name in survivor.hosts
        assert mesh_converged(env)
        # At least the hosts homed on rvz0 actually failed over.
        failovers = sum(
            int(sim.metrics.value(f"{n}.driver.rvz.failovers"))
            for n in env.hosts)
        assert failovers >= 2

    def test_host_crash_and_restore_heals_peers(self):
        sim = Simulator(seed=22)
        env = build_churn_env(sim, n_hosts=3, n_rendezvous=1)
        victim = env.hosts["h2"].driver
        FaultPlan(sim, name="host-churn") \
            .at(sim.now + 10.0, "crash", component_id=victim.component_id) \
            .at(sim.now + 30.0, "restore", component_id=victim.component_id) \
            .arm()
        sim.run(until=sim.now + 120.0)
        assert victim.running
        assert mesh_converged(env)
        repairs = sum(
            int(sim.metrics.value(f"{n}.driver.repair.success"))
            for n in env.hosts)
        assert repairs >= 2  # h0 and h1 each repaired their h2 tunnel
        assert len(sim.trace.find("conn.repaired")) == repairs

    def test_nat_reboot_moves_endpoint_and_heals(self):
        """A NAT power-cycle flushes every mapping: the host's public
        endpoint moves, so repair must re-STUN and re-register before
        punching succeeds again."""
        sim = Simulator(seed=23)
        env = build_churn_env(sim, n_hosts=2, n_rendezvous=1)
        site = env.hosts["h0"].site
        assert site is not None
        FaultPlan(sim, name="nat").at(
            sim.now + 10.0, "nat_reboot", nat=site.nat).arm()
        sim.run(until=sim.now + 120.0)
        assert mesh_converged(env)
        moves = sum(
            int(sim.metrics.value(f"{n}.driver.repair.endpoint_moves"))
            for n in env.hosts)
        assert moves >= 1

    def test_scripted_churn_scenario_converges(self):
        """The full canonical schedule (rendezvous kill + restore, host
        crash + restore, NAT reboot, link flap) ends converged."""
        sim = Simulator(seed=24)
        env = build_churn_env(sim)
        plan = scripted_churn_plan(sim, env).arm()
        assert len(plan) == 6
        sim.run(until=sim.now + 220.0)
        assert mesh_converged(env)
        assert all(s.running for s in env.rendezvous)

    def test_stopped_driver_does_not_self_repair(self):
        """Repair supervision dies with the driver: a stopped driver
        must not keep punching from beyond the grave."""
        sim = Simulator(seed=25)
        env = build_churn_env(sim, n_hosts=2, n_rendezvous=1)
        h1 = env.hosts["h1"].driver
        h1.stop()
        sim.run(until=sim.now + 60.0)
        assert not h1.running
        assert h1.connections == {}
        assert int(sim.metrics.value("h1.driver.repair.attempts")) == 0


class TestRendezvousRestore:
    def test_restored_server_rejoins_and_serves(self):
        """A crashed rendezvous server comes back empty, rejoins the CAN
        through cached peers, and keepalive re-registration repopulates
        its host registry."""
        sim = Simulator(seed=26)
        env = build_churn_env(sim, n_hosts=2, n_rendezvous=2,
                              keepalive_interval=5.0)
        rvz1 = env.rendezvous[1]
        FaultPlan(sim, name="rvz-restart") \
            .at(sim.now + 10.0, "crash", component_id=rvz1.component_id) \
            .at(sim.now + 40.0, "restore", component_id=rvz1.component_id) \
            .arm()
        sim.run(until=sim.now + 120.0)
        assert rvz1.running
        assert rvz1.can.joined
        assert mesh_converged(env)


class TestCanTakeover:
    def test_ungraceful_death_triggers_takeover(self):
        """Crash one rendezvous CAN node: its neighbors probe, declare
        it dead, and the arbitration winner absorbs its zones and
        promotes its replicated records."""
        sim = Simulator(seed=27)
        env = WavnetEnvironment(sim, n_rendezvous=3)
        p = sim.process(env.join_rendezvous_overlay())
        sim.run(until=p)
        sim.run(until=sim.now + 15.0)  # replicas propagate on puts
        wav = env.add_host("h0", rendezvous_index=1)
        start = sim.process(wav.driver.start())
        sim.run(until=start)
        sim.run(until=sim.now + 5.0)
        # Find the CAN node owning h0's resource record, then kill it.
        owner = next(s.can for s in env.rendezvous if "h0" in s.can.records)
        survivors = [s.can for s in env.rendezvous if s.can is not owner]
        assert any("h0" in c.replicas.get(owner.node_id, {})
                   for c in survivors)
        owner.crash()
        # Detection: 3 missed announce intervals + probe timeout.
        sim.run(until=sim.now + 4 * owner.ping_interval + 10.0)
        assert all(owner.node_id not in c.neighbors for c in survivors)
        # The record survived the death via replica promotion.
        assert any("h0" in c.records for c in survivors)
        takeovers = sum(
            int(sim.metrics.value(f"{c.node_id}.can.takeovers"))
            for c in survivors)
        assert takeovers == 1
        # The dead node's zone space is fully re-owned.
        total = sum(z.volume() for c in survivors for z in c.zones)
        assert total == pytest.approx(1.0)
