"""Unit tests for Store/Channel FIFO primitives."""

import pytest

from repro.sim import Channel, QueueFull, SimulationError, Simulator, Store


def test_put_then_get_immediate():
    sim = Simulator()
    store = Store(sim)
    results = []

    def proc(sim):
        yield store.put("a")
        item = yield store.get()
        results.append(item)

    sim.process(proc(sim))
    sim.run()
    assert results == ["a"]


def test_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    results = []

    def getter(sim):
        item = yield store.get()
        results.append((sim.now, item))

    def putter(sim):
        yield sim.timeout(5)
        yield store.put("late")

    sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert results == [(5.0, "late")]


def test_fifo_order_of_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(getter(sim, "g1"))
    sim.process(getter(sim, "g2"))

    def putter(sim):
        yield sim.timeout(1)
        yield store.put("first")
        yield store.put("second")

    sim.process(putter(sim))
    sim.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_bounded_put_blocks_until_space():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer(sim):
        yield store.put(1)
        timeline.append(("put1", sim.now))
        yield store.put(2)
        timeline.append(("put2", sim.now))

    def consumer(sim):
        yield sim.timeout(10)
        item = yield store.get()
        timeline.append(("got", item, sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert timeline[0] == ("put1", 0.0)
    assert ("got", 1, 10.0) in timeline
    assert ("put2", 10.0) in timeline


def test_put_nowait_raises_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    store.put_nowait("a")
    store.put_nowait("b")
    with pytest.raises(QueueFull):
        store.put_nowait("c")


def test_try_put_drop_tail():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    assert len(store) == 1


def test_get_nowait_empty_is_error():
    sim = Simulator()
    store = Store(sim)
    with pytest.raises(SimulationError):
        store.get_nowait()


def test_get_nowait_admits_blocked_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer(sim):
        yield store.put("a")
        ev = store.put("b")
        yield ev
        events.append("b-admitted")

    sim.process(producer(sim))
    sim.run()
    assert events == []
    assert store.get_nowait() == "a"
    sim.run()
    assert events == ["b-admitted"]
    assert store.get_nowait() == "b"


def test_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_channel_counts_drops():
    sim = Simulator()
    ch = Channel(sim, capacity=2)
    assert ch.offer(1) and ch.offer(2)
    assert not ch.offer(3)
    assert not ch.offer(4)
    assert ch.drops == 2
    assert len(ch) == 2


def test_channel_offer_wakes_getter():
    sim = Simulator()
    ch = Channel(sim, capacity=4)
    got = []

    def getter(sim):
        item = yield ch.get()
        got.append(item)

    sim.process(getter(sim))
    sim.run()
    ch.offer("pkt")
    sim.run()
    assert got == ["pkt"]
