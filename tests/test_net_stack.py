"""Tests for ARP, routing, forwarding, ICMP ping, and UDP sockets."""

import pytest

from repro.net.addresses import IPv4Address, IPv4Network, mac_factory
from repro.net.icmp import Pinger
from repro.net.l2 import Link
from repro.net.packet import Payload
from repro.net.stack import Host, Router
from repro.scenarios.builder import host_pair, make_lan
from repro.sim import Simulator


class TestArpAndPing:
    def test_ping_rtt_matches_link_latency(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.005, bandwidth_bps=None)
        pinger = Pinger(a.stack, IPv4Address("10.0.0.2"), interval=0.5)
        proc = sim.process(pinger.run(5))
        sim.run()
        result = proc.value
        assert result.sent == 5 and result.lost == 0
        # Probe 0 includes ARP resolution (as with real ping); the rest
        # measure the pure path RTT.
        assert result.rtts[0] > 0.010
        for rtt in result.rtts[1:]:
            assert rtt == pytest.approx(0.010, rel=0.01)

    def test_arp_cache_populated_after_first_packet(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.001)
        proc = sim.process(Pinger(a.stack, IPv4Address("10.0.0.2")).run(1))
        sim.run()
        assert IPv4Address("10.0.0.2") in a.stack.arp_cache
        # B learned A from the ARP request itself.
        assert IPv4Address("10.0.0.1") in b.stack.arp_cache

    def test_first_packet_not_lost_during_arp(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.001)
        proc = sim.process(Pinger(a.stack, IPv4Address("10.0.0.2")).run(1))
        sim.run()
        assert proc.value.lost == 0

    def test_ping_unreachable_counts_loss(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.001)
        pinger = Pinger(a.stack, IPv4Address("10.0.0.99"), interval=0.1, timeout=0.5)
        proc = sim.process(pinger.run(3))
        sim.run()
        assert proc.value.lost == 3

    def test_gratuitous_arp_updates_caches(self):
        sim = Simulator()
        lan = make_lan(sim, 3)
        a, b, c = lan.hosts
        sim.process(Pinger(a.stack, b.stack.ips[0]).run(1))
        sim.run()
        old_mac = a.stack.arp_cache[b.stack.ips[0]][0]
        # Host c claims b's IP (what a migrated VM does).
        c.stack.interfaces[0].ip = b.stack.ips[0]
        c.stack.gratuitous_arp(c.stack.interfaces[0])
        sim.run()
        new_mac = a.stack.arp_cache[b.stack.ips[0]][0]
        assert new_mac == c.stack.interfaces[0].mac
        assert new_mac != old_mac


class TestRouting:
    def build_routed(self, sim):
        """h1 -- r -- h2 across two subnets."""
        mint = mac_factory()
        h1 = Host(sim, "h1", mint)
        h2 = Host(sim, "h2", mint)
        r = Router(sim, "r", mint)
        net1, net2 = IPv4Network("10.1.0.0/24"), IPv4Network("10.2.0.0/24")
        i1 = h1.add_nic().configure(net1.host(2), net1)
        i2 = h2.add_nic().configure(net2.host(2), net2)
        r1 = r.stack.add_interface("eth0", mint()).configure(net1.host(1), net1)
        r2 = r.stack.add_interface("eth1", mint()).configure(net2.host(1), net2)
        for stack, iface in ((h1.stack, i1), (h2.stack, i2), (r.stack, r1), (r.stack, r2)):
            stack.connected_route_for(iface)
        h1.stack.add_route("0.0.0.0/0", i1, gateway=net1.host(1))
        h2.stack.add_route("0.0.0.0/0", i2, gateway=net2.host(1))
        Link(sim, i1.port, r1.port, latency=0.001)
        Link(sim, i2.port, r2.port, latency=0.001)
        return h1, h2, r

    def test_forwarding_across_router(self):
        sim = Simulator()
        h1, h2, r = self.build_routed(sim)
        proc = sim.process(Pinger(h1.stack, IPv4Address("10.2.0.2")).run(2))
        sim.run()
        assert proc.value.lost == 0
        assert r.stack.packets_forwarded >= 4

    def test_rtt_across_router_sums_hops(self):
        sim = Simulator()
        h1, h2, r = self.build_routed(sim)
        proc = sim.process(Pinger(h1.stack, IPv4Address("10.2.0.2"), interval=0.1).run(2))
        sim.run()
        # Second probe rides warm ARP caches: 2 links x 1 ms each way.
        assert proc.value.rtts[1] == pytest.approx(0.004, rel=0.05)

    def test_host_does_not_forward(self):
        sim = Simulator()
        a, b, _link = host_pair(sim)
        assert a.stack.forwarding is False

    def test_longest_prefix_match(self):
        sim = Simulator()
        a, _b, _link = host_pair(sim)
        iface = a.stack.interfaces[0]
        a.stack.add_route("0.0.0.0/0", iface, gateway="10.0.0.2")
        route = a.stack.lookup_route(IPv4Address("10.0.0.7"))
        assert route.network.prefix_len == 24  # connected beats default
        route = a.stack.lookup_route(IPv4Address("8.8.8.8"))
        assert route.network.prefix_len == 0

    def test_no_route_drops(self):
        sim = Simulator()
        mint = mac_factory()
        h = Host(sim, "lonely", mint)
        h.add_nic().configure("10.0.0.1", "10.0.0.0/24")
        # no routes at all
        from repro.net.packet import IcmpMessage, ipv4
        h.stack.send_ip(ipv4(IPv4Address("10.0.0.1"), IPv4Address("10.9.9.9"),
                             IcmpMessage("echo-request", 1, 1)))
        assert h.stack.packets_dropped == 1

    def test_ttl_expiry(self):
        sim = Simulator()
        h1, h2, r = self.build_routed(sim)
        from repro.net.packet import IcmpMessage, ipv4
        pkt = ipv4(IPv4Address("10.1.0.2"), IPv4Address("10.2.0.2"),
                   IcmpMessage("echo-request", 5, 0), ttl=1)
        h1.stack.send_ip(pkt)
        sim.run()
        assert h2.stack.packets_received == 0
        assert r.stack.packets_dropped >= 1


class TestUdpSockets:
    def test_sendto_recvfrom(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002)
        server = b.udp.bind(5000)
        got = []

        def srv(sim):
            payload, ip, port = yield server.recvfrom()
            got.append((payload.data, str(ip), port))

        def cli(sim):
            sock = a.udp.bind()
            sock.sendto(IPv4Address("10.0.0.2"), 5000, Payload(64, data="hello"))
            yield sim.timeout(0)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run()
        assert got == [("hello", "10.0.0.1", 32768)]

    def test_reply_path(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002)
        server = b.udp.bind(5000)
        answers = []

        def srv(sim):
            payload, ip, port = yield server.recvfrom()
            server.sendto(ip, port, Payload(32, data="pong"))

        def cli(sim):
            sock = a.udp.bind(6000)
            sock.sendto(IPv4Address("10.0.0.2"), 5000, Payload(32, data="ping"))
            payload, ip, port = yield sock.recvfrom()
            answers.append((payload.data, port))

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run()
        assert answers == [("pong", 5000)]

    def test_double_bind_rejected(self):
        sim = Simulator()
        a, _b, _link = host_pair(sim)
        a.udp.bind(7000)
        with pytest.raises(RuntimeError):
            a.udp.bind(7000)

    def test_ephemeral_ports_unique(self):
        sim = Simulator()
        a, _b, _link = host_pair(sim)
        s1, s2 = a.udp.bind(), a.udp.bind()
        assert s1.port != s2.port

    def test_unmatched_datagram_counted(self):
        sim = Simulator()
        a, b, _link = host_pair(sim)
        sock = a.udp.bind()
        sock.sendto(IPv4Address("10.0.0.2"), 9999, Payload(10))
        sim.run()
        assert b.udp.rx_unmatched == 1

    def test_closed_socket_rejects_io(self):
        sim = Simulator()
        a, _b, _link = host_pair(sim)
        sock = a.udp.bind(1234)
        sock.close()
        with pytest.raises(RuntimeError):
            sock.sendto(IPv4Address("10.0.0.2"), 1, Payload(1))
        # port is reusable after close
        a.udp.bind(1234)

    def test_inbox_overflow_drops(self):
        sim = Simulator()
        a, b, _link = host_pair(sim)
        server = b.udp.bind(5000, inbox_capacity=2)
        sock = a.udp.bind()
        for _ in range(5):
            sock.sendto(IPv4Address("10.0.0.2"), 5000, Payload(10))
        sim.run()
        assert server.drops == 3
