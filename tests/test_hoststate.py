"""The million-endpoint control plane: HostTable, fleet, admission,
batched registration, retry coalescing, table-resident fault verbs,
and the lazy materialize/demote lifecycle."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.hoststate import (FLAG_MATERIALIZED, FLAG_REGISTERED,
                                  HostTable)
from repro.faults import FaultInjector
from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.wan import WanCloud
from repro.overlay.rendezvous import _RegisterBatch, _TokenBucket
from repro.overlay.resources import ConnectionInfo
from repro.overlay.rpc import RpcEndpoint, RpcTimeout
from repro.overlay.space import Zone
from repro.scenarios.builder import make_public_host
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator


def _conn(public_port=31000):
    return ConnectionInfo(
        rendezvous_ip=IPv4Address("9.1.0.1"), rendezvous_port=4001,
        public_ip=IPv4Address("8.8.4.4"), public_port=public_port,
        private_ip=IPv4Address("192.168.1.2"), private_port=4242,
        nat_type=NatType.PORT_RESTRICTED)


def _reach():
    return (IPv4Address("7.0.0.1"), 4700)


# -- table basics ------------------------------------------------------

def test_register_row_roundtrip():
    sim = Simulator(seed=1)
    table = HostTable(sim)
    attrs = {"cpu_ghz": 3, "mem_mb": 2048.5}
    host_id = table.register("h0", _conn(), attrs, _reach(), now=1.5, owner=2)
    row = table.row(host_id)
    assert row.name == "h0"
    assert row.registered and not row.materialized
    assert row.last_seen == 1.5
    # The table stamps the freshest observed mapping (the reach port)
    # into rebuilt ConnectionInfos for predicted-port punching.
    assert row.conn == replace(_conn(), observed_port=_reach()[1])
    # Exact attrs survive (no float32 round-trip; ints stay ints).
    assert row.attrs == attrs
    assert table.lookup("h0") == host_id
    assert table.lookup("nope") == -1
    assert int(table.owner[host_id]) == 2


def test_handles_go_stale_on_reregistration():
    sim = Simulator(seed=1)
    table = HostTable(sim)
    i = table.register("h0", _conn(), {}, _reach(), now=0.0)
    handle = table.handle(i)
    assert table.valid_mask(np.array([handle])).all()
    table.register("h0", _conn(public_port=32000), {}, _reach(), now=1.0)
    assert not table.valid_mask(np.array([handle])).any()  # generation bump
    fresh = table.handle(i)
    assert table.valid_mask(np.array([fresh])).all()
    table.unregister(i)
    assert not table.valid_mask(np.array([fresh])).any()


def test_register_batch_vectorized():
    sim = Simulator(seed=1)
    table = HostTable(sim)
    n = 300  # crosses the default-capacity growth boundary
    names = tuple(f"e{i}" for i in range(n))
    ids = table.register_batch(
        names,
        public_ip=np.arange(n, dtype=np.uint32) + 0x0B000000,
        public_port=np.full(n, 20000, dtype=np.uint16),
        private_ip=np.full(n, 0xC0A80002, dtype=np.uint32),
        private_port=np.full(n, 4242, dtype=np.uint16),
        nat_code=np.full(n, 3, dtype=np.uint8),
        attr_values=np.tile(np.array([4.0, 1024.0], dtype=np.float32), (n, 1)),
        rendezvous=(IPv4Address("9.1.0.1"), 4001),
        reach=_reach(), now=2.0, owner=1, region=7)
    assert len(ids) == n and table.registered_count == n
    assert table.names_in_region(7) == list(names)
    handles = np.array([table.handle(int(i)) for i in ids])
    assert table.valid_mask(handles).all()
    # Coordinates normalized into [0, 1): cpu 4/16, mem 1024/32768.
    assert np.allclose(table.coords[ids][:, 0], 0.25)
    rec = table.record(int(ids[0]))
    assert rec.host_name == "e0"
    assert rec.conn.nat_type is NatType.PORT_RESTRICTED


def test_expiry_exempts_materialized_and_release_owner():
    sim = Simulator(seed=1)
    table = HostTable(sim)
    a = table.register("a", _conn(), {}, _reach(), now=0.0, owner=0)
    b = table.register("b", _conn(), {}, _reach(), now=0.0, owner=0)
    table.register("c", _conn(), {}, _reach(), now=50.0, owner=1)
    table.flags[a] |= FLAG_MATERIALIZED
    assert table.expire(horizon=10.0) == ["b"]  # a exempt, c fresh
    assert not (table.flags[b] & FLAG_REGISTERED)
    released = table.release_owner(1)
    assert released == ["c"]
    assert table.registered_count == 1  # only the materialized row


def test_zone_selection_vectorized():
    sim = Simulator(seed=1)
    table = HostTable(sim)
    lo = table.register("lo", _conn(), {"cpu_ghz": 2.0, "mem_mb": 1000.0},
                        _reach(), now=0.0)
    hi = table.register("hi", _conn(), {"cpu_ghz": 14.0, "mem_mb": 30000.0},
                        _reach(), now=0.0)
    lower, upper = Zone.whole(2).split()
    ids = np.array([lo, hi])
    assert list(table.ids_in_zone(lower, ids)) == [lo]
    assert list(table.ids_in_zone(upper, ids)) == [hi]


# -- admission ---------------------------------------------------------

def test_token_bucket_deterministic_refill():
    bucket = _TokenBucket(rate=10.0, burst=5.0)
    assert bucket.admit(0.0, 5)
    assert not bucket.admit(0.0, 1)
    assert bucket.retry_after(1) == pytest.approx(0.1)
    assert bucket.admit(0.5, 5)  # refilled 10/s * 0.5s
    assert not bucket.admit(0.5, 1)


def test_rendezvous_batch_registration_and_query():
    sim = Simulator(seed=3)
    env = WavnetEnvironment(sim, n_rendezvous=1)
    server = env.rendezvous[0]
    n = 40
    batch = _RegisterBatch(
        names=tuple(f"b{i}" for i in range(n)),
        public_ip=np.arange(n, dtype=np.uint32) + 0x0B000000,
        public_port=np.full(n, 21000, dtype=np.uint16),
        private_ip=np.full(n, 0xC0A80002, dtype=np.uint32),
        private_port=np.full(n, 4242, dtype=np.uint16),
        nat_code=np.full(n, 3, dtype=np.uint8),
        attr_values=np.tile(np.array([8.0, 16384.0], dtype=np.float32),
                            (n, 1)),
        region=2)
    result = server._on_register_batch(batch, *_reach())
    assert sim.run_coro(result)[1] == n
    assert len(server.hosts) == n
    assert "b7" in server.hosts and server.hosts["b7"].registered
    # Handle-backed directory answers queries without full records.
    records = sim.run_coro(
        server.can.route("get", (0.5, 0.5), 5))
    assert 0 < len(records) <= 5
    assert all(r.host_name.startswith("b") for r in records)


# -- fleet -------------------------------------------------------------

def test_fleet_consistent_assignment_and_failover():
    sim = Simulator(seed=5)
    env = WavnetEnvironment(sim, n_rendezvous=3)
    fleet = env.fleet
    before = {f"n{i}": fleet.assign_index(f"n{i}") for i in range(50)}
    # Stable across repeated calls.
    assert before == {f"n{i}": fleet.assign_index(f"n{i}") for i in range(50)}
    assert len(set(before.values())) == 3  # all servers get endpoints
    victim = env.rendezvous[0]
    victim.crash()
    after = {name: fleet.assign_index(name) for name in before}
    moved = {n for n in before if before[n] != after[n]}
    assert moved == {n for n, idx in before.items() if idx == 0}
    assert all(after[n] != 0 for n in moved)
    victim.restore()
    assert before == {name: fleet.assign_index(name) for name in before}
    loads = fleet.publish_load()
    assert set(loads) == {s.host.name for s in env.rendezvous}


# -- retry coalescing --------------------------------------------------

def test_retry_coalescing_caps_probes_per_destination():
    sim = Simulator(seed=9)
    cloud = WanCloud(sim, default_latency=0.005)
    host = make_public_host(sim, cloud, "caller", "7.2.0.1",
                            network="7.2.0.0/24")
    make_public_host(sim, cloud, "void", "7.2.0.2", network="7.2.0.0/24")
    rpc = RpcEndpoint(host.stack, host.udp.bind(5001), name="caller",
                      retry_concurrency=1)
    outcomes = []

    def attempt():
        try:
            yield from rpc.call(IPv4Address("7.2.0.2"), 9999, "nothing",
                                None, timeout=0.2, retries=4)
        except RpcTimeout:
            outcomes.append("timeout")

    procs = [sim.process(attempt()) for _ in range(4)]

    def drive():
        for p in procs:
            yield p

    sim.run_coro(drive())
    assert outcomes == ["timeout"] * 4
    coalesced = sim.metrics.value("caller.rpc.retries_coalesced")
    retries = sim.metrics.value("caller.rpc.retries")
    assert coalesced > 0
    assert retries < 4 * 3  # ungated would send every retry


# -- table-resident fault verbs ---------------------------------------

def test_endpoint_fault_verbs_without_materialization():
    sim = Simulator(seed=2)
    table = HostTable(sim)
    for i, region in enumerate([0, 0, 1]):
        table.register(f"f{i}", _conn(), {}, _reach(), now=0.0, owner=0,
                       region=region)
    injector = FaultInjector(sim)
    assert injector.endpoint_down(table, "f2") == 1
    assert not table.row_by_name("f2").registered
    assert injector.endpoint_reconnect(table, "f2", owner=1) == 1
    row = table.row_by_name("f2")
    assert row.registered and int(table.owner[table.lookup("f2")]) == 1
    downed = injector.regional_outage(table, 0)
    assert sorted(downed) == ["f0", "f1"]
    assert table.registered_count == 1
    assert sim.metrics.value("faults.injected.regional_outage") == 1


# -- lazy materialization ----------------------------------------------

def test_materialize_demote_rematerialize_cycle():
    sim = Simulator(seed=4)
    env = WavnetEnvironment(sim, n_rendezvous=1)
    env.add_host("anchor")
    env.up()
    host_id = env.add_endpoint("lazy", nat_type="full-cone",
                               attrs={"cpu_ghz": 2.0, "mem_mb": 4096.0})
    assert "lazy" not in env.hosts  # row only, no stack
    wav = env.materialize("lazy")
    sim.run(until=sim.now + 2.0)
    assert "lazy" in env.hosts
    assert bool(env.table.flags[host_id] & FLAG_MATERIALIZED)
    assert "lazy" in env.rendezvous[0].hosts
    vip = wav.virtual_ip
    conn = env.connect("anchor", "lazy")
    assert conn is not None and not conn.relayed
    env.demote("lazy")
    assert "lazy" not in env.hosts
    assert not (env.table.flags[host_id] & FLAG_MATERIALIZED)
    assert f"driver:lazy" not in sim.components
    # Directory row survives demotion with the captured NAT mapping.
    row = env.table.row(host_id)
    assert row.conn.public_ip.value == int(env.table.public_ip[host_id])
    again = env.materialize("lazy")
    sim.run(until=sim.now + 2.0)
    assert again.virtual_ip == vip  # identical rebuild
    assert "lazy" in env.rendezvous[0].hosts
    conn2 = env.connect("anchor", "lazy")
    assert conn2 is not None


# -- the storm scenario -------------------------------------------------

def test_registration_storm_scenario_smoke():
    from repro.scenarios.storm import registration_storm
    sim, payload = registration_storm(
        seed=11, n_endpoints=400, n_rendezvous=2, n_regions=2, batch=64,
        admission_rate=400.0, admission_burst=120.0, hot_zone_limit=60,
        punch_pairs=1)
    assert payload["filled"] == 400
    assert payload["registered"] == 402  # + 2 punch hosts
    assert payload["reconnected"] == payload["outage_endpoints"] == 200
    assert payload["admission_rejected"] > 0
    assert payload["can_splits"] > 0
    assert payload["handles_stored"] >= 400
    assert payload["bytes_per_endpoint"] < 2048
    assert len(payload["punch_latency_s"]) == 1
    assert sum(payload["fleet_load_final"].values()) == 402
