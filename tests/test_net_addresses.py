"""Tests for MAC/IPv4 addressing and CIDR networks."""

import pytest

from repro.net.addresses import BROADCAST_MAC, IPv4Address, IPv4Network, MacAddress, mac_factory


class TestMacAddress:
    def test_parse_and_format_roundtrip(self):
        mac = MacAddress("02:00:00:00:00:2a")
        assert mac.value == 0x02_00_00_00_00_2A
        assert str(mac) == "02:00:00:00:00:2a"

    def test_equality_and_hash(self):
        assert MacAddress(5) == MacAddress(5)
        assert MacAddress(5) != MacAddress(6)
        assert len({MacAddress(5), MacAddress(5)}) == 1

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MacAddress(1).is_broadcast

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            MacAddress("1:2:3")
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_copy_constructor(self):
        a = MacAddress(7)
        assert MacAddress(a) == a

    def test_factory_sequential_and_stable(self):
        mint = mac_factory()
        m1, m2 = mint(), mint()
        assert m1 != m2
        mint2 = mac_factory()
        assert mint2() == m1


class TestIPv4Address:
    def test_parse_and_format(self):
        ip = IPv4Address("10.1.2.3")
        assert ip.value == (10 << 24) | (1 << 16) | (2 << 8) | 3
        assert str(ip) == "10.1.2.3"

    def test_ordering_and_add(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert IPv4Address("10.0.0.1") + 4 == IPv4Address("10.0.0.5")

    def test_broadcast_flag(self):
        assert IPv4Address("255.255.255.255").is_broadcast

    def test_bad_inputs(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPv4Address(bad)


class TestIPv4Network:
    def test_contains(self):
        net = IPv4Network("192.168.1.0/24")
        assert IPv4Address("192.168.1.55") in net
        assert IPv4Address("192.168.2.1") not in net

    def test_normalizes_host_bits(self):
        net = IPv4Network("192.168.1.77/24")
        assert str(net.network) == "192.168.1.0"

    def test_broadcast_and_host(self):
        net = IPv4Network("10.0.0.0/30")
        assert str(net.broadcast) == "10.0.0.3"
        assert str(net.host(1)) == "10.0.0.1"
        with pytest.raises(ValueError):
            net.host(9)

    def test_hosts_enumeration(self):
        net = IPv4Network("10.0.0.0/30")
        assert [str(h) for h in net.hosts()] == ["10.0.0.1", "10.0.0.2"]

    def test_default_route_contains_everything(self):
        assert IPv4Address("8.8.8.8") in IPv4Network("0.0.0.0/0")

    def test_bad_cidr(self):
        with pytest.raises(ValueError):
            IPv4Network("10.0.0.0")
        with pytest.raises(ValueError):
            IPv4Network("10.0.0.0/33")

    def test_equality(self):
        assert IPv4Network("10.0.0.0/8") == IPv4Network("10.1.0.0/8")
        assert IPv4Network("10.0.0.0/8") != IPv4Network("10.0.0.0/9")
