"""Run-twice determinism golden tests.

The kernel fast path (bare-callable scheduling, cancelable lazy timers,
the unshaped-link bypass) all touch event ordering, so these tests pin
the strongest property the kernel promises: the same seed reproduces a
run *exactly* — event counts, metric values, and the trace event log
are identical between two back-to-back runs of the same build.
"""

import json

from repro.apps.netperf import netperf_stream, netserver
from repro.net.addresses import mac_factory
from repro.net.l2 import Link, Port
from repro.net.packet import ETHERTYPE_IPV4, EthernetFrame, Payload
from repro.scenarios.churn import build_churn_env, scripted_churn_plan
from repro.scenarios.emulated import build_emulated_wan
from repro.sim import Simulator


def _run_mesh_once():
    """Fig-8's smallest rung, scaled to test time: a 3-host emulated WAN
    full mesh with keepalives running and one netperf stream measured."""
    sim = Simulator(seed=53)
    env, hosts = build_emulated_wan(sim, 3, wan_bandwidth_bps=100e6,
                                    tcp_mss=8192, udp_timeout=30.0)
    started = sim.process(env.start_all())
    sim.run(until=started)
    mesh = sim.process(env.connect_full_mesh())
    sim.run(until=mesh)
    sim.run(until=sim.now + 10.0)  # several keepalive pulse periods
    source, peer = hosts[0], hosts[1]
    sim.process(netserver(peer.host))
    p = sim.process(netperf_stream(source.host, peer.virtual_ip, duration=2.0))
    sim.run(until=p)
    return {
        "events": sim.events_dispatched,
        "now": sim.now,
        "throughput": p.value.throughput_mbps,
        "metrics": json.dumps(sim.metrics.snapshot(), sort_keys=True,
                              default=str),
        "trace": sim.trace.to_jsonl(),
    }


def test_fig08_scenario_run_twice_identical():
    r1 = _run_mesh_once()
    r2 = _run_mesh_once()
    assert r1["events"] == r2["events"]
    assert r1["now"] == r2["now"]
    assert r1["throughput"] == r2["throughput"]
    assert r1["metrics"] == r2["metrics"]
    assert r1["trace"] == r2["trace"]
    # Sanity: the run actually did something worth pinning.
    assert r1["events"] > 1000
    assert r1["throughput"] > 0


class _Count:
    def __init__(self):
        self.frames = 0

    def on_frame(self, frame, port):
        self.frames += 1


def _run_lossy_once():
    sim = Simulator(seed=11)
    mint = mac_factory()
    sink = _Count()
    a = Port(_Count(), name="a")
    b = Port(sink, name="b")
    link = Link(sim, a, b, latency=0.001, bandwidth_bps=10e6, loss=0.2,
                name="lossy")
    frame = EthernetFrame(mint(), mint(), ETHERTYPE_IPV4,
                          Payload(512, data=None))

    def blaster(sim):
        for _ in range(500):
            a.transmit(frame)
            yield sim.timeout(0.0005)

    sim.process(blaster(sim))
    sim.run()
    return (sink.frames, link.ab.frames_lost, sim.events_dispatched, sim.now)


def test_lossy_link_run_twice_identical():
    r1 = _run_lossy_once()
    r2 = _run_lossy_once()
    assert r1 == r2
    delivered, lost, _events, _now = r1
    # Loss draws come from the link's named RNG stream, so both runs
    # drop the same frames; nothing is double-counted or leaked.
    assert lost > 0 and delivered > 0
    assert delivered + lost == 500


def _run_fault_schedule_once():
    """The scripted churn scenario end to end: rendezvous kill + restore,
    driver crash + restore, NAT reboot, link flap — with repair backoff
    jitter and failover re-registration all in play."""
    sim = Simulator(seed=77)
    env = build_churn_env(sim, n_hosts=3, n_rendezvous=2)
    plan = scripted_churn_plan(sim, env).arm()
    sim.run(until=sim.now + 220.0)
    return {
        "faults": len(plan),
        "events": sim.events_dispatched,
        "now": sim.now,
        "metrics": json.dumps(sim.metrics.snapshot(), sort_keys=True,
                              default=str),
        "trace": sim.trace.to_jsonl(),
    }


def test_fault_schedule_run_twice_identical():
    """Fault injections and the recovery machinery they trigger (repair
    backoff jitter, failover, re-STUN) must be exactly reproducible:
    identical event counts, metric snapshots, and trace logs."""
    r1 = _run_fault_schedule_once()
    r2 = _run_fault_schedule_once()
    assert r1["faults"] == r2["faults"] == 6
    assert r1["events"] == r2["events"]
    assert r1["now"] == r2["now"]
    assert r1["metrics"] == r2["metrics"]
    assert r1["trace"] == r2["trace"]
    # Sanity: the schedule actually exercised the failure plane.
    metrics = json.loads(r1["metrics"])
    assert metrics["faults.injected.crash"]["value"] >= 2
    assert any(k.endswith("driver.repair.success") for k in metrics)
    assert "conn.repaired" in r1["trace"]


def _run_materialize_cycle_once():
    """A table-resident endpoint goes through the full lazy lifecycle —
    registered -> materialized -> punched -> demoted -> re-materialized
    -> re-punched — alongside an always-materialized anchor host."""
    from repro.scenarios.wavnet_env import WavnetEnvironment

    sim = Simulator(seed=31)
    env = WavnetEnvironment(sim, n_rendezvous=2)
    env.add_host("anchor", rendezvous_index=0)
    env.up()
    env.add_endpoint("lazy", rendezvous_index=1, nat_type="full-cone",
                     attrs={"cpu_ghz": 2.0, "mem_mb": 4096.0})
    first = env.materialize("lazy")
    sim.run(until=sim.now + 5.0)
    env.connect("anchor", "lazy")
    state_before = first.driver.export_endpoint_state()
    env.demote("lazy")
    sim.run(until=sim.now + 5.0)
    second = env.materialize("lazy")
    sim.run(until=sim.now + 5.0)
    conn = env.connect("anchor", "lazy")
    state_after = second.driver.export_endpoint_state()
    return {
        "events": sim.events_dispatched,
        "now": sim.now,
        "state_before": json.dumps(state_before, sort_keys=True),
        "state_after": json.dumps(state_after, sort_keys=True),
        "relayed": conn.relayed,
        "metrics": json.dumps(sim.metrics.snapshot(), sort_keys=True,
                              default=str),
        "trace": sim.trace.to_jsonl(),
    }


def test_materialize_demote_cycle_run_twice_identical():
    """The lazy lifecycle must be byte-identical across runs AND across
    materializations: the rebuilt stack exports the same endpoint state
    (NAT mapping, virtual IP, attrs) the demoted one captured."""
    r1 = _run_materialize_cycle_once()
    r2 = _run_materialize_cycle_once()
    assert r1["events"] == r2["events"]
    assert r1["now"] == r2["now"]
    assert r1["metrics"] == r2["metrics"]
    assert r1["trace"] == r2["trace"]
    assert r1["state_before"] == r2["state_before"]
    # The re-materialized stack reproduces the captured control-plane
    # state exactly (relay_peers excluded: connections are rebuilt).
    before = json.loads(r1["state_before"])
    after = json.loads(r1["state_after"])
    for key in ("nat_type", "public_ip", "virtual_ip", "attrs"):
        assert before[key] == after[key], key
    assert not r1["relayed"]
    assert "host.materialize" in r1["trace"]
    assert "host.demote" in r1["trace"]


def _run_hybrid_fluid_once():
    """Mixed fluid+packet traffic under a fault schedule: a fluid bulk
    flow and a packet ttcp transfer share one access link (hybrid
    utilization subtraction in play) while a link flap and a WAN
    partition stall/resume the fluid flows mid-run."""
    from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
    from repro.faults.injector import FaultInjector
    from repro.scenarios.fluid import _find_link, fluidify
    from repro.scenarios.stacks import physical_pair

    pair = physical_pair(0.010, 100e6, seed=29)
    sim = pair.sim
    net = fluidify(pair, refresh_interval=0.1)
    inject = FaultInjector(sim)
    sim.process(ttcp_receiver(pair.host_b))

    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=24 * 1024 * 1024)
    sim.call_in(0.2, lambda: sim.process(
        ttcp_transfer(pair.host_a, pair.ip_b, 4 * 1024 * 1024)))
    sim.call_in(0.5, lambda: inject.link_flap(
        _find_link(sim, "pb.access"), down_for=0.3))
    sim.call_in(1.4, lambda: inject.partition(
        pair.cloud, ["pa"], ["pb"], duration=0.2))
    sim.run(until=flow.done)
    return {
        "events": sim.events_dispatched,
        "now": sim.now,
        "delivered": flow.delivered,
        "metrics": json.dumps(sim.metrics.snapshot(), sort_keys=True,
                              default=str),
        "trace": sim.trace.to_jsonl(),
    }


def test_hybrid_fluid_packet_run_twice_identical():
    """The fluid plane must not break run-twice determinism: solver
    passes, hybrid utilization sampling, stall/resume timers, and
    completion events all replay exactly."""
    r1 = _run_hybrid_fluid_once()
    r2 = _run_hybrid_fluid_once()
    assert r1["events"] == r2["events"]
    assert r1["now"] == r2["now"]
    assert r1["delivered"] == r2["delivered"]
    assert r1["metrics"] == r2["metrics"]
    assert r1["trace"] == r2["trace"]
    # Sanity: both planes and both faults actually fired.
    metrics = json.loads(r1["metrics"])
    assert metrics["fluid.flows.completed"]["value"] == 1
    assert metrics["fluid.flows.stalls"]["value"] >= 2
    assert metrics["faults.injected.link_flap"]["value"] == 1
    assert metrics["faults.injected.partition"]["value"] == 1
    assert "fluid.stall" in r1["trace"] and "fluid.resume" in r1["trace"]


def _run_mixed_cc_bottleneck_once():
    """Three flows with *different* congestion-control strategies (reno,
    cubic, bbr) racing one shared 1 Mbps / 200 ms bottleneck — the
    pluggable-cc dispatch, the BBR pacing timers, and the per-flow
    cwnd/ssthresh trace series all in one run."""
    from repro.scenarios.fairness import fairness_bottleneck

    sim, payload = fairness_bottleneck(seed=19, stack="wavnet",
                                       cc="reno,cubic,bbr", duration=12.0)
    return {
        "events": sim.events_dispatched,
        "now": sim.now,
        "payload": json.dumps(payload, sort_keys=True, default=str),
        "metrics": json.dumps(sim.metrics.snapshot(), sort_keys=True,
                              default=str),
        "trace": sim.trace.to_jsonl(),
    }


def test_mixed_cc_bottleneck_run_twice_identical():
    """Heterogeneous congestion control must not perturb determinism:
    strategy objects keep all their state per-connection, so two runs
    replay exactly — including the paced-send timer ordering BBR adds."""
    r1 = _run_mixed_cc_bottleneck_once()
    r2 = _run_mixed_cc_bottleneck_once()
    assert r1["events"] == r2["events"]
    assert r1["now"] == r2["now"]
    assert r1["payload"] == r2["payload"]
    assert r1["metrics"] == r2["metrics"]
    assert r1["trace"] == r2["trace"]
    # Sanity: all three algorithms ran and moved real traffic.
    payload = json.loads(r1["payload"])
    assert payload["cc"] == ["reno", "cubic", "bbr"]
    assert all(rate > 0 for rate in payload["per_flow_mbps"])


def _run_migration_repair_once():
    """NAT reboot healed by QUIC-style path migration: endpoint
    re-discovery, the challenge/response retry loop (direct + relayed
    legs), and the rebind bookkeeping all touch event ordering."""
    from repro.scenarios.traversal import migration_repair

    sim, payload = migration_repair(seed=31, migration=True)
    return {
        "events": sim.events_dispatched,
        "now": sim.now,
        "payload": json.dumps(payload, sort_keys=True, default=str),
        "metrics": json.dumps(sim.metrics.snapshot(), sort_keys=True,
                              default=str),
        "trace": sim.trace.to_jsonl(),
    }


def test_migration_under_nat_reboot_run_twice_identical():
    r1 = _run_migration_repair_once()
    r2 = _run_migration_repair_once()
    assert r1["events"] == r2["events"]
    assert r1["now"] == r2["now"]
    assert r1["payload"] == r2["payload"]
    assert r1["metrics"] == r2["metrics"]
    assert r1["trace"] == r2["trace"]
    # Sanity: the run really healed via migration, not a re-punch.
    payload = json.loads(r1["payload"])
    assert payload["healed_by_migration"] is True
    assert payload["repunches"] == 0


def _pdes_envelope(name, params, metrics=(), traces=(), seed=5):
    from repro.exp.spec import ExperimentSpec, envelope_bytes
    from repro.sim.pdes import run_partitioned

    spec = ExperimentSpec(name, params=params, seed=seed,
                          metrics=metrics, traces=traces)
    return envelope_bytes(run_partitioned(spec))


def test_pdes_mesh_partitioned_run_twice_identical():
    """The partitioned executor itself must replay exactly: window
    barriers, cross-partition frame injection order, and the shard merge
    are all deterministic across back-to-back runs."""
    params = {"partitions": 2, "n_sites": 2, "duration": 2.0,
              "horizon": 26.0}
    assert _pdes_envelope("pdes_mesh", params) == \
        _pdes_envelope("pdes_mesh", params)


def test_pdes_churn_partitioned_run_twice_identical():
    """Fault-schedule churn split across partitions replays exactly,
    including the cross-partition fault trace."""
    params = {"partitions": 2}
    metrics = ("faults.injected.*",)
    traces = ("fault*",)
    assert _pdes_envelope("pdes_churn", params, metrics, traces) == \
        _pdes_envelope("pdes_churn", params, metrics, traces)


def test_pdes_fluid_mix_partitioned_run_twice_identical():
    """Mixed fluid+packet traffic with per-partition solvers replays
    exactly."""
    params = {"partitions": 2}
    assert _pdes_envelope("pdes_fluid_mix", params, seed=3) == \
        _pdes_envelope("pdes_fluid_mix", params, seed=3)
