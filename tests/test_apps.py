"""Tests for workload generators: ttcp, netperf, HTTP/ab, MPI."""

import pytest

from repro.apps.ab import ApacheBench
from repro.apps.httpd import HttpServer
from repro.apps.mpi import MpiJob, ep_program, ft_program, heat_distribution_program
from repro.apps.netperf import netperf_stream, netserver
from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
from repro.net.addresses import IPv4Address
from repro.scenarios.builder import host_pair, make_lan
from repro.sim import Simulator

B_IP = IPv4Address("10.0.0.2")


class TestTtcp:
    def test_rate_reflects_link(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002, bandwidth_bps=20e6,
                                tcp_mss=8192, queue_capacity=512)
        rx = sim.process(ttcp_receiver(b))
        tx = sim.process(ttcp_transfer(a, B_IP, 4_000_000))
        sim.run(until=tx)
        result = tx.value
        assert 0.5 * 20 < result.rate_mbit < 20
        assert rx.value == 4_000_000 or rx.is_alive is False

    def test_kbps_units(self):
        from repro.apps.ttcp import TtcpResult
        r = TtcpResult(total_bytes=1024 * 1000, elapsed=10.0)
        assert r.rate_kbps == pytest.approx(100.0)


class TestNetperf:
    def test_duration_and_series(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002, bandwidth_bps=50e6,
                                tcp_mss=8192, queue_capacity=512)
        sim.process(netserver(b))
        p = sim.process(netperf_stream(a, B_IP, duration=10.0, interval=0.5))
        sim.run(until=p)
        result = p.value
        assert len(result.times) == pytest.approx(20, abs=2)
        assert 0.5 * 50 < result.throughput_mbps < 50
        # steady-state samples hover near the average
        assert max(result.rates_mbps[4:]) < 60

    def test_stream_to_nowhere_reports_zero(self):
        sim = Simulator()
        a, b, _link = host_pair(sim)
        p = sim.process(netperf_stream(a, IPv4Address("10.0.0.99"), duration=3.0))
        sim.run(until=sim.now + 60)
        # connection never establishes; process may still be waiting on
        # SYN retries - give it the timeout path
        if p.triggered:
            assert p.value.throughput_mbps == 0


class TestHttpAb:
    def build(self, latency=0.005, bandwidth=50e6):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=latency, bandwidth_bps=bandwidth)
        server = HttpServer(b)
        return sim, a, b, server

    def test_single_request_roundtrip(self):
        sim, a, b, server = self.build()
        ab = ApacheBench(a, B_IP, path="/file1k", concurrency=1)
        p = sim.process(ab.run_requests(5))
        sim.run(until=p)
        report = p.value
        assert report.requests_completed == 5
        assert report.requests_failed == 0
        assert server.requests_served == 5

    def test_connect_time_tracks_rtt(self):
        sim, a, b, server = self.build(latency=0.040)
        ab = ApacheBench(a, B_IP, concurrency=1)
        p = sim.process(ab.run_requests(4))
        sim.run(until=p)
        mn, mean, mx = p.value.connect_ms()
        assert mn >= 80.0  # one RTT minimum
        assert mean < 200.0

    def test_larger_files_lower_throughput(self):
        rates = {}
        for path in ("/file1k", "/file64k"):
            sim, a, b, server = self.build()
            ab = ApacheBench(a, B_IP, path=path, concurrency=4)
            p = sim.process(ab.run_for(10.0))
            sim.run(until=p)
            rates[path] = p.value.requests_per_second
        assert rates["/file1k"] > rates["/file64k"] > 0

    def test_concurrency_scales_throughput(self):
        rates = {}
        for c in (1, 8):
            sim, a, b, server = self.build(latency=0.030)
            ab = ApacheBench(a, B_IP, concurrency=c)
            p = sim.process(ab.run_for(10.0))
            sim.run(until=p)
            rates[c] = p.value.requests_per_second
        assert rates[8] > 3 * rates[1]

    def test_missing_file_is_failure(self):
        sim, a, b, server = self.build()
        ab = ApacheBench(a, B_IP, path="/nope", concurrency=1)
        p = sim.process(ab.run_requests(2))
        sim.run(until=p)
        assert p.value.requests_failed == 2

    def test_throughput_series_buckets(self):
        sim, a, b, server = self.build()
        ab = ApacheBench(a, B_IP, concurrency=2)
        p = sim.process(ab.run_for(5.0))
        sim.run(until=p)
        t, rps = p.value.throughput_series(1.0)
        assert len(t) >= 4
        assert rps.mean() == pytest.approx(p.value.requests_per_second, rel=0.3)


class TestMpi:
    def make_cluster(self, sim, n=4, latency=0.0002, bandwidth=1e9):
        lan = make_lan(sim, n, subnet="10.5.0.0/24", link_latency=latency,
                       link_bandwidth_bps=bandwidth, tcp_mss=8192)
        ips = [h.stack.ips[0] for h in lan.hosts]
        return lan.hosts, ips

    def test_heat_completes(self):
        sim = Simulator()
        hosts, ips = self.make_cluster(sim)
        job = MpiJob(hosts, ips, heat_distribution_program(64, iterations=20))
        p = sim.process(job.run())
        sim.run(until=p)
        assert p.value > 0

    def test_heat_scales_with_grid(self):
        times = {}
        for m in (128, 256):
            sim = Simulator()
            hosts, ips = self.make_cluster(sim)
            # Modest base_flops keeps the kernel compute-bound so grid
            # size, not LAN latency, dominates.
            job = MpiJob(hosts, ips, heat_distribution_program(m, iterations=30),
                         base_flops=1e8)
            p = sim.process(job.run())
            sim.run(until=p)
            times[m] = p.value
        assert times[256] > 1.5 * times[128]

    def test_slow_link_dominates_heat(self):
        """One rank across a WAN link slows the whole job (Fig 11's
        before-migration situation)."""
        def run(wan_latency):
            sim = Simulator()
            lan = make_lan(sim, 3, subnet="10.5.0.0/24", link_latency=0.0002,
                           link_bandwidth_bps=1e9, tcp_mss=8192)
            from repro.net.l2 import Link
            from repro.net.stack import Host
            from repro.scenarios.builder import named_mac_factory
            far = Host(sim, "far", named_mac_factory("far"), tcp_mss=8192)
            iface = far.add_nic().configure("10.5.0.200", "10.5.0.0/24")
            far.stack.connected_route_for(iface)
            Link(sim, iface.port, lan.switch.new_port(), latency=wan_latency,
                 bandwidth_bps=20e6)
            hosts = lan.hosts + [far]
            ips = [h.stack.ips[0] for h in hosts]
            job = MpiJob(hosts, ips, heat_distribution_program(64, iterations=50))
            p = sim.process(job.run())
            sim.run(until=p)
            return p.value

        near = run(0.0002)
        far = run(0.037)
        assert far > 3 * near

    def test_ep_insensitive_to_latency(self):
        def run(latency):
            sim = Simulator()
            hosts, ips = self.make_cluster(sim, latency=latency)
            job = MpiJob(hosts, ips, ep_program(2**27), base_flops=2e9)
            p = sim.process(job.run())
            sim.run(until=p)
            return p.value

        near, far = run(0.0002), run(0.050)
        assert far < 1.5 * near

    def test_ft_sensitive_to_latency_and_bandwidth(self):
        def run(latency, bw):
            sim = Simulator()
            hosts, ips = self.make_cluster(sim, latency=latency, bandwidth=bw)
            job = MpiJob(hosts, ips, ft_program((64, 64, 32), iterations=3),
                         base_flops=2e9)
            p = sim.process(job.run())
            sim.run(until=p)
            return p.value

        near = run(0.0002, 1e9)
        far = run(0.050, 20e6)
        assert far > 5 * near

    def test_barrier_synchronizes(self):
        sim = Simulator()
        hosts, ips = self.make_cluster(sim)
        order = []

        def program(ctx):
            yield from ctx.compute(1e6 * (ctx.rank + 1))
            order.append(("pre", ctx.rank, ctx.sim.now))
            yield from ctx.barrier()
            order.append(("post", ctx.rank, ctx.sim.now))

        job = MpiJob(hosts, ips, program)
        p = sim.process(job.run())
        sim.run(until=p)
        post_times = [t for phase, _r, t in order if phase == "post"]
        pre_times = [t for phase, _r, t in order if phase == "pre"]
        assert max(post_times) >= max(pre_times)
        assert max(post_times) - min(post_times) < 0.05

    def test_validation(self):
        sim = Simulator()
        hosts, ips = self.make_cluster(sim, n=2)
        with pytest.raises(ValueError):
            MpiJob(hosts, ips[:1], lambda ctx: None)
        with pytest.raises(ValueError):
            MpiJob(hosts[:1], ips[:1], lambda ctx: None)
