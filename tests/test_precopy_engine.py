"""Unit tests for the pre-copy engine against a stub transport — exact
round accounting without a network underneath."""

import pytest

from repro.sim import Simulator
from repro.vm.dirty import HotColdDirtyModel, IdleDirtyModel, UniformDirtyModel
from repro.vm.machine import PAGE_SIZE, VirtualMachine
from repro.vm.migration import (
    MigrationReport,
    PreCopyConfig,
    _round_bytes,
    run_precopy,
)


class StubConn:
    """Transport stub with a fixed goodput; records per-send bytes."""

    def __init__(self, sim, rate_bps):
        self.sim = sim
        self.rate = rate_bps
        self.sends = []

    def send(self, nbytes, obj=None):
        self.sends.append(nbytes)
        return self.sim.timeout(nbytes * 8 / self.rate)


def make_vm(sim, memory_mb=16, dirty_model=None):
    from repro.scenarios.builder import named_mac_factory

    return VirtualMachine(sim, "vm", memory_mb, named_mac_factory("stub"),
                          dirty_model=dirty_model or IdleDirtyModel())


def run(vm, rate_bps=100e6, config=None):
    sim = vm.sim
    conn = StubConn(sim, rate_bps)
    report = MigrationReport(vm_name=vm.name, started_at=sim.now)
    proc = sim.process(run_precopy(vm, conn, config or PreCopyConfig(), report))
    sim.run(until=proc)
    return report, proc.value, conn


class TestPreCopyRounds:
    def test_idle_vm_single_round(self):
        sim = Simulator()
        vm = make_vm(sim)
        report, remaining, conn = run(vm)
        assert report.n_rounds == 1
        assert remaining == 0
        assert report.rounds[0][0] == vm.total_pages

    def test_round_bytes_include_page_overhead(self):
        assert _round_bytes(10) == 10 * (PAGE_SIZE + 16)

    def test_dirty_vm_rounds_shrink(self):
        sim = Simulator()
        vm = make_vm(sim, dirty_model=UniformDirtyModel(rate_pages_per_s=600))
        report, remaining, conn = run(vm, rate_bps=100e6)
        pages = [p for p, _t in report.rounds]
        assert len(pages) >= 2
        assert all(pages[i] > pages[i + 1] for i in range(len(pages) - 1))
        assert remaining <= PreCopyConfig().stop_pages

    def test_hot_set_triggers_wws_bailout(self):
        """A hot set larger than stop_pages that never shrinks must hit
        the min_progress bailout, not loop to max_rounds."""
        sim = Simulator()
        vm = make_vm(sim, memory_mb=16,
                     dirty_model=HotColdDirtyModel(hot_fraction=0.2,
                                                   hot_rate=1e6, cold_rate=0))
        config = PreCopyConfig(max_rounds=30)
        report, remaining, conn = run(vm, config=config)
        assert not report.converged
        assert report.n_rounds < 30
        hot_pages = int(vm.total_pages * 0.2)
        assert remaining == pytest.approx(hot_pages, rel=0.05)

    def test_max_rounds_zero_is_stop_and_copy(self):
        sim = Simulator()
        vm = make_vm(sim, dirty_model=UniformDirtyModel(1e9))
        report, remaining, conn = run(vm, config=PreCopyConfig(max_rounds=0))
        assert report.n_rounds == 0
        assert remaining == vm.total_pages

    def test_slower_link_means_more_dirty_per_round(self):
        sim = Simulator()
        model = UniformDirtyModel(rate_pages_per_s=400)
        vm_fast = make_vm(sim, dirty_model=model)
        _r_fast, rem_fast, _ = run(vm_fast, rate_bps=400e6)
        vm_slow = make_vm(sim, dirty_model=model)
        report_slow, rem_slow, _ = run(vm_slow, rate_bps=20e6)
        # The slow link's first round lasts longer, so round 2 is bigger.
        assert report_slow.rounds[1][0] > 0
        assert report_slow.bytes_transferred > _round_bytes(vm_slow.total_pages)

    def test_report_total_and_downtime_accounting(self):
        report = MigrationReport(vm_name="x", started_at=10.0)
        report.downtime_start = 40.0
        report.finished_at = 41.5
        assert report.total_time == pytest.approx(31.5)
        assert report.downtime == pytest.approx(1.5)
