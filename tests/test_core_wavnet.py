"""End-to-end tests of the WAVNet core: punching through NATs via the
rendezvous layer, L2 tunneling, keepalive, and the virtual LAN."""

import pytest

from repro.core.connection import ConnectionState
from repro.core.options import ConnectOptions
from repro.net.icmp import Pinger
from repro.net.tcp import drain_bytes, stream_bytes
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator


def build_env(n_hosts=2, nat_types=None, **host_kwargs):
    sim = Simulator(seed=11)
    env = WavnetEnvironment(sim)
    nat_types = nat_types or ["port-restricted"] * n_hosts
    for i in range(n_hosts):
        env.add_host(f"h{i}", nat_type=nat_types[i], **host_kwargs)
    started = sim.process(env.start_all())
    sim.run(until=started)
    return sim, env


class TestConnectionSetup:
    def test_drivers_start_and_register(self):
        sim, env = build_env(2)
        rvz = env.rendezvous[0]
        assert set(rvz.hosts) == {"h0", "h1"}
        for wav_host in env.hosts.values():
            assert wav_host.driver.nat_type is not None
            assert wav_host.driver.public_endpoint is not None

    def test_connect_pair_establishes_both_ends(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        conn = p.value
        assert conn.usable
        peer = env.hosts["h1"].driver.connections["h0"]
        assert peer.usable

    def test_connect_through_all_cone_nat_combinations(self):
        for nat_a in ("full-cone", "restricted-cone", "port-restricted"):
            for nat_b in ("full-cone", "port-restricted"):
                sim, env = build_env(2, nat_types=[nat_a, nat_b])
                p = sim.process(env.connect_pair("h0", "h1"))
                sim.run(until=p)
                assert p.value.usable, f"{nat_a} <-> {nat_b} failed"

    def test_public_host_connects_too(self):
        sim = Simulator(seed=12)
        env = WavnetEnvironment(sim)
        env.add_host("pub", public=True)
        env.add_host("nat", nat_type="port-restricted")
        started = sim.process(env.start_all())
        sim.run(until=started)
        p = sim.process(env.connect_pair("pub", "nat"))
        sim.run(until=p)
        assert p.value.usable

    def test_symmetric_pair_cannot_punch_without_relay(self):
        sim, env = build_env(2, nat_types=["symmetric", "symmetric"],
                             punch_timeout=3.0)
        driver = env.hosts["h0"].driver

        def attempt(sim):
            records = yield from driver.query_resources(limit=8)
            target = next(r for r in records if r.host_name == "h1")
            try:
                yield from driver.connect(
                    target, options=ConnectOptions(allow_relay=False))
                return "connected"
            except TimeoutError:
                return "failed"

        p = sim.process(attempt(sim))
        sim.run(until=p)
        assert p.value == "failed"

    def test_symmetric_pair_falls_back_to_relay(self):
        """Extension beyond the paper: when punching is impossible, the
        tunnel relays through the rendezvous server."""
        from repro.net.icmp import Pinger

        sim, env = build_env(2, nat_types=["symmetric", "symmetric"],
                             punch_timeout=3.0)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        conn = p.value
        assert conn.usable and conn.relayed
        ping = sim.process(Pinger(env.hosts["h0"].host.stack,
                                  env.hosts["h1"].virtual_ip,
                                  interval=0.5, timeout=3.0).run(3))
        sim.run(until=ping)
        assert ping.value.lost == 0
        assert env.rendezvous[0].frames_relayed > 0
        # Relayed path costs an extra hop through the rendezvous server.
        direct_rtt = 2 * 0.025
        assert ping.value.min_rtt() > 1.5 * direct_rtt

    def test_connection_setup_time_is_a_few_rtts(self):
        sim, env = build_env(2)
        t0 = sim.now

        def timed(sim):
            yield sim.process(env.connect_pair("h0", "h1"))
            return sim.now - t0

        p = sim.process(timed(sim))
        sim.run(until=p)
        # Query + broker + punch over a 25 ms-latency cloud: well under 2 s.
        assert p.value < 2.0

    def test_reconnect_returns_existing_connection(self):
        sim, env = build_env(2)
        p1 = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p1)
        p2 = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p2)
        assert p2.value is p1.value


class TestVirtualLan:
    def test_ping_over_virtual_ips(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        h0 = env.hosts["h0"]
        h1 = env.hosts["h1"]
        pinger = Pinger(h0.host.stack, h1.virtual_ip, interval=0.5)
        proc = sim.process(pinger.run(4))
        sim.run(until=proc)
        result = proc.value
        assert result.lost == 0
        # Virtual RTT ≈ physical RTT (~51 ms path) + small tap overhead.
        physical = 2 * (0.025 + 2 * 0.0005 + 2 * 0.0001)
        for rtt in result.rtts[1:]:
            assert rtt == pytest.approx(physical, rel=0.25)

    def test_tcp_over_virtual_lan(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        h0, h1 = env.hosts["h0"], env.hosts["h1"]
        listener = h1.host.tcp.listen(5001)
        result = {}

        def server(sim):
            conn = yield listener.accept()
            result["got"] = yield from drain_bytes(conn)

        def client(sim):
            conn = h0.host.tcp.connect(h1.virtual_ip, 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 500_000)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=sim.now + 120)
        assert result.get("got") == 500_000

    def test_broadcast_reaches_all_peers(self):
        sim, env = build_env(3)
        mesh = sim.process(env.connect_full_mesh())
        sim.run(until=mesh)
        # ARP for h2's vip from h0 must traverse the broadcast path.
        h0, h2 = env.hosts["h0"], env.hosts["h2"]
        proc = sim.process(Pinger(h0.host.stack, h2.virtual_ip).run(1))
        sim.run(until=proc)
        assert proc.value.lost == 0

    def test_wav_switch_learns_macs(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        h0, h1 = env.hosts["h0"], env.hosts["h1"]
        proc = sim.process(Pinger(h0.host.stack, h1.virtual_ip).run(2))
        sim.run(until=proc)
        sw = h0.driver.switch
        assert h1.driver.wav_iface.mac in sw.mac_table
        assert sw.frames_unicast > 0


class TestKeepalive:
    def test_pulses_flow_on_idle_connection(self):
        sim, env = build_env(2, udp_timeout=30.0)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        conn = p.value
        sim.run(until=sim.now + 60)
        assert conn.usable
        assert conn.pulses_received >= 8  # ~1 per 5 s for 60 s

    def test_connection_survives_nat_timeout_via_pulses(self):
        sim, env = build_env(2, udp_timeout=12.0)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        sim.run(until=sim.now + 90)  # many NAT timeout periods
        h0, h1 = env.hosts["h0"], env.hosts["h1"]
        proc = sim.process(Pinger(h0.host.stack, h1.virtual_ip, interval=0.3).run(3))
        sim.run(until=proc)
        assert proc.value.lost == 0

    def test_dead_peer_detected(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        conn = p.value
        # h1 goes silent (driver stops: no pulses, no acks).
        env.hosts["h1"].driver.stop()
        sim.run(until=sim.now + 60)
        assert conn.state is ConnectionState.DEAD
        # Repair supervision may be mid-punch toward the dead peer, but
        # no usable tunnel may exist while h1 stays down.
        refreshed = env.hosts["h0"].driver.connections.get("h1")
        assert refreshed is None or not refreshed.usable

    def test_keepalive_traffic_is_tiny(self):
        """The 2-byte pulse: measure keepalive bandwidth on an idle link."""
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        conn = p.value
        start_bytes = conn.bytes_sent
        t0 = sim.now
        sim.run(until=t0 + 100)
        rate = (conn.bytes_sent - start_bytes) / 100.0
        assert rate < 10  # bytes/sec of WAVNet payload on the wire
