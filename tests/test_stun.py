"""Tests for STUN endpoint discovery and NAT classification."""

import pytest

from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.l2 import Link
from repro.net.stack import Host
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_natted_site, named_mac_factory
from repro.sim import Simulator
from repro.stun.client import StunClient
from repro.stun.server import StunServerPair


def build(sim, nat_type=None):
    """Cloud + STUN server pair + one probing host (NATed or public)."""
    cloud = WanCloud(sim, default_latency=0.010)
    stun = StunServerPair(sim, cloud)
    if nat_type is None:
        host = Host(sim, "pub", named_mac_factory("pub"))
        iface = host.add_nic().configure("8.0.0.50", "8.0.0.0/24")
        host.stack.connected_route_for(iface)
        host.stack.add_route("0.0.0.0/0", iface)
        Link(sim, iface.port, cloud.attach("pub"), latency=0.001, bandwidth_bps=1e9)
        site = None
    else:
        site = make_natted_site(sim, cloud, "site", "8.0.0.1", nat_type=nat_type)
        host = site.hosts[0]
    return cloud, stun, host, site


def classify(nat_type):
    sim = Simulator(seed=4)
    _cloud, stun, host, _site = build(sim, nat_type)
    sock = host.udp.bind(7100)
    client = StunClient(host.stack, sock, "9.9.9.1", timeout=0.5)
    proc = sim.process(client.classify())
    sim.run(until=30)
    return proc.value


class TestClassification:
    def test_open_host(self):
        result = classify(None)
        assert result.nat_type is NatType.OPEN
        assert str(result.mapped_ip) == "8.0.0.50"
        assert result.mapped_port == 7100

    def test_full_cone(self):
        assert classify("full-cone").nat_type is NatType.FULL_CONE

    def test_restricted_cone(self):
        assert classify("restricted-cone").nat_type is NatType.RESTRICTED_CONE

    def test_port_restricted(self):
        assert classify("port-restricted").nat_type is NatType.PORT_RESTRICTED

    def test_symmetric(self):
        assert classify("symmetric").nat_type is NatType.SYMMETRIC

    def test_mapped_endpoint_is_public(self):
        result = classify("port-restricted")
        assert str(result.mapped_ip) == "8.0.0.1"
        assert result.mapped_port != 7100  # translated


class TestEndpointDiscovery:
    def test_discover_endpoint_matches_nat_table(self):
        sim = Simulator()
        _cloud, stun, host, site = build(sim, "port-restricted")
        sock = host.udp.bind(7200)
        client = StunClient(host.stack, sock, "9.9.9.1")
        proc = sim.process(client.discover_endpoint())
        sim.run(until=10)
        ip, port = proc.value
        assert ip == site.public_ip
        assert port in {m.external_port for m in site.nat.udp_mappings._by_external.values()}

    def test_blocked_server_returns_none(self):
        sim = Simulator()
        _cloud, stun, host, _site = build(sim, "port-restricted")
        sock = host.udp.bind(7200)
        client = StunClient(host.stack, sock, "9.9.8.77", timeout=0.3)  # no such server
        proc = sim.process(client.discover_endpoint())
        sim.run(until=10)
        assert proc.value is None

    def test_blocked_classification_flags_blocked(self):
        sim = Simulator()
        _cloud, stun, host, _site = build(sim, "port-restricted")
        sock = host.udp.bind(7200)
        client = StunClient(host.stack, sock, "9.9.8.77", timeout=0.3)
        proc = sim.process(client.classify())
        sim.run(until=10)
        assert proc.value.blocked
        with pytest.raises(RuntimeError):
            proc.value.public_endpoint

    def test_probe_then_reuse_socket_for_data(self):
        """The mapping discovered via STUN belongs to the probing socket,
        so data sent from that socket appears from the same endpoint."""
        sim = Simulator()
        cloud, stun, host, site = build(sim, "full-cone")
        sock = host.udp.bind(7300)
        client = StunClient(host.stack, sock, "9.9.9.1")
        proc = sim.process(client.discover_endpoint())
        sim.run(until=10)
        _ip, port = proc.value
        ep = site.nat.external_endpoint_for(host.stack.ips[0], 7300,
                                            IPv4Address("9.9.9.1"), 3478)
        assert ep[1] == port

    def test_server_counts_requests(self):
        sim = Simulator()
        _cloud, stun, host, _site = build(sim, "full-cone")
        sock = host.udp.bind(7400)
        client = StunClient(host.stack, sock, "9.9.9.1")
        proc = sim.process(client.classify())
        sim.run(until=30)
        assert stun.requests_served >= 2
