"""Tests for the distance locator matrix and grouping algorithms (§II.D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    brute_force_group,
    greedy_group,
    locality_sensitive_group,
    random_group,
)
from repro.core.latency import LatencyMatrix


def clustered_matrix(n_clusters=3, per_cluster=6, intra=0.002, inter=0.150, seed=0):
    """Synthetic geo-clustered RTT matrix."""
    rng = np.random.default_rng(seed)
    n = n_clusters * per_cluster
    m = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            base = intra if i // per_cluster == j // per_cluster else inter
            rtt = base * rng.uniform(0.8, 1.2)
            m[i, j] = m[j, i] = rtt
    return LatencyMatrix.from_array([f"h{i}" for i in range(n)], m)


class TestLatencyMatrix:
    def test_update_is_symmetric(self):
        lm = LatencyMatrix(["a", "b", "c"])
        lm.update("a", "b", 0.05)
        assert lm.rtt("b", "a") == 0.05

    def test_negative_rtt_rejected(self):
        lm = LatencyMatrix(["a", "b"])
        with pytest.raises(ValueError):
            lm.update("a", "b", -1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            LatencyMatrix(["a", "a"])

    def test_from_array_requires_symmetry(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            LatencyMatrix.from_array(["a", "b"], m)

    def test_sorted_rows_order(self):
        lm = LatencyMatrix(["a", "b", "c"])
        lm.update("a", "b", 0.5)
        lm.update("a", "c", 0.1)
        lm.update("b", "c", 0.2)
        row = list(lm.sorted_rows()[0])
        assert row == [0, 2, 1]  # self, then c (0.1), then b (0.5)

    def test_sorted_rows_cache_invalidation(self):
        lm = LatencyMatrix(["a", "b", "c"])
        lm.update("a", "b", 0.5)
        lm.update("a", "c", 0.1)
        lm.update("b", "c", 0.2)
        _ = lm.sorted_rows()
        lm.update("a", "b", 0.01)
        assert list(lm.sorted_rows()[0]) == [0, 1, 2]

    def test_coverage_and_complete(self):
        lm = LatencyMatrix(["a", "b", "c"])
        assert not lm.complete()
        assert lm.coverage() == 0.0
        lm.update("a", "b", 0.1)
        assert lm.coverage() == pytest.approx(2 / 6)
        lm.update("a", "c", 0.1)
        lm.update("b", "c", 0.1)
        assert lm.complete()

    def test_group_average_matches_formula(self):
        lm = LatencyMatrix(["a", "b", "c"])
        lm.update("a", "b", 0.1)
        lm.update("a", "c", 0.2)
        lm.update("b", "c", 0.3)
        # Formula (1): sum over unordered pairs / C(3,2) = 0.6/3
        assert lm.group_average([0, 1, 2]) == pytest.approx(0.2)
        assert lm.group_max([0, 1, 2]) == pytest.approx(0.3)


class TestGroupingAlgorithms:
    def test_locality_sensitive_finds_a_cluster(self):
        lm = clustered_matrix()
        result = locality_sensitive_group(lm, 6)
        # The chosen 6 hosts should all be in one cluster (avg ~2 ms).
        assert result.average_latency < 0.01
        clusters = {i // 6 for i in result.members}
        assert len(clusters) == 1

    def test_matches_brute_force_on_small_instances(self):
        for seed in range(5):
            lm = clustered_matrix(n_clusters=2, per_cluster=4, seed=seed)
            approx = locality_sensitive_group(lm, 3)
            exact = brute_force_group(lm, 3)
            assert approx.average_latency <= exact.average_latency * 1.25

    def test_beats_random_selection(self):
        lm = clustered_matrix(n_clusters=4, per_cluster=8, seed=3)
        rng = np.random.default_rng(0)
        ls = locality_sensitive_group(lm, 8)
        rand_avgs = [random_group(lm, 8, rng).average_latency for _ in range(20)]
        assert ls.average_latency < min(rand_avgs)

    def test_greedy_reasonable(self):
        lm = clustered_matrix(seed=7)
        g = greedy_group(lm, 6)
        assert g.average_latency < 0.01

    def test_max_latency_filter(self):
        lm = clustered_matrix(seed=1)
        unfiltered = locality_sensitive_group(lm, 6)
        filtered = locality_sensitive_group(lm, 6, max_latency=0.01)
        assert filtered.max_latency <= 0.01
        assert filtered.average_latency >= unfiltered.average_latency - 1e-12

    def test_infeasible_filter_raises(self):
        lm = clustered_matrix(seed=1)
        with pytest.raises(ValueError):
            locality_sensitive_group(lm, 6, max_latency=1e-9)

    def test_k_bounds_checked(self):
        lm = clustered_matrix()
        with pytest.raises(ValueError):
            locality_sensitive_group(lm, 1)
        with pytest.raises(ValueError):
            locality_sensitive_group(lm, len(lm) + 1)

    def test_candidates_linear_in_n_times_k(self):
        """The O(N·k) complexity claim: candidate count <= N·(k+1)."""
        lm = clustered_matrix(n_clusters=5, per_cluster=8, seed=2)
        k = 6
        result = locality_sensitive_group(lm, k)
        assert result.candidates_examined <= len(lm) * (k + 1)

    def test_k_equals_n(self):
        lm = clustered_matrix(n_clusters=1, per_cluster=5)
        result = locality_sensitive_group(lm, 5)
        assert len(result.members) == 5

    def test_result_names(self):
        lm = clustered_matrix(n_clusters=2, per_cluster=3)
        result = locality_sensitive_group(lm, 3)
        names = result.names(lm)
        assert len(names) == 3 and all(n.startswith("h") for n in names)

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_ls_never_worse_than_random_median(self, seed, k):
        rng = np.random.default_rng(seed)
        n = 16
        sym = rng.uniform(0.001, 0.3, size=(n, n))
        m = (sym + sym.T) / 2
        np.fill_diagonal(m, 0.0)
        lm = LatencyMatrix.from_array([f"h{i}" for i in range(n)], m)
        ls = locality_sensitive_group(lm, k)
        rand = sorted(random_group(lm, k, rng).average_latency for _ in range(9))
        assert ls.average_latency <= rand[4] + 1e-12  # beats the median

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_group_average_bounds(self, seed):
        rng = np.random.default_rng(seed)
        n = 10
        sym = rng.uniform(0.001, 0.3, size=(n, n))
        m = (sym + sym.T) / 2
        np.fill_diagonal(m, 0.0)
        lm = LatencyMatrix.from_array([f"h{i}" for i in range(n)], m)
        result = locality_sensitive_group(lm, 4)
        off = m[~np.eye(n, dtype=bool)]
        assert off.min() - 1e-12 <= result.average_latency <= result.max_latency + 1e-12
