"""Unit tests for WAVNet core plumbing: tap device, packet assembler,
WAV-Switch, and encapsulation overhead accounting."""

import pytest

from repro.core.assembler import (
    DATA_HEADER,
    PULSE_SIZE,
    PacketAssembler,
    WavData,
    WavPunch,
    WavRelay,
)
from repro.core.switch import WavSwitch
from repro.core.tap import TapDevice
from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.net.l2 import Port, patch
from repro.net.packet import EthernetFrame, Payload, UdpDatagram, ipv4
from repro.sim import Simulator


def make_frame(src=1, dst=2, payload_size=100):
    pkt = ipv4(IPv4Address("10.99.0.1"), IPv4Address("10.99.0.2"),
               UdpDatagram(1, 2, Payload(payload_size)))
    return EthernetFrame(MacAddress(src), MacAddress(dst), 0x0800, pkt)


class TestAssembler:
    def test_data_encapsulation_size(self):
        pa = PacketAssembler()
        frame = make_frame()
        payload = pa.encapsulate(frame)
        assert payload.size == DATA_HEADER + frame.size
        assert isinstance(payload.data, WavData)

    def test_decapsulation_roundtrip(self):
        pa = PacketAssembler()
        frame = make_frame()
        assert pa.decapsulate(pa.encapsulate(frame)) is frame
        assert pa.frames_encapsulated == pa.frames_decapsulated == 1

    def test_decapsulate_rejects_non_data(self):
        pa = PacketAssembler()
        assert pa.decapsulate(pa.pulse()) is None

    def test_pulse_is_two_bytes(self):
        pa = PacketAssembler()
        assert pa.pulse().size == PULSE_SIZE == 2

    def test_punch_variants(self):
        p = PacketAssembler.punch("alice", 3)
        a = PacketAssembler.punch("alice", 3, ack=True)
        assert isinstance(p.data, WavPunch)
        assert p.data.sender == "alice" and p.data.nonce == 3
        assert type(a.data).__name__ == "WavPunchAck"

    def test_relay_wraps_inner(self):
        frame = make_frame()
        inner = WavData(frame)
        relay = WavRelay("a", "b", inner)
        assert relay.size == 16 + inner.size

    def test_byte_accounting(self):
        pa = PacketAssembler()
        frame = make_frame()
        pa.encapsulate(frame)
        pa.encapsulate(frame)
        assert pa.bytes_tunneled == 2 * (DATA_HEADER + frame.size)


class FakeConn:
    def __init__(self, usable=True):
        self.usable = usable
        self.sent = []

    def send(self, payload):
        self.sent.append(payload)


class TestWavSwitch:
    def test_learn_and_unicast(self):
        sw = WavSwitch("h")
        conn = FakeConn()
        sw.learn(MacAddress(7), conn)
        out = sw.select(make_frame(dst=7), [conn, FakeConn()])
        assert out == [conn]
        assert sw.frames_unicast == 1

    def test_unknown_mac_broadcasts(self):
        sw = WavSwitch("h")
        conns = [FakeConn(), FakeConn()]
        out = sw.select(make_frame(dst=42), conns)
        assert out == conns
        assert sw.frames_broadcast == 1

    def test_broadcast_frame_goes_everywhere(self):
        sw = WavSwitch("h")
        conns = [FakeConn(), FakeConn(), FakeConn(usable=False)]
        frame = EthernetFrame(MacAddress(1), BROADCAST_MAC, 0x0800,
                              make_frame().payload)
        out = sw.select(frame, conns)
        assert len(out) == 2  # dead connection excluded

    def test_dead_connection_entry_purged_on_lookup(self):
        sw = WavSwitch("h")
        conn = FakeConn(usable=False)
        sw.learn(MacAddress(7), conn)
        assert sw.lookup(MacAddress(7)) is None
        assert MacAddress(7) not in sw.mac_table

    def test_forget_connection(self):
        sw = WavSwitch("h")
        conn = FakeConn()
        sw.learn(MacAddress(1), conn)
        sw.learn(MacAddress(2), conn)
        sw.forget_connection(conn)
        assert not sw.mac_table

    def test_relearning_moves_mac(self):
        """Fig 5's core mechanism at the WAV-Switch level."""
        sw = WavSwitch("h")
        old, new = FakeConn(), FakeConn()
        sw.learn(MacAddress(9), old)
        sw.learn(MacAddress(9), new)  # gratuitous ARP came over `new`
        assert sw.select(make_frame(dst=9), [old, new]) == [new]


class TestTapDevice:
    def test_capture_pays_cost_and_is_serialized(self):
        sim = Simulator()
        tap = TapDevice(sim, per_frame_cost=100e-6, per_byte_cost=0.0)
        captured = []
        tap.capture_handler = lambda f: captured.append(sim.now)
        frame = make_frame()
        # Two frames injected back-to-back must come out 100us apart.
        tap.on_frame(frame, tap.port)
        tap.on_frame(frame, tap.port)
        sim.run()
        assert captured[0] == pytest.approx(100e-6)
        assert captured[1] == pytest.approx(200e-6)

    def test_inject_transmits_on_port(self):
        sim = Simulator()
        tap = TapDevice(sim, per_frame_cost=10e-6, per_byte_cost=0.0)
        got = []

        class Sink:
            def __init__(self):
                self.port = Port(self, "sink")

            def on_frame(self, frame, port):
                got.append(sim.now)

        sink = Sink()
        patch(tap.port, sink.port)
        tap.inject(make_frame())
        sim.run()
        assert got and got[0] == pytest.approx(10e-6)

    def test_down_tap_drops(self):
        sim = Simulator()
        tap = TapDevice(sim)
        tap.capture_handler = lambda f: pytest.fail("captured while down")
        tap.up = False
        tap.on_frame(make_frame(), tap.port)
        tap.inject(make_frame())
        sim.run()
        assert tap.frames_captured == 0 and tap.frames_injected == 0

    def test_per_byte_cost_scales(self):
        sim = Simulator()
        tap = TapDevice(sim, per_frame_cost=0.0, per_byte_cost=1e-6)
        times = []
        tap.capture_handler = lambda f: times.append(sim.now)
        small, big = make_frame(payload_size=50), make_frame(payload_size=1000)
        tap.on_frame(small, tap.port)
        sim.run()
        t_small = times[-1]
        tap2 = TapDevice(sim, per_frame_cost=0.0, per_byte_cost=1e-6)
        tap2.capture_handler = lambda f: times.append(sim.now - t_small)
        tap2.on_frame(big, tap2.port)
        sim.run()
        assert times[-1] > t_small  # bigger frame, bigger copy cost

    def test_queue_overflow_counted(self):
        sim = Simulator()
        tap = TapDevice(sim, per_frame_cost=1.0, queue_capacity=2)
        tap.capture_handler = lambda f: None
        for _ in range(5):
            tap.on_frame(make_frame(), tap.port)
        assert tap.drops == 3
