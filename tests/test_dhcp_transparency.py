"""L2-transparency tests: unmodified DHCP over plain LANs and over the
WAVNet virtual LAN (paper §II.B: "protocols such as DHCP can be applied
without any modification")."""


from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.dhcp import DhcpClient, DhcpServer
from repro.net.icmp import Pinger
from repro.scenarios.builder import make_lan
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator
from repro.vm.hypervisor import Hypervisor


class TestDhcpOnLan:
    def build(self, sim, n_clients=2):
        lan = make_lan(sim, 1 + n_clients, subnet="192.168.5.0/24", name="lan")
        server_host = lan.hosts[0]
        server = DhcpServer(server_host.stack, server_host.stack.interfaces[0],
                            IPv4Network("192.168.5.0/24"))
        clients = []
        for host in lan.hosts[1:]:
            iface = host.stack.interfaces[0]
            iface.deconfigure()
            host.stack.routes.clear()
            clients.append(DhcpClient(host.stack, iface))
        return server, clients

    def test_lease_acquired(self):
        sim = Simulator()
        server, clients = self.build(sim, 1)
        p = sim.process(clients[0].acquire())
        sim.run(until=p)
        lease = p.value
        assert lease is not None
        assert lease.ip in IPv4Network("192.168.5.0/24")
        assert clients[0].iface.ip == lease.ip

    def test_distinct_leases_per_mac(self):
        sim = Simulator()
        server, clients = self.build(sim, 2)
        p1 = sim.process(clients[0].acquire())
        p2 = sim.process(clients[1].acquire())
        sim.run(until=p1)
        sim.run(until=p2)
        assert p1.value.ip != p2.value.ip

    def test_same_mac_rebinds_same_ip(self):
        sim = Simulator()
        server, clients = self.build(sim, 1)
        p1 = sim.process(clients[0].acquire())
        sim.run(until=p1)
        first = p1.value.ip
        p2 = sim.process(clients[0].acquire())
        sim.run(until=p2)
        assert p2.value.ip == first

    def test_no_server_times_out(self):
        sim = Simulator()
        lan = make_lan(sim, 1, subnet="192.168.5.0/24", name="lonely")
        host = lan.hosts[0]
        iface = host.stack.interfaces[0]
        iface.deconfigure()
        host.stack.routes.clear()
        client = DhcpClient(host.stack, iface, timeout=0.5, retries=2)
        p = sim.process(client.acquire())
        sim.run(until=p)
        assert p.value is None

    def test_leased_address_is_usable(self):
        sim = Simulator()
        server, clients = self.build(sim, 1)
        p = sim.process(clients[0].acquire())
        sim.run(until=p)
        ping = sim.process(Pinger(clients[0].stack, IPv4Address("192.168.5.10"),
                                  interval=0.3).run(2))
        sim.run(until=ping)
        assert ping.value.lost == 0


class TestDhcpOverWavnet:
    def test_vm_gets_lease_from_server_across_the_wan(self):
        """A DHCP server behind one NAT leases an address to a VM plugged
        into a bridge behind a different NAT — pure L2 transparency of
        the WAVNet tunnel."""
        sim = Simulator(seed=44)
        env = WavnetEnvironment(sim, default_latency=0.030)
        env.add_host("serverside")
        env.add_host("clientside")
        env.up().connect("serverside", "clientside")

        # DHCP server on serverside's wav0 (its virtual interface).
        srv_host = env.hosts["serverside"].host
        server = DhcpServer(srv_host.stack, srv_host.stack.interface("wav0"),
                            IPv4Network("10.99.0.0/16"), first_host=5000)

        # An unconfigured VM on clientside's bridge.
        vmm = Hypervisor(env.hosts["clientside"].host,
                         env.hosts["clientside"].driver.attach_port)
        vm = vmm.create_vm("fresh", memory_mb=16)
        client = DhcpClient(vm.guest.stack, vm.vif, timeout=3.0)
        p = sim.process(client.acquire())
        sim.run(until=p)
        lease = p.value
        assert lease is not None, "DHCP exchange failed across the tunnel"
        assert lease.ip in IPv4Network("10.99.0.0/16")
        assert server.acks_sent >= 1

        # The leased address works end-to-end: ping the DHCP server.
        ping = sim.process(Pinger(vm.guest.stack,
                                  env.hosts["serverside"].virtual_ip,
                                  interval=0.5, timeout=3.0).run(2))
        sim.run(until=ping)
        assert ping.value.lost == 0
