"""Symmetric-NAT traversal and path migration (DESIGN.md §16).

The full NAT×NAT matrix — which cells punch direct (classically or via
the predicted-port fan) and which fall back to relay — plus the
QUIC-style migration path: a NAT reboot under an established tunnel
heals by path validation in well under the re-punch repair loop's time.
"""

import pytest

from repro.scenarios.traversal import (NAT_SPECS, expected_direct,
                                       migration_repair, traversal_pair)


@pytest.mark.parametrize("nat_a", NAT_SPECS)
@pytest.mark.parametrize("nat_b", NAT_SPECS)
def test_traversal_matrix_cell(nat_a, nat_b):
    sim, p = traversal_pair(seed=3, nat_a=nat_a, nat_b=nat_b, settle=0.0)
    want_direct = expected_direct(nat_a, nat_b)
    assert p["usable"], f"{nat_a} x {nat_b}: no usable connection at all"
    assert p["direct"] == want_direct, (
        f"{nat_a} x {nat_b}: direct={p['direct']}, expected {want_direct}")
    assert p["relayed"] == (not want_direct)


def test_sequential_symmetric_stride_is_inferred():
    sim, p = traversal_pair(seed=3, nat_a="symmetric-sequential",
                            nat_b="port-restricted", settle=0.0)
    assert p["stride_a"] == 1   # STUN allocation-inference probe
    assert p["stride_b"] == 0   # cone NATs advertise no stride


def test_prediction_off_relays_symmetric_cells():
    """The predicted-port fan is what punches sym↔sym(sequential);
    with prediction disabled the cell degrades to the seed's relay."""
    sim, p = traversal_pair(seed=3, nat_a="symmetric-sequential",
                            nat_b="symmetric-sequential",
                            predict_ports=False, settle=0.0)
    assert p["usable"] and p["relayed"] and not p["direct"]


def test_nat_reboot_migrates_without_repunch():
    sim, p = migration_repair(seed=5, migration=True)
    assert p["healed_by_migration"], "expected path migration to heal the pair"
    assert p["repunches"] == 0, "migration arm should never re-punch"
    assert p["usable"] and not p["relayed_after"]
    assert p["repair_seconds"][0] < 2.0


def test_nat_reboot_repunch_baseline_is_slower():
    _, mig = migration_repair(seed=5, migration=True)
    _, base = migration_repair(seed=5, migration=False)
    assert base["healed"] and not base["healed_by_migration"]
    assert base["usable"]
    assert base["repair_seconds"][0] > mig["repair_seconds"][0]
