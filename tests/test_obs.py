"""Tests for the observability spine (``repro.obs``): the hierarchical
metrics registry, trace spans/events with JSONL export, packet taps,
and the engine-level step profiler — plus the instrumentation threaded
through the WAVNet driver, rendezvous relay, and live migration."""

import json
import math

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.net.icmp import Pinger
from repro.net.packet import Payload
from repro.obs import MetricsRegistry, PacketTap, Tracer, attach_tap
from repro.obs.metrics import Counter, Gauge, Histogram, IntervalRate, TimeSeries
from repro.scenarios.builder import host_pair, make_lan
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        sim = Simulator()
        c1 = sim.metrics.counter("h0.driver.pulse.tx")
        c2 = sim.metrics.counter("h0.driver.pulse.tx")
        assert c1 is c2

    def test_kind_mismatch_raises(self):
        sim = Simulator()
        sim.metrics.counter("x.y")
        with pytest.raises(TypeError):
            sim.metrics.gauge("x.y")

    def test_all_factories(self):
        sim = Simulator()
        m = sim.metrics
        assert isinstance(m.counter("a"), Counter)
        assert isinstance(m.gauge("b"), Gauge)
        assert isinstance(m.series("c"), TimeSeries)
        assert isinstance(m.rate("d"), IntervalRate)
        assert isinstance(m.histogram("e"), Histogram)
        assert len(m) == 5

    def test_scope_prefixes_paths(self):
        sim = Simulator()
        scope = sim.metrics.scope("h0.driver")
        c = scope.counter("frames.tx")
        assert c is sim.metrics.counter("h0.driver.frames.tx")
        nested = scope.scope("relay")
        assert nested.counter("tx") is sim.metrics.counter("h0.driver.relay.tx")

    def test_find_matches_whole_components_only(self):
        reg = MetricsRegistry()
        reg.counter("h0.driver.tx")
        reg.counter("h0.driverx.tx")
        found = reg.find("h0.driver")
        assert set(found) == {"h0.driver.tx"}

    def test_value_shortcut(self):
        sim = Simulator()
        sim.metrics.counter("c").add(3)
        sim.metrics.gauge("g").set(2.5)
        sim.metrics.series("s").record(10.0)
        sim.metrics.series("s").record(20.0)
        assert sim.metrics.value("c") == 3
        assert sim.metrics.value("g") == 2.5
        assert sim.metrics.value("s") == 15.0
        assert sim.metrics.value("missing", default=-1.0) == -1.0

    def test_snapshot_describes_metrics(self):
        sim = Simulator()
        sim.metrics.counter("h0.a").add(2)
        sim.metrics.histogram("h0.b").observe(1.0)
        snap = sim.metrics.snapshot("h0")
        assert snap["h0.a"] == {"kind": "counter", "value": 2}
        assert snap["h0.b"]["kind"] == "histogram"
        assert snap["h0.b"]["n"] == 1

    def test_gauge_inc_dec(self):
        g = Gauge("g")
        g.inc(2)
        g.dec(0.5)
        assert float(g) == 1.5

    def test_histogram_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.mean() == pytest.approx(50.5)
        assert h.count == 100


class TestMonitorShimRemoved:
    def test_legacy_module_is_gone(self):
        # The PR-4 deprecation shim served its one release; the classes
        # live in repro.obs (re-exported from repro.sim).
        with pytest.raises(ModuleNotFoundError):
            import repro.sim.monitor  # noqa: F401


class TestResample:
    def _brute_force(self, times, values, interval, t0, t1):
        edges = np.arange(t0, t1 + interval * 0.5, interval)
        out = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            bucket = [v for t, v in zip(times, values) if lo <= t < hi]
            out.append(sum(bucket) / len(bucket) if bucket else float("nan"))
        return edges[:-1], np.asarray(out)

    def test_matches_brute_force_with_gaps(self):
        sim = Simulator()
        ts = TimeSeries(sim, "x")
        rng = np.random.default_rng(7)
        # Cluster samples so several buckets stay empty.
        times = np.sort(np.concatenate([rng.uniform(0, 3, 40),
                                        rng.uniform(8, 10, 25)]))
        values = rng.normal(5.0, 2.0, times.size)
        for t, v in zip(times, values):
            sim.now = t  # append-only series stamps sim.now
            ts.record(v)
        got_t, got_v = ts.resample(0.5, t0=0.0, t1=10.0)
        want_t, want_v = self._brute_force(times, values, 0.5, 0.0, 10.0)
        assert got_t == pytest.approx(want_t)
        assert np.isnan(got_v).any()  # the 3..8 gap stays visible
        np.testing.assert_allclose(got_v, want_v, equal_nan=True)

    def test_samples_outside_window_ignored(self):
        sim = Simulator()
        ts = TimeSeries(sim, "x")
        for t, v in [(0.5, 1.0), (5.0, 100.0), (9.5, 3.0)]:
            sim.now = t
            ts.record(v)
        _, values = ts.resample(1.0, t0=4.0, t1=6.0)
        assert values.size == 2
        assert math.isnan(values[0])  # [4, 5): no samples
        assert values[1] == pytest.approx(100.0)  # [5, 6): the t=5.0 sample

    def test_empty_series(self):
        ts = TimeSeries(Simulator(), "x")
        t, v = ts.resample(1.0)
        assert t.size == 0 and v.size == 0


class TestTracer:
    def test_span_records_on_end(self):
        sim = Simulator()
        span = sim.trace.begin("punch", host="h0", peer="h1")
        sim.now = 0.25
        span.end(outcome="established")
        assert len(sim.trace) == 1
        rec = sim.trace.spans("punch")[0]
        assert rec["t0"] == 0.0 and rec["t1"] == 0.25
        assert rec["dur"] == pytest.approx(0.25)
        assert rec["attrs"] == {"host": "h0", "peer": "h1",
                                "outcome": "established"}

    def test_span_end_is_idempotent(self):
        sim = Simulator()
        span = sim.trace.begin("x")
        span.end()
        span.end()
        assert len(sim.trace) == 1

    def test_context_manager_records_error(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            with sim.trace.span("phase"):
                raise ValueError("boom")
        rec = sim.trace.spans("phase")[0]
        assert "boom" in rec["attrs"]["error"]

    def test_events_and_names(self):
        tracer = Tracer(Simulator())
        tracer.event("garp", vm="vm1")
        tracer.event("garp", vm="vm2")
        tracer.event("migrate.done")
        assert len(tracer.events("garp")) == 2
        assert tracer.names() == ["garp", "migrate.done"]

    def test_jsonl_round_trip(self, tmp_path):
        sim = Simulator()
        sim.trace.event("e1", n=1)
        sim.trace.begin("s1", who="x").end()
        path = sim.trace.dump_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == ["event", "span"]
        assert records[0]["attrs"] == {"n": 1}


class TestPacketTaps:
    def test_port_and_switch_taps_see_ping(self):
        sim = Simulator()
        lan = make_lan(sim, 2)
        a, b = lan.hosts
        port_tap = attach_tap(a.stack.interfaces[0].port, PacketTap(sim, "a.eth0"))
        sw_tap = attach_tap(lan.switch, PacketTap(sim, "sw"))
        proc = sim.process(Pinger(a.stack, b.stack.interfaces[0].ip).run(2))
        sim.run(until=proc)
        assert port_tap.filter(direction="tx", kind="eth")
        assert port_tap.filter(direction="rx", kind="eth")
        assert sw_tap.filter(direction="fwd")
        assert port_tap.total_bytes() > 0

    def test_udp_socket_tap(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002)
        server = b.udp.bind(5000)
        tap = attach_tap(server, PacketTap(sim, "srv"))
        client_tap = PacketTap(sim, "cli")

        def srv(sim):
            yield server.recvfrom()

        def cli(sim):
            sock = a.udp.bind()
            attach_tap(sock, client_tap)
            sock.sendto(IPv4Address("10.0.0.2"), 5000, Payload(64, data="hello"))
            yield sim.timeout(0)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run()
        assert [r.direction for r in client_tap.records] == ["tx"]
        assert client_tap.records[0].dst == "10.0.0.2:5000"
        assert client_tap.records[0].info == "str"
        assert [r.direction for r in tap.records] == ["rx"]
        assert tap.records[0].size == 64

    def test_capacity_truncates(self):
        sim = Simulator()
        tap = PacketTap(sim, "small", capacity=2)
        for _ in range(5):
            tap.record("p", "tx", "eth", 10)
        assert len(tap) == 2
        assert tap.truncated == 3

    def test_attach_tap_rejects_untappable(self):
        with pytest.raises(TypeError):
            attach_tap(object(), PacketTap(Simulator()))

    def test_jsonl_export(self, tmp_path):
        sim = Simulator()
        tap = PacketTap(sim, "t")
        tap.record("p0", "tx", "udp", 42, src="a", dst="b:1", info="WavPulse")
        path = tap.dump_jsonl(tmp_path / "cap.jsonl")
        rec = json.loads(path.read_text().splitlines()[0])
        assert rec == {"t": 0.0, "point": "p0", "direction": "tx",
                       "kind": "udp", "size": 42, "src": "a", "dst": "b:1",
                       "info": "WavPulse"}


class TestEngineAccounting:
    def test_events_dispatched_counts_steps(self):
        sim = Simulator()

        def proc(sim):
            for _ in range(5):
                yield sim.timeout(1.0)

        sim.process(proc(sim), name="ticker")
        sim.run()
        assert sim.events_dispatched >= 5

    def test_profile_disabled_by_default(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim), name="quiet")
        sim.run()
        assert not sim.profile.enabled
        assert sim.profile.total_steps() == 0
        assert sim.profile.steps("quiet") == 0

    def test_profile_aggregates_by_process_name(self):
        sim = Simulator()
        sim.profile.enable()  # off by default: accounting is opt-in

        def proc(sim):
            for _ in range(3):
                yield sim.timeout(1.0)

        sim.process(proc(sim), name="worker:a")
        sim.process(proc(sim), name="worker:b")
        sim.run()
        # 3 timeouts + the final StopIteration resume per process.
        assert sim.profile.steps("worker:a") == 4
        assert sim.profile.total_steps() == 8
        assert sim.profile.by_prefix()["worker"][0] == 8
        assert sim.profile.total_wall() >= 0.0
        assert "worker" in sim.profile.render()


class TestRunUntilFailedEvent:
    def test_run_reraises_awaited_failure(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("process died")

        p = sim.process(failing(sim))
        with pytest.raises(RuntimeError, match="process died"):
            sim.run(until=p)

    def test_run_returns_value_on_success(self):
        sim = Simulator()

        def ok(sim):
            yield sim.timeout(1.0)
            return 42

        assert sim.run_coro(ok(sim)) == 42


def build_env(n_hosts=2, nat_types=None, **host_kwargs):
    sim = Simulator(seed=31)
    env = WavnetEnvironment(sim)
    nat_types = nat_types or ["port-restricted"] * n_hosts
    for i in range(n_hosts):
        env.add_host(f"h{i}", nat_type=nat_types[i], **host_kwargs)
    started = sim.process(env.start_all())
    sim.run(until=started)
    return sim, env


class TestDriverObservability:
    def test_punch_metrics_and_span(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        m = sim.metrics
        assert m.value("h0.driver.punch.tx") >= 1
        assert m.value("h0.driver.connect.established") == 1
        assert m.value("h0.driver.connect.relayed") == 0
        hist = m.histogram("h0.driver.connect.punch_seconds")
        assert hist.count == 1 and hist.mean() > 0
        span = sim.trace.spans("punch")[0]
        assert span["attrs"]["outcome"] == "established"
        assert span["attrs"]["relayed"] is False
        assert sim.trace.events("established")

    def test_pulse_counters_on_idle_connection(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        sim.run(until=sim.now + 30)
        assert sim.metrics.value("h0.driver.pulse.tx") >= 4
        assert sim.metrics.value("h0.driver.pulse.rx") >= 4

    def test_relay_fallback_counts_relayed_frames(self):
        """Symmetric<->symmetric punching fails; the connection falls back
        to rendezvous relaying, and the obs counters see it end to end."""
        sim, env = build_env(2, nat_types=["symmetric", "symmetric"],
                             punch_timeout=3.0)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        conn = p.value
        assert conn.usable and conn.relayed
        ping = sim.process(Pinger(env.hosts["h0"].host.stack,
                                  env.hosts["h1"].virtual_ip,
                                  interval=0.5, timeout=3.0).run(3))
        sim.run(until=ping)
        assert ping.value.lost == 0
        m = sim.metrics
        assert m.value("h0.driver.connect.punch_failed") == 1
        assert m.value("h0.driver.connect.relayed") == 1
        assert m.value("h0.driver.relay.tx") > 0
        assert m.value("h1.driver.relay.rx") > 0
        # Rendezvous-side relay accounting agrees with its legacy counter.
        rvz = env.rendezvous[0]
        assert m.value("rvz0.rvz.relay.frames") == rvz.frames_relayed > 0
        # Punching itself genuinely timed out; the relayed establishment
        # shows up as the "established" event, not the punch span.
        span = sim.trace.spans("punch")[0]
        assert span["attrs"]["outcome"] == "timeout"
        established = sim.trace.events("established")
        assert established and established[0]["attrs"]["relayed"] is True

    def test_driver_stop_is_idempotent(self):
        sim, env = build_env(2)
        p = sim.process(env.connect_pair("h0", "h1"))
        sim.run(until=p)
        driver = env.hosts["h0"].driver
        driver.stop()
        driver.stop()  # second stop must be a no-op, not an error
        assert driver.stopped
        assert len(sim.trace.events("driver.stop")) == 1
        sim.run(until=sim.now + 1.0)


class TestMigrationTrace:
    def test_migration_event_log_dumps_ordered_jsonl(self, tmp_path):
        """Acceptance: one migration run dumps a JSONL log showing
        punch -> established -> migrate.start -> gratuitous ARP ->
        migrate.done with ordered timestamps."""
        from repro.vm.dirty import IdleDirtyModel
        from repro.vm.hypervisor import Hypervisor

        sim, env = build_env(2, tcp_mss=8192)
        mesh = sim.process(env.connect_full_mesh())
        sim.run(until=mesh)
        vmms = {n: Hypervisor(wh.host, wh.driver.attach_port)
                for n, wh in env.hosts.items()}
        vm = vmms["h0"].create_vm("webvm", memory_mb=16,
                                  dirty_model=IdleDirtyModel())
        vm.configure_network("10.99.1.1", "10.99.0.0/16")
        p = sim.process(vmms["h0"].migrate(vm, vmms["h1"],
                                           env.hosts["h1"].virtual_ip))
        sim.run(until=p)

        path = sim.trace.dump_jsonl(tmp_path / "migration.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        names = [r["name"] for r in records]
        for expected in ("punch", "established", "migrate.start",
                         "migrate.round", "garp", "migrate.done", "migrate"):
            assert expected in names, f"{expected} missing from event log"

        def t_of(name):
            rec = next(r for r in records if r["name"] == name)
            return rec["t"] if rec["kind"] == "event" else rec["t0"]

        assert (t_of("punch") <= t_of("established")
                <= t_of("migrate.start") <= t_of("garp") <= t_of("migrate.done"))
        done = next(r for r in records if r["name"] == "migrate.done")
        assert done["attrs"]["vm"] == "webvm"
        assert done["attrs"]["seconds"] > 0
        span = sim.trace.spans("migrate")[-1]
        assert span["dur"] == pytest.approx(p.value.total_time)
        assert sim.trace.spans("migrate.precopy")
        assert sim.trace.spans("migrate.downtime")
        src_host = vmms["h0"].host.name
        dst_host = vmms["h1"].host.name
        assert sim.metrics.value(f"{src_host}.vmm.migrations.out") == 1
        assert sim.metrics.value(f"{dst_host}.vmm.migrations.in") == 1
