"""Max-min fair-share solver: hand-computed allocations + properties.

These tests drive :class:`FluidNetwork.solve_now` directly over
standalone (pipe-less) FluidLinks with ramping disabled, so every
allocation is a pure waterfill answer that can be checked by hand.
"""

import math

import pytest

from repro.net.fluid import FluidLink, FluidNetwork, FluidPath
from repro.sim.engine import Simulator

RTT = 0.01
# Big buffers so the window cap (min_buf*8/rtt) sits far above the link
# capacities used here and never binds unless a test wants it to.
BIG = dict(send_buf=1 << 24, recv_buf=1 << 24)


def make_net(**kw):
    sim = Simulator(seed=1)
    return sim, FluidNetwork(sim, refresh_interval=0.0, **kw)


def path_over(*links, rtt=RTT, factor=1.0):
    return FluidPath(links=tuple((l, factor) for l in links), rtt=rtt)


def open_flows(net, paths, **kw):
    flows = [net.open(path=p, size_bytes=None, ramp=False, **{**BIG, **kw})
             for p in paths]
    net.solve_now()
    return flows


def test_single_link_equal_share():
    _sim, net = make_net()
    link = FluidLink("l0", capacity_bps=30e6)
    flows = open_flows(net, [path_over(link)] * 3)
    for f in flows:
        assert f.rate == pytest.approx(10e6)


def test_shared_bottleneck_with_cap():
    """Three flows on a 30 Mbps link, one capped at 4 Mbps by its
    receive window: capped flow gets 4, the others split the rest."""
    sim, net = make_net()
    link = FluidLink("l0", capacity_bps=30e6)
    # window cap = min_buf * 8 / rtt = 4 Mbps
    capped = net.open(path=path_over(link), size_bytes=None, ramp=False,
                      send_buf=5000, recv_buf=5000)
    others = [net.open(path=path_over(link), size_bytes=None, ramp=False,
                       **BIG) for _ in range(2)]
    net.solve_now()
    assert capped.rate == pytest.approx(4e6)
    for f in others:
        assert f.rate == pytest.approx(13e6)


def test_parking_lot():
    """Classic parking lot: one long flow crosses links A-B-C (10 Mbps
    each); each link also carries one local flow. Max-min: every link
    splits 5/5 — the long flow gets 5, each local flow gets 5."""
    _sim, net = make_net()
    links = [FluidLink(f"l{i}", capacity_bps=10e6) for i in range(3)]
    long_flow = path_over(*links)
    locals_ = [path_over(l) for l in links]
    flows = open_flows(net, [long_flow] + locals_)
    for f in flows:
        assert f.rate == pytest.approx(5e6)


def test_parking_lot_asymmetric():
    """Narrow middle link: long flow crosses 10-2-10; locals on the
    edges. Long flow pinned to 2 by the middle; edge locals soak up the
    remaining 8."""
    _sim, net = make_net()
    a = FluidLink("a", capacity_bps=10e6)
    mid = FluidLink("mid", capacity_bps=2e6)
    c = FluidLink("c", capacity_bps=10e6)
    flows = open_flows(net, [path_over(a, mid, c), path_over(a), path_over(c)])
    assert flows[0].rate == pytest.approx(2e6)
    assert flows[1].rate == pytest.approx(8e6)
    assert flows[2].rate == pytest.approx(8e6)


def test_heterogeneous_factors():
    """Overhead-weighted max-min: a flow consuming 2 wire-bits per
    goodput bit and a factor-1 flow share a 30 Mbps link. Progressive
    filling raises goodput together, so the link binds at g*(2+1)=30."""
    _sim, net = make_net()
    link = FluidLink("l0", capacity_bps=30e6)
    heavy = net.open(path=FluidPath(links=((link, 2.0),), rtt=RTT),
                     size_bytes=None, ramp=False, **BIG)
    light = net.open(path=FluidPath(links=((link, 1.0),), rtt=RTT),
                     size_bytes=None, ramp=False, **BIG)
    net.solve_now()
    assert heavy.rate == pytest.approx(10e6)
    assert light.rate == pytest.approx(10e6)
    # Wire accounting: 2*10 + 1*10 = 30 Mbps — the link is exactly full.
    assert heavy.rate * 2 + light.rate == pytest.approx(30e6)


def test_cpu_style_link_caps_goodput():
    """An IPOP-style CPU link (capacity 1 cpu-sec/sec, factor in
    seconds-per-bit) caps goodput at 1/factor regardless of wire room."""
    _sim, net = make_net()
    wire = FluidLink("wire", capacity_bps=100e6)
    cpu = FluidLink("cpu", capacity_bps=1.0, kind="cpu")
    cpu_factor = 575e-6 / (1460 * 8)  # 575 us of CPU per MSS
    flow = net.open(path=FluidPath(links=((wire, 1.0), (cpu, cpu_factor)),
                                   rtt=RTT),
                    size_bytes=None, ramp=False, **BIG)
    net.solve_now()
    assert flow.rate == pytest.approx(1460 * 8 / 575e-6)


def test_rates_track_departures():
    _sim, net = make_net()
    link = FluidLink("l0", capacity_bps=30e6)
    flows = open_flows(net, [path_over(link)] * 3)
    flows[0].close()
    net.solve_now()
    for f in flows[1:]:
        assert f.rate == pytest.approx(15e6)


def test_mathis_cap_engages_on_loss():
    _sim, net = make_net()
    link = FluidLink("l0", capacity_bps=100e6)
    link.loss = 0.01
    flow = net.open(path=path_over(link), size_bytes=None, ramp=False, **BIG)
    net.solve_now()
    expect = 1460 * 8 * 1.22 / (RTT * math.sqrt(0.01))
    assert flow.rate == pytest.approx(expect)


def _allocation_is_feasible(flows, links, util_floor=0.01):
    for link in links:
        used = 0.0
        for f, path in flows:
            for l, factor in path.links:
                if l is link:
                    used += f.rate * factor
        assert used <= link.available(util_floor) * (1 + 1e-6) + 1e-3


def _allocation_is_max_min(flows, links, util_floor=0.01):
    """Every flow is either at its cap or bottlenecked on a saturated
    link where no co-user gets a strictly higher rate — the classic
    max-min optimality certificate."""
    for f, path in flows:
        if f.rate >= f.cap_bps() * (1 - 1e-6):
            continue
        certified = False
        for link, _factor in path.links:
            used = sum(g.rate * fac for g, p in flows
                       for l, fac in p.links if l is link)
            avail = link.available(util_floor)
            if not math.isfinite(avail) or used < avail * (1 - 1e-6):
                continue  # not saturated
            co_rates = [g.rate for g, p in flows
                        if any(l is link for l, _ in p.links)]
            if all(f.rate >= r * (1 - 1e-6) or r <= 0 for r in co_rates):
                certified = True
                break
        assert certified, f"flow {f.name} below cap with no bottleneck"


def test_property_random_topologies():
    """Randomized feasibility + max-min optimality over many topologies
    (seeded RNG: deterministic, no hypothesis dependency needed)."""
    import random

    rng = random.Random(20260808)
    for trial in range(40):
        _sim, net = make_net()
        n_links = rng.randint(1, 6)
        links = [FluidLink(f"l{i}", capacity_bps=rng.uniform(1e6, 100e6))
                 for i in range(n_links)]
        n_flows = rng.randint(1, 12)
        flows = []
        for j in range(n_flows):
            k = rng.randint(1, n_links)
            chosen = rng.sample(links, k)
            factor = rng.choice([1.0, 1.04, 1.2, 2.0])
            path = FluidPath(links=tuple((l, factor) for l in chosen),
                             rtt=rng.choice([0.001, 0.01, 0.1]))
            buf = rng.choice([4096, 65536, 1 << 22])
            flows.append((net.open(path=path, size_bytes=None, ramp=False,
                                   send_buf=buf, recv_buf=buf), path))
        net.solve_now()
        _allocation_is_feasible(flows, links)
        _allocation_is_max_min(flows, links)


def test_property_with_hypothesis():
    """Same properties under hypothesis, when available."""
    hyp = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")

    @hyp.given(
        caps=st.lists(st.floats(1e5, 1e9), min_size=1, max_size=4),
        flow_links=st.lists(st.lists(st.integers(0, 3), min_size=1,
                                     max_size=4),
                            min_size=1, max_size=8),
    )
    @hyp.settings(max_examples=60, deadline=None)
    def run(caps, flow_links):
        _sim, net = make_net()
        links = [FluidLink(f"l{i}", capacity_bps=c)
                 for i, c in enumerate(caps)]
        flows = []
        for idxs in flow_links:
            chosen = list({links[i % len(links)] for i in idxs})
            path = FluidPath(links=tuple((l, 1.0) for l in chosen), rtt=0.01)
            flows.append((net.open(path=path, size_bytes=None, ramp=False,
                                   **BIG), path))
        net.solve_now()
        _allocation_is_feasible(flows, links)
        _allocation_is_max_min(flows, links)

    run()
