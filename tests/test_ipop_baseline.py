"""Tests for the IPOP comparator: connectivity, overhead, relaying,
bounded direct links, and migration blindness."""


from repro.baselines.ipop import IpopConfig, IpopOverlay
from repro.net.addresses import IPv4Address
from repro.net.icmp import Pinger
from repro.net.tcp import drain_bytes, stream_bytes
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_natted_site
from repro.sim import Simulator


def build_ipop(n_nodes=3, config=None, cloud_latency=0.010, access_bw=100e6,
               seed=31, mss=1460):
    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=cloud_latency)
    overlay = IpopOverlay(sim, config=config)
    sites = []
    for i in range(n_nodes):
        site = make_natted_site(sim, cloud, f"s{i}", f"8.4.0.{i + 1}",
                                lan_subnet=f"192.168.{i + 1}.0/24",
                                access_bandwidth_bps=access_bw, tcp_mss=mss)
        overlay.add_node(site.hosts[0], f"10.128.0.{i + 1}", nat=site.nat)
        sites.append(site)
    built = sim.process(overlay.build_ring())
    sim.run(until=built)
    return sim, overlay, sites


class TestIpopConnectivity:
    def test_ring_links_established(self):
        sim, overlay, _sites = build_ipop(4)
        for node in overlay.nodes.values():
            assert len(node.neighbors) >= 2

    def test_ping_across_overlay(self):
        sim, overlay, _sites = build_ipop(3)
        a = overlay.nodes["s0.h0"]
        proc = sim.process(Pinger(a.host.stack, IPv4Address("10.128.0.2"),
                                  interval=0.5).run(3))
        sim.run(until=proc)
        assert proc.value.lost == 0

    def test_latency_close_to_physical_on_long_paths(self):
        """Table II's observation: per-packet overhead is amortized by
        WAN latency, so IPOP RTT ~ physical RTT + processing."""
        sim, overlay, _sites = build_ipop(2, cloud_latency=0.037)
        a = overlay.nodes["s0.h0"]
        proc = sim.process(Pinger(a.host.stack, IPv4Address("10.128.0.2"),
                                  interval=0.5).run(3))
        sim.run(until=proc)
        physical_rtt = 2 * (0.037 + 2 * 0.0005 + 2 * 0.0001)
        overhead = proc.value.min_rtt() - physical_rtt
        assert 0 < overhead < 0.01

    def test_tcp_works_over_overlay(self):
        sim, overlay, _sites = build_ipop(2)
        a = overlay.nodes["s0.h0"].host
        b = overlay.nodes["s1.h0"].host
        listener = b.tcp.listen(5001)
        got = {}

        def server(sim):
            conn = yield listener.accept()
            got["n"] = yield from drain_bytes(conn)

        def client(sim):
            conn = a.tcp.connect(IPv4Address("10.128.0.2"), 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 200_000)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=sim.now + 300)
        assert got.get("n") == 200_000


class TestIpopStructuralHandicaps:
    def test_endpoint_processing_caps_throughput(self):
        """Fig 7's <20%-of-native on fast links: the user-level stack is
        the bottleneck, not the wire."""
        sim, overlay, _sites = build_ipop(2, cloud_latency=0.001, access_bw=100e6)
        a = overlay.nodes["s0.h0"].host
        b = overlay.nodes["s1.h0"].host
        listener = b.tcp.listen(5001)
        done = {}

        def server(sim):
            conn = yield listener.accept()
            done["n"] = yield from drain_bytes(conn)
            done["t"] = sim.now

        def client(sim):
            conn = a.tcp.connect(IPv4Address("10.128.0.2"), 5001)
            yield conn.wait_established()
            done["t0"] = sim.now
            yield from stream_bytes(conn, 2_000_000)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=sim.now + 300)
        goodput = done["n"] * 8 / (done["t"] - done["t0"])
        # 350 us/packet one way caps near 1460*8/350e-6 ~ 33 Mbps; with
        # ack-path processing it lands well under 35% of the wire.
        assert goodput < 0.35 * 100e6

    def test_far_ring_nodes_relay_through_intermediates(self):
        config = IpopConfig(max_direct=0, n_shortcuts=0)  # force relaying
        sim, overlay, _sites = build_ipop(6, config=config)
        nodes = sorted(overlay.nodes.values(), key=lambda n: n.ring_id)
        src = nodes[0]
        dst = nodes[len(nodes) // 2]  # ring-diametric target
        proc = sim.process(Pinger(src.host.stack, dst.virtual_ip,
                                  interval=0.5, timeout=3.0).run(3))
        sim.run(until=proc)
        assert proc.value.lost == 0
        relays = sum(n.packets_relayed for n in overlay.nodes.values())
        assert relays > 0

    def test_relaying_inflates_rtt(self):
        config = IpopConfig(max_direct=0, n_shortcuts=0)
        sim, overlay, _sites = build_ipop(6, config=config, cloud_latency=0.020)
        nodes = sorted(overlay.nodes.values(), key=lambda n: n.ring_id)
        src, dst = nodes[0], nodes[3]
        proc = sim.process(Pinger(src.host.stack, dst.virtual_ip,
                                  interval=0.5, timeout=5.0).run(3))
        sim.run(until=proc)
        direct_rtt = 2 * 0.0212
        assert proc.value.min_rtt() > 1.5 * direct_rtt

    def test_direct_link_budget_respected(self):
        config = IpopConfig(max_direct=1)
        sim, overlay, _sites = build_ipop(5, config=config)
        src = overlay.nodes["s0.h0"]

        def burst(sim):
            for i in (1, 2, 3, 4):
                p = sim.process(Pinger(src.host.stack,
                                       IPv4Address(f"10.128.0.{i + 1}"),
                                       interval=0.2, timeout=2.0).run(2))
                yield p

        proc = sim.process(burst(sim))
        sim.run(until=proc)
        assert len(src.direct) <= 1


class TestIpopMigrationBlindness:
    def test_stale_directory_after_vm_moves(self):
        """Fig 9's stall: packets keep flowing to the source host after
        the VM has moved, because the DHT entry is never updated."""
        from repro.net.addresses import MacAddress
        from repro.net.l2 import Port

        sim, overlay, _sites = build_ipop(3)
        src_node = overlay.nodes["s0.h0"]
        dst_node = overlay.nodes["s1.h0"]
        client = overlay.nodes["s2.h0"]

        class FakeVif:
            def __init__(self):
                self.port = Port(self, "fakevif")
                self.frames = []

            def on_frame(self, frame, port):
                self.frames.append(frame)

        vif = FakeVif()
        vm_ip = IPv4Address("10.128.0.100")
        src_node.attach_vm_port(vif.port, vm_ip, MacAddress(0xAA))
        assert overlay.directory.lookup(vm_ip) == "s0.h0"
        # "Migrate": source forgets the VM; destination attaches it.
        src_node.detach_vm_ip(vm_ip)
        vif2 = FakeVif()
        # NB: attach on destination re-registers, but IPOP's failure mode
        # is the window where caches/peers still target the old node; we
        # model the paper's observed behaviour by checking delivery drops
        # at the stale node.
        before = src_node.packets_dropped
        proc = sim.process(Pinger(client.host.stack, vm_ip,
                                  interval=0.3, timeout=1.0).run(3))
        sim.run(until=proc)
        assert proc.value.lost == 3
        assert src_node.packets_dropped > before
