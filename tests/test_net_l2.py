"""Tests for links, switches, bridges, and frame size accounting."""

import pytest

from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.net.l2 import Link, Port, Switch, patch
from repro.net.packet import (
    ArpPacket,
    EthernetFrame,
    IcmpMessage,
    Payload,
    TcpSegment,
    UdpDatagram,
    ipv4,
)
from repro.sim import Simulator


class Sink:
    """Port owner that records (time, frame)."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []
        self.port = Port(self, "sink")

    def on_frame(self, frame, port):
        self.received.append((self.sim.now, frame))


def make_frame(size_payload=100, src=1, dst=2):
    payload = Payload(size_payload)
    dgram = UdpDatagram(1000, 2000, payload)
    pkt = ipv4(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), dgram)
    return EthernetFrame(MacAddress(src), MacAddress(dst), 0x0800, pkt)


class TestPacketSizes:
    def test_udp_size(self):
        d = UdpDatagram(1, 2, Payload(100))
        assert d.size == 108

    def test_tcp_size(self):
        seg = TcpSegment(1, 2, 0, 0, 0x10, 65535, payload_size=1460)
        assert seg.size == 1480

    def test_icmp_size(self):
        assert IcmpMessage("echo-request", 1, 1).size == 64

    def test_ipv4_size(self):
        pkt = ipv4(IPv4Address(1), IPv4Address(2), UdpDatagram(1, 2, Payload(100)))
        assert pkt.size == 128

    def test_ethernet_min_padding(self):
        arp = ArpPacket("request", MacAddress(1), IPv4Address(1), None, IPv4Address(2))
        frame = EthernetFrame(MacAddress(1), BROADCAST_MAC, 0x0806, arp)
        assert frame.size == 14 + 4 + 46  # padded to minimum

    def test_gratuitous_arp_detection(self):
        ip = IPv4Address("10.0.0.5")
        g = ArpPacket("reply", MacAddress(1), ip, BROADCAST_MAC, ip)
        assert g.is_gratuitous
        n = ArpPacket("reply", MacAddress(1), ip, MacAddress(2), IPv4Address("10.0.0.6"))
        assert not n.is_gratuitous

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Payload(-1)


class TestLink:
    def test_propagation_latency(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        Link(sim, a.port, b.port, latency=0.010, bandwidth_bps=None)
        a.port.transmit(make_frame())
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] == pytest.approx(0.010)

    def test_serialization_delay(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        Link(sim, a.port, b.port, latency=0.0, bandwidth_bps=1e6)
        frame = make_frame(size_payload=1000)  # 1146 B on wire
        a.port.transmit(frame)
        sim.run()
        expected = frame.size * 8 / 1e6
        assert b.received[0][0] == pytest.approx(expected)

    def test_back_to_back_frames_queue(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        Link(sim, a.port, b.port, latency=0.0, bandwidth_bps=1e6)
        f = make_frame(1000)
        a.port.transmit(f)
        a.port.transmit(f)
        sim.run()
        t1, t2 = b.received[0][0], b.received[1][0]
        assert t2 == pytest.approx(2 * t1)

    def test_full_duplex_no_interference(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        Link(sim, a.port, b.port, latency=0.001, bandwidth_bps=1e6)
        f = make_frame(1000)
        a.port.transmit(f)
        b.port.transmit(f)
        sim.run()
        assert len(a.received) == len(b.received) == 1
        assert a.received[0][0] == pytest.approx(b.received[0][0])

    def test_queue_overflow_drops(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0, bandwidth_bps=1e4, queue_capacity=2)
        f = make_frame(1000)
        for _ in range(10):
            a.port.transmit(f)
        sim.run()
        # 1 in service escapes the queue before the burst lands; 2 queued.
        assert len(b.received) <= 4
        assert link.ab.drops >= 6

    def test_random_loss(self):
        sim = Simulator(seed=1)
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0, bandwidth_bps=None, loss=0.5)
        f = make_frame(100)

        def tx(sim):
            for _ in range(200):
                a.port.transmit(f)
                yield sim.timeout(0.001)

        sim.process(tx(sim))
        sim.run()
        assert 40 < len(b.received) < 160
        assert link.ab.frames_lost == 200 - len(b.received)

    def test_loss_validation(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        with pytest.raises(ValueError):
            Link(sim, a.port, b.port, loss=1.0)

    def test_reshaping(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0, bandwidth_bps=1e6)
        link.set_bandwidth(2e6)
        f = make_frame(1000)
        a.port.transmit(f)
        sim.run()
        assert b.received[0][0] == pytest.approx(f.size * 8 / 2e6)

    def test_byte_accounting(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port)
        f = make_frame(100)
        a.port.transmit(f)
        b.port.transmit(f)
        sim.run()
        assert link.total_bytes == 2 * f.size


class TestLinkAdminState:
    def test_admin_down_drops_and_counts(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0.001, bandwidth_bps=None,
                    name="adm")
        link.admin_down()
        f = make_frame()
        a.port.transmit(f)
        b.port.transmit(f)
        sim.run()
        assert a.received == [] and b.received == []
        assert link.frames_dropped_down == 2
        assert not link.running

    def test_admin_up_restores_delivery(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0.001, bandwidth_bps=None)
        link.admin_down()
        a.port.transmit(make_frame())
        sim.run()
        link.admin_up()
        a.port.transmit(make_frame())
        sim.run()
        assert len(b.received) == 1
        assert link.frames_dropped_down == 1
        assert link.running

    def test_admin_down_is_link_stop(self):
        """admin_down/up ride the lifecycle protocol, so the link shows
        up as a stoppable component in the registry."""
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, name="edge")
        assert sim.components.get(link.component_id) is link
        sim.components.stop(link.component_id)
        a.port.transmit(make_frame())
        sim.run()
        assert b.received == []
        sim.components.restore(link.component_id)
        a.port.transmit(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_set_latency_mid_flight(self):
        """Reconfiguring latency only affects frames not yet on the wire."""
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0.010, bandwidth_bps=None)
        a.port.transmit(make_frame())

        def reconfigure(sim):
            yield sim.timeout(0.001)  # first frame is already in flight
            link.set_latency(0.050)
            a.port.transmit(make_frame())

        sim.process(reconfigure(sim))
        sim.run()
        t1, t2 = (t for t, _ in b.received)
        assert t1 == pytest.approx(0.010)
        assert t2 == pytest.approx(0.001 + 0.050)

    def test_set_bandwidth_mid_flight(self):
        """A frame in service finishes at the old rate; queued frames
        serialize at the new one."""
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0.0, bandwidth_bps=1e6)
        f = make_frame(1000)
        a.port.transmit(f)  # in service at 1 Mb/s
        a.port.transmit(f)  # queued
        link.set_bandwidth(10e6)
        sim.run()
        t1, t2 = (t for t, _ in b.received)
        assert t1 == pytest.approx(f.size * 8 / 1e6)
        assert t2 == pytest.approx(t1 + f.size * 8 / 10e6)

    def test_set_loss_mid_run(self):
        sim = Simulator(seed=4)
        a, b = Sink(sim), Sink(sim)
        link = Link(sim, a.port, b.port, latency=0, bandwidth_bps=None,
                    loss=0.0)
        f = make_frame(100)

        def tx(sim):
            for _ in range(100):
                a.port.transmit(f)
                yield sim.timeout(0.001)
            link.set_loss(0.9)
            for _ in range(100):
                a.port.transmit(f)
                yield sim.timeout(0.001)

        sim.process(tx(sim))
        sim.run()
        # The lossless first half all arrives; the 90%-loss second half
        # mostly does not.
        assert 100 <= len(b.received) < 140
        assert link.ab.frames_lost == 200 - len(b.received)

    def test_port_down_blocks_both_directions(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        Link(sim, a.port, b.port, latency=0.001, bandwidth_bps=None)
        b.port.up = False
        a.port.transmit(make_frame())  # delivery side down: dropped on rx
        b.port.transmit(make_frame())  # transmit side down: never sent
        sim.run()
        assert a.received == [] and b.received == []
        b.port.up = True
        a.port.transmit(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_port_disconnect(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        Link(sim, a.port, b.port, latency=0.001, bandwidth_bps=None)
        assert a.port.connected
        a.port.disconnect()
        assert not a.port.connected
        a.port.transmit(make_frame())  # no medium: silently dropped
        sim.run()
        assert b.received == []


class TestPortPatch:
    def test_patch_is_bidirectional_zero_delay(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        patch(a.port, b.port)
        a.port.transmit(make_frame())
        b.port.transmit(make_frame())
        assert len(a.received) == len(b.received) == 1

    def test_double_connect_rejected(self):
        sim = Simulator()
        a, b, c = Sink(sim), Sink(sim), Sink(sim)
        patch(a.port, b.port)
        with pytest.raises(RuntimeError):
            patch(a.port, c.port)

    def test_down_port_blackholes(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        patch(a.port, b.port)
        b.port.up = False
        a.port.transmit(make_frame())
        assert b.received == []


class TestSwitch:
    def build(self, sim, n=3):
        sw = Switch(sim, forward_delay=0)
        sinks = []
        for _ in range(n):
            s = Sink(sim)
            patch(s.port, sw.new_port())
            sinks.append(s)
        return sw, sinks

    def test_unknown_destination_floods(self):
        sim = Simulator()
        sw, (s1, s2, s3) = self.build(sim)
        s1.port.transmit(make_frame(src=1, dst=9))
        sim.run()
        assert len(s2.received) == 1 and len(s3.received) == 1
        assert s1.received == []

    def test_learning_then_unicast(self):
        sim = Simulator()
        sw, (s1, s2, s3) = self.build(sim)
        s1.port.transmit(make_frame(src=1, dst=9))  # learn MAC 1 at port 0
        s2.port.transmit(make_frame(src=2, dst=1))  # unicast to port 0
        sim.run()
        assert len(s1.received) == 1
        assert len(s3.received) == 1  # only the flooded frame

    def test_broadcast_always_floods(self):
        sim = Simulator()
        sw, (s1, s2, s3) = self.build(sim)
        bcast = EthernetFrame(MacAddress(1), BROADCAST_MAC, 0x0800,
                              make_frame().payload)
        s1.port.transmit(bcast)
        sim.run()
        assert len(s2.received) == len(s3.received) == 1

    def test_relearning_on_move(self):
        """The mechanism behind seamless migration: gratuitous traffic from
        a new port rewrites the MAC table entry."""
        sim = Simulator()
        sw, (s1, s2, s3) = self.build(sim)
        s1.port.transmit(make_frame(src=7, dst=99))  # MAC 7 at port of s1
        sim.run()
        s3.port.transmit(make_frame(src=7, dst=99))  # MAC 7 moved to s3
        sim.run()
        s2.port.transmit(make_frame(src=2, dst=7))
        sim.run()
        # s3: initial flood from s1 + the unicast that followed the move.
        assert len(s3.received) == 2
        assert len(s1.received) == 1  # only the flood from s3's frame

    def test_same_port_destination_dropped(self):
        sim = Simulator()
        sw, (s1, s2, s3) = self.build(sim)
        s1.port.transmit(make_frame(src=5, dst=6))
        sim.run()
        s1.port.transmit(make_frame(src=6, dst=5))  # learns 6 on same port
        sim.run()
        before = len(s2.received) + len(s3.received)
        s1.port.transmit(make_frame(src=6, dst=5))  # 5 known on in-port
        sim.run()
        assert len(s2.received) + len(s3.received) == before

    def test_remove_port_purges_macs(self):
        sim = Simulator()
        sw, (s1, s2, s3) = self.build(sim)
        s1.port.transmit(make_frame(src=1, dst=9))
        sim.run()
        port = sw.ports[0]
        sw.remove_port(port)
        assert sw.lookup(MacAddress(1)) is None

    def test_mac_aging(self):
        sim = Simulator()
        sw = Switch(sim, forward_delay=0, mac_age_limit=10.0)
        s1, s2 = Sink(sim), Sink(sim)
        patch(s1.port, sw.new_port())
        patch(s2.port, sw.new_port())
        s1.port.transmit(make_frame(src=1, dst=9))
        sim.run()
        assert sw.lookup(MacAddress(1)) is not None
        sim.run(until=sim.now + 11)
        assert sw.lookup(MacAddress(1)) is None
