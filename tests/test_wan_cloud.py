"""Unit tests for the WAN latency cloud."""

import pytest

from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.net.l2 import Port
from repro.net.packet import EthernetFrame, Payload, UdpDatagram, ipv4
from repro.net.wan import WanCloud
from repro.sim import Simulator


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.received = []
        self.port = Port(self, "sink")

    def on_frame(self, frame, port):
        self.received.append((self.sim.now, frame))


def frame(src, dst):
    pkt = ipv4(IPv4Address("8.0.0.1"), IPv4Address("8.0.0.2"),
               UdpDatagram(1, 2, Payload(50)))
    return EthernetFrame(MacAddress(src), MacAddress(dst), 0x0800, pkt)


def build(sim, names=("a", "b", "c"), default=0.010):
    cloud = WanCloud(sim, default_latency=default)
    sinks = {}
    for name in names:
        s = Sink(sim)
        from repro.net.l2 import patch
        patch(s.port, cloud.attach(name))
        sinks[name] = s
    return cloud, sinks


class TestWanCloud:
    def test_unknown_mac_floods_all_other_sites(self):
        sim = Simulator()
        cloud, sinks = build(sim)
        sinks["a"].port.transmit(frame(1, 99))
        sim.run()
        assert len(sinks["b"].received) == 1
        assert len(sinks["c"].received) == 1
        assert sinks["a"].received == []

    def test_learning_unicasts_after_first_frame(self):
        sim = Simulator()
        cloud, sinks = build(sim)
        sinks["b"].port.transmit(frame(7, 99))   # cloud learns MAC 7 @ b
        sim.run()
        sinks["a"].port.transmit(frame(1, 7))
        sim.run()
        # b got only the unicast (its own flood is not echoed back).
        assert len(sinks["b"].received) == 1
        assert len(sinks["c"].received) == 1  # only the first flood

    def test_per_pair_latency(self):
        sim = Simulator()
        cloud, sinks = build(sim)
        cloud.set_rtt("a", "b", 0.100)
        cloud.set_rtt("a", "c", 0.020)
        sinks["a"].port.transmit(frame(1, 99))  # flood
        sim.run()
        assert sinks["b"].received[0][0] == pytest.approx(0.050)
        assert sinks["c"].received[0][0] == pytest.approx(0.010)

    def test_default_latency_for_unconfigured_pairs(self):
        sim = Simulator()
        cloud, sinks = build(sim, default=0.033)
        sinks["a"].port.transmit(frame(1, 99))
        sim.run()
        assert sinks["b"].received[0][0] == pytest.approx(0.033)

    def test_detach_purges_macs_and_stops_delivery(self):
        sim = Simulator()
        cloud, sinks = build(sim)
        sinks["b"].port.transmit(frame(7, 99))
        sim.run()
        cloud.detach("b")
        sinks["a"].port.transmit(frame(1, 7))
        sim.run()
        # b is gone and its MAC entry purged; the frame floods to c only.
        assert len(sinks["b"].received) == 0
        assert len(sinks["c"].received) == 2

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        cloud, _sinks = build(sim)
        with pytest.raises(ValueError):
            cloud.attach("a")

    def test_negative_latency_rejected(self):
        sim = Simulator()
        cloud, _ = build(sim)
        with pytest.raises(ValueError):
            cloud.set_latency("a", "b", -0.1)

    def test_broadcast_frame_reaches_everyone(self):
        sim = Simulator()
        cloud, sinks = build(sim)
        bcast = EthernetFrame(MacAddress(1), BROADCAST_MAC, 0x0800,
                              frame(1, 2).payload)
        sinks["a"].port.transmit(bcast)
        sim.run()
        assert len(sinks["b"].received) == 1 and len(sinks["c"].received) == 1

    def test_frames_counted(self):
        sim = Simulator()
        cloud, sinks = build(sim)
        sinks["a"].port.transmit(frame(1, 99))
        sim.run()
        assert cloud.frames_carried == 1
