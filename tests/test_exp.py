"""Tests for the experiment plane (repro.exp): specs, sweeps, the
sharded runner's determinism, and resume-from-cache."""

import json

import pytest

from repro.exp import (
    ExperimentSpec,
    Sweep,
    SweepError,
    SweepRunner,
    aggregate,
    envelope_bytes,
    get_sweep,
    registry,
    run_spec,
    scenario_names,
    sweep_names,
)


def tiny_ping_sweep(name="tiny", rtts=(20.0, 50.0, 80.0, 120.0)):
    """Four cheap physical-stack ping points (~10 ms each)."""
    return (Sweep(name, "stack_ping",
                  base_params={"stack": "physical", "probes": 4}, seed=1)
            .add_axis("rtt_ms", list(rtts)))


class TestRegistry:
    def test_scenarios_registered_by_import(self):
        names = scenario_names()
        for expected in ("churn_recovery", "netperf_cluster",
                         "planetlab_grouping", "stack_ping", "wavnet_mesh"):
            assert expected in names

    def test_duplicate_registration_rejected(self):
        fn = registry.get("stack_ping")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("stack_ping", lambda seed=0: {})
        # Re-registering the same function (module reload) is a no-op.
        registry.register("stack_ping", fn)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ExperimentSpec("no_such_scenario").resolve()


class TestSpec:
    def test_seed_kept_out_of_params(self):
        with pytest.raises(ValueError, match="seed"):
            ExperimentSpec("stack_ping", params={"seed": 3})

    def test_canonical_roundtrip_and_digest_stability(self):
        spec = ExperimentSpec("stack_ping", params={"rtt_ms": 30.0}, seed=5,
                              metrics=["a.*"], traces=["b"])
        again = ExperimentSpec.from_dict(json.loads(
            json.dumps(spec.canonical())))
        assert again == spec
        assert again.digest() == spec.digest()
        assert spec.digest() != ExperimentSpec(
            "stack_ping", params={"rtt_ms": 31.0}, seed=5).digest()

    def test_run_spec_envelope_shape(self):
        spec = ExperimentSpec("stack_ping",
                              params={"stack": "physical", "probes": 4})
        env = run_spec(spec)
        assert env["spec"] == spec.canonical()
        assert env["payload"]["lost"] == 0
        assert env["obs"]["events_dispatched"] > 0
        assert env["wall_seconds"] >= 0
        # Canonical bytes ignore wall time but pin everything else.
        other = run_spec(spec)
        assert envelope_bytes(env) == envelope_bytes(other)

    def test_metric_selection_exports_only_matches(self):
        spec = ExperimentSpec("stack_ping",
                              params={"stack": "physical", "probes": 4},
                              metrics=["*.ping.rtt"])
        env = run_spec(spec)
        assert len(env["metrics"]) == 1
        (path, exported), = env["metrics"].items()
        assert path.endswith("ping.rtt")
        assert exported["kind"] == "series"


class TestSweep:
    def test_cartesian_axes_and_order(self):
        sweep = (Sweep("s", "stack_ping")
                 .add_axis("a", [1, 2])
                 .add_axis("b", ["x", "y", "z"]))
        pts = sweep.points()
        assert len(sweep) == len(pts) == 6
        # Later axes vary fastest.
        assert [p.coords for p in pts[:3]] == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 1, "b": "z"}]

    def test_zip_axes_lockstep(self):
        sweep = Sweep("s", "stack_ping").zip_axes(n=[8, 16], seed=[58, 66])
        pts = sweep.points()
        assert [p.coords for p in pts] == [
            {"n": 8, "seed": 58}, {"n": 16, "seed": 66}]
        assert [p.spec.seed for p in pts] == [58, 66]
        assert all("seed" not in p.spec.params for p in pts)

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Sweep("s", "stack_ping").zip_axes(a=[1, 2], b=[1, 2, 3])

    def test_duplicate_axis_rejected(self):
        sweep = Sweep("s", "stack_ping").add_axis("a", [1])
        with pytest.raises(ValueError, match="duplicate"):
            sweep.add_axis("a", [2])

    def test_catalog_sweeps_enumerable(self):
        assert "smoke" in sweep_names()
        assert len(get_sweep("smoke")) == 4


class TestRunner:
    def test_serial_run_and_full_cache_resume(self, tmp_path):
        first = SweepRunner(tiny_ping_sweep(), out_dir=tmp_path).run()
        assert first.executed_indices == [0, 1, 2, 3]
        again = SweepRunner(tiny_ping_sweep(), out_dir=tmp_path).run()
        assert again.cached_indices == [0, 1, 2, 3]
        assert again.result_bytes() == first.result_bytes()

    def test_resume_reruns_only_missing_point(self, tmp_path):
        sweep = tiny_ping_sweep()
        SweepRunner(sweep, out_dir=tmp_path).run()
        victim = sweep.points()[2]
        (tmp_path / f"{victim.key}.json").unlink()
        result = SweepRunner(tiny_ping_sweep(), out_dir=tmp_path).run()
        assert result.executed_indices == [2]
        assert result.cached_indices == [0, 1, 3]

    def test_stale_artifact_spec_mismatch_reexecutes(self, tmp_path):
        sweep = tiny_ping_sweep()
        SweepRunner(sweep, out_dir=tmp_path).run()
        point = sweep.points()[1]
        path = tmp_path / f"{point.key}.json"
        stale = json.loads(path.read_text())
        stale["spec"]["seed"] = 999
        path.write_text(json.dumps(stale))
        result = SweepRunner(tiny_ping_sweep(), out_dir=tmp_path).run()
        assert 1 in result.executed_indices

    def test_force_ignores_cache(self, tmp_path):
        SweepRunner(tiny_ping_sweep(), out_dir=tmp_path).run()
        result = SweepRunner(tiny_ping_sweep(), out_dir=tmp_path,
                             force=True).run()
        assert result.cached_indices == []

    def test_failure_collected_per_point(self, tmp_path):
        sweep = (Sweep("bad", "stack_ping", base_params={"probes": 4})
                 .add_axis("stack", ["physical", "no-such-stack"]))
        with pytest.raises(SweepError) as exc_info:
            SweepRunner(sweep, out_dir=tmp_path).run()
        assert list(exc_info.value.failures) == [1]

    def test_manifest_written(self, tmp_path):
        sweep = tiny_ping_sweep()
        SweepRunner(sweep, out_dir=tmp_path).run()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["scenario"] == "stack_ping"
        assert [p["index"] for p in manifest["points"]] == [0, 1, 2, 3]


class TestShardedDeterminism:
    def test_sharded_ping_matches_serial(self, tmp_path):
        serial = SweepRunner(tiny_ping_sweep(), workers=1,
                             out_dir=tmp_path / "s").run()
        sharded = SweepRunner(tiny_ping_sweep(), workers=3,
                              out_dir=tmp_path / "p").run()
        assert serial.result_bytes() == sharded.result_bytes()

    def test_churn_eight_seed_golden(self, tmp_path):
        """The determinism golden: an 8-seed churn sweep (reduced size)
        must produce byte-identical per-seed envelopes whether run
        serially or sharded over 2 workers."""
        def sweep():
            return (Sweep("churn-golden", "churn_recovery",
                          base_params={"n_hosts": 3, "horizon": 60.0,
                                       "ping": False},
                          metrics=["*.driver.repair.seconds"])
                    .add_axis("seed", [7, 11, 23, 42, 101, 131, 151, 173]))

        serial = SweepRunner(sweep(), workers=1,
                             out_dir=tmp_path / "serial").run()
        sharded = SweepRunner(sweep(), workers=2,
                              out_dir=tmp_path / "sharded").run()
        assert len(serial) == len(sharded) == 8
        for a, b in zip(serial, sharded):
            assert a.envelope_bytes() == b.envelope_bytes(), \
                f"seed {a.coords['seed']} diverged between serial and sharded"


class TestAggregate:
    def _result(self, tmp_path):
        return SweepRunner(tiny_ping_sweep(), out_dir=tmp_path).run()

    def test_column_and_series(self, tmp_path):
        result = self._result(tmp_path)
        means = aggregate.column(result, "mean_rtt_ms")
        assert len(means) == 4
        xs, ys = aggregate.series(result, "rtt_ms", "mean_rtt_ms")
        assert xs == sorted(xs)
        assert ys == sorted(ys)  # more RTT, slower pings
        for rtt, mean in zip(xs, ys):
            assert mean == pytest.approx(rtt, rel=0.05)

    def test_distribution_and_merge(self, tmp_path):
        assert aggregate.distribution([]) == {"count": 0}
        dist = aggregate.distribution([1.0, 2.0, 3.0])
        assert dist["count"] == 3
        assert dist["mean_s"] == 2.0
        assert dist["max_s"] == 3.0

    def test_table_rows_pivot(self, tmp_path):
        result = self._result(tmp_path)
        rows = aggregate.table_rows(result, row_axis="rtt_ms",
                                    col_axis="rtt_ms", key="mean_rtt_ms")
        assert len(rows) == 4
        assert rows[0][0] == 20.0
