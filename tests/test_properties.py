"""Property-based tests (hypothesis) on core data structures and
protocol invariants: TCP delivery, NAT mapping algebra, CAN geometry
under randomized workloads, latency-matrix/grouping invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.grouping import locality_sensitive_group
from repro.core.latency import LatencyMatrix
from repro.nat.mapping import MappingTable
from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.tcp import drain_bytes, stream_bytes
from repro.scenarios.builder import host_pair
from repro.sim import Simulator

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


class TestTcpDeliveryProperties:
    @given(
        total=st.integers(1, 400_000),
        loss_pct=st.integers(0, 8),
        latency_ms=st.integers(1, 60),
        seed=st.integers(0, 2**31 - 1),
    )
    @SLOW
    def test_exact_in_order_delivery_under_loss(self, total, loss_pct,
                                                latency_ms, seed):
        """Whatever the loss rate and latency, TCP delivers exactly the
        bytes written, in order, with EOF after the last byte."""
        sim = Simulator(seed=seed)
        a, b, _link = host_pair(sim, latency=latency_ms / 1000,
                                bandwidth_bps=20e6, loss=loss_pct / 100)
        listener = b.tcp.listen(5001)
        outcome = {}

        def server(sim):
            conn = yield listener.accept()
            outcome["got"] = yield from drain_bytes(conn)

        def client(sim):
            conn = a.tcp.connect(IPv4Address("10.0.0.2"), 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, total)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=900)
        assert outcome.get("got") == total

    @given(
        sizes=st.lists(st.integers(1, 30_000), min_size=1, max_size=12),
        loss_pct=st.integers(0, 6),
        seed=st.integers(0, 2**31 - 1),
    )
    @SLOW
    def test_markers_arrive_once_and_in_order(self, sizes, loss_pct, seed):
        sim = Simulator(seed=seed)
        a, b, _link = host_pair(sim, latency=0.003, bandwidth_bps=20e6,
                                loss=loss_pct / 100)
        listener = b.tcp.listen(5001)
        seen = []

        def server(sim):
            conn = yield listener.accept()
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    return
                conn.app_read(chunk.nbytes)
                seen.extend(chunk.objs)

        def client(sim):
            conn = a.tcp.connect(IPv4Address("10.0.0.2"), 5001)
            yield conn.wait_established()
            for i, size in enumerate(sizes):
                yield conn.send(size, obj=i)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=900)
        assert seen == list(range(len(sizes)))


class TestNatMappingProperties:
    flows = st.lists(
        st.tuples(st.integers(1, 4),      # internal host index
                  st.integers(1024, 1030),  # internal port
                  st.integers(1, 5),      # destination index
                  st.integers(1, 3)),     # destination port
        min_size=1, max_size=40)

    @given(flows=flows, nat=st.sampled_from(["full-cone", "restricted-cone",
                                             "port-restricted", "symmetric"]))
    @settings(max_examples=60, deadline=None)
    def test_external_ports_never_collide(self, flows, nat):
        table = MappingTable(NatType.parse(nat), timeout=60)
        seen = {}
        for i, (host, port, dst, dport) in enumerate(flows):
            m = table.outbound(IPv4Address(f"192.168.1.{host}"), port,
                               IPv4Address(f"8.0.0.{dst}"), dport, now=float(i))
            key = m.external_port
            owner = (m.internal_ip, m.internal_port, m.dest_key)
            if key in seen:
                assert seen[key] == owner, "two flows share an external port"
            seen[key] = owner

    @given(flows=flows)
    @settings(max_examples=60, deadline=None)
    def test_cone_mapping_stable_across_destinations(self, flows):
        table = MappingTable(NatType.FULL_CONE, timeout=60)
        per_endpoint = {}
        for i, (host, port, dst, dport) in enumerate(flows):
            m = table.outbound(IPv4Address(f"192.168.1.{host}"), port,
                               IPv4Address(f"8.0.0.{dst}"), dport, now=float(i))
            key = (host, port)
            per_endpoint.setdefault(key, set()).add(m.external_port)
        assert all(len(ports) == 1 for ports in per_endpoint.values())

    @given(flows=flows)
    @settings(max_examples=60, deadline=None)
    def test_inbound_only_after_outbound(self, flows):
        """Port-restricted: inbound passes iff that exact endpoint was
        contacted from that mapping."""
        table = MappingTable(NatType.PORT_RESTRICTED, timeout=60)
        contacted = {}
        for i, (host, port, dst, dport) in enumerate(flows):
            m = table.outbound(IPv4Address(f"192.168.1.{host}"), port,
                               IPv4Address(f"8.0.0.{dst}"), dport, now=float(i))
            contacted.setdefault(m.external_port, set()).add((dst, dport))
        now = float(len(flows))
        for ext_port, pairs in contacted.items():
            for dst, dport in pairs:
                assert table.inbound(ext_port, IPv4Address(f"8.0.0.{dst}"),
                                     dport, now) is not None
            assert table.inbound(ext_port, IPv4Address("9.9.9.9"), 1, now) is None


class TestGroupingProperties:
    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(2, 10))
    @settings(max_examples=25, deadline=None)
    def test_group_members_distinct_and_in_range(self, seed, k):
        rng = np.random.default_rng(seed)
        n = 20
        sym = rng.uniform(0.001, 0.5, (n, n))
        m = (sym + sym.T) / 2
        np.fill_diagonal(m, 0)
        lm = LatencyMatrix.from_array([f"h{i}" for i in range(n)], m)
        res = locality_sensitive_group(lm, k)
        assert len(set(res.members)) == k
        assert all(0 <= i < n for i in res.members)
        # Reported stats must match recomputation from the matrix.
        assert res.average_latency == pytest.approx(lm.group_average(res.members))
        assert res.max_latency == pytest.approx(lm.group_max(res.members))

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_filter_never_improves_average(self, seed):
        rng = np.random.default_rng(seed)
        n = 16
        sym = rng.uniform(0.001, 0.5, (n, n))
        m = (sym + sym.T) / 2
        np.fill_diagonal(m, 0)
        lm = LatencyMatrix.from_array([f"h{i}" for i in range(n)], m)
        unfiltered = locality_sensitive_group(lm, 5)
        filtered = locality_sensitive_group(lm, 5,
                                            max_latency=unfiltered.max_latency,
                                            fallback=True)
        assert filtered.average_latency >= unfiltered.average_latency - 1e-12
