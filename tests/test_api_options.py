"""ConnectOptions/TransferOptions bundles and their deprecated aliases.

Every connect/transfer entry point (driver.connect, connect_by_name,
open_transfer, ttcp_transfer, netperf_stream, ApacheBench) accepts a
typed ``options=`` bundle; the scattered legacy keywords still work but
emit a DeprecationWarning and fold into the bundle (explicit keyword
wins over the same field in ``options=``).
"""

import warnings

import pytest

from repro import ConnectOptions, Simulator, TransferOptions, WavnetEnvironment
from repro.apps.ab import ApacheBench
from repro.apps.ttcp import ttcp_transfer
from repro.core.options import UNSET
from repro.net.addresses import IPv4Address
from repro.scenarios.builder import host_pair


def test_top_level_api_surface():
    import repro

    for name in ("WavnetEnvironment", "WavnetDriver", "ExperimentSpec",
                 "Sweep", "SweepRunner", "FaultPlan", "FaultInjector",
                 "run_partitioned", "run_sweep", "ConnectOptions",
                 "TransferOptions", "Simulator", "NatType"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


def test_legacy_kwarg_folds_with_warning():
    with pytest.warns(DeprecationWarning, match=r"connect\(allow_relay"):
        opts = ConnectOptions.coerce(None, "connect",
                                     allow_relay=False, timeout=UNSET)
    assert opts.allow_relay is False
    assert opts.timeout is None  # untouched field keeps its default


def test_explicit_legacy_kwarg_wins_over_options_field():
    with pytest.warns(DeprecationWarning, match="cc="):
        opts = TransferOptions.coerce(TransferOptions(cc="reno"), "x",
                                      cc="bbr", fidelity=UNSET)
    assert opts.cc == "bbr"


def test_options_path_emits_no_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        opts = TransferOptions.coerce(TransferOptions(fidelity="fluid"),
                                      "x", fidelity=UNSET, cc=UNSET)
    assert opts.fidelity == "fluid"


def test_wrong_options_type_raises():
    with pytest.raises(TypeError, match="TransferOptions"):
        TransferOptions.coerce(ConnectOptions(), "open_transfer")


def test_ttcp_legacy_fidelity_warns():
    sim = Simulator(seed=1)
    a, _b, _link = host_pair(sim)
    gen = ttcp_transfer(a, IPv4Address("10.0.0.2"), 1000, fidelity="packet")
    with pytest.warns(DeprecationWarning, match="ttcp_transfer"):
        next(gen)  # generator body (and the coerce) runs on first advance
    gen.close()


def test_apachebench_legacy_fidelity_warns():
    sim = Simulator(seed=1)
    a, _b, _link = host_pair(sim)
    with pytest.warns(DeprecationWarning, match="ApacheBench"):
        ApacheBench(a, IPv4Address("10.0.0.2"), fidelity="packet")


def test_driver_legacy_connect_kwargs_still_work():
    sim = Simulator(seed=9)
    env = WavnetEnvironment(sim)
    env.add_host("a")
    env.add_host("b")
    env.up()
    driver = env.hosts["a"].driver
    with pytest.warns(DeprecationWarning, match="connect_by_name"):
        conn = sim.run_coro(driver.connect_by_name("b", allow_relay=True))
    assert conn.usable


def test_driver_connect_options_bundle():
    sim = Simulator(seed=9)
    env = WavnetEnvironment(sim)
    env.add_host("a")
    env.add_host("b")
    env.up()
    driver = env.hosts["a"].driver
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        conn = sim.run_coro(driver.connect_by_name(
            "b", options=ConnectOptions(allow_relay=False)))
    assert conn.usable and not conn.relayed
