"""End-to-end distance locator (§II.D): hosts measure mutual RTTs over
the virtual LAN, report them to their rendezvous server, and the server
builds the latency matrix that drives virtual-cluster grouping."""

import numpy as np
import pytest

from repro.apps.ping import Pinger
from repro.core.grouping import locality_sensitive_group
from repro.core.latency import LatencyMatrix
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator


def build(n=4, seed=77):
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, default_latency=0.010)
    for i in range(n):
        env.add_host(f"h{i}")
    # Heterogeneous pairwise RTTs: h0-h1 close, h2-h3 close, cross far.
    env.set_site_rtt("h0", "h1", 0.004)
    env.set_site_rtt("h2", "h3", 0.004)
    for a in ("h0", "h1"):
        for b in ("h2", "h3"):
            env.set_site_rtt(a, b, 0.120)
    env.up().connect()
    return sim, env


def measure_and_report(sim, env):
    """Every host pings every peer over the virtual LAN and reports."""
    names = list(env.hosts)

    def worker(name):
        def proc(sim):
            driver = env.hosts[name].driver
            rtts = {}
            for peer in names:
                if peer == name:
                    continue
                pinger = Pinger(env.hosts[name].host.stack,
                                env.hosts[peer].virtual_ip,
                                interval=0.2, timeout=2.0)
                result = yield sim.process(pinger.run(3))
                rtts[peer] = min(result.rtts)
            yield sim.process(driver.report_latencies(rtts))
        return proc

    procs = [sim.process(worker(n)(sim)) for n in names]
    for p in procs:
        sim.run(until=p)


class TestDistanceLocator:
    def test_matrix_assembled_from_reports(self):
        sim, env = build()
        measure_and_report(sim, env)
        names, matrix = env.rendezvous[0].latency_matrix()
        assert set(names) >= {"h0", "h1", "h2", "h3"}
        idx = {n: i for i, n in enumerate(names)}
        assert np.isfinite(matrix[idx["h0"], idx["h1"]])
        # Reports are symmetrized (paper Eq. 2).
        assert matrix[idx["h0"], idx["h1"]] == matrix[idx["h1"], idx["h0"]]

    def test_measured_rtts_reflect_topology(self):
        sim, env = build()
        measure_and_report(sim, env)
        names, matrix = env.rendezvous[0].latency_matrix()
        idx = {n: i for i, n in enumerate(names)}
        near = matrix[idx["h0"], idx["h1"]]
        far = matrix[idx["h0"], idx["h2"]]
        assert near == pytest.approx(0.0056, rel=0.3)  # 4ms + site paths
        assert far > 10 * near

    def test_grouping_over_reported_matrix(self):
        """The full §II.D loop: measure -> report -> group."""
        sim, env = build()
        measure_and_report(sim, env)
        names, matrix = env.rendezvous[0].latency_matrix()
        lm = LatencyMatrix.from_array(names, np.nan_to_num(matrix, nan=10.0))
        result = locality_sensitive_group(lm, 2)
        chosen = {names[i] for i in result.members}
        assert chosen in ({"h0", "h1"}, {"h2", "h3"})
