"""Fluid data plane integration: apps, faults, hybrid sharing.

`tests/test_fluid_solver.py` checks the waterfill math on synthetic
graphs; this file checks the plane end-to-end over the real stack
topologies — app fluid modes agree with the packet plane, fault verbs
stall/resume/abort flows through the watcher hooks, and packet traffic
steals capacity from fluid flows on shared links.
"""

import math

import pytest

from repro.apps.ab import ApacheBench
from repro.apps.httpd import HttpServer
from repro.apps.netperf import netperf_stream, netserver
from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
from repro.core.options import TransferOptions
from repro.faults.injector import FaultInjector
from repro.net.fluid import FluidAborted
from repro.scenarios.fluid import _find_link, fluidify
from repro.scenarios.stacks import physical_pair, wavnet_pair

MB = 1024 * 1024


# ----------------------------------------------------------------------
# App fluid modes vs the packet plane
# ----------------------------------------------------------------------

def _run_ttcp(pair, nbytes, fidelity):
    if fidelity == "fluid":
        fluidify(pair)
    else:
        pair.sim.process(ttcp_receiver(pair.host_b))
    proc = pair.sim.process(ttcp_transfer(pair.host_a, pair.ip_b, nbytes,
                                          options=TransferOptions(
                                              fidelity=fidelity)))
    pair.sim.run(until=proc)
    return proc.value, pair.sim.events_dispatched


def test_ttcp_fluid_matches_packet_physical():
    res_p, ev_p = _run_ttcp(physical_pair(0.010, 100e6, seed=1), 8 * MB, "packet")
    res_f, ev_f = _run_ttcp(physical_pair(0.010, 100e6, seed=1), 8 * MB, "fluid")
    assert res_f.elapsed == pytest.approx(res_p.elapsed, rel=0.10)
    # The point of the fluid plane: orders of magnitude fewer events.
    assert ev_f * 100 < ev_p


def test_netperf_fluid_matches_packet_wavnet():
    # Tuned buffers (~BDP + half the bottleneck queue) keep the packet
    # plane in its clean steady state — see DESIGN.md §12 on when the
    # fluid model applies.
    results = {}
    for fidelity in ("packet", "fluid"):
        pair = wavnet_pair(0.010, 50e6, seed=2,
                           send_buf=150000, recv_buf=150000)
        if fidelity == "fluid":
            fluidify(pair)
        else:
            pair.sim.process(netserver(pair.host_b))
        proc = pair.sim.process(netperf_stream(
            pair.host_a, pair.ip_b, duration=2.0,
            options=TransferOptions(fidelity=fidelity)))
        pair.sim.run(until=proc)
        results[fidelity] = proc.value.throughput_mbps
    assert results["fluid"] == pytest.approx(results["packet"], rel=0.10)


def test_ab_fluid_matches_packet_wavnet():
    rps = {}
    for fidelity in ("packet", "fluid"):
        pair = wavnet_pair(0.050, 20e6, seed=2)
        if fidelity == "fluid":
            net = fluidify(pair)
        else:
            HttpServer(pair.host_b)
        ab = ApacheBench(pair.host_a, pair.ip_b, path="/file8k",
                         concurrency=4,
                         options=TransferOptions(fidelity=fidelity))
        proc = pair.sim.process(ab.run_requests(24))
        pair.sim.run(until=proc)
        report = proc.value
        # Workers already in flight when the target is hit still finish,
        # so the count can overshoot by up to concurrency-1 (ab -n style).
        assert 24 <= report.requests_completed < 24 + 4
        assert report.requests_failed == 0
        rps[fidelity] = report.requests_per_second
        if fidelity == "fluid":
            # Each request's connect is one path RTT on the fluid model.
            rtt = net.route(pair.host_a.name, pair.ip_b).rtt
            mean_connect = sum(report.connect_times) / len(report.connect_times)
            assert mean_connect == pytest.approx(rtt, rel=0.01)
    assert rps["fluid"] == pytest.approx(rps["packet"], rel=0.25)


def test_driver_open_transfer_one_api():
    """The driver front door runs either fidelity behind one call."""
    elapsed = {}
    for fidelity in ("packet", "fluid"):
        pair = wavnet_pair(0.020, 50e6, seed=2)
        if fidelity == "fluid":
            fluidify(pair)
        else:
            pair.sim.process(ttcp_receiver(pair.host_b))
        driver = pair.env.hosts["wa"].driver
        proc = pair.sim.process(
            driver.open_transfer(pair.ip_b, MB,
                                 options=TransferOptions(fidelity=fidelity)))
        pair.sim.run(until=proc)
        elapsed[fidelity] = proc.value.elapsed
    assert elapsed["fluid"] == pytest.approx(elapsed["packet"], rel=0.15)


# ----------------------------------------------------------------------
# Faults: stall / resume / abort through the injector verbs
# ----------------------------------------------------------------------

def test_link_flap_stalls_and_resumes():
    pair = physical_pair(0.010, 100e6, seed=1)
    sim = pair.sim
    net = fluidify(pair)
    inject = FaultInjector(sim)
    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=8 * MB)
    sim.call_in(0.2, lambda: inject.link_flap(_find_link(sim, "pa.access"),
                                              down_for=0.4))
    sim.run(until=flow.done)
    # ~0.7 s of transfer + 0.4 s of outage.
    assert sim.now > 1.0
    assert flow.state == "done"
    assert pair.metrics.value("fluid.flows.stalls") == 1
    assert pair.trace.find(name="fluid.stall")
    assert pair.trace.find(name="fluid.resume")
    # Stalled time must not be billed as delivery.
    assert flow.delivered == 8 * MB


def test_partition_stalls_and_heal_resumes():
    pair = wavnet_pair(0.010, 100e6, seed=2)
    sim = pair.sim
    net = fluidify(pair)
    inject = FaultInjector(sim)
    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=8 * MB)
    sim.call_in(0.2, lambda: inject.partition(pair.cloud, ["wa"], ["wb"],
                                              duration=0.5))
    sim.run(until=flow.done)
    assert sim.now > 1.0
    assert flow.state == "done"
    stall = pair.trace.find(name="fluid.stall")[0]
    assert stall["attrs"]["reason"] == "partitioned"


def test_conduit_down_stalls_wavnet_flow():
    pair = wavnet_pair(0.010, 100e6, seed=2)
    sim = pair.sim
    net = fluidify(pair)
    key = net.conduit_key("wa", "wb")
    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=8 * MB)
    sim.call_in(0.2, lambda: net.set_conduit(key, False))
    sim.call_in(0.7, lambda: net.set_conduit(key, True))
    sim.run(until=flow.done)
    assert sim.now > 1.0 and flow.state == "done"
    stall = pair.trace.find(name="fluid.stall")[0]
    assert stall["attrs"]["reason"] == "tunnel_down:wa-wb"


def test_stall_timeout_aborts_flow():
    pair = physical_pair(0.010, 100e6, seed=1)
    sim = pair.sim
    net = fluidify(pair, stall_timeout=0.5)
    inject = FaultInjector(sim)
    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=8 * MB)
    sim.call_in(0.2, lambda: inject.link_down(_find_link(sim, "pa.access")))
    with pytest.raises(FluidAborted):
        sim.run(until=flow.done)
    assert flow.state == "aborted"
    assert sim.now == pytest.approx(0.7, abs=0.01)
    assert pair.metrics.value("fluid.flows.aborted") == 1
    assert 0 < flow.delivered < 8 * MB


def test_loss_burst_engages_mathis_cap():
    pair = physical_pair(0.010, 100e6, seed=1)
    sim = pair.sim
    net = fluidify(pair)
    inject = FaultInjector(sim)
    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=None)
    rates = {}
    link = _find_link(sim, "pa.access")

    def burst():
        rates["before"] = flow.rate
        inject.loss_burst(link, 0.02, duration=0.5)

    sim.call_in(0.3, burst)
    sim.call_in(0.6, lambda: rates.__setitem__("during", flow.rate))
    sim.call_in(1.2, lambda: rates.__setitem__("after", flow.rate))
    sim.run(until=1.3)
    # The flow's path crosses the forward direction of the link only, so
    # the Mathis cap sees the burst's 2% loss directly (ACK-path loss is
    # not modelled, matching the solver's per-direction loss accounting).
    path = net.route(pair.host_a.name, pair.ip_b)
    expect = 1460 * 8 * 1.22 / (path.rtt * math.sqrt(0.02))
    assert rates["during"] == pytest.approx(expect, rel=0.01)
    assert rates["during"] < rates["before"] / 2
    assert rates["after"] == pytest.approx(rates["before"], rel=0.01)
    flow.close()


# ----------------------------------------------------------------------
# Hybrid capacity sharing
# ----------------------------------------------------------------------

def test_packet_traffic_steals_fluid_capacity():
    """A packet-mode transfer on the shared access link must squeeze a
    concurrent fluid flow (measured-utilization subtraction), and the
    fluid flow must recover once the packet flow drains."""
    pair = physical_pair(0.010, 100e6, seed=1)
    sim = pair.sim
    net = fluidify(pair, refresh_interval=0.1)
    sim.process(ttcp_receiver(pair.host_b))
    flow = net.open(pair.host_a.name, pair.ip_b, size_bytes=None)
    samples = {}
    sim.call_in(0.5, lambda: samples.__setitem__("alone", flow.rate))
    sim.call_in(0.6, lambda: sim.process(
        ttcp_transfer(pair.host_a, pair.ip_b, 8 * MB)))
    sim.call_in(1.2, lambda: samples.__setitem__("contended", flow.rate))
    sim.run(until=3.5)
    samples["recovered"] = flow.rate
    assert samples["alone"] > 90e6
    assert samples["contended"] < 0.5 * samples["alone"]
    assert samples["recovered"] > 0.8 * samples["alone"]
    flow.close()
