"""Tests for RNG streams and measurement probes.

The probe classes live in :mod:`repro.obs.metrics` (re-exported from
``repro.sim``); the old ``repro.sim.monitor`` module is gone.
"""

import numpy as np
import pytest

from repro.sim import Counter, IntervalRate, Simulator, TimeSeries
from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("link.loss").random(5)
        b = RngRegistry(7).stream("link.loss").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("one").random(5)
        b = reg.stream("two").random(5)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(3)
        s = reg1.stream("x")
        s.random(10)  # consume some draws
        next_vals = s.random(3)

        reg2 = RngRegistry(3)
        s2 = reg2.stream("x")
        s2.random(10)
        reg2.stream("brand-new")  # interleaved creation must not matter
        assert np.array_equal(s2.random(3), next_vals)

    def test_seed_changes_streams(self):
        a = RngRegistry(1).stream("n").random(4)
        b = RngRegistry(2).stream("n").random(4)
        assert not np.array_equal(a, b)

    def test_names_listing(self):
        reg = RngRegistry(0)
        reg.stream("b")
        reg.stream("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zz" not in reg


class TestTimeSeries:
    def test_record_and_stats(self):
        sim = Simulator()
        ts = TimeSeries(sim, "t")

        def proc(sim):
            for v in (1.0, 3.0, 5.0):
                ts.record(v)
                yield sim.timeout(1)

        sim.process(proc(sim))
        sim.run()
        assert ts.mean() == 3.0
        assert ts.max() == 5.0
        assert ts.min() == 1.0
        assert len(ts) == 3
        assert np.array_equal(ts.times, [0.0, 1.0, 2.0])

    def test_empty_stats_are_nan(self):
        ts = TimeSeries(Simulator())
        assert np.isnan(ts.mean()) and np.isnan(ts.max()) and np.isnan(ts.min())

    def test_between(self):
        sim = Simulator()
        ts = TimeSeries(sim)

        def proc(sim):
            for v in range(5):
                ts.record(v)
                yield sim.timeout(1)

        sim.process(proc(sim))
        sim.run()
        t, v = ts.between(1.0, 3.0)
        assert list(v) == [1.0, 2.0]

    def test_resample_with_gap_yields_nan(self):
        sim = Simulator()
        ts = TimeSeries(sim)

        def proc(sim):
            ts.record(10)
            yield sim.timeout(0.4)
            ts.record(20)
            yield sim.timeout(2.0)  # gap
            ts.record(30)

        sim.process(proc(sim))
        sim.run()
        t, v = ts.resample(0.5, t0=0.0, t1=2.5)
        assert v[0] == 15.0  # two samples in first bucket
        assert np.isnan(v[2])  # gap bucket

    def test_resample_empty(self):
        ts = TimeSeries(Simulator())
        t, v = ts.resample(1.0)
        assert t.size == 0 and v.size == 0


class TestCounter:
    def test_add_and_int(self):
        c = Counter("pkts")
        c.add()
        c.add(4)
        assert int(c) == 5
        assert "pkts=5" in repr(c)


class TestIntervalRate:
    def test_snapshot_rates(self):
        sim = Simulator()
        meter = IntervalRate(sim, "bytes")
        rates = []

        def proc(sim):
            meter.add(100)
            yield sim.timeout(1)
            rates.append(meter.snapshot())  # 100 B over 1 s
            meter.add(50)
            yield sim.timeout(2)
            rates.append(meter.snapshot())  # 50 B over 2 s

        sim.process(proc(sim))
        sim.run()
        assert rates == [100.0, 25.0]
        assert meter.total == 150
        assert len(meter.series) == 2

    def test_snapshot_zero_dt(self):
        sim = Simulator()
        meter = IntervalRate(sim)
        meter.add(10)
        assert meter.snapshot() == 0.0

    def test_overall_rate(self):
        sim = Simulator()
        meter = IntervalRate(sim)

        def proc(sim):
            meter.add(200)
            yield sim.timeout(4)

        sim.process(proc(sim))
        sim.run()
        assert meter.overall_rate() == pytest.approx(50.0)
