"""Tests for NAT behaviour: mapping, filtering, timeouts, all four types."""

import pytest

from repro.nat.mapping import MappingTable
from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.icmp import Pinger
from repro.net.packet import Payload
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_natted_site
from repro.sim import Simulator


def build_two_sites(sim, nat_a="port-restricted", nat_b="port-restricted",
                    udp_timeout=60.0):
    cloud = WanCloud(sim, default_latency=0.010)
    site_a = make_natted_site(sim, cloud, "a", "8.0.0.1", nat_type=nat_a,
                              lan_subnet="192.168.1.0/24", udp_timeout=udp_timeout)
    site_b = make_natted_site(sim, cloud, "b", "8.0.0.2", nat_type=nat_b,
                              lan_subnet="192.168.2.0/24", udp_timeout=udp_timeout)
    return cloud, site_a, site_b


class TestMappingTable:
    IIP = IPv4Address("192.168.1.10")
    DIP = IPv4Address("8.8.8.8")

    def test_outbound_creates_then_reuses_mapping(self):
        table = MappingTable(NatType.FULL_CONE, timeout=60)
        m1 = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        m2 = table.outbound(self.IIP, 5000, self.DIP, 53, now=1.0)
        assert m1 is m2

    def test_cone_mapping_is_endpoint_independent(self):
        table = MappingTable(NatType.FULL_CONE, timeout=60)
        m1 = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        m2 = table.outbound(self.IIP, 5000, IPv4Address("9.9.9.9"), 99, now=0.0)
        assert m1.external_port == m2.external_port

    def test_symmetric_mapping_is_per_destination(self):
        table = MappingTable(NatType.SYMMETRIC, timeout=60)
        m1 = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        m2 = table.outbound(self.IIP, 5000, IPv4Address("9.9.9.9"), 99, now=0.0)
        assert m1.external_port != m2.external_port

    def test_full_cone_accepts_any_inbound(self):
        table = MappingTable(NatType.FULL_CONE, timeout=60)
        m = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        stranger = IPv4Address("7.7.7.7")
        assert table.inbound(m.external_port, stranger, 1234, now=1.0) is m

    def test_restricted_cone_filters_by_ip(self):
        table = MappingTable(NatType.RESTRICTED_CONE, timeout=60)
        m = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        assert table.inbound(m.external_port, self.DIP, 9999, now=1.0) is m
        assert table.inbound(m.external_port, IPv4Address("7.7.7.7"), 53, now=1.0) is None

    def test_port_restricted_filters_by_endpoint(self):
        table = MappingTable(NatType.PORT_RESTRICTED, timeout=60)
        m = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        assert table.inbound(m.external_port, self.DIP, 53, now=1.0) is m
        assert table.inbound(m.external_port, self.DIP, 54, now=1.0) is None

    def test_symmetric_filters_other_destinations(self):
        table = MappingTable(NatType.SYMMETRIC, timeout=60)
        m = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        assert table.inbound(m.external_port, self.DIP, 53, now=1.0) is m
        assert table.inbound(m.external_port, IPv4Address("9.9.9.9"), 53, now=1.0) is None

    def test_mapping_expires_after_idle(self):
        table = MappingTable(NatType.FULL_CONE, timeout=10)
        m = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        assert table.inbound(m.external_port, self.DIP, 53, now=20.0) is None
        assert table.expired_count == 1

    def test_traffic_refreshes_timeout(self):
        table = MappingTable(NatType.FULL_CONE, timeout=10)
        m = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        assert table.inbound(m.external_port, self.DIP, 53, now=8.0) is m
        assert table.inbound(m.external_port, self.DIP, 53, now=16.0) is m

    def test_expired_mapping_reallocated_fresh(self):
        table = MappingTable(NatType.FULL_CONE, timeout=10)
        m1 = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        m2 = table.outbound(self.IIP, 5000, self.DIP, 53, now=30.0)
        assert m1 is not m2

    def test_distinct_flows_get_distinct_ports(self):
        table = MappingTable(NatType.FULL_CONE, timeout=60)
        m1 = table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        m2 = table.outbound(self.IIP, 5001, self.DIP, 53, now=0.0)
        assert m1.external_port != m2.external_port

    def test_active_count(self):
        table = MappingTable(NatType.FULL_CONE, timeout=10)
        table.outbound(self.IIP, 5000, self.DIP, 53, now=0.0)
        table.outbound(self.IIP, 5001, self.DIP, 53, now=5.0)
        assert table.active_count(now=12.0) == 1


class TestNatBoxDatapath:
    def test_outbound_udp_snat_and_reply(self):
        """Inside host talks UDP to a public server; replies come back."""
        sim = Simulator()
        cloud = WanCloud(sim, default_latency=0.010)
        site = make_natted_site(sim, cloud, "a", "8.0.0.1")
        # Public server directly on the cloud.
        from repro.net.addresses import mac_factory
        from repro.net.l2 import Link
        from repro.net.stack import Host
        mint = mac_factory(prefix=0x02_99_00_00_00_00)
        server = Host(sim, "pub", mint)
        iface = server.add_nic().configure("8.0.0.100", "8.0.0.0/8")
        server.stack.connected_route_for(iface)
        Link(sim, iface.port, cloud.attach("pub"), latency=0.0005, bandwidth_bps=1e9)

        inside = site.hosts[0]
        seen = {}

        def srv(sim):
            sock = server.udp.bind(7000)
            payload, src_ip, src_port = yield sock.recvfrom()
            seen["from"] = (str(src_ip), src_port)
            sock.sendto(src_ip, src_port, Payload(16, data="reply"))

        def cli(sim):
            sock = inside.udp.bind(5555)
            sock.sendto(IPv4Address("8.0.0.100"), 7000, Payload(16, data="hi"))
            payload, _ip, _port = yield sock.recvfrom()
            seen["reply"] = payload.data

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=5)
        assert seen["from"][0] == "8.0.0.1"  # SNATed to the public IP
        assert seen["from"][1] != 5555  # port translated
        assert seen["reply"] == "reply"
        assert site.nat.translated_out >= 1 and site.nat.translated_in >= 1

    def test_unsolicited_inbound_dropped(self):
        sim = Simulator()
        cloud, site_a, site_b = build_two_sites(sim)
        host_a = site_a.hosts[0]
        sock = host_a.udp.bind(5000)
        # Host A sends to B's *public* IP at a port with no mapping.
        sock.sendto(IPv4Address("8.0.0.2"), 12345, Payload(32))
        sim.run(until=2)
        assert site_b.nat.dropped_unsolicited == 1

    def test_ping_inside_to_public(self):
        sim = Simulator()
        cloud, site_a, site_b = build_two_sites(sim)
        host_a = site_a.hosts[0]
        # Ping B's NAT public address (answered by the NAT itself).
        pinger = Pinger(host_a.stack, IPv4Address("8.0.0.2"), interval=0.5)
        proc = sim.process(pinger.run(3))
        sim.run()
        assert proc.value.lost == 0
        # RTT ~ 2*(lan + access + cloud + access) ≈ 21+ ms
        assert proc.value.rtts[-1] == pytest.approx(0.0212, rel=0.2)

    def test_icmp_ident_translated(self):
        sim = Simulator()
        cloud, site_a, _site_b = build_two_sites(sim)
        host_a = site_a.hosts[0]
        proc = sim.process(Pinger(host_a.stack, IPv4Address("8.0.0.2")).run(1))
        sim.run()
        assert proc.value.lost == 0
        assert len(site_a.nat.icmp_mappings) == 1

    def test_open_nat_type_rejected(self):
        from repro.nat.box import NatBox
        from repro.net.addresses import mac_factory
        sim = Simulator()
        with pytest.raises(ValueError):
            NatBox(sim, "x", mac_factory(), nat_type="open")

    def test_nat_type_parse_errors(self):
        with pytest.raises(ValueError):
            NatType.parse("bogus")

    def test_hole_punchable_classification(self):
        assert NatType.FULL_CONE.hole_punchable
        assert NatType.PORT_RESTRICTED.hole_punchable
        assert not NatType.SYMMETRIC.hole_punchable


class TestUdpHolePunchManual:
    """Punch a UDP hole by hand (the primitive WAVNet automates)."""

    def punch(self, nat_a, nat_b, expect_success=True):
        sim = Simulator()
        cloud, site_a, site_b = build_two_sites(sim, nat_a, nat_b)
        a, b = site_a.hosts[0], site_b.hosts[0]
        delivered = []

        # Out-of-band, each side learns the peer's public endpoint (the
        # rendezvous server's job). Here we compute it via the NAT tables.
        sock_a = a.udp.bind(6001)
        sock_b = b.udp.bind(6002)
        pub_b = IPv4Address("8.0.0.2")
        pub_a = IPv4Address("8.0.0.1")
        ext_a = site_a.nat.external_endpoint_for(a.stack.ips[0], 6001, pub_b, 0)[1] \
            if nat_a != "symmetric" else None
        ext_b = site_b.nat.external_endpoint_for(b.stack.ips[0], 6002, pub_a, 0)[1] \
            if nat_b != "symmetric" else None

        def side_a(sim):
            # Simultaneous outbound bursts open both NATs.
            for _ in range(3):
                sock_a.sendto(pub_b, ext_b if ext_b else 20000, Payload(8, data="punch-a"))
                yield sim.timeout(0.05)
            while True:
                payload, ip, port = yield sock_a.recvfrom()
                delivered.append(("a", payload.data))

        def side_b(sim):
            for _ in range(3):
                sock_b.sendto(pub_a, ext_a if ext_a else 20000, Payload(8, data="punch-b"))
                yield sim.timeout(0.05)
            while True:
                payload, ip, port = yield sock_b.recvfrom()
                delivered.append(("b", payload.data))

        sim.process(side_a(sim))
        sim.process(side_b(sim))
        sim.run(until=3)
        got_a = any(side == "a" for side, _ in delivered)
        got_b = any(side == "b" for side, _ in delivered)
        return got_a and got_b

    def test_punch_full_cone_pair(self):
        assert self.punch("full-cone", "full-cone")

    def test_punch_restricted_cone_pair(self):
        assert self.punch("restricted-cone", "restricted-cone")

    def test_punch_port_restricted_pair(self):
        assert self.punch("port-restricted", "port-restricted")

    def test_punch_mixed_cone(self):
        assert self.punch("full-cone", "port-restricted")

    def test_punch_fails_symmetric_pair(self):
        assert not self.punch("symmetric", "symmetric")

    def test_keepalive_maintains_mapping_across_timeout(self):
        """Without traffic the mapping dies at the NAT timeout; periodic
        2-byte pulses keep it alive (paper §II.B)."""
        sim = Simulator()
        cloud, site_a, site_b = build_two_sites(sim, udp_timeout=10.0)
        a, b = site_a.hosts[0], site_b.hosts[0]
        sock_a = a.udp.bind(6001)
        sock_b = b.udp.bind(6002)
        pub_a, pub_b = IPv4Address("8.0.0.1"), IPv4Address("8.0.0.2")
        ext_a = site_a.nat.external_endpoint_for(a.stack.ips[0], 6001, pub_b, 0)[1]
        ext_b = site_b.nat.external_endpoint_for(b.stack.ips[0], 6002, pub_a, 0)[1]
        late_delivery = []

        def puncher(sock, dst_ip, dst_port, tag, pulse_interval):
            def proc(sim):
                # punch
                sock.sendto(dst_ip, dst_port, Payload(2, data=f"punch-{tag}"))
                # keepalive pulses well past several NAT timeouts
                for _ in range(12):
                    yield sim.timeout(pulse_interval)
                    sock.sendto(dst_ip, dst_port, Payload(2, data="pulse"))
                # then one real message at t >> timeout
                sock.sendto(dst_ip, dst_port, Payload(64, data=f"data-{tag}"))
            return proc

        def receiver(sock, tag):
            def proc(sim):
                while True:
                    payload, _ip, _port = yield sock.recvfrom()
                    if str(payload.data).startswith("data-"):
                        late_delivery.append((tag, payload.data, sim.now))
            return proc

        sim.process(puncher(sock_a, pub_b, ext_b, "a", 5.0)(sim))
        sim.process(puncher(sock_b, pub_a, ext_a, "b", 5.0)(sim))
        sim.process(receiver(sock_a, "a")(sim))
        sim.process(receiver(sock_b, "b")(sim))
        sim.run(until=120)
        tags = {t for t, _d, _w in late_delivery}
        assert tags == {"a", "b"}
        assert all(when > 50 for _t, _d, when in late_delivery)

    def test_connection_dies_without_keepalive(self):
        sim = Simulator()
        cloud, site_a, site_b = build_two_sites(sim, udp_timeout=10.0)
        a, b = site_a.hosts[0], site_b.hosts[0]
        sock_a = a.udp.bind(6001)
        sock_b = b.udp.bind(6002)
        pub_a, pub_b = IPv4Address("8.0.0.1"), IPv4Address("8.0.0.2")
        ext_a = site_a.nat.external_endpoint_for(a.stack.ips[0], 6001, pub_b, 0)[1]
        ext_b = site_b.nat.external_endpoint_for(b.stack.ips[0], 6002, pub_a, 0)[1]
        received_b = []

        def side_a(sim):
            sock_a.sendto(pub_b, ext_b, Payload(2, data="punch"))
            yield sim.timeout(30.0)  # silence >> timeout
            sock_a.sendto(pub_b, ext_b, Payload(64, data="late"))

        def side_b(sim):
            sock_b.sendto(pub_a, ext_a, Payload(2, data="punch"))
            while True:
                payload, _ip, _port = yield sock_b.recvfrom()
                received_b.append(payload.data)

        sim.process(side_a(sim))
        sim.process(side_b(sim))
        sim.run(until=60)
        assert "punch" in received_b
        assert "late" not in received_b
