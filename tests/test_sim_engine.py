"""Unit tests for the discrete-event kernel (events, processes, run loop)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.5
    assert p.value == 2.5


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def maker(tag):
        def proc(sim):
            yield sim.timeout(1.0)
            order.append(tag)
        return proc

    for tag in ("a", "b", "c"):
        sim.process(maker(tag)(sim))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter(sim):
        val = yield ev
        seen.append(val)

    def firer(sim):
        yield sim.timeout(3)
        ev.succeed(42)

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert seen == [42]
    assert sim.now == 3


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_crashes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        sim.run()


def test_process_failure_propagates_to_joiner():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise KeyError("inner")

    def joiner(sim):
        try:
            yield sim.process(bad(sim))
        except KeyError:
            return "caught"

    p = sim.process(joiner(sim))
    sim.run()
    assert p.value == "caught"


def test_process_wait_on_process_gets_return_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "child-result"


def test_interrupt_delivered_with_cause():
    sim = Simulator()
    causes = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            causes.append(i.cause)
            return "interrupted"

    def interrupter(sim, target):
        yield sim.timeout(2)
        target.interrupt(cause="stop-now")

    p = sim.process(sleeper(sim))
    sim.process(interrupter(sim, p))
    sim.run()
    assert causes == ["stop-now"]
    assert p.value == "interrupted"
    # The stale 100 s timeout is canceled on interrupt, so the run ends
    # at the interrupt time instead of draining a dead calendar entry.
    assert sim.now == pytest.approx(2)


def test_interrupted_process_does_not_wake_on_stale_event():
    sim = Simulator()
    trace = []

    def sleeper(sim):
        try:
            yield sim.timeout(10)
            trace.append("woke-normally")
        except Interrupt:
            trace.append("interrupted")
            yield sim.timeout(50)
            trace.append("second-sleep-done")

    def interrupter(sim, target):
        yield sim.timeout(1)
        target.interrupt()

    p = sim.process(sleeper(sim))
    sim.process(interrupter(sim, p))
    sim.run()
    assert trace == ["interrupted", "second-sleep-done"]
    assert p.ok


def test_interrupt_dead_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_unhandled_interrupt_fails_process():
    sim = Simulator()

    def sleeper(sim):
        yield sim.timeout(100)

    def interrupter(sim, target):
        yield sim.timeout(1)
        target.interrupt()

    def joiner(sim, target):
        try:
            yield target
        except Interrupt:
            return "saw-interrupt"

    p = sim.process(sleeper(sim))
    sim.process(interrupter(sim, p))
    j = sim.process(joiner(sim, p))
    sim.run()
    assert j.value == "saw-interrupt"


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1, value="fast")
        t2 = sim.timeout(2, value="slow")
        result = yield AnyOf(sim, [t1, t2])
        return result

    p = sim.process(proc(sim))
    sim.run()
    assert list(p.value.values()) == ["fast"]
    # The losing sibling timeout is canceled when the condition fires,
    # so the run ends at the winner's time, not the loser's.
    assert sim.now == 1


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(4, value="b")
        result = yield AllOf(sim, [t1, t2])
        return sorted(result.values())

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == ["a", "b"]
    assert sim.now == 4


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        result = yield AllOf(sim, [])
        return result

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {}


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def ticker(sim):
        while True:
            yield sim.timeout(1)

    sim.process(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5
    sim.run(until=7.25)
    assert sim.now == 7.25


def test_run_until_event():
    sim = Simulator()
    done = sim.event()

    def proc(sim):
        yield sim.timeout(3)
        done.succeed("finished")

    sim.process(proc(sim))
    value = sim.run(until=done)
    assert value == "finished"
    assert sim.now == 3


def test_run_until_event_never_fires_is_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run(until=sim.event())


def test_run_until_past_is_error():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_call_at_and_call_in():
    sim = Simulator()
    hits = []
    sim.call_at(4.0, lambda: hits.append(("at", sim.now)))
    sim.call_in(1.5, lambda: hits.append(("in", sim.now)))
    sim.run()
    assert hits == [("in", 1.5), ("at", 4.0)]


def test_call_at_past_is_error():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.call_at(3, lambda: None)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_is_failure():
    sim = Simulator()

    def bad(sim):
        yield 42

    def joiner(sim, target):
        try:
            yield target
        except SimulationError:
            return "rejected"

    p = sim.process(bad(sim))
    j = sim.process(joiner(sim, p))
    with pytest.raises(SimulationError):
        sim.run()


def test_active_process_tracking():
    sim = Simulator()
    observed = []

    def proc(sim):
        observed.append(sim._active_process)
        yield sim.timeout(1)
        observed.append(sim._active_process)

    p = sim.process(proc(sim))
    sim.run()
    assert observed == [p, p]
    assert sim._active_process is None


def test_immediate_return_process():
    sim = Simulator()

    def noop(sim):
        return "done"
        yield  # pragma: no cover

    p = sim.process(noop(sim))
    sim.run()
    assert p.value == "done"
    assert sim.now == 0


def test_determinism_two_identical_runs():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        log = []

        def worker(sim, tag):
            rng = sim.rng.stream(f"worker.{tag}")
            for _ in range(5):
                yield sim.timeout(float(rng.uniform(0.1, 1.0)))
                log.append((tag, round(sim.now, 9)))

        for tag in ("x", "y", "z"):
            sim.process(worker(sim, tag))
        sim.run()
        return log

    assert build_and_run(42) == build_and_run(42)
    assert build_and_run(42) != build_and_run(43)


# ----------------------------------------------------------------------
# Kernel fast path: call_in/call_at fast lane, cancelable timers, lazy
# calendar removal.
# ----------------------------------------------------------------------

def test_fast_lane_and_events_share_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim):
        order.append("init")
        yield sim.timeout(2.0)
        order.append("proc@2")

    sim.process(proc(sim))
    sim.call_in(2.0, lambda: order.append("lane@2"))
    sim.call_at(1.0, lambda: order.append("lane@1"))
    sim.run()
    # Fast-lane callables and process wakeups share one (time, seq)
    # keyspace: at t=2 the call_in fires first because it was scheduled
    # before the process reached its timeout.
    assert order == ["init", "lane@1", "lane@2", "proc@2"]


def test_fast_lane_rejects_past_and_negative():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_at(-1.0, lambda: None)


def test_timer_fires_once_and_deactivates():
    sim = Simulator()
    fired = []
    t = sim.timer(1.5, lambda: fired.append(sim.now))
    assert t.active
    assert t.when == 1.5
    sim.run()
    assert fired == [1.5]
    assert not t.active


def test_timer_cancel_before_fire():
    sim = Simulator()
    fired = []
    t = sim.timer(5.0, lambda: fired.append("late"))
    sim.call_in(1.0, t.cancel)
    sim.run()
    assert fired == []
    assert not t.active
    # The canceled entry neither fires nor advances the clock.
    assert sim.now == 1.0
    assert sim.peek() == float("inf")


def test_timeout_cancel_is_lazy_and_uncounted():
    sim = Simulator()
    stale = sim.timeout(100.0)
    sim.timeout(1.0)
    stale.cancel()
    sim.run()
    assert sim.now == 1.0
    # Only the live timeout counts as a dispatch.
    assert sim.events_dispatched == 1


def test_interrupted_keepalive_loop_drains_calendar():
    """Regression: interrupting a process parked on a long timeout must
    not leak the timeout on the calendar — stale entries used to keep
    the run alive until the abandoned wake time."""
    sim = Simulator()
    pulses = []

    def keepalive(sim):
        try:
            while True:
                yield sim.timeout(5.0)
                pulses.append(sim.now)
        except Interrupt:
            return

    p = sim.process(keepalive(sim))

    def killer(sim):
        yield sim.timeout(12.0)
        p.interrupt("closed")

    sim.process(killer(sim))
    sim.run()
    assert pulses == [5.0, 10.0]
    # Ends at the interrupt, not at the abandoned t=15 pulse.
    assert sim.now == 12.0
    assert sim.peek() == float("inf")


def test_shared_timeout_survives_losing_any_of():
    sim = Simulator()
    shared = sim.timeout(3.0, value="tick")
    results = []

    def fast_waiter(sim):
        got = yield AnyOf(sim, [sim.timeout(1.0, value="fast"), shared])
        results.append(("fast", list(got.values())))

    def slow_waiter(sim):
        yield shared
        results.append(("slow", sim.now))

    sim.process(fast_waiter(sim))
    sim.process(slow_waiter(sim))
    sim.run()
    # The condition may only reclaim timeouts it exclusively waits on;
    # `shared` has a second waiter and must still fire for it.
    assert ("fast", ["fast"]) in results
    assert ("slow", 3.0) in results


def test_calendar_compaction_reclaims_canceled_bulk():
    sim = Simulator()
    survivor_fired = []
    sim.call_in(1.0, lambda: survivor_fired.append(sim.now))
    timers = [sim.timer(10.0 + i, lambda: None) for i in range(200)]
    for t in timers:
        t.cancel()
    # Lazy removal compacts once canceled entries dominate the heap, so
    # the calendar shrinks well below the 201 scheduled entries.
    assert len(sim._calendar) < 200
    sim.run()
    assert survivor_fired == [1.0]
    assert sim.now == 1.0


def test_run_coro_runs_generator_to_completion():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(2.0)
        value = yield sim.timeout(1.0, value="done")
        return value

    assert sim.run_coro(worker(sim)) == "done"
    assert sim.now == 3.0


def test_run_coro_accepts_existing_process():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.5)
        return 42

    proc = sim.process(worker(sim), name="w")
    assert sim.run_coro(proc) == 42


def test_run_coro_reraises_process_failure():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    with pytest.raises(ValueError, match="kaput"):
        sim.run_coro(boom(sim))
