"""Multi-rendezvous deployments: hosts registered at different
rendezvous servers, CAN-routed resource queries, and cross-rendezvous
connection brokering (Fig 3's full step 1-4 path where A != B)."""

import pytest

from repro.apps.ping import Pinger
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim import Simulator


def build(n_rendezvous=3, hosts_per_rvz=2, seed=55):
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, default_latency=0.015,
                            n_rendezvous=n_rendezvous)
    for r in range(n_rendezvous):
        for i in range(hosts_per_rvz):
            env.add_host(f"h{r}{i}", rendezvous_index=r,
                         attrs={"cpu_ghz": 1.0 + r, "mem_mb": 1024.0 * (i + 1)})
    env.up()
    return sim, env


class TestCanOfRendezvous:
    def test_overlay_forms(self):
        sim, env = build()
        total = sum(z.volume() for r in env.rendezvous for z in r.can.zones)
        assert total == pytest.approx(1.0)
        assert all(r.can.joined for r in env.rendezvous)

    def test_registrations_split_across_servers(self):
        sim, env = build()
        counts = [len(r.hosts) for r in env.rendezvous]
        assert counts == [2, 2, 2]

    def test_resource_query_crosses_the_overlay(self):
        """A host registered at rendezvous 0 finds hosts whose records
        live in zones owned by other rendezvous nodes."""
        sim, env = build()
        driver = env.hosts["h00"].driver

        def query(sim):
            records = yield from driver.query_resources(limit=16,
                                                        cpu_ghz=3.0,
                                                        mem_mb=2048.0)
            return records

        p = sim.process(query(sim))
        sim.run(until=p)
        names = {r.host_name for r in p.value}
        assert names, "query returned nothing"
        # Hosts of other rendezvous servers are discoverable.
        assert any(not n.startswith("h0") for n in names), names


class TestCrossRendezvousConnect:
    def test_connect_via_two_rendezvous_servers(self):
        sim, env = build()
        p = sim.process(env.connect_pair("h00", "h21"))
        sim.run(until=p)
        conn = p.value
        assert conn.usable
        # Both brokering servers participated.
        assert env.rendezvous[0].connects_brokered >= 1

    def test_data_flows_after_cross_broker(self):
        sim, env = build()
        env.connect("h00", "h21")
        ping = sim.process(Pinger(env.hosts["h00"].host.stack,
                                  env.hosts["h21"].virtual_ip,
                                  interval=0.3).run(3))
        sim.run(until=ping)
        assert ping.value.lost == 0

    def test_same_rendezvous_connect_short_circuits(self):
        sim, env = build()
        p = sim.process(env.connect_pair("h10", "h11"))
        sim.run(until=p)
        assert p.value.usable

    def test_keepalive_refreshes_records_via_any_server(self):
        sim, env = build()
        sim.run(until=sim.now + 200)  # several keepalive rounds
        # Records should still be discoverable (TTL refreshed via puts).
        driver = env.hosts["h20"].driver

        def query(sim):
            records = yield from driver.query_resources(limit=32,
                                                        cpu_ghz=1.0,
                                                        mem_mb=1024.0)
            return records

        p = sim.process(query(sim))
        sim.run(until=p)
        assert p.value
