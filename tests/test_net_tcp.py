"""Tests for the TCP implementation: handshake, transfer, congestion
control, loss recovery, flow control, markers, teardown."""

import pytest

from repro.net.addresses import IPv4Address
from repro.net.tcp import ConnectionReset, drain_bytes, stream_bytes
from repro.scenarios.builder import host_pair
from repro.sim import Simulator

B_IP = IPv4Address("10.0.0.2")


def run_transfer(latency=0.005, bandwidth=10e6, loss=0.0, total=500_000,
                 seed=0, queue_capacity=128, **stack_kwargs):
    """One-directional bulk transfer; returns (sim, server_conn_holder, elapsed, got)."""
    sim = Simulator(seed=seed)
    a, b, link = host_pair(sim, latency=latency, bandwidth_bps=bandwidth,
                           loss=loss, queue_capacity=queue_capacity, **stack_kwargs)
    listener = b.tcp.listen(5001)
    result = {}

    def server(sim):
        conn = yield listener.accept()
        got = 0
        while True:
            chunk = yield conn.recv()
            if chunk is None:
                break
            conn.app_read(chunk.nbytes)
            got += chunk.nbytes
            if got >= total // 2 and "t_half" not in result:
                result["t_half"] = sim.now
        result["got"] = got
        result["t_done"] = sim.now
        result["server_conn"] = conn
        conn.close()

    def client(sim):
        conn = a.tcp.connect(B_IP, 5001)
        yield conn.wait_established()
        result["t_established"] = sim.now
        yield from stream_bytes(conn, total)
        conn.close()
        result["client_conn"] = conn

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run(until=600)
    return sim, result


class TestHandshake:
    def test_connect_establishes_both_ends(self):
        sim, result = run_transfer(total=1000)
        assert result["got"] == 1000

    def test_establish_takes_one_rtt(self):
        sim, result = run_transfer(latency=0.050, total=1000, bandwidth=None)
        # SYN + SYN-ACK = 1 RTT (plus ARP on the very first exchange).
        assert 0.100 <= result["t_established"] <= 0.320

    def test_connect_to_closed_port_resets(self):
        sim = Simulator()
        a, b, _link = host_pair(sim)
        outcome = []

        def client(sim):
            conn = a.tcp.connect(B_IP, 4444)
            try:
                yield conn.wait_established()
                outcome.append("established")
            except ConnectionReset:
                outcome.append("reset")

        sim.process(client(sim))
        sim.run(until=10)
        assert outcome == ["reset"]

    def test_syn_retransmission_survives_loss(self):
        # 30% loss: handshake must still complete via SYN retransmit.
        sim, result = run_transfer(loss=0.30, total=5_000, seed=3)
        assert result["got"] == 5_000


class TestTransfer:
    def test_exact_byte_count_delivered(self):
        sim, result = run_transfer(total=1_000_000)
        assert result["got"] == 1_000_000

    def test_throughput_near_link_rate(self):
        # Steady state (second half of the stream) runs at a healthy
        # fraction of line rate. (This configuration - window 20x the
        # path BDP into a short drop-tail queue - is TCP's buffer-filling
        # regime; the stack's loss-recovery overhead costs ~30% here,
        # comparable to period-accurate stacks without pacing.)
        total = 4_000_000
        sim, result = run_transfer(latency=0.001, bandwidth=10e6, total=total)
        goodput = (total / 2) * 8 / (result["t_done"] - result["t_half"])
        assert goodput > 0.62 * 10e6

    def test_throughput_bounded_by_link_rate(self):
        total = 2_000_000
        sim, result = run_transfer(latency=0.001, bandwidth=10e6, total=total)
        goodput = total * 8 / result["t_done"]
        assert goodput < 10e6

    def test_transfer_with_random_loss_completes(self):
        sim, result = run_transfer(loss=0.02, total=300_000, seed=7)
        assert result["got"] == 300_000

    def test_transfer_with_heavy_loss_completes(self):
        sim, result = run_transfer(loss=0.10, total=100_000, seed=11)
        assert result["got"] == 100_000

    def test_retransmissions_occur_under_loss(self):
        sim, result = run_transfer(loss=0.05, total=200_000, seed=5)
        conn = result["client_conn"]
        assert conn.retransmits > 0

    def test_no_retransmissions_on_clean_path(self):
        sim, result = run_transfer(loss=0.0, total=200_000,
                                   latency=0.001, queue_capacity=4096)
        assert result["client_conn"].retransmits == 0

    def test_bidirectional_streams(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002, bandwidth_bps=50e6)
        listener = b.tcp.listen(5001)
        done = {}

        def server(sim):
            conn = yield listener.accept()

            def rx(sim):
                done["srv_got"] = yield from drain_bytes(conn)

            p = sim.process(rx(sim))
            yield from stream_bytes(conn, 100_000)
            conn.close()
            yield p

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()

            def rx(sim):
                done["cli_got"] = yield from drain_bytes(conn)

            p = sim.process(rx(sim))
            yield from stream_bytes(conn, 200_000)
            conn.close()
            yield p

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=120)
        assert done == {"srv_got": 200_000, "cli_got": 100_000}

    def test_high_bdp_path_uses_window(self):
        # 100 Mbps, 40 ms RTT: BDP = 500 kB > default 256 kB buffers;
        # steady-state throughput should be window-limited near buf/RTT
        # (long transfer so the slow-start ramp is amortized away).
        total = 12_000_000
        sim, result = run_transfer(latency=0.020, bandwidth=100e6, total=total,
                                   queue_capacity=1024)
        goodput = total * 8 / result["t_done"]
        window_limit = 262144 * 8 / 0.040
        assert goodput == pytest.approx(window_limit, rel=0.35)
        assert goodput < 100e6

    def test_bigger_buffers_fill_high_bdp_path(self):
        # With buffers > BDP the flow escapes the receive-window limit:
        # it must beat the small-buffer configuration on the same path
        # and reach a large fraction of the wire.
        total = 40_000_000

        def run(bufs):
            sim, result = run_transfer(latency=0.020, bandwidth=100e6,
                                       total=total, queue_capacity=1024,
                                       tcp_send_buf=bufs, tcp_recv_buf=bufs)
            return (total / 2) * 8 / (result["t_done"] - result["t_half"])

        small = run(262144)    # window-limited at ~52 Mbps
        big = run(2_000_000)
        # The small-buffer flow cannot exceed its window limit; the big-
        # buffer flow is loss-limited instead and reaches a comparable
        # large fraction of the wire without any window ceiling.
        assert small < 262144 * 8 / 0.040 * 1.1
        assert big > 0.40 * 100e6
        assert big > 0.85 * small


class TestMarkersAndFraming:
    def test_marker_objects_arrive_in_order(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002, bandwidth_bps=10e6)
        listener = b.tcp.listen(5001)
        seen = []

        def server(sim):
            conn = yield listener.accept()
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    break
                conn.app_read(chunk.nbytes)
                seen.extend(chunk.objs)

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            for i in range(10):
                yield conn.send(10_000, obj=f"msg{i}")
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=120)
        assert seen == [f"msg{i}" for i in range(10)]

    def test_markers_survive_loss(self):
        sim = Simulator(seed=9)
        a, b, _link = host_pair(sim, latency=0.002, bandwidth_bps=10e6, loss=0.05)
        listener = b.tcp.listen(5001)
        seen = []

        def server(sim):
            conn = yield listener.accept()
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    break
                conn.app_read(chunk.nbytes)
                seen.extend(chunk.objs)

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            for i in range(20):
                yield conn.send(5_000, obj=i)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=300)
        assert seen == list(range(20))


class TestFlowControl:
    def test_slow_reader_throttles_sender(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.001, bandwidth_bps=100e6)
        listener = b.tcp.listen(5001)
        progress = {}

        def server(sim):
            conn = yield listener.accept()
            got = 0
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    break
                yield sim.timeout(0.05)  # slow application
                conn.app_read(chunk.nbytes)
                got += chunk.nbytes
            progress["got"] = got
            progress["t"] = sim.now

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 2_000_000)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=600)
        assert progress["got"] == 2_000_000
        # At wire speed this takes ~0.16 s; the slow reader forces much longer.
        assert progress["t"] > 1.0

    def test_send_backpressure_event_deferred(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.010, bandwidth_bps=1e6)
        listener = b.tcp.listen(5001)
        acceptance_times = []

        def server(sim):
            conn = yield listener.accept()
            yield from drain_bytes(conn)

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            for _ in range(10):
                yield conn.send(100_000)
                acceptance_times.append(sim.now)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=120)
        # 1 MB through a 256 kB send buffer: later writes must wait.
        assert acceptance_times[-1] - acceptance_times[0] > 1.0


class TestTeardown:
    def test_eof_delivered_after_close(self):
        sim, result = run_transfer(total=10_000)
        assert result["got"] == 10_000  # drain_bytes returned => EOF seen

    def test_connection_removed_after_close_both_sides(self):
        sim, result = run_transfer(total=10_000)
        sim.run(until=sim.now + 120)
        client_conn = result["client_conn"]
        assert client_conn.key not in client_conn.layer.connections

    def test_abort_sends_rst(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.002)
        listener = b.tcp.listen(5001)
        events = []

        def server(sim):
            conn = yield listener.accept()
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    events.append("eof")
                    break
            events.append("reset" if conn.reset else "clean")

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            yield conn.send(1000)
            yield sim.timeout(0.1)
            conn.abort()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=30)
        assert events == ["eof", "reset"]

    def test_send_after_close_fails(self):
        sim = Simulator()
        a, b, _link = host_pair(sim)
        b.tcp.listen(5001)
        errors = []

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            conn.close()
            try:
                yield conn.send(10)
            except ConnectionReset:
                errors.append("rejected")

        sim.process(client(sim))
        sim.run(until=30)
        assert errors == ["rejected"]


class TestCongestionControl:
    def test_slow_start_doubles_cwnd(self):
        sim = Simulator()
        a, b, _link = host_pair(sim, latency=0.020, bandwidth_bps=None)
        listener = b.tcp.listen(5001)
        cwnd_log = []

        def server(sim):
            conn = yield listener.accept()
            yield from drain_bytes(conn)

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()

            def probe(sim):
                while conn.state == "ESTABLISHED":
                    cwnd_log.append(conn.cwnd)
                    yield sim.timeout(0.040)

            sim.process(probe(sim))
            yield from stream_bytes(conn, 500_000)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=60)
        assert cwnd_log[0] < cwnd_log[2] < cwnd_log[-1] or cwnd_log[-1] >= 64 * 1024

    def test_loss_halves_cwnd(self):
        sim = Simulator(seed=2)
        a, b, _link = host_pair(sim, latency=0.005, bandwidth_bps=20e6,
                                queue_capacity=16)
        listener = b.tcp.listen(5001)
        stats = {}

        def server(sim):
            conn = yield listener.accept()
            yield from drain_bytes(conn)

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 3_000_000)
            stats["retransmits"] = conn.retransmits
            stats["final_ssthresh"] = conn.ssthresh
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=120)
        # The tiny router queue forces overflow losses -> fast retransmit
        # -> ssthresh collapses to a multiplicative fraction of the
        # flight (x0.7 CUBIC / x0.5 Reno), far below the initial 1<<30.
        assert stats["retransmits"] > 0
        assert stats["final_ssthresh"] < 128 * 1024

    def test_rto_recovers_from_total_blackout(self):
        sim = Simulator()
        a, b, link = host_pair(sim, latency=0.002, bandwidth_bps=10e6)
        listener = b.tcp.listen(5001)
        result = {}

        def server(sim):
            conn = yield listener.accept()
            result["got"] = yield from drain_bytes(conn)

        def client(sim):
            conn = a.tcp.connect(B_IP, 5001)
            yield conn.wait_established()
            yield from stream_bytes(conn, 400_000)
            conn.close()
            result["timeouts"] = conn.timeouts

        sim.process(server(sim))
        sim.process(client(sim))
        # Blackout both directions for 2 s in the middle of the transfer.
        def blackout(sim):
            yield sim.timeout(0.1)
            link.ab.loss = 1.0 - 1e-12
            link.ba.loss = 1.0 - 1e-12
            link.ab._loss_rng = sim.rng.stream("blackout")
            link.ba._loss_rng = sim.rng.stream("blackout")
            yield sim.timeout(2.0)
            link.ab.loss = 0.0
            link.ba.loss = 0.0

        sim.process(blackout(sim))
        sim.run(until=300)
        assert result.get("got") == 400_000
        assert result["timeouts"] >= 1
