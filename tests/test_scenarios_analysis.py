"""Tests for scenario builders (real WAN, emulated WAN, PlanetLab) and
the analysis/rendering helpers."""

import numpy as np
import pytest

from repro.analysis.tables import ShapeCheck, render_series, render_table
from repro.net.icmp import Pinger
from repro.scenarios.emulated import build_emulated_wan
from repro.scenarios.planetlab import planetlab_latency_matrix
from repro.scenarios.sites import SITES, build_real_wan, pair_rtt_ms
from repro.sim import Simulator


class TestRealWanScenario:
    def test_pair_rtt_measured_pairs(self):
        assert pair_rtt_ms("hku1", "siat") == pytest.approx(74.244)
        assert pair_rtt_ms("siat", "hku1") == pytest.approx(74.244)

    def test_pair_rtt_composed_via_hku(self):
        assert pair_rtt_ms("aist", "sdsc") == pytest.approx(75.8 + 217.2)

    def test_build_and_ping_matches_table2(self):
        sim = Simulator(seed=41)
        wan = build_real_wan(sim, site_names=["hku1", "siat", "pu"])
        started = sim.process(wan.env.start_all())
        sim.run(until=started)
        mesh = sim.process(wan.env.connect_full_mesh())
        sim.run(until=mesh)
        # Physical ping HKU -> SIAT should be ~74.2 ms.
        p = sim.process(Pinger(wan.host("hku1").host.stack,
                               wan.host("siat").virtual_ip, interval=0.5).run(4))
        sim.run(until=p)
        # Probe 0 pays virtual-LAN ARP; steady state matches Table II.
        steady = p.value.rtts[1:]
        assert sum(steady) / len(steady) * 1000 == pytest.approx(74.244, rel=0.05)

    def test_all_eight_sites_build(self):
        sim = Simulator(seed=42)
        wan = build_real_wan(sim)
        started = sim.process(wan.env.start_all())
        sim.run(until=started)
        assert len(wan.hosts) == 8
        assert set(wan.env.rendezvous[0].hosts) == set(SITES)


class TestEmulatedWanScenario:
    def test_shaped_bandwidth_applies(self):
        sim = Simulator(seed=43)
        env, hosts = build_emulated_wan(sim, 2, wan_bandwidth_bps=12.5e6)
        for wh in hosts:
            assert wh.site.access_link.ab.bandwidth_bps == 12.5e6

    def test_hosts_connect(self):
        sim = Simulator(seed=44)
        env, hosts = build_emulated_wan(sim, 3)
        started = sim.process(env.start_all())
        sim.run(until=started)
        p = sim.process(env.connect_pair("n00", "n01"))
        sim.run(until=p)
        assert p.value.usable


class TestPlanetlabMatrix:
    def test_shape_and_symmetry(self):
        lm = planetlab_latency_matrix(100, seed=1)
        assert len(lm) == 100
        assert np.allclose(lm.m, lm.m.T)
        assert np.all(np.diag(lm.m) == 0)

    def test_heavy_tail_present(self):
        lm = planetlab_latency_matrix(200, seed=2)
        off = lm.m[~np.eye(200, dtype=bool)]
        assert off.max() > 1.0      # seconds-scale outliers (Fig 12a)
        assert np.median(off) < 0.4  # but the bulk is sub-400ms

    def test_local_clusters_exist(self):
        lm = planetlab_latency_matrix(200, seed=3)
        off = lm.m[~np.eye(200, dtype=bool)]
        assert off.min() < 0.005    # sub-5ms same-site pairs

    def test_deterministic_by_seed(self):
        a = planetlab_latency_matrix(80, seed=7)
        b = planetlab_latency_matrix(80, seed=7)
        c = planetlab_latency_matrix(80, seed=8)
        assert np.array_equal(a.m, b.m)
        assert not np.array_equal(a.m, c.m)

    def test_grouping_on_planetlab_shape(self):
        """Fig 13's qualitative claim: grouped avg latency for small k is
        orders of magnitude below the overall distribution."""
        from repro.core.grouping import locality_sensitive_group
        lm = planetlab_latency_matrix(150, seed=4)
        result = locality_sensitive_group(lm, 8)
        off = lm.m[~np.eye(150, dtype=bool)]
        assert result.average_latency < np.median(off) / 10


class TestAnalysisHelpers:
    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 7

    def test_render_series(self):
        out = render_series("S", "x", [1, 2], {"y1": [10, 20], "y2": [3, 4]})
        assert "y1" in out and "y2" in out and "20" in out

    def test_shape_check_pass_fail(self):
        check = ShapeCheck("exp")
        check.expect("good", True)
        assert check.all_passed
        check.expect("bad", False, "details here")
        assert not check.all_passed
        rendered = check.render()
        assert "[PASS] good" in rendered
        assert "[FAIL] bad" in rendered
        with pytest.raises(AssertionError):
            check.print_and_assert()
