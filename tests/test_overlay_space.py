"""Tests + property tests for CAN zone geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.space import Zone, torus_distance


class TestZoneBasics:
    def test_whole_space_contains_everything(self):
        z = Zone.whole(2)
        assert z.contains((0.0, 0.0))
        assert z.contains((0.999, 0.5))
        assert z.volume() == 1.0

    def test_contains_is_half_open(self):
        z = Zone((0.0, 0.0), (0.5, 0.5))
        assert z.contains((0.0, 0.0))
        assert not z.contains((0.5, 0.25))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            Zone.whole(2).contains((0.5,))

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Zone((0.5,), (0.5,))
        with pytest.raises(ValueError):
            Zone((0.2, 0.0), (1.2, 1.0))

    def test_split_halves_longest_dim(self):
        z = Zone((0.0, 0.0), (1.0, 0.5))
        lower, upper = z.split()
        assert lower == Zone((0.0, 0.0), (0.5, 0.5))
        assert upper == Zone((0.5, 0.0), (1.0, 0.5))

    def test_split_preserves_volume(self):
        z = Zone((0.25, 0.5), (0.5, 1.0))
        lower, upper = z.split()
        assert lower.volume() + upper.volume() == pytest.approx(z.volume())

    def test_merge_roundtrip(self):
        z = Zone((0.0, 0.0), (0.5, 1.0))
        lower, upper = z.split()
        assert lower.can_merge(upper)
        assert lower.merge(upper) == z

    def test_cannot_merge_disjoint(self):
        a = Zone((0.0, 0.0), (0.25, 1.0))
        b = Zone((0.5, 0.0), (0.75, 1.0))
        assert not a.can_merge(b)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_neighbors_share_face(self):
        a = Zone((0.0, 0.0), (0.5, 1.0))
        b = Zone((0.5, 0.0), (1.0, 1.0))
        assert a.is_neighbor(b)
        assert b.is_neighbor(a)

    def test_corner_touch_is_not_neighbor(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.5), (1.0, 1.0))
        assert not a.is_neighbor(b)

    def test_wraparound_neighbors(self):
        a = Zone((0.0, 0.0), (0.25, 1.0))
        b = Zone((0.75, 0.0), (1.0, 1.0))
        assert a.is_neighbor(b)

    def test_distance_to_contained_point_is_zero(self):
        z = Zone((0.25, 0.25), (0.5, 0.5))
        assert z.distance_to_point((0.3, 0.4)) == 0.0

    def test_distance_wraps_around(self):
        z = Zone((0.0, 0.0), (0.1, 1.0))
        assert z.distance_to_point((0.95, 0.5)) == pytest.approx(0.05)

    def test_torus_distance(self):
        assert torus_distance((0.1, 0.5), (0.9, 0.5)) == pytest.approx(0.2)
        assert torus_distance((0.2, 0.2), (0.2, 0.2)) == 0.0


points = st.tuples(st.floats(0.0, 0.999), st.floats(0.0, 0.999))


class TestZoneProperties:
    @given(points)
    @settings(max_examples=100)
    def test_split_partitions_whole_space(self, p):
        """After any sequence of splits, every point has exactly one owner."""
        zones = [Zone.whole(2)]
        for _ in range(6):
            z = max(zones, key=lambda z: z.volume())
            zones.remove(z)
            zones.extend(z.split())
        owners = [z for z in zones if z.contains(p)]
        assert len(owners) == 1

    @given(points)
    @settings(max_examples=100)
    def test_distance_zero_iff_contains(self, p):
        z = Zone((0.25, 0.125), (0.75, 0.625))
        if z.contains(p):
            assert z.distance_to_point(p) == pytest.approx(0.0, abs=1e-9)
        elif z.distance_to_point(p) < 1e-12:
            # Boundary: hi edge is excluded from contains but at distance 0.
            on_edge = any(abs(p[i] - z.highs[i]) < 1e-9 or abs(p[i] - z.lows[i]) < 1e-9
                          for i in range(2))
            assert on_edge

    @given(points, points)
    @settings(max_examples=100)
    def test_torus_distance_symmetric(self, a, b):
        assert torus_distance(a, b) == pytest.approx(torus_distance(b, a))

    @given(points, points, points)
    @settings(max_examples=100)
    def test_torus_triangle_inequality(self, a, b, c):
        assert torus_distance(a, c) <= torus_distance(a, b) + torus_distance(b, c) + 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_repeated_split_merge_identity(self, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        zones = [Zone.whole(2)]
        for _ in range(8):
            z = zones.pop(int(rng.integers(len(zones))))
            zones.extend(z.split())
        total = sum(z.volume() for z in zones)
        assert total == pytest.approx(1.0)
