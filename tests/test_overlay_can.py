"""Tests for the CAN overlay: join, routing, put/get, leave, RPC layer."""

import pytest

from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.wan import WanCloud
from repro.overlay.can import CanNode
from repro.overlay.resources import ConnectionInfo, ResourceRecord
from repro.overlay.rpc import RpcEndpoint, RpcError, RpcTimeout
from repro.scenarios.builder import make_public_host
from repro.sim import Simulator


def make_conn_info(ip="8.0.0.1", port=20001):
    return ConnectionInfo(IPv4Address("9.0.0.1"), 4001, IPv4Address(ip), port,
                          IPv4Address("192.168.1.10"), 6000, NatType.PORT_RESTRICTED)


def build_overlay(sim, n_nodes, cloud_latency=0.005):
    cloud = WanCloud(sim, default_latency=cloud_latency)
    nodes = []
    for i in range(n_nodes):
        host = make_public_host(sim, cloud, f"rvz{i}", f"9.0.{i // 250}.{(i % 250) + 1}",
                                network="9.0.0.0/8")
        nodes.append(CanNode(host, dims=2))
    nodes[0].bootstrap()

    def joiner(sim):
        for node in nodes[1:]:
            yield sim.process(node.join_via(nodes[0].ip))

    p = sim.process(joiner(sim))
    sim.run(until=p)
    return cloud, nodes


class TestRpcLayer:
    def build_pair(self, sim):
        cloud = WanCloud(sim, default_latency=0.005)
        a = make_public_host(sim, cloud, "a", "9.0.0.1", network="9.0.0.0/8")
        b = make_public_host(sim, cloud, "b", "9.0.0.2", network="9.0.0.0/8")
        ep_a = RpcEndpoint(a.stack, a.udp.bind(5000), "a")
        ep_b = RpcEndpoint(b.stack, b.udp.bind(5000), "b")
        return ep_a, ep_b

    def test_sync_handler_roundtrip(self):
        sim = Simulator()
        ep_a, ep_b = self.build_pair(sim)
        ep_b.register("echo", lambda body, ip, port: ("echoed", body))

        def caller(sim):
            result = yield from ep_a.call(IPv4Address("9.0.0.2"), 5000, "echo", 42)
            return result

        p = sim.process(caller(sim))
        sim.run(until=10)
        assert p.value == ("echoed", 42)

    def test_generator_handler(self):
        sim = Simulator()
        ep_a, ep_b = self.build_pair(sim)

        def slow(body, ip, port):
            yield sim.timeout(0.5)
            return body * 2

        ep_b.register("slow", slow)

        def caller(sim):
            t0 = sim.now
            result = yield from ep_a.call(IPv4Address("9.0.0.2"), 5000, "slow", 21)
            return result, sim.now - t0

        p = sim.process(caller(sim))
        sim.run(until=10)
        result, elapsed = p.value
        assert result == 42
        assert elapsed >= 0.5

    def test_handler_error_propagates(self):
        sim = Simulator()
        ep_a, ep_b = self.build_pair(sim)

        def bad(body, ip, port):
            raise ValueError("nope")

        ep_b.register("bad", bad)

        def caller(sim):
            try:
                yield from ep_a.call(IPv4Address("9.0.0.2"), 5000, "bad", None)
            except RpcError as exc:
                return str(exc)

        p = sim.process(caller(sim))
        sim.run(until=10)
        assert "nope" in p.value

    def test_unknown_kind_is_error(self):
        sim = Simulator()
        ep_a, ep_b = self.build_pair(sim)

        def caller(sim):
            try:
                yield from ep_a.call(IPv4Address("9.0.0.2"), 5000, "missing", None)
            except RpcError:
                return "error"

        p = sim.process(caller(sim))
        sim.run(until=10)
        assert p.value == "error"

    def test_timeout_after_retries(self):
        sim = Simulator()
        ep_a, _ep_b = self.build_pair(sim)

        def caller(sim):
            try:
                yield from ep_a.call(IPv4Address("9.0.0.99"), 5000, "x", None,
                                     timeout=0.2, retries=2)
            except RpcTimeout:
                return sim.now

        p = sim.process(caller(sim))
        sim.run(until=10)
        assert p.value == pytest.approx(0.4, abs=0.05)

    def test_duplicate_handler_rejected(self):
        sim = Simulator()
        ep_a, _ = self.build_pair(sim)
        ep_a.register("k", lambda b, i, p: None)
        with pytest.raises(RuntimeError):
            ep_a.register("k", lambda b, i, p: None)

    def test_notify_fire_and_forget(self):
        sim = Simulator()
        ep_a, ep_b = self.build_pair(sim)
        seen = []
        ep_b.register("note", lambda body, ip, port: seen.append(body))
        ep_a.notify(IPv4Address("9.0.0.2"), 5000, "note", "hello")
        sim.run(until=1)
        assert seen == ["hello"]


class TestCanOverlay:
    def test_bootstrap_owns_everything(self):
        sim = Simulator()
        _cloud, nodes = build_overlay(sim, 1)
        assert nodes[0].owns((0.3, 0.7))
        assert nodes[0].owns((0.99, 0.01))

    def test_zones_partition_space_after_joins(self):
        sim = Simulator(seed=1)
        _cloud, nodes = build_overlay(sim, 8)
        import numpy as np
        rng = np.random.default_rng(0)
        for _ in range(200):
            p = tuple(rng.random(2))
            owners = [n for n in nodes if n.owns(p)]
            assert len(owners) == 1, f"{p} owned by {[o.node_id for o in owners]}"

    def test_total_volume_is_one(self):
        sim = Simulator(seed=2)
        _cloud, nodes = build_overlay(sim, 8)
        total = sum(z.volume() for n in nodes for z in n.zones)
        assert total == pytest.approx(1.0)

    def test_neighbor_symmetry(self):
        sim = Simulator(seed=3)
        _cloud, nodes = build_overlay(sim, 6)
        sim.run(until=sim.now + 30)  # let pings settle
        by_id = {n.node_id: n for n in nodes}
        for n in nodes:
            for other_id in n.neighbors:
                assert n.node_id in by_id[other_id].neighbors, \
                    f"{other_id} missing backlink to {n.node_id}"

    def test_put_get_roundtrip_across_overlay(self):
        sim = Simulator(seed=4)
        _cloud, nodes = build_overlay(sim, 8)
        record = ResourceRecord("host-x", (0.123, 0.876), {"cpu_ghz": 2.0},
                                make_conn_info())

        def runner(sim):
            yield from nodes[3].route("put", record.point, record)
            got = yield from nodes[6].route("get", record.point, 4)
            return got

        p = sim.process(runner(sim))
        sim.run(until=p)
        names = [r.host_name for r in p.value]
        assert "host-x" in names

    def test_get_returns_nearest_records(self):
        sim = Simulator(seed=5)
        _cloud, nodes = build_overlay(sim, 4)

        def runner(sim):
            for i, point in enumerate([(0.1, 0.1), (0.12, 0.12), (0.9, 0.9)]):
                rec = ResourceRecord(f"h{i}", point, {}, make_conn_info())
                yield from nodes[0].route("put", point, rec)
            got = yield from nodes[0].route("get", (0.11, 0.11), 2)
            return got

        p = sim.process(runner(sim))
        sim.run(until=p)
        names = {r.host_name for r in p.value}
        assert names <= {"h0", "h1"}

    def test_remove_record(self):
        sim = Simulator(seed=6)
        _cloud, nodes = build_overlay(sim, 4)

        def runner(sim):
            rec = ResourceRecord("gone", (0.4, 0.4), {}, make_conn_info())
            yield from nodes[1].route("put", rec.point, rec)
            yield from nodes[2].route("remove", rec.point, "gone")
            got = yield from nodes[3].route("get", rec.point, 8)
            return got

        p = sim.process(runner(sim))
        sim.run(until=p)
        assert all(r.host_name != "gone" for r in p.value)

    def test_routing_hop_latency_is_real(self):
        """Routing across the overlay takes at least one cloud RTT."""
        sim = Simulator(seed=7)
        _cloud, nodes = build_overlay(sim, 8, cloud_latency=0.020)
        # Find a node and a point it does NOT own.
        src = nodes[5]
        point = (0.01, 0.01)
        if src.owns(point):
            src = nodes[0] if not nodes[0].owns(point) else nodes[1]

        def runner(sim):
            t0 = sim.now
            yield from src.route("get", point, 1)
            return sim.now - t0

        p = sim.process(runner(sim))
        sim.run(until=p)
        assert p.value >= 0.040  # at least one 20 ms hop each way

    def test_graceful_leave_hands_over_records(self):
        sim = Simulator(seed=8)
        _cloud, nodes = build_overlay(sim, 4)
        record = ResourceRecord("kept", (0.77, 0.77), {}, make_conn_info())

        def runner(sim):
            yield from nodes[0].route("put", record.point, record)
            owner = next(n for n in nodes if n.owns(record.point))
            yield sim.process(owner.leave())
            # Someone else must own the point and still have the record.
            survivors = [n for n in nodes if n.joined]
            got = yield from survivors[0].route("get", record.point, 8)
            return got, sum(z.volume() for n in survivors for z in n.zones)

        p = sim.process(runner(sim))
        sim.run(until=p)
        records, volume = p.value
        assert "kept" in {r.host_name for r in records}
        assert volume == pytest.approx(1.0)

    def test_record_ttl_expiry(self):
        sim = Simulator(seed=9)
        _cloud, nodes = build_overlay(sim, 2)
        for n in nodes:
            n.record_ttl = 5.0

        def runner(sim):
            rec = ResourceRecord("fleeting", (0.6, 0.6), {}, make_conn_info())
            yield from nodes[0].route("put", rec.point, rec)
            yield sim.timeout(30.0)
            got = yield from nodes[1].route("get", rec.point, 8)
            return got

        p = sim.process(runner(sim))
        sim.run(until=p)
        assert all(r.host_name != "fleeting" for r in p.value)

    def test_routing_scales_to_32_nodes(self):
        sim = Simulator(seed=10)
        _cloud, nodes = build_overlay(sim, 32)

        def runner(sim):
            rec = ResourceRecord("far", (0.95, 0.05), {}, make_conn_info())
            yield from nodes[17].route("put", rec.point, rec)
            got = yield from nodes[31].route("get", rec.point, 2)
            return got

        p = sim.process(runner(sim))
        sim.run(until=p)
        assert "far" in {r.host_name for r in p.value}
