"""ttcp: fixed-size bulk TCP transfer (the Fig 6 benchmark).

The paper runs ``ttcp`` with transfer sizes 64/128/256 MB and a 16384 B
buffer, reporting the transfer rate in KB/s. :func:`ttcp_transfer`
reproduces that: connect, stream ``total_bytes`` with ``buf_size``
writes, report ``KB/s`` over the data phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.options import UNSET, TransferOptions
from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.net.tcp import drain_bytes, stream_bytes

__all__ = ["TtcpResult", "ttcp_receiver", "ttcp_transfer"]

TTCP_PORT = 5010


@dataclass
class TtcpResult:
    total_bytes: int
    elapsed: float

    @property
    def rate_kbps(self) -> float:
        """KB/s, as ttcp prints."""
        return self.total_bytes / 1024.0 / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def rate_mbit(self) -> float:
        return self.total_bytes * 8 / 1e6 / self.elapsed if self.elapsed > 0 else 0.0


def ttcp_receiver(host: Host, port: int = TTCP_PORT):
    """Process: accept one connection and drain it; returns bytes received."""
    listener = host.tcp.listen(port)
    conn = yield listener.accept()
    got = yield from drain_bytes(conn)
    listener.close()
    return got


def ttcp_transfer(host: Host, dst_ip: IPv4Address, total_bytes: int,
                  buf_size: int = 16384, port: int = TTCP_PORT,
                  options: Optional[TransferOptions] = None,
                  fidelity=UNSET, cc=UNSET):
    """Process: transmit ``total_bytes``; returns TtcpResult (sender side,
    timed from first write to last byte acknowledged — what ttcp -t reports).

    Transfer behaviour comes from a :class:`TransferOptions` bundle
    (``fidelity=`` / ``cc=`` keywords are deprecated aliases).

    ``TransferOptions.fidelity="fluid"`` runs the same transfer on the
    flow-level plane (requires a :class:`~repro.net.fluid.FluidNetwork`
    with a route for ``(host.name, dst_ip)``): no receiver process is
    needed, and the result carries the solver's completion time instead
    of per-frame dynamics.

    ``TransferOptions.cc`` names a registered congestion-control
    algorithm (:func:`repro.net.cc.cc_names`); ``None`` keeps the host
    stack's default at packet fidelity and the plane's historical Mathis
    loss response at fluid fidelity."""
    opts = TransferOptions.coerce(options, "ttcp_transfer",
                                  fidelity=fidelity, cc=cc)
    fidelity, cc = opts.fidelity, opts.cc
    sim = host.sim
    if fidelity == "fluid":
        fluid = getattr(sim, "fluid", None)
        if fluid is None:
            raise RuntimeError("fidelity='fluid' requires a FluidNetwork "
                               "attached to this simulator")
        path = fluid.route(host.name, dst_ip)
        yield sim.timeout(path.rtt)  # SYN / SYN-ACK handshake
        t0 = sim.now
        flow = fluid.open(host.name, dst_ip, size_bytes=total_bytes,
                          send_buf=host.tcp.send_buf,
                          recv_buf=host.tcp.recv_buf,
                          name=f"ttcp:{host.name}", cc=cc)
        yield flow.done
        # flow.done fires rtt/2 after the last byte leaves the sender
        # (propagation); ttcp's clock additionally waits for the final
        # ACK to come back — another half RTT.
        elapsed = sim.now - t0 + path.rtt / 2
        return TtcpResult(total_bytes, elapsed)
    if fidelity != "packet":
        raise ValueError(f"unknown fidelity {fidelity!r}")
    conn = host.tcp.connect(dst_ip, port, cc=cc)
    yield conn.wait_established()
    t0 = sim.now
    yield from stream_bytes(conn, total_bytes, chunk=buf_size)
    # ttcp's clock stops when the send buffer drains (close + wait).
    conn.close()
    while conn.snd_una < conn.snd_max and not conn.reset:
        yield sim.timeout(0.05)
    elapsed = sim.now - t0
    return TtcpResult(total_bytes, elapsed)
