"""ApacheBench (ab) model: closed-loop HTTP load with concurrency.

``ab -c C`` keeps C workers busy, each doing connect -> request ->
response -> close, repeatedly. We report exactly what the paper reads
off ab's output:

* requests/second (Table IV, Fig 10's AB-throughput timeline);
* connection time min/mean/max in ms (Table III).

Workers label every sample with its completion time so the timeline
figures can resample request throughput in 1-second buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps.httpd import (HTTP_PORT, HttpRequest, HttpResponse,
                              response_size_for)
from repro.core.options import UNSET, TransferOptions
from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.net.tcp import ConnectionReset

__all__ = ["AbReport", "ApacheBench"]


@dataclass
class AbReport:
    requests_completed: int = 0
    requests_failed: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    connect_times: list = field(default_factory=list)   # seconds
    total_times: list = field(default_factory=list)     # request round trip
    completion_stamps: list = field(default_factory=list)  # sim time per completion

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def requests_per_second(self) -> float:
        return self.requests_completed / self.duration if self.duration > 0 else 0.0

    def connect_ms(self) -> tuple[float, float, float]:
        """(min, mean, max) connection time in milliseconds."""
        if not self.connect_times:
            return (float("nan"),) * 3
        arr = np.asarray(self.connect_times) * 1000.0
        return (float(arr.min()), float(arr.mean()), float(arr.max()))

    def throughput_series(self, interval: float = 1.0) -> "tuple[np.ndarray, np.ndarray]":
        """(bucket start times, req/s per bucket) for timeline figures."""
        if not self.completion_stamps:
            return np.empty(0), np.empty(0)
        stamps = np.asarray(self.completion_stamps)
        edges = np.arange(self.started_at, self.finished_at + interval, interval)
        if edges.size < 2:
            return np.empty(0), np.empty(0)
        counts, _ = np.histogram(stamps, bins=edges)
        return edges[:-1], counts / interval


class ApacheBench:
    """Closed-loop HTTP benchmark client."""

    def __init__(self, host: Host, server_ip: IPv4Address, path: str = "/file1k",
                 concurrency: int = 1, port: int = HTTP_PORT,
                 connect_timeout: float = 10.0,
                 options: Optional[TransferOptions] = None,
                 fidelity=UNSET, service_time: float = 50e-6,
                 response_path=None, cc=UNSET) -> None:
        opts = TransferOptions.coerce(options, "ApacheBench",
                                      fidelity=fidelity, cc=cc)
        fidelity, cc = opts.fidelity, opts.cc
        if fidelity not in ("packet", "fluid"):
            raise ValueError(f"unknown fidelity {fidelity!r}")
        self.host = host
        self.server_ip = server_ip
        self.path = path
        self.concurrency = concurrency
        self.port = port
        self.connect_timeout = connect_timeout
        # Fluid mode: no server process; each response is one cold-start
        # fluid flow. ``response_path`` is the server->client FluidPath;
        # when None the client->server route is used, which is exact on
        # the symmetric-capacity topologies the benches build.
        self.fidelity = fidelity
        self.service_time = service_time
        self.response_path = response_path
        # cc=None: stack default (packet) / historical Mathis cap (fluid).
        self.cc = cc
        self.report = AbReport()
        self._stop = False

    def run_for(self, duration: float):
        """Process: run C workers for ``duration`` seconds; returns AbReport."""
        sim = self.host.sim
        self.report.started_at = sim.now
        workers = [sim.process(self._worker(), name=f"ab:{self.host.name}:{i}")
                   for i in range(self.concurrency)]
        yield sim.timeout(duration)
        self._stop = True
        for w in workers:
            if w.is_alive:
                w.interrupt("ab done")
        self.report.finished_at = sim.now
        return self.report

    def run_requests(self, count: int):
        """Process: run until ``count`` requests complete (ab -n style)."""
        sim = self.host.sim
        self.report.started_at = sim.now
        self._target = count
        workers = [sim.process(self._worker(limit=True), name=f"ab:{self.host.name}:{i}")
                   for i in range(self.concurrency)]
        for w in workers:
            yield w
        self.report.finished_at = sim.now
        return self.report

    def _done_enough(self) -> bool:
        target = getattr(self, "_target", None)
        return target is not None and (
            self.report.requests_completed + self.report.requests_failed >= target)

    def _worker(self, limit: bool = False):
        from repro.sim.engine import Interrupt

        sim = self.host.sim
        one = (self._one_request_fluid if self.fidelity == "fluid"
               else self._one_request)
        try:
            while not self._stop and not (limit and self._done_enough()):
                yield from one()
        except Interrupt:
            return

    def _one_request_fluid(self):
        """connect (1 RTT) -> request (RTT/2) -> service -> response
        (HTTP/1.0: a fresh connection and congestion window per request).

        Small responses are latency-bound, not rate-bound: the cost is
        the number of slow-start rounds, one RTT each, with round k
        shipping IW*2^(k-1) bytes. We charge those rounds as explicit
        timeouts and put only the final round's residual on a ramp-free
        fluid flow, so it still contends for shared-link capacity. Round
        counting stops once the doubled window would exceed what the
        path can carry per RTT — past that point the transfer is
        rate-bound and the fluid flow models it alone."""
        from repro.net.cc import slow_start_rounds
        from repro.net.fluid import FluidAborted

        sim = self.host.sim
        fluid = getattr(sim, "fluid", None)
        if fluid is None:
            raise RuntimeError("fidelity='fluid' requires a FluidNetwork "
                               "attached to this simulator")
        path = self.response_path
        if path is None:
            path = fluid.route(self.host.name, self.server_ip)
        size = response_size_for(self.path)
        t_start = sim.now
        yield sim.timeout(path.rtt)            # SYN / SYN-ACK
        self.report.connect_times.append(sim.now - t_start)
        yield sim.timeout(path.rtt / 2)        # request reaches the server
        yield sim.timeout(self.service_time)
        window = min(self.host.tcp.send_buf, self.host.tcp.recv_buf)
        per_rtt = min(fluid.path_rate(path) * path.rtt / 8.0, window)
        rounds, sent = slow_start_rounds(size, path.mss, per_rtt)
        if rounds > 1:
            yield sim.timeout((rounds - 1) * path.rtt)
        flow = fluid.open(path=path, size_bytes=size - sent, ramp=False,
                          send_buf=self.host.tcp.send_buf,
                          recv_buf=self.host.tcp.recv_buf,
                          name=f"ab:{self.host.name}", cc=self.cc)
        try:
            yield flow.done
        except FluidAborted:
            self.report.requests_failed += 1
            return
        finally:
            flow.close()  # no-op when already done; frees aborted waiters
        self.report.requests_completed += 1
        self.report.total_times.append(sim.now - t_start)
        self.report.completion_stamps.append(sim.now)

    def _one_request(self):
        sim = self.host.sim
        t_start = sim.now
        conn = self.host.tcp.connect(self.server_ip, self.port, cc=self.cc)
        deadline = sim.timeout(self.connect_timeout)
        established = conn.wait_established()
        yield sim.any_of([established, deadline])
        if not established.processed or not established.ok:
            self.report.requests_failed += 1
            conn.abort()
            if not established.processed:
                # Leave a failed handshake behind; back off briefly.
                yield sim.timeout(0.1)
            return
        self.report.connect_times.append(sim.now - t_start)
        request = HttpRequest(self.path)
        try:
            yield conn.send(request.size, obj=request)
        except ConnectionReset:
            self.report.requests_failed += 1
            return
        # Read until the response marker (headers+body fully delivered).
        response: Optional[HttpResponse] = None
        while response is None:
            chunk = yield conn.recv()
            if chunk is None:
                break
            conn.app_read(chunk.nbytes)
            for obj in chunk.objs:
                if isinstance(obj, HttpResponse):
                    response = obj
        if response is None or response.status != 200:
            self.report.requests_failed += 1
            conn.close()
            return
        conn.close()
        self.report.requests_completed += 1
        self.report.total_times.append(sim.now - t_start)
        self.report.completion_stamps.append(sim.now)
