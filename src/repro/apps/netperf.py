"""netperf TCP_STREAM with interim results (Figs 7, 8, 9).

``netperf_stream`` pushes bytes for a fixed duration; a poller records
the delivery rate every ``interval`` seconds (the paper polls every
500 ms during migration experiments). Delivery is measured as
cumulatively ACKed bytes at the sender — identical to the receiver's
in-order byte count for TCP, and measurable even when the path crosses
NATs that rewrite the connection's addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.options import UNSET, TransferOptions
from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.net.tcp import ConnectionReset

__all__ = ["NetperfResult", "netperf_stream", "netserver"]

NETPERF_PORT = 12865


@dataclass
class NetperfResult:
    duration: float
    bytes_received: int
    times: list = field(default_factory=list)
    rates_mbps: list = field(default_factory=list)

    @property
    def throughput_mbps(self) -> float:
        return self.bytes_received * 8 / 1e6 / self.duration if self.duration > 0 else 0.0

    def series(self) -> "tuple[np.ndarray, np.ndarray]":
        return np.asarray(self.times), np.asarray(self.rates_mbps)


def netserver(host: Host, port: int = NETPERF_PORT):
    """Process: accept and drain TCP_STREAM connections forever."""
    from repro.net.tcp import drain_bytes

    listener = host.tcp.listen(port)
    while True:
        conn = yield listener.accept()
        host.sim.process(drain_bytes(conn), name=f"netserver:{host.name}")


def netperf_stream(host: Host, dst_ip: IPv4Address,
                   duration: float = 10.0, interval: float = 0.5,
                   chunk: int = 65536, port: int = NETPERF_PORT,
                   options: "TransferOptions | None" = None,
                   fidelity=UNSET, cc=UNSET, cc_trace=UNSET):
    """Process: TCP_STREAM from ``host`` to a :func:`netserver` at
    ``dst_ip`` for ``duration`` seconds; returns NetperfResult.

    Transfer behaviour comes from a :class:`TransferOptions` bundle
    (``fidelity=`` / ``cc=`` / ``cc_trace=`` keywords are deprecated
    aliases).

    ``TransferOptions.fidelity="fluid"`` runs the stream as one
    duration-mode fluid flow (no netserver needed); interim rates come
    from the solver's allocation and land in the same
    ``<host>.netperf.rate_mbps`` series.

    ``TransferOptions.cc`` picks the congestion-control algorithm
    (``None`` = stack default / historical fluid Mathis cap).
    ``TransferOptions.cc_trace`` enables the per-flow
    ``<stack>.tcp.<label>.{cwnd,ssthresh,srtt_ms}`` time series under
    that label (packet fidelity only)."""
    opts = TransferOptions.coerce(options, "netperf_stream",
                                  fidelity=fidelity, cc=cc, cc_trace=cc_trace)
    fidelity, cc, cc_trace = opts.fidelity, opts.cc, opts.cc_trace
    sim = host.sim
    if fidelity == "fluid":
        fluid = getattr(sim, "fluid", None)
        if fluid is None:
            raise RuntimeError("fidelity='fluid' requires a FluidNetwork "
                               "attached to this simulator")
        path = fluid.route(host.name, dst_ip)
        yield sim.timeout(path.rtt)  # connection establishment
        result = NetperfResult(duration, 0)
        flow = fluid.open(host.name, dst_ip, size_bytes=None,
                          send_buf=host.tcp.send_buf,
                          recv_buf=host.tcp.recv_buf,
                          name=f"netperf:{host.name}", cc=cc)
        rate_series = sim.metrics.series(f"{host.name}.netperf.rate_mbps")
        t_end = sim.now + duration
        last = flow.progress()
        while sim.now < t_end - 1e-9:
            step = min(interval, t_end - sim.now)
            yield sim.timeout(step)
            got = flow.progress()
            rate = (got - last) * 8 / 1e6 / step
            result.times.append(sim.now)
            result.rates_mbps.append(rate)
            rate_series.record(rate)
            last = got
        flow.close()
        result.bytes_received = int(flow.delivered)
        return result
    if fidelity != "packet":
        raise ValueError(f"unknown fidelity {fidelity!r}")
    conn = host.tcp.connect(dst_ip, port, cc=cc)
    if cc_trace is not None:
        conn.enable_cc_trace(cc_trace)
    try:
        yield conn.wait_established()
    except ConnectionReset:
        return NetperfResult(duration, 0)
    result = NetperfResult(duration, 0)
    t_end = sim.now + duration
    done = sim.timeout(duration)
    start_acked = conn.bytes_acked_total
    # Interim rates also land in the registry (``<host>.netperf.rate_mbps``)
    # so figure benchmarks can read the timeline without holding `result`.
    rate_series = sim.metrics.series(f"{host.name}.netperf.rate_mbps")

    def poller(sim):
        last = conn.bytes_acked_total
        while sim.now < t_end - 1e-9:
            yield sim.timeout(interval)
            now_acked = conn.bytes_acked_total
            rate = (now_acked - last) * 8 / 1e6 / interval
            result.times.append(sim.now)
            result.rates_mbps.append(rate)
            rate_series.record(rate)
            last = now_acked

    poll_proc = sim.process(poller(sim))

    def pusher(sim):
        try:
            while sim.now < t_end - 1e-9 and not conn.reset:
                ev = conn.send(chunk)
                yield sim.any_of([ev, sim.timeout(max(t_end - sim.now, 0.01))])
        except ConnectionReset:
            return  # test ended / connection torn down mid-send

    sim.process(pusher(sim))
    yield done
    yield poll_proc
    result.bytes_received = conn.bytes_acked_total - start_acked
    if not conn.reset:
        conn.abort()  # netperf test over; no graceful drain needed
    return result
