"""Workload generators matching the paper's measurement tools.

* :mod:`repro.apps.ping`    — ICMP RTT/loss probing (re-export).
* :mod:`repro.apps.ttcp`    — fixed-size bulk TCP transfer (Fig 6).
* :mod:`repro.apps.netperf` — TCP_STREAM with interim results (Figs 7-9).
* :mod:`repro.apps.httpd`   — minimal HTTP server for VMs.
* :mod:`repro.apps.ab`      — ApacheBench-style closed-loop client
  (Tables III-IV, Fig 10).
* :mod:`repro.apps.mpi`     — message-passing runtime + heat-distribution
  Jacobi and NAS-style EP/FT kernels (Figs 11, 14).
"""

from repro.apps.ab import ApacheBench, AbReport
from repro.apps.httpd import HttpServer
from repro.apps.netperf import NetperfResult, netperf_stream, netserver
from repro.apps.ping import Pinger, PingResult
from repro.apps.ttcp import TtcpResult, ttcp_receiver, ttcp_transfer

__all__ = [
    "AbReport",
    "ApacheBench",
    "HttpServer",
    "NetperfResult",
    "Pinger",
    "PingResult",
    "TtcpResult",
    "netperf_stream",
    "netserver",
    "ttcp_receiver",
    "ttcp_transfer",
]
