"""ICMP probing — thin re-export of the stack's Pinger.

Kept as an app module so workloads import measurement tools from one
place (`repro.apps`), mirroring how the paper names its tools (ping,
ttcp, netperf, ApacheBench)."""

from repro.net.icmp import Pinger, PingResult

__all__ = ["Pinger", "PingResult"]
