"""Minimal HTTP/1.0 server (runs unmodified inside VMs).

Requests/responses are byte-counted with message markers for framing:
a request is ~200 B carrying the path; the response is headers (~250 B)
plus the file body. One request per connection (HTTP/1.0 semantics,
matching ApacheBench's default non-keepalive mode used for the
connection-time measurements of Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.stack import Host

__all__ = ["HttpRequest", "HttpResponse", "HttpServer", "response_size_for"]

HTTP_PORT = 80
REQUEST_BYTES = 200
HEADER_BYTES = 250


def response_size_for(path: str, files: dict | None = None) -> int:
    """Wire size (headers + body) of the response :class:`HttpServer`
    would send for ``path`` — shared with ApacheBench's fluid mode,
    which sizes response flows without a server process."""
    if files and path in files:
        return HEADER_BYTES + files[path]
    if path.startswith("/file") and path.endswith("k"):
        try:
            return HEADER_BYTES + int(path[5:-1]) * 1024
        except ValueError:
            pass
    return HEADER_BYTES + 128  # 404 body


@dataclass(frozen=True)
class HttpRequest:
    path: str

    @property
    def size(self) -> int:
        return REQUEST_BYTES


@dataclass(frozen=True)
class HttpResponse:
    path: str
    status: int
    body_bytes: int

    @property
    def size(self) -> int:
        return HEADER_BYTES + self.body_bytes


class HttpServer:
    """Serves synthetic files: ``/file<N>k`` yields N·1024 bytes."""

    def __init__(self, host: Host, port: int = HTTP_PORT,
                 files: dict | None = None, service_time: float = 50e-6) -> None:
        self.host = host
        self.port = port
        self.files = dict(files or {})
        self.service_time = service_time
        self.requests_served = 0
        self.listener = host.tcp.listen(port, backlog=512)
        host.sim.process(self._accept_loop(), name=f"httpd:{host.name}")

    def file_size(self, path: str) -> int:
        if path in self.files:
            return self.files[path]
        if path.startswith("/file") and path.endswith("k"):
            try:
                return int(path[5:-1]) * 1024
            except ValueError:
                pass
        return -1

    def _accept_loop(self):
        sim = self.host.sim
        while True:
            conn = yield self.listener.accept()
            sim.process(self._serve_one(conn), name=f"httpd-conn:{self.host.name}")

    def _serve_one(self, conn):
        sim = self.host.sim
        request = None
        while request is None:
            chunk = yield conn.recv()
            if chunk is None:
                conn.close()
                return
            conn.app_read(chunk.nbytes)
            for obj in chunk.objs:
                if isinstance(obj, HttpRequest):
                    request = obj
                    break
        yield sim.timeout(self.service_time)
        size = self.file_size(request.path)
        if size < 0:
            response = HttpResponse(request.path, 404, 128)
        else:
            response = HttpResponse(request.path, 200, size)
        self.requests_served += 1
        yield conn.send(response.size, obj=response)
        conn.close()
