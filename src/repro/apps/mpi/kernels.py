"""NAS-style EP and FT kernels — Fig 14's workloads.

* **EP** (embarrassingly parallel): generate random pairs and tally —
  pure local compute, one tiny reduction at the end. Cluster locality
  barely matters (Fig 14 a/c show modest gaps).
* **FT** (3-D FFT): every iteration performs FFT compute plus an
  all-to-all transpose moving the whole grid across ranks — dominated
  by inter-host communication, so locality-sensitive grouping pays off
  dramatically (Fig 14 b/d).

Problem classes follow the NAS definitions (scaled by ``flops_scale``
to keep simulated times in the paper's magnitude):

=========  =====================  ==========================
class      EP samples             FT grid (iterations)
=========  =====================  ==========================
A          2^28                   256 x 256 x 128 (6)
B          2^30                   512 x 256 x 256 (20)
=========  =====================  ==========================
"""

from __future__ import annotations

__all__ = ["EP_CLASSES", "FT_CLASSES", "ep_program", "ft_program"]

EP_CLASSES = {"A": 2**28, "B": 2**30}
FT_CLASSES = {"A": ((256, 256, 128), 6), "B": ((512, 256, 256), 20)}

EP_FLOPS_PER_SAMPLE = 30.0
FT_FLOPS_PER_POINT_PER_ITER = 110.0  # ~ 5 log2(N) per 1-D FFT pass x 3 dims
COMPLEX_BYTES = 16


def ep_program(samples: float, flops_per_sample: float = EP_FLOPS_PER_SAMPLE):
    """Embarrassingly parallel: local compute + one small reduction."""

    def program(ctx):
        yield from ctx.compute(samples / ctx.size * flops_per_sample)
        # Reduce 10 Gaussian-pair counters to rank 0.
        yield from ctx.gather_to_root(10 * 8)

    return program


def ft_program(grid: tuple, iterations: int,
               flops_per_point: float = FT_FLOPS_PER_POINT_PER_ITER):
    """FFT: per-iteration compute + all-to-all transpose of the grid."""
    nx, ny, nz = grid
    total_points = nx * ny * nz

    def program(ctx):
        points_per_rank = total_points // ctx.size
        # Transpose: each rank re-distributes its slab across all peers.
        bytes_per_peer = points_per_rank * COMPLEX_BYTES // ctx.size
        for it in range(iterations):
            yield from ctx.compute(points_per_rank * flops_per_point)
            yield from ctx.alltoall(bytes_per_peer, tag=100 + it)
        yield from ctx.gather_to_root(10 * 8)

    return program
