"""Heat-distribution (2D Jacobi) MPI program — Fig 11's workload.

Row-partitioned m x m grid: each iteration computes the stencil over the
local strip and swaps halo rows with the neighbouring ranks. With one
rank across a WAN link (the SIAT VM of Fig 11), the halo exchange
dominates; after that VM migrates next to the others, the same program
becomes compute-bound — reproducing the 30.5%/14.7%/4.7% ratios.
"""

from __future__ import annotations

__all__ = ["heat_distribution_program", "heat_iterations"]

FLOPS_PER_POINT = 8.0  # 5-point stencil + update


def heat_iterations(m: int, scale: float = 1.0) -> int:
    """Iteration count to (approximate) convergence: Jacobi on an m x m
    grid needs O(m^2) sweeps; ``scale`` calibrates absolute magnitude."""
    return max(int(scale * m * m / 16), 1)


def heat_distribution_program(m: int, iterations: int,
                              flops_per_point: float = FLOPS_PER_POINT,
                              gather_every: int = 0):
    """Build the per-rank program for an m x m grid.

    ``gather_every > 0`` additionally gathers the full grid to rank 0
    every that many iterations (the common textbook pattern of dumping
    intermediate temperature fields) — it makes the WAN link carry
    O(m^2) bytes per gather, which is what lets problem size dominate
    the without-migration times of Fig 11."""

    def program(ctx):
        rows = m // ctx.size
        halo_bytes = m * 8  # one row of doubles
        for it in range(iterations):
            yield from ctx.compute(rows * m * flops_per_point)
            # Both sides of a boundary exchange under the same tag; the
            # (src, tag) pair disambiguates the two directions.
            if ctx.rank > 0:
                yield from ctx.sendrecv(ctx.rank - 1, halo_bytes, tag=it)
            if ctx.rank < ctx.size - 1:
                yield from ctx.sendrecv(ctx.rank + 1, halo_bytes, tag=it)
            if gather_every and (it + 1) % gather_every == 0:
                yield from ctx.gather_to_root(rows * m * 8, tag=-100 - it)
        # Gather the strips for the final answer.
        yield from ctx.gather_to_root(rows * m * 8)

    return program
