"""Message-passing runtime + the paper's parallel workloads.

* :mod:`repro.apps.mpi.runtime` — MPICH-over-TCP stand-in: ranks on
  (virtual) hosts, full-mesh TCP connections, blocking send/recv with
  tags, barrier, and modeled compute time scaled by each host's
  ``cpu_factor``.
* :mod:`repro.apps.mpi.heat` — the heat-distribution Jacobi program of
  Fig 11 (Quinn, *Parallel Programming in C with MPI and OpenMP*).
* :mod:`repro.apps.mpi.kernels` — NAS-style EP (embarrassingly parallel)
  and FT (FFT, all-to-all transpose) kernels of Fig 14.
"""

from repro.apps.mpi.heat import heat_distribution_program
from repro.apps.mpi.kernels import ep_program, ft_program
from repro.apps.mpi.runtime import MpiContext, MpiJob

__all__ = ["MpiContext", "MpiJob", "ep_program", "ft_program", "heat_distribution_program"]
