"""MPICH-over-TCP stand-in.

Ranks live on hosts (usually VM guests), joined by a full mesh of TCP
connections carrying tagged messages. Send is buffered-eager (blocks
only on TCP backpressure, like MPICH small/medium messages); recv blocks
until the matching (src, tag) message is fully delivered. Computation is
modeled time: ``compute(flops)`` sleeps ``flops / (base_flops *
cpu_factor)`` — communication, in contrast, is fully simulated through
the network stack, which is where all the locality effects of Figs 11
and 14 come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.sim.queues import Store

__all__ = ["MpiContext", "MpiJob"]

MPI_PORT_BASE = 14000


@dataclass(frozen=True)
class _MpiMsg:
    src: int
    dst: int
    tag: int
    nbytes: int

    @property
    def size(self) -> int:
        return 16


class MpiContext:
    """Per-rank handle passed to the program generator."""

    def __init__(self, job: "MpiJob", rank: int) -> None:
        self.job = job
        self.rank = rank
        self.size = job.size
        self.host = job.hosts[rank]
        self.sim = job.sim
        self._inboxes: dict[tuple[int, int], Store] = {}

    def _inbox(self, src: int, tag: int) -> Store:
        key = (src, tag)
        box = self._inboxes.get(key)
        if box is None:
            box = Store(self.sim)
            self._inboxes[key] = box
        return box

    # -- point to point ------------------------------------------------------
    def send(self, dst: int, nbytes: int, tag: int = 0):
        """Process: buffered-eager send of ``nbytes`` to rank ``dst``."""
        if dst == self.rank:
            raise ValueError("self-send")
        conn = self.job.conn(self.rank, dst)
        payload = max(nbytes, 1)
        yield conn.send(payload, obj=_MpiMsg(self.rank, dst, tag, payload))

    def recv(self, src: int, tag: int = 0):
        """Process: blocks until the matching message has fully arrived;
        returns its byte count."""
        msg = yield self._inbox(src, tag).get()
        return msg.nbytes

    def sendrecv(self, peer: int, nbytes: int, tag: int = 0):
        """Process: simultaneous exchange with ``peer`` (halo swaps)."""
        send_proc = self.sim.process(self.send(peer, nbytes, tag))
        got = yield from self.recv(peer, tag)
        yield send_proc
        return got

    # -- collectives ------------------------------------------------------------
    def barrier(self, tag: int = -1):
        """Process: flat-tree barrier through rank 0."""
        if self.rank == 0:
            for src in range(1, self.size):
                yield from self.recv(src, tag)
            for dst in range(1, self.size):
                yield from self.send(dst, 4, tag)
        else:
            yield from self.send(0, 4, tag)
            yield from self.recv(0, tag)

    def gather_to_root(self, nbytes: int, tag: int = -2):
        """Process: every rank ships ``nbytes`` to rank 0."""
        if self.rank == 0:
            total = 0
            for src in range(1, self.size):
                total += yield from self.recv(src, tag)
            return total
        yield from self.send(0, nbytes, tag)
        return nbytes

    def alltoall(self, bytes_per_peer: int, tag: int):
        """Process: pairwise exchange with every other rank."""
        sends = [self.sim.process(self.send(dst, bytes_per_peer, tag))
                 for dst in range(self.size) if dst != self.rank]
        for src in range(self.size):
            if src != self.rank:
                yield from self.recv(src, tag)
        for proc in sends:
            yield proc

    # -- modeled computation -------------------------------------------------------
    def compute(self, flops: float):
        """Process: spend CPU time for ``flops`` floating-point operations."""
        rate = self.job.base_flops * self.host.cpu_factor
        yield self.sim.timeout(flops / rate)


class MpiJob:
    """One MPI program across ``len(hosts)`` ranks."""

    def __init__(self, hosts: list[Host], ips: list[IPv4Address],
                 program: Callable, base_flops: float = 2e9,
                 port: Optional[int] = None) -> None:
        """``program(ctx)`` is a generator run once per rank; ``ips[r]``
        is the address rank ``r`` listens on (a VM guest IP or a WAVNet
        virtual IP)."""
        if len(hosts) != len(ips):
            raise ValueError("hosts/ips length mismatch")
        if len(hosts) < 2:
            raise ValueError("need at least 2 ranks")
        self.hosts = hosts
        self.ips = [IPv4Address(ip) for ip in ips]
        self.size = len(hosts)
        self.sim = hosts[0].sim
        self.program = program
        self.base_flops = base_flops
        self.port = port if port is not None else MPI_PORT_BASE
        self.contexts = [MpiContext(self, r) for r in range(self.size)]
        self._conns: dict[tuple[int, int], object] = {}
        self.elapsed: Optional[float] = None

    def conn(self, a: int, b: int):
        conn = self._conns.get((a, b))
        if conn is None:
            raise RuntimeError(f"no connection {a}->{b}; call setup() first")
        return conn

    # -- wiring ------------------------------------------------------------------
    def setup(self):
        """Process: listeners + full-mesh connection establishment +
        per-connection reader processes."""
        sim = self.sim
        listeners = {}
        accepted: dict[int, dict] = {r: {} for r in range(self.size)}
        for r, host in enumerate(self.hosts):
            listeners[r] = host.tcp.listen(self.port + r)
            sim.process(self._acceptor(r, listeners[r], accepted[r]),
                        name=f"mpi-accept:{r}")
        # Rank a dials every rank b > a.
        pending = []
        for a in range(self.size):
            for b in range(a + 1, self.size):
                conn = self.hosts[a].tcp.connect(self.ips[b], self.port + b)
                self._conns[(a, b)] = conn
                pending.append((a, b, conn))
        for a, b, conn in pending:
            yield conn.wait_established()
        # Wait until the passive sides have been matched up.
        for r in range(self.size):
            while len(accepted[r]) < r:
                yield sim.timeout(0.05)
            for peer, conn in accepted[r].items():
                self._conns[(r, peer)] = conn
        for (a, b), conn in self._conns.items():
            sim.process(self._reader(a, conn), name=f"mpi-rx:{a}<-{b}")

    def _acceptor(self, rank: int, listener, accepted: dict):
        while len(accepted) < rank:  # ranks below `rank` dial in
            conn = yield listener.accept()
            peer = self._peer_of(rank, conn)
            accepted[peer] = conn

    def _peer_of(self, rank: int, conn) -> int:
        for r, ip in enumerate(self.ips):
            if ip == conn.remote_ip:
                return r
        raise RuntimeError(f"unknown MPI peer {conn.remote_ip}")

    def _reader(self, rank: int, conn):
        ctx = self.contexts[rank]
        while True:
            chunk = yield conn.recv()
            if chunk is None:
                return
            conn.app_read(chunk.nbytes)
            for obj in chunk.objs:
                if isinstance(obj, _MpiMsg):
                    ctx._inbox(obj.src, obj.tag).put_nowait(obj)

    # -- execution ----------------------------------------------------------------
    def run(self):
        """Process: setup + run all ranks; returns elapsed seconds."""
        sim = self.sim
        yield sim.process(self.setup())
        t0 = sim.now
        rank_procs = [sim.process(self.program(ctx), name=f"mpi-rank:{ctx.rank}")
                      for ctx in self.contexts]
        for proc in rank_procs:
            yield proc
        self.elapsed = sim.now - t0
        return self.elapsed
