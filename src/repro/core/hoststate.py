"""Struct-of-arrays host registry: the million-endpoint control plane.

The paper validates WAVNet at 7 sites / ~400 PlanetLab hosts, where
every host can afford a full object stack (driver, NAT box, L2 ports,
simulation processes). Pushing the rendezvous + CAN control plane to
10^5-10^6 *registered* endpoints is impossible at ~100 KB per idle
host, so registered-endpoint state is split from materialized hosts:

* :class:`HostTable` — a struct-of-arrays table (numpy columns, one row
  per endpoint) holding everything the control plane needs about a
  registered endpoint: packed NAT mapping (public/private 2-tuples),
  reachability endpoint, rendezvous assignment, CAN coordinates,
  resource attributes, liveness epoch, relay/materialized flags. No
  per-host Process, socket, or L2 objects — an idle endpoint costs a
  table row plus its name.
* :meth:`HostTable.materialize` — lazily instantiate the full
  driver/NAT/L2 stack for a host that actively punches or moves
  traffic, through a scenario-supplied hook.
* :meth:`HostTable.demote` — fold an idle host back into the table:
  its registration state is captured into the row and the object stack
  is torn down.

Rows are identified by a dense integer ``host_id``; cross-layer
references (CAN directory entries, replicas) use *handles* — the row id
packed with the row's registration generation — so a stale reference to
a re-registered or expired endpoint is detectable in O(1) and in bulk
with one vectorized mask.

The table is shared: in a rendezvous *fleet*, every server stores its
registrations in the same table tagged with its server index (the
``owner`` column), which is what lets the CAN layer compute per-zone
endpoint load with one vectorized containment test.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.overlay.resources import ConnectionInfo, ResourceRecord, ResourceSpec

__all__ = ["EndpointRow", "HostTable", "FLAG_MATERIALIZED", "FLAG_REGISTERED",
           "FLAG_RELAY"]

FLAG_REGISTERED = 1    # row currently admitted by a rendezvous server
FLAG_MATERIALIZED = 2  # full driver/NAT/L2 stack exists for this row
FLAG_RELAY = 4         # endpoint is relay-only (punching known to fail)

_NAT_CODES = {t: i for i, t in enumerate(NatType)}
_NAT_TYPES = list(NatType)

_GEN_SHIFT = 32
_ID_MASK = (1 << _GEN_SHIFT) - 1


class EndpointRow:
    """A lightweight live view of one :class:`HostTable` row.

    Presents the attribute surface the rendezvous layer historically got
    from its per-host ``RegisteredHost`` dataclass (``name``,
    ``reach_ip``/``reach_port``, ``conn``, ``attrs``, ``last_seen``) but
    reads and writes the table columns directly — constructing one
    allocates nothing beyond the view object itself.
    """

    __slots__ = ("table", "host_id")

    def __init__(self, table: "HostTable", host_id: int) -> None:
        self.table = table
        self.host_id = host_id

    @property
    def name(self) -> str:
        return self.table.name_of(self.host_id)

    @property
    def reach_ip(self) -> IPv4Address:
        return IPv4Address(int(self.table.reach_ip[self.host_id]))

    @reach_ip.setter
    def reach_ip(self, value: IPv4Address) -> None:
        self.table.reach_ip[self.host_id] = value.value

    @property
    def reach_port(self) -> int:
        return int(self.table.reach_port[self.host_id])

    @reach_port.setter
    def reach_port(self, value: int) -> None:
        self.table.reach_port[self.host_id] = value

    @property
    def last_seen(self) -> float:
        return float(self.table.last_seen[self.host_id])

    @last_seen.setter
    def last_seen(self, value: float) -> None:
        self.table.last_seen[self.host_id] = value

    @property
    def conn(self) -> ConnectionInfo:
        return self.table.connection_info(self.host_id)

    @property
    def attrs(self) -> dict:
        return self.table.attrs_of(self.host_id)

    @attrs.setter
    def attrs(self, values: dict) -> None:
        self.table.set_attrs(self.host_id, values)

    @property
    def registered(self) -> bool:
        return bool(self.table.flags[self.host_id] & FLAG_REGISTERED)

    @property
    def materialized(self) -> bool:
        return bool(self.table.flags[self.host_id] & FLAG_MATERIALIZED)

    @property
    def size(self) -> int:
        return 48  # wire-size estimate, matches the old RegisteredHost

    def __repr__(self) -> str:
        return f"EndpointRow({self.name!r}, id={self.host_id})"


class HostTable:
    """Struct-of-arrays registry of every known endpoint.

    One row per endpoint name; rows persist across registration loss
    (crash, expiry) so the *directory* state (virtual IP, last known NAT
    mapping, site configuration) survives while the *registration*
    state (``FLAG_REGISTERED`` + ``owner``) carries the volatile
    admitted-by-a-server relationship. Re-registration bumps the row's
    ``generation``, invalidating any handle minted for the previous
    incarnation.
    """

    def __init__(self, sim, spec: Optional[ResourceSpec] = None,
                 capacity: int = 256) -> None:
        self.sim = sim
        self.spec = spec or ResourceSpec()
        self._dims = self.spec.dims
        self._capacity = max(int(capacity), 16)
        self._n = 0
        self._ids: dict[str, int] = {}
        self._names: list[Optional[str]] = []
        self._alloc(self._capacity)
        # Full object stacks for materialized hosts (host_id -> stack
        # handle, opaque to the table) plus the scenario-supplied hooks.
        self.active: dict[int, Any] = {}
        self.materializer: Optional[Callable[[str], Any]] = None
        self.dematerializer: Optional[Callable[[str, Any], None]] = None
        # Sparse side tables (empty for ordinary endpoints).
        self._extra_attrs: dict[int, dict] = {}
        self._site_cfg: dict[int, dict] = {}
        # PDES single-owner access: when set via claim_partition(),
        # registration-state mutations outside the owning partition are
        # placement bugs and raise instead of silently diverging.
        self._partition_guard = None
        m = sim.metrics.scope("hosttable")
        self._m_registered = m.counter("registered")
        self._m_expired = m.counter("expired")
        self._m_materialized = m.counter("materialized")
        self._m_demoted = m.counter("demoted")
        self._g_rows = m.gauge("rows")
        self._g_active = m.gauge("active")

    # -- storage -------------------------------------------------------
    def _alloc(self, capacity: int) -> None:
        self.public_ip = np.zeros(capacity, dtype=np.uint32)
        self.public_port = np.zeros(capacity, dtype=np.uint16)
        self.private_ip = np.zeros(capacity, dtype=np.uint32)
        self.private_port = np.zeros(capacity, dtype=np.uint16)
        self.reach_ip = np.zeros(capacity, dtype=np.uint32)
        self.reach_port = np.zeros(capacity, dtype=np.uint16)
        self.rendezvous_ip = np.zeros(capacity, dtype=np.uint32)
        self.rendezvous_port = np.zeros(capacity, dtype=np.uint16)
        self.virtual_ip = np.zeros(capacity, dtype=np.uint32)
        self.nat_code = np.zeros(capacity, dtype=np.uint8)
        self.alloc_stride = np.zeros(capacity, dtype=np.uint16)
        self.flags = np.zeros(capacity, dtype=np.uint8)
        self.owner = np.full(capacity, -1, dtype=np.int16)
        self.region = np.full(capacity, -1, dtype=np.int16)
        self.generation = np.zeros(capacity, dtype=np.uint32)
        self.last_seen = np.full(capacity, -np.inf, dtype=np.float64)
        self.coords = np.zeros((capacity, self._dims), dtype=np.float32)
        self.attr_values = np.zeros((capacity, self._dims), dtype=np.float32)

    _COLUMNS = ("public_ip", "public_port", "private_ip", "private_port",
                "reach_ip", "reach_port", "rendezvous_ip", "rendezvous_port",
                "virtual_ip", "nat_code", "alloc_stride", "flags", "owner", "region",
                "generation", "last_seen", "coords", "attr_values")

    def _grow(self, need: int) -> None:
        capacity = self._capacity
        while capacity < need:
            capacity *= 2
        old = {c: getattr(self, c) for c in self._COLUMNS}
        self._alloc(capacity)
        for c, arr in old.items():
            getattr(self, c)[: len(arr)] = arr
        self._capacity = capacity

    def __len__(self) -> int:
        return self._n

    @property
    def registered_count(self) -> int:
        return int(np.count_nonzero(
            self.flags[: self._n] & FLAG_REGISTERED))

    @property
    def nbytes(self) -> int:
        """Steady-state array bytes (excludes the name index dict)."""
        return sum(getattr(self, c).nbytes for c in self._COLUMNS)

    # -- identity ------------------------------------------------------
    def lookup(self, name: str) -> int:
        """Row id for ``name``; -1 if the table has never seen it."""
        return self._ids.get(name, -1)

    def name_of(self, host_id: int) -> str:
        name = self._names[host_id]
        if name is None:
            raise KeyError(f"host_id {host_id} is unnamed")
        return name

    def row(self, host_id: int) -> EndpointRow:
        return EndpointRow(self, host_id)

    def row_by_name(self, name: str) -> EndpointRow:
        host_id = self.lookup(name)
        if host_id < 0:
            raise KeyError(name)
        return EndpointRow(self, host_id)

    # -- handles (generation-checked cross-layer references) -----------
    def handle(self, host_id: int) -> int:
        return host_id | (int(self.generation[host_id]) << _GEN_SHIFT)

    def handle_ids(self, handles: np.ndarray) -> np.ndarray:
        return (handles & _ID_MASK).astype(np.int64)

    def valid_mask(self, handles: np.ndarray) -> np.ndarray:
        """Vectorized: which handles still name a live registration?"""
        if len(handles) == 0:
            return np.zeros(0, dtype=bool)
        handles = np.asarray(handles, dtype=np.int64)
        ids = handles & _ID_MASK
        gens = handles >> _GEN_SHIFT
        ok = ids < self._n
        safe = np.where(ok, ids, 0)
        ok &= self.generation[safe] == gens
        ok &= (self.flags[safe] & FLAG_REGISTERED) != 0
        return ok

    # -- registration --------------------------------------------------
    def _ensure_row(self, name: str) -> int:
        host_id = self._ids.get(name)
        if host_id is None:
            host_id = self._n
            if host_id >= self._capacity:
                self._grow(host_id + 1)
            self._ids[name] = host_id
            self._names.append(name)
            self._n += 1
            self._g_rows.set(self._n)
        return host_id

    def ensure_row(self, name: str) -> int:
        """Create (or find) the directory row for ``name`` without
        registering it — scenario setup reserves rows this way."""
        return self._ensure_row(name)

    # -- PDES single-owner access --------------------------------------
    def claim_partition(self, owner_group: int, context) -> None:
        """Declare registration state single-owner for PDES: only the
        partition owning ``owner_group`` (per the
        :class:`~repro.sim.pdes.PartitionContext`) may mutate it. Every
        partition replicates the *rows* (so address allocation stays in
        lock-step), but registrations/keepalives/expiry land only where
        the rendezvous servers live; elsewhere they raise."""
        self._partition_guard = (int(owner_group), context)

    def _check_owner(self) -> None:
        if self._partition_guard is None:
            return
        owner_group, ctx = self._partition_guard
        if not ctx.owns(owner_group):
            raise RuntimeError(
                f"HostTable registration state is owned by the partition "
                f"holding group {owner_group}; this mutation ran in "
                f"partition {ctx.partition_id} — a PDES placement bug")

    def register(self, name: str, conn: ConnectionInfo, attrs: dict,
                 reach: tuple, now: float, owner: int = -1,
                 region: int = -1) -> int:
        """Admit (or re-admit) ``name``; returns its row id. Bumps the
        generation so handles minted for the previous registration go
        stale."""
        self._check_owner()
        i = self._ensure_row(name)
        self.public_ip[i] = conn.public_ip.value
        self.public_port[i] = conn.public_port
        self.private_ip[i] = conn.private_ip.value
        self.private_port[i] = conn.private_port
        self.rendezvous_ip[i] = conn.rendezvous_ip.value
        self.rendezvous_port[i] = conn.rendezvous_port
        self.reach_ip[i] = reach[0].value
        self.reach_port[i] = reach[1]
        self.nat_code[i] = _NAT_CODES[conn.nat_type]
        self.alloc_stride[i] = conn.alloc_stride
        self.set_attrs(i, attrs)
        self.last_seen[i] = now
        self.owner[i] = owner
        if region >= 0:
            self.region[i] = region
        self.flags[i] |= FLAG_REGISTERED
        self.generation[i] += 1
        self._m_registered.add()
        return i

    def register_batch(self, names: tuple, public_ip: np.ndarray,
                       public_port: np.ndarray, private_ip: np.ndarray,
                       private_port: np.ndarray, nat_code: np.ndarray,
                       attr_values: np.ndarray, rendezvous: tuple,
                       reach: tuple, now: float, owner: int = -1,
                       region: int = -1) -> np.ndarray:
        """Vectorized bulk admission (the registration-storm fast path).

        ``names`` is a tuple of endpoint names; the array arguments are
        parallel per-endpoint columns; ``rendezvous``/``reach`` are
        shared (IPv4Address, port) endpoints. Returns the row ids.
        """
        self._check_owner()
        ids = np.fromiter((self._ensure_row(n) for n in names),
                          dtype=np.int64, count=len(names))
        self.public_ip[ids] = public_ip
        self.public_port[ids] = public_port
        self.private_ip[ids] = private_ip
        self.private_port[ids] = private_port
        self.nat_code[ids] = nat_code
        self.attr_values[ids] = attr_values
        self.coords[ids] = self._to_coords(attr_values)
        self.rendezvous_ip[ids] = rendezvous[0].value
        self.rendezvous_port[ids] = rendezvous[1]
        self.reach_ip[ids] = reach[0].value
        self.reach_port[ids] = reach[1]
        self.last_seen[ids] = now
        self.owner[ids] = owner
        self.region[ids] = region
        self.flags[ids] |= FLAG_REGISTERED
        self.generation[ids] += 1
        self._m_registered.add(len(ids))
        return ids

    def _to_coords(self, attr_values: np.ndarray) -> np.ndarray:
        """Normalize raw attribute values into CAN space (vectorized
        :meth:`ResourceSpec.to_point`)."""
        lows = np.array([lo for _n, lo, _hi in self.spec.attributes],
                        dtype=np.float32)
        highs = np.array([hi for _n, _lo, hi in self.spec.attributes],
                         dtype=np.float32)
        x = (np.asarray(attr_values, dtype=np.float32) - lows) / (highs - lows)
        return np.clip(x, 0.0, 1.0 - 1e-9)

    def set_attrs(self, host_id: int, attrs: dict) -> None:
        """Single-row attribute update (the legacy register/keepalive
        path). The exact dict is kept in a sparse side table so records
        rebuilt for these rows are byte-identical to the pre-table code
        (no float32 round-trip, ints stay ints); the columnar projection
        exists for vectorized zone math. Batch registrations skip the
        side table entirely — storm-scale rows stay columnar."""
        self._extra_attrs[host_id] = dict(attrs)
        for k, (name, _lo, _hi) in enumerate(self.spec.attributes):
            if name in attrs:
                self.attr_values[host_id, k] = float(attrs[name])
        self.coords[host_id] = self._to_coords(self.attr_values[host_id])

    def attrs_of(self, host_id: int) -> dict:
        exact = self._extra_attrs.get(host_id)
        if exact is not None:
            return dict(exact)
        return {name: float(self.attr_values[host_id, k])
                for k, (name, _lo, _hi) in enumerate(self.spec.attributes)}

    def touch(self, host_id: int, now: float,
              reach: Optional[tuple] = None) -> None:
        self.last_seen[host_id] = now
        if reach is not None:
            self.reach_ip[host_id] = reach[0].value
            self.reach_port[host_id] = reach[1]

    def touch_names(self, names, now: float) -> int:
        """Batched keepalive: bump liveness epochs for every known name;
        returns how many were still-registered rows."""
        self._check_owner()
        ids = [self._ids[n] for n in names if n in self._ids]
        if not ids:
            return 0
        arr = np.asarray(ids, dtype=np.int64)
        live = arr[(self.flags[arr] & FLAG_REGISTERED) != 0]
        self.last_seen[live] = now
        return int(len(live))

    # -- registration loss ---------------------------------------------
    def unregister(self, host_id: int) -> None:
        """Drop the registration; directory state stays in the row."""
        self.flags[host_id] &= np.uint8(~FLAG_REGISTERED & 0xFF)
        self.owner[host_id] = -1

    def release_owner(self, owner: int) -> list[str]:
        """A server lost its volatile registry (crash/stop): every row it
        owned becomes unregistered. Returns the affected names."""
        mask = (self.owner[: self._n] == owner) & \
            ((self.flags[: self._n] & FLAG_REGISTERED) != 0)
        ids = np.nonzero(mask)[0]
        self.flags[ids] &= np.uint8(~FLAG_REGISTERED & 0xFF)
        self.owner[ids] = -1
        return [self._names[i] for i in ids]

    def expire(self, horizon: float, owner: Optional[int] = None) -> list[str]:
        """Unregister rows whose liveness epoch predates ``horizon``
        (materialized hosts are exempt — their drivers keepalive).
        Returns the expired names."""
        self._check_owner()
        n = self._n
        mask = ((self.flags[:n] & FLAG_REGISTERED) != 0) \
            & ((self.flags[:n] & FLAG_MATERIALIZED) == 0) \
            & (self.last_seen[:n] < horizon)
        if owner is not None:
            mask &= self.owner[:n] == owner
        ids = np.nonzero(mask)[0]
        if len(ids):
            self.flags[ids] &= np.uint8(~FLAG_REGISTERED & 0xFF)
            self.owner[ids] = -1
            self._m_expired.add(len(ids))
        return [self._names[i] for i in ids]

    def mark_down(self, names) -> int:
        """Fault verb support: endpoints went dark. Their registrations
        drop immediately (the storm re-registers them later); row data
        survives so reconnection needs no side channel."""
        self._check_owner()
        count = 0
        for name in names:
            host_id = self._ids.get(name)
            if host_id is None:
                continue
            if self.flags[host_id] & FLAG_REGISTERED:
                self.unregister(host_id)
                count += 1
        return count

    # -- selection (vectorized) ----------------------------------------
    def registered_ids(self, owner: Optional[int] = None) -> np.ndarray:
        n = self._n
        mask = (self.flags[:n] & FLAG_REGISTERED) != 0
        if owner is not None:
            mask &= self.owner[:n] == owner
        return np.nonzero(mask)[0]

    def names_of(self, ids: np.ndarray) -> list[str]:
        return [self._names[int(i)] for i in ids]

    def names_in_region(self, region: int,
                        registered_only: bool = True) -> list[str]:
        n = self._n
        mask = self.region[:n] == region
        if registered_only:
            mask &= (self.flags[:n] & FLAG_REGISTERED) != 0
        return [self._names[i] for i in np.nonzero(mask)[0]]

    def ids_in_zone(self, zone, ids: np.ndarray) -> np.ndarray:
        """Subset of ``ids`` whose CAN coordinates fall inside ``zone``
        — per-zone load, one vectorized containment test."""
        if len(ids) == 0:
            return ids
        pts = self.coords[ids]
        mask = np.ones(len(ids), dtype=bool)
        for d in range(self._dims):
            mask &= (pts[:, d] >= zone.lows[d]) & (pts[:, d] < zone.highs[d])
        return ids[mask]

    # -- record / connection-info reconstruction -----------------------
    def connection_info(self, host_id: int) -> ConnectionInfo:
        i = host_id
        return ConnectionInfo(
            rendezvous_ip=IPv4Address(int(self.rendezvous_ip[i])),
            rendezvous_port=int(self.rendezvous_port[i]),
            public_ip=IPv4Address(int(self.public_ip[i])),
            public_port=int(self.public_port[i]),
            private_ip=IPv4Address(int(self.private_ip[i])),
            private_port=int(self.private_port[i]),
            nat_type=_NAT_TYPES[int(self.nat_code[i])],
            alloc_stride=int(self.alloc_stride[i]),
            # Freshest externally observed mapping: the reach endpoint is
            # refreshed by every register/keepalive, so it is the best
            # prediction base a broker can hand out.
            observed_port=int(self.reach_port[i]),
        )

    def record(self, host_id: int,
               expires_at: float = float("inf")) -> ResourceRecord:
        """Materialize a full ResourceRecord for one row (only done for
        the handful of rows a query actually returns)."""
        return ResourceRecord(
            host_name=self.name_of(host_id),
            point=tuple(float(x) for x in self.coords[host_id]),
            attrs=self.attrs_of(host_id),
            conn=self.connection_info(host_id),
            expires_at=expires_at,
        )

    # -- lazy materialization ------------------------------------------
    def materialize(self, host_id: int):
        """Instantiate the full driver/NAT/L2 stack for this endpoint
        via the scenario-supplied hook; idempotent."""
        if host_id in self.active:
            return self.active[host_id]
        if self.materializer is None:
            raise RuntimeError("HostTable has no materializer hook")
        stack = self.materializer(self.name_of(host_id))
        self.active[host_id] = stack
        self.flags[host_id] |= FLAG_MATERIALIZED
        self._m_materialized.add()
        self._g_active.set(len(self.active))
        self.sim.trace.event("host.materialize", host=self.name_of(host_id))
        return stack

    def demote(self, host_id: int) -> None:
        """Fold a materialized host back into the table: capture its
        registration state into the row, tear the object stack down."""
        stack = self.active.pop(host_id, None)
        if stack is None:
            return
        if self.dematerializer is not None:
            self.dematerializer(self.name_of(host_id), stack)
        self.flags[host_id] &= np.uint8(~FLAG_MATERIALIZED & 0xFF)
        self._m_demoted.add()
        self._g_active.set(len(self.active))
        self.sim.trace.event("host.demote", host=self.name_of(host_id))

    # -- site construction state (materialize/demote round trips) ------
    def set_site_config(self, host_id: int, **cfg) -> None:
        if cfg:
            self._site_cfg[host_id] = cfg

    def site_config(self, host_id: int) -> dict:
        return dict(self._site_cfg.get(host_id, ()))

    def __repr__(self) -> str:
        return (f"HostTable(rows={self._n}, "
                f"registered={self.registered_count}, "
                f"active={len(self.active)})")
