"""Typed option bundles for WAVNet's connect/transfer APIs.

The driver's connect path and the traffic generators (ttcp, netperf,
ApacheBench) grew overlapping keyword knobs — ``allow_relay=``,
``timeout=``, ``fidelity=``, ``cc=``, and now the traversal/migration
controls. :class:`ConnectOptions` and :class:`TransferOptions` collapse
them into two frozen dataclasses accepted everywhere via ``options=``.

The old keywords still work as deprecated aliases: passing one emits a
:class:`DeprecationWarning` and is folded into the options bundle (an
explicit keyword wins over the same field in ``options=``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["UNSET", "ConnectOptions", "TransferOptions"]


class _Unset:
    """Sentinel distinguishing "keyword not passed" from an explicit
    ``None`` (several legacy knobs legitimately accept None)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


UNSET = _Unset()


def _fold_legacy(options, cls, api: str, legacy: dict):
    """Merge deprecated keyword aliases into an options bundle, warning
    once per keyword actually used."""
    base = options if options is not None else cls()
    if not isinstance(base, cls):
        raise TypeError(f"{api}: options= expects {cls.__name__}, "
                        f"got {type(base).__name__}")
    updates = {key: value for key, value in legacy.items() if value is not UNSET}
    for key in updates:
        warnings.warn(
            f"{api}({key}=...) is deprecated; pass "
            f"{api}(options={cls.__name__}({key}=...)) instead",
            DeprecationWarning, stacklevel=4)
    if updates:
        base = replace(base, **updates)
    return base


@dataclass(frozen=True)
class ConnectOptions:
    """How to reach a peer.

    * ``allow_relay`` — fall back to rendezvous relaying when punching
      fails (the extension beyond the paper).
    * ``timeout`` — per-connect hole-punch deadline (None = driver's
      ``punch_timeout``).
    * ``predict_ports`` — aim punches at predicted symmetric-NAT
      allocations (None = driver default, normally on).
    * ``punch_fan`` — width of the predicted-port window (None =
      driver default).
    * ``migrate`` — QUIC-style path migration on rebinds for this
      connection (None = driver default, normally off).
    """

    allow_relay: bool = True
    timeout: Optional[float] = None
    predict_ports: Optional[bool] = None
    punch_fan: Optional[int] = None
    migrate: Optional[bool] = None

    @classmethod
    def coerce(cls, options: "Optional[ConnectOptions]", api: str,
               **legacy) -> "ConnectOptions":
        return _fold_legacy(options, cls, api, legacy)


@dataclass(frozen=True)
class TransferOptions:
    """How to move bulk bytes once connected.

    * ``fidelity`` — ``"packet"`` simulates every frame; ``"fluid"``
      rides the flow-level plane.
    * ``cc`` — named congestion-control algorithm (None = stack default).
    * ``cc_trace`` — optional CcTrace sampling cwnd/rate while the
      transfer runs (netperf only).
    """

    fidelity: str = "packet"
    cc: Optional[str] = None
    cc_trace: Optional[object] = None

    @classmethod
    def coerce(cls, options: "Optional[TransferOptions]", api: str,
               **legacy) -> "TransferOptions":
        return _fold_legacy(options, cls, api, legacy)
