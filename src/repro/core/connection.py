"""Direct host-to-host connection lifecycle (§II.B).

A :class:`WavConnection` goes through::

    PUNCHING --(probe answered)--> ESTABLISHED --(silence)--> DEAD

* **Punching** — both sides, told about each other by their rendezvous
  servers, blast ``WavPunch`` probes at the peer's candidate endpoints
  (public NAT 2-tuple first, private address for same-LAN peers). The
  first probe/ack that arrives fixes the working remote endpoint.
* **Keepalive** — an established connection exchanges the 2-byte
  CONNECT_PULSE every ``pulse_interval`` (paper: 5 s) so NATs "re-count
  the timeout of the existing connections".
* **Liveness** — silence for ``liveness_factor`` pulse intervals marks
  the connection DEAD; the driver tears it down and the WAV-Switch
  forgets its MACs.
"""

from __future__ import annotations

import enum
import zlib
from typing import Optional

from repro.core.assembler import WavPulse
from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.packet import Payload
from repro.overlay.resources import ConnectionInfo
from repro.sim.engine import Event, Interrupt, Timer

__all__ = ["ConnectionState", "WavConnection", "connection_cid"]


def connection_cid(a: str, b: str) -> int:
    """Stable connection ID for the (a, b) tunnel.

    Both ends derive the same 32-bit ID from the unordered name pair, so
    a path-validation frame identifies its connection no matter which
    address it arrives from — the QUIC property that makes migration
    work after a NAT rebind.
    """
    lo, hi = sorted((a, b))
    return zlib.crc32(f"{lo}|{hi}".encode()) & 0xFFFFFFFF


class ConnectionState(enum.Enum):
    PUNCHING = "punching"
    ESTABLISHED = "established"
    DEAD = "dead"


class WavConnection:
    """One direct tunnel between this host and a peer."""

    def __init__(
        self,
        driver,
        peer_name: str,
        peer_conn: Optional[ConnectionInfo] = None,
        pulse_interval: float = 5.0,
        punch_interval: float = 0.2,
        punch_timeout: float = 10.0,
        liveness_factor: float = 4.0,
        predict_ports: bool = True,
        punch_fan: int = 8,
        migrate: bool = False,
    ) -> None:
        self.driver = driver
        self.sim = driver.sim
        self.peer_name = peer_name
        self.peer_conn = peer_conn
        self.pulse_interval = pulse_interval
        self.punch_interval = punch_interval
        self.punch_timeout = punch_timeout
        self.liveness_factor = liveness_factor
        self.predict_ports = predict_ports
        self.punch_fan = punch_fan
        self.migrate_enabled = migrate
        self.cid = connection_cid(driver.name, peer_name)
        self.migrations = 0
        self._path_token: Optional[int] = None

        self.state = ConnectionState.PUNCHING
        self.relayed = False  # rendezvous-relay fallback (symmetric NATs)
        self.remote: Optional[tuple[IPv4Address, int]] = None
        self.established_event: Event = Event(self.sim)
        self.created_at = self.sim.now
        self.established_at: Optional[float] = None
        self.last_heard = self.sim.now
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.pulses_received = 0
        self._punch_proc = None
        self._pulse_timer: Optional[Timer] = None
        self._pulse_cb = self._pulse_fire  # bind once, not per pulse
        self._punch_span = None
        self.taps: Optional[list] = None

    def add_tap(self, tap) -> None:
        """Attach a :class:`~repro.obs.taps.PacketTap` capturing every
        WAVNet payload this tunnel sends or receives."""
        if self.taps is None:
            self.taps = []
        self.taps.append(tap)

    # -- properties -------------------------------------------------------
    @property
    def usable(self) -> bool:
        return self.state is ConnectionState.ESTABLISHED

    def wait_established(self) -> Event:
        return self.established_event

    # -- candidate endpoints --------------------------------------------------
    def candidates(self) -> list[tuple[IPv4Address, int]]:
        """Endpoints worth probing, public first, private for LAN peers.
        While relayed, ``remote`` is the rendezvous endpoint — not a
        punch target — so upgrade punching probes only the peer's own
        candidates.

        Against a symmetric peer whose allocator is predictable
        (``alloc_stride > 0``), a *predicted window* of ports is added:
        the peer's NAT sources its k-th fresh punch allocation from
        ``observed + (off + k) * stride``, where ``off`` counts the
        non-predicted candidates the peer burns allocations on first.
        Both sides use the same candidate-ordering rules, so the window
        each aims at is exactly where the other's probes come out:

        * peer symmetric, we are cone — the peer probes our public
          endpoint first (its allocation #1), so ``off = 0`` and k=1
          lands on it;
        * both symmetric — advertised public endpoints are futile (those
          mappings only admit the STUN server), so each side probes only
          the peer's private address (allocation #1) before its window
          (allocations #2..), giving ``off = 1`` on both sides.
        """
        out: list[tuple[IPv4Address, int]] = []
        if self.remote is not None and not self.relayed:
            out.append(self.remote)
        pc = self.peer_conn
        if pc is None:
            return out
        pub = (pc.public_ip, pc.public_port)
        priv = (pc.private_ip, pc.private_port)
        stride = pc.alloc_stride if self.predict_ports else 0
        if pc.nat_type is NatType.SYMMETRIC and stride > 0:
            self_sym = self.driver.nat_type is NatType.SYMMETRIC
            if self_sym:
                off = 1
                order = (priv,)
            else:
                off = 0
                order = (pub, priv)
            for ep in order:
                if ep not in out:
                    out.append(ep)
            base = pc.observed_port or pc.public_port
            for k in range(1, self.punch_fan + 1):
                port = base + (off + k) * stride
                if port > 65535:
                    break
                ep = (pc.public_ip, port)
                if ep not in out:
                    out.append(ep)
            return out
        for ep in (pub, priv):
            if ep not in out:
                out.append(ep)
        return out

    # -- punching ----------------------------------------------------------------
    def start_punching(self) -> None:
        if self._punch_proc is None or not self._punch_proc.is_alive:
            if self._punch_span is None:
                self._punch_span = self.sim.trace.begin(
                    "punch", host=self.driver.name, peer=self.peer_name)
            self._punch_proc = self.sim.process(self._punch_loop(),
                                                name=f"punch:{self.driver.name}->{self.peer_name}")

    def _punch_loop(self):
        # Also runs for ESTABLISHED+relayed connections: periodic
        # relay->direct upgrade attempts re-punch without tearing the
        # relay path down (an upgrade timeout leaves the relay in place).
        deadline = self.sim.now + self.punch_timeout
        nonce = 0
        try:
            while (self.sim.now < deadline
                   and (self.state is ConnectionState.PUNCHING
                        or (self.state is ConnectionState.ESTABLISHED and self.relayed))):
                for endpoint in self.candidates():
                    self.driver._m_punch_tx.add()
                    self.driver._send_raw(endpoint,
                                          self.driver.assembler.punch(self.driver.name, nonce))
                nonce += 1
                yield self.sim.timeout(self.punch_interval)
        except Interrupt:
            return
        if self.state is ConnectionState.PUNCHING:
            self._fail()
        elif self._punch_span is not None and self.relayed:
            self._punch_span.end(outcome="still_relayed")
            self._punch_span = None

    def _fail(self) -> None:
        self.state = ConnectionState.DEAD
        self.driver._m_punch_failed.add()
        if self._punch_span is not None:
            self._punch_span.end(outcome="timeout")
            self._punch_span = None
        if not self.established_event.triggered:
            self.established_event.fail(TimeoutError(
                f"hole punching to {self.peer_name} failed"))
            self.established_event.defuse()
        self.driver._connection_dead(self, reason="punch_timeout")

    def _establish(self, remote: tuple[IPv4Address, int]) -> None:
        self.last_heard = self.sim.now
        if self.state is ConnectionState.ESTABLISHED:
            if (self.relayed and remote != (self.driver.rendezvous_ip,
                                            self.driver.rendezvous_port)):
                self._upgrade(remote)
            else:
                self.remote = remote
            return
        self.remote = remote
        self.state = ConnectionState.ESTABLISHED
        self.established_at = self.sim.now
        driver = self.driver
        driver._m_established.add()
        driver._m_punch_seconds.observe(self.sim.now - self.created_at)
        if self.relayed:
            driver._m_relayed.add()
        if self._punch_span is not None:
            self._punch_span.end(outcome="established", relayed=self.relayed)
            self._punch_span = None
        self.sim.trace.event("established", host=driver.name,
                             peer=self.peer_name, relayed=self.relayed,
                             remote=f"{remote[0]}:{remote[1]}")
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        if self._punch_proc is not None and self._punch_proc.is_alive:
            self._punch_proc.interrupt("established")
        self._pulse_timer = self.sim.timer(self.pulse_interval, self._pulse_cb)
        driver._connection_established(self)

    def _upgrade(self, remote: tuple[IPv4Address, int]) -> None:
        """Relay->direct upgrade: a punch made it through after the
        relay fallback — move the data path onto the direct endpoint."""
        self.relayed = False
        self.remote = remote
        driver = self.driver
        driver._m_upgraded.add()
        if self._punch_span is not None:
            self._punch_span.end(outcome="upgraded")
            self._punch_span = None
        if self._punch_proc is not None and self._punch_proc.is_alive:
            self._punch_proc.interrupt("upgraded")
        driver._connection_established(self)
        self.sim.trace.event("upgraded", host=driver.name, peer=self.peer_name,
                             remote=f"{remote[0]}:{remote[1]}")

    # -- inbound ---------------------------------------------------------------
    def on_punch(self, src: tuple[IPv4Address, int], nonce: int) -> None:
        self.driver._m_punch_rx.add()
        self.driver._send_raw(src, self.driver.assembler.punch(
            self.driver.name, nonce, ack=True))
        self._establish(src)

    def on_punch_ack(self, src: tuple[IPv4Address, int]) -> None:
        self.driver._m_punch_ack_rx.add()
        self._establish(src)

    def establish_relayed(self) -> None:
        """Fall back to relaying through the rendezvous server (extension
        for NAT pairs that defeat hole punching)."""
        self.relayed = True
        self._establish((self.driver.rendezvous_ip, self.driver.rendezvous_port))

    def on_pulse(self, src: tuple[IPv4Address, int]) -> None:
        self.pulses_received += 1
        self.driver._m_pulse_rx.add()
        if self.taps is not None:
            for tap in self.taps:
                tap.datagram(f"{self.driver.name}->{self.peer_name}", "rx",
                             2, src=f"{src[0]}:{src[1]}", info="WavPulse")
        self.last_heard = self.sim.now

    def on_data(self, size: int) -> None:
        self.frames_received += 1
        self.bytes_received += size
        driver = self.driver
        driver._m_frames_rx.add()
        driver._m_bytes_rx.add(size)
        if self.taps is not None:
            for tap in self.taps:
                tap.datagram(f"{driver.name}->{self.peer_name}", "rx",
                             size, info="WavData")
        self.last_heard = self.sim.now

    # -- outbound -------------------------------------------------------------
    def send(self, payload: Payload) -> None:
        if not self.usable:
            if not isinstance(payload.data, WavPulse):
                self.driver._m_dropped_outage.add()
            return
        self.frames_sent += 1
        self.bytes_sent += payload.size
        driver = self.driver
        if isinstance(payload.data, WavPulse):
            driver._m_pulse_tx.add()
        else:
            driver._m_frames_tx.add()
            driver._m_bytes_tx.add(payload.size)
        if self.taps is not None:
            for tap in self.taps:
                tap.datagram(f"{driver.name}->{self.peer_name}", "tx",
                             payload.size, info=type(payload.data).__name__)
        if self.relayed:
            driver._send_relayed(self.peer_name, payload)
        else:
            driver._send_raw(self.remote, payload)

    # -- keepalive / liveness ------------------------------------------------
    def _pulse_fire(self) -> None:
        """One keepalive tick: a cancelable timer chain instead of a
        long-lived process — no generator frame, no Timeout/Event churn."""
        self._pulse_timer = None
        if not self.usable:
            return
        silent_for = self.sim.now - self.last_heard
        if silent_for > self.liveness_factor * self.pulse_interval:
            self.state = ConnectionState.DEAD
            self.driver._connection_dead(self, reason="liveness")
            return
        if (self.migrate_enabled and not self.relayed
                and silent_for > self.driver.migrate_threshold * self.pulse_interval):
            # Suspicious silence on a direct path: the NAT may have
            # rebound under us. Validate/repair the path by migration
            # well before the liveness deadline declares the peer dead.
            self.driver._start_migration(self)
        self.send(self.driver.assembler.pulse())
        self._pulse_timer = self.sim.timer(self.pulse_interval, self._pulse_cb)

    def close(self) -> None:
        self.state = ConnectionState.DEAD
        if self._punch_span is not None:
            self._punch_span.end(outcome="closed")
            self._punch_span = None
        if self._pulse_timer is not None:
            self._pulse_timer.cancel()
            self._pulse_timer = None
        proc = self._punch_proc
        if proc is not None and proc.is_alive:
            proc.interrupt("closed")
            # The interrupt may land before the process's first step
            # (generator never entered its try block); nobody waits on
            # this helper, so a resulting failure must not escape.
            proc.defuse()
        self.driver._connection_dead(self, reason="closed")

    def __repr__(self) -> str:
        return (f"WavConnection({self.driver.name}->{self.peer_name}, "
                f"{self.state.value}, remote={self.remote})")
