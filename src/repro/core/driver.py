"""WavnetDriver: the per-host WAVNet entry point.

Downloading "the WAVNet driver, which is already configured with
well-known rendezvous server(s)" (§II.B) corresponds to constructing a
:class:`WavnetDriver` and running :meth:`start`. The driver owns:

* one UDP socket (``wav_port``) carrying *everything* — STUN probes,
  rendezvous RPC, hole-punch probes, CONNECT_PULSE, and tunneled frames —
  so one NAT mapping covers control and data;
* the software bridge, tap device, WAV-Switch, and Packet Assembler;
* a ``wav0`` virtual interface giving the host itself an address on the
  virtual LAN;
* the connection table (peer name -> :class:`WavConnection`).

After :meth:`start`, the host appears on a virtual Ethernet segment
shared with every peer it connects to; VMs are plugged into the same
segment via :meth:`attach_port` (used by the hypervisor's vif plumbing).
"""

from __future__ import annotations

from typing import Optional

from repro.core.assembler import (PacketAssembler, WavData, WavPathChallenge,
                                  WavPathResponse, WavPulse, WavPunch,
                                  WavPunchAck, WavRelay)
from repro.core.connection import ConnectionState, WavConnection
from repro.core.options import UNSET, ConnectOptions, TransferOptions
from repro.core.switch import WavSwitch
from repro.core.tap import TapDevice
from repro.nat.types import NatType
from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.l2 import Bridge, Port, patch
from repro.net.packet import EthernetFrame, Payload
from repro.net.stack import Host, Interface
from repro.overlay.rendezvous import RENDEZVOUS_PORT, _ConnectBody, _PunchNotice, _RegisterBody
from repro.overlay.resources import ConnectionInfo, ResourceRecord
from repro.overlay.rpc import RpcEndpoint, RpcError, RpcTimeout
from repro.sim.engine import Event, Interrupt
from repro.sim.lifecycle import Component
from repro.stun.client import StunClient
from repro.stun.messages import StunResponse

__all__ = ["WavnetDriver", "WAV_PORT"]

WAV_PORT = 8777


class WavnetDriver(Component):
    """WAVNet on one host.

    As a lifecycle :class:`~repro.sim.lifecycle.Component` (kind
    ``driver``): ``stop``/``crash`` close every tunnel, halt the
    keepalive/receive loops, close the socket and take the tap down;
    ``restore`` rebinds, brings the tap back up and re-runs
    :meth:`start` (STUN, registration, keepalive) from scratch — peers
    notice the death through CONNECT_PULSE silence and their repair
    supervision re-punches to us.

    The driver also *self-heals*: connections that die of keepalive
    silence are re-punched with exponential backoff plus jitter,
    relayed connections periodically attempt a relay->direct upgrade,
    and registration fails over to a backup rendezvous server when the
    primary stops answering keepalives.
    """

    def __init__(
        self,
        host: Host,
        virtual_ip: IPv4Address | str,
        virtual_network: IPv4Network | str = "10.99.0.0/16",
        rendezvous_ip: IPv4Address | str | None = None,
        rendezvous_port: int = RENDEZVOUS_PORT,
        stun_server_ip: IPv4Address | str | None = None,
        wav_port: int = WAV_PORT,
        pulse_interval: float = 5.0,
        punch_timeout: float = 10.0,
        keepalive_interval: float = 20.0,
        attrs: Optional[dict] = None,
        name: Optional[str] = None,
        backup_rendezvous_ips: Optional[list] = None,
        auto_repair: bool = True,
        repair_backoff_base: float = 1.0,
        repair_backoff_cap: float = 30.0,
        repair_jitter: float = 0.3,
        upgrade_interval: float = 30.0,
        retry_concurrency: Optional[int] = None,
        predict_ports: bool = True,
        punch_fan: int = 8,
        migration: bool = False,
        migrate_threshold: float = 1.5,
        migrate_timeout: float = 2.0,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.name = name or host.name
        Component.__init__(self, host.sim, "driver", self.name)
        self.virtual_ip = IPv4Address(virtual_ip)
        self.virtual_network = (IPv4Network(virtual_network)
                                if isinstance(virtual_network, str) else virtual_network)
        self.rendezvous_ip = IPv4Address(rendezvous_ip) if rendezvous_ip else None
        self.rendezvous_port = rendezvous_port
        self.rendezvous_candidates: list[IPv4Address] = []
        if self.rendezvous_ip is not None:
            self.rendezvous_candidates.append(self.rendezvous_ip)
        for ip in backup_rendezvous_ips or []:
            ip = IPv4Address(ip)
            if ip not in self.rendezvous_candidates:
                self.rendezvous_candidates.append(ip)
        self.stun_server_ip = IPv4Address(stun_server_ip) if stun_server_ip else None
        self.pulse_interval = pulse_interval
        self.punch_timeout = punch_timeout
        self.keepalive_interval = keepalive_interval
        self.auto_repair = auto_repair
        self.repair_backoff_base = repair_backoff_base
        self.repair_backoff_cap = repair_backoff_cap
        self.repair_jitter = repair_jitter
        self.upgrade_interval = upgrade_interval
        # Traversal/migration defaults (per-connect ConnectOptions override).
        # Migration is opt-in: enabling it changes repair dynamics, and
        # scenarios that measured the classic re-punch loop must keep
        # measuring it unless they ask for migration.
        self.predict_ports = predict_ports
        self.punch_fan = punch_fan
        self.migration = migration
        self.migrate_threshold = migrate_threshold
        self.migrate_timeout = migrate_timeout
        self.attrs = dict(attrs or {"cpu_ghz": 2.0, "mem_mb": 2048.0})

        # --- data-plane plumbing (Fig 2 / Fig 5) ---
        self.bridge = Bridge(self.sim, name=f"{self.name}.br0")
        self.tap = TapDevice(self.sim, name=f"{self.name}.tap0")
        patch(self.tap.port, self.bridge.new_port(f"{self.name}.br0.tap"))
        self.tap.capture_handler = self._on_captured_frame
        self.assembler = PacketAssembler()
        self.switch = WavSwitch(self.name)

        # Host's own presence on the virtual LAN.
        self.wav_iface: Interface = host.stack.add_interface("wav0", host.mac_mint())
        self.wav_iface.configure(self.virtual_ip, self.virtual_network)
        host.stack.connected_route_for(self.wav_iface)
        patch(self.wav_iface.port, self.bridge.new_port(f"{self.name}.br0.wav0"))

        # --- observability (dotted paths under "<host>.driver.*") ---
        self.metrics = self.sim.metrics.scope(f"{self.name}.driver")
        m = self.metrics
        self._m_frames_tx = m.counter("frames.tx")
        self._m_frames_rx = m.counter("frames.rx")
        self._m_bytes_tx = m.counter("bytes.tx")
        self._m_bytes_rx = m.counter("bytes.rx")
        self._m_pulse_tx = m.counter("pulse.tx")
        self._m_pulse_rx = m.counter("pulse.rx")
        self._m_punch_tx = m.counter("punch.tx")
        self._m_punch_rx = m.counter("punch.rx")
        self._m_punch_ack_rx = m.counter("punch.ack_rx")
        self._m_relay_tx = m.counter("relay.tx")
        self._m_relay_rx = m.counter("relay.rx")
        self._m_established = m.counter("connect.established")
        self._m_relayed = m.counter("connect.relayed")
        self._m_upgraded = m.counter("connect.upgraded")
        self._m_punch_failed = m.counter("connect.punch_failed")
        self._m_punch_seconds = m.histogram("connect.punch_seconds")
        # --- recovery observability ---
        self._m_conn_lost = m.counter("repair.lost")
        self._m_repair_attempts = m.counter("repair.attempts")
        self._m_repair_success = m.counter("repair.success")
        self._m_repair_seconds = m.histogram("repair.seconds")
        self._m_endpoint_moves = m.counter("repair.endpoint_moves")
        self._m_rvz_failovers = m.counter("rvz.failovers")
        self._m_rvz_failover_seconds = m.histogram("rvz.failover_seconds")
        self._m_dropped_outage = m.counter("frames.dropped_outage")
        # --- path migration observability ---
        self._m_migrate_attempts = m.counter("migrate.attempts")
        self._m_migrate_success = m.counter("migrate.success")
        self._m_migrate_failed = m.counter("migrate.failed")
        self._m_migrate_seconds = m.histogram("migrate.seconds")
        self._m_peer_moved = m.counter("migrate.peer_moved")

        # --- control plane ---
        self._wav_port = wav_port
        self.sock = host.udp.bind(wav_port)
        self.rpc = RpcEndpoint(host.stack, self.sock, name=f"wav:{self.name}",
                               own_loop=False, retry_concurrency=retry_concurrency)
        self.rpc.register("wav.punch", self._on_punch_notice)
        self.connections: dict[str, WavConnection] = {}
        self._by_endpoint: dict[tuple[IPv4Address, int], WavConnection] = {}
        # Established connections by stable connection ID: path-validation
        # frames demux here, independent of the sending address.
        self._by_cid: dict[int, WavConnection] = {}
        self._migrating: set[str] = set()
        self._migrate_token = 0
        self.nat_type: Optional[NatType] = None
        self.alloc_stride = 0  # STUN-inferred symmetric allocation stride
        self.public_endpoint: Optional[tuple[IPv4Address, int]] = None
        self.started = Event(self.sim)
        from repro.sim.queues import Store
        self._stun_inbox = Store(self.sim)
        self._stun_client: Optional[StunClient] = None
        self._rx_proc = self.sim.process(self._rx_loop(), name=f"wav-rx:{self.name}")
        self._keepalive_proc = None
        self._upgrade_proc = None
        # --- repair supervision (self-healing) ---
        self._repair_rng = self.sim.rng.stream(f"driver.repair.{self.name}")
        self._repairing: dict[str, object] = {}  # peer -> repair Process
        self._outage_start: dict[str, float] = {}
        # Peers whose tunnel ran relayed: repair may fall back to relay
        # for these; for direct-capable peers a punch timeout means the
        # peer is still gone (relaying would fake a live tunnel).
        self._relay_peers: set[str] = set()

    @property
    def stopped(self) -> bool:
        """Backward-compatible view of the lifecycle state."""
        return not self.running

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Process: STUN discovery, rendezvous registration, keepalive."""
        if self.stun_server_ip is not None:
            stun = StunClient(self.host.stack, self.sock, self.stun_server_ip,
                              inbox=self._stun_inbox)
            self._stun_client = stun
            probe = yield from stun.classify()
            self.nat_type = probe.nat_type
            self.alloc_stride = probe.alloc_stride
            if probe.mapped_ip is not None:
                self.public_endpoint = probe.public_endpoint
        if self.nat_type is None:
            self.nat_type = NatType.OPEN
        if self.public_endpoint is None:
            self.public_endpoint = (self.host.stack.ips[0], self.sock.port)
        if self.rendezvous_ip is not None:
            yield from self._register_somewhere()
            self._keepalive_proc = self.sim.process(
                self._rendezvous_keepalive(), name=f"wav-ka:{self.name}")
            if self.upgrade_interval > 0:
                self._upgrade_proc = self.sim.process(
                    self._upgrade_loop(), name=f"wav-upgrade:{self.name}")
        if not self.started.triggered:
            self.started.succeed(self)
        return self

    def _register_somewhere(self):
        """Process: register with the first answering rendezvous
        candidate (primary first, then backups)."""
        last_exc: Optional[Exception] = None
        for ip in self.rendezvous_candidates:
            self.rendezvous_ip = ip  # connection_info() embeds it
            try:
                yield from self.rpc.call(
                    ip, self.rendezvous_port, "rvz.register",
                    _RegisterBody(self.name, self.connection_info(), dict(self.attrs)),
                    timeout=5.0)
                return True
            except (RpcTimeout, RpcError) as exc:
                last_exc = exc
        self.rendezvous_ip = self.rendezvous_candidates[0]
        raise last_exc

    def connection_info(self) -> ConnectionInfo:
        pub_ip, pub_port = self.public_endpoint
        return ConnectionInfo(
            rendezvous_ip=self.rendezvous_ip or IPv4Address(0),
            rendezvous_port=self.rendezvous_port,
            public_ip=pub_ip,
            public_port=pub_port,
            private_ip=self.host.stack.ips[0],
            private_port=self.sock.port,
            nat_type=self.nat_type or NatType.OPEN,
            alloc_stride=self.alloc_stride,
        )

    def _rendezvous_keepalive(self):
        failures = 0
        try:
            while True:
                yield self.sim.timeout(self.keepalive_interval)
                try:
                    yield from self.rpc.call(
                        self.rendezvous_ip, self.rendezvous_port, "rvz.keepalive",
                        (self.name, dict(self.attrs)), timeout=5.0, retries=2)
                    failures = 0
                except (RpcTimeout, RpcError):
                    failures += 1
                    if failures >= 2 and len(self.rendezvous_candidates) > 1:
                        ok = yield from self._failover()
                        if ok:
                            failures = 0
        except Interrupt:
            return

    def _failover(self):
        """Process: the current rendezvous went silent — re-register with
        a surviving candidate. Returns True on success."""
        t0 = self.sim.now
        old = self.rendezvous_ip
        others = [ip for ip in self.rendezvous_candidates if ip != old] or [old]
        for ip in others:
            self.rendezvous_ip = ip
            try:
                yield from self.rpc.call(
                    ip, self.rendezvous_port, "rvz.register",
                    _RegisterBody(self.name, self.connection_info(), dict(self.attrs)),
                    timeout=5.0, retries=2)
            except (RpcTimeout, RpcError):
                continue
            self._m_rvz_failovers.add()
            self._m_rvz_failover_seconds.observe(self.sim.now - t0)
            self.sim.trace.event("rvz.failover", host=self.name,
                                 old=str(old), new=str(ip),
                                 seconds=round(self.sim.now - t0, 6))
            return True
        self.rendezvous_ip = old
        return False

    def _refresh_endpoint(self):
        """Process: re-discover this socket's public NAT mapping — it
        moves when the NAT reboots or the binding expires — and if it
        did, re-register so peers punch toward the fresh endpoint."""
        if self._stun_client is None or not self.running:
            return False
        mapped = yield from self._stun_client.discover_endpoint()
        if mapped is None or mapped == self.public_endpoint:
            return False
        old = self.public_endpoint
        self.public_endpoint = mapped
        self._m_endpoint_moves.add()
        self.sim.trace.event("endpoint.moved", host=self.name,
                             old=f"{old[0]}:{old[1]}",
                             new=f"{mapped[0]}:{mapped[1]}")
        if self.rendezvous_ip is not None:
            try:
                yield from self.rpc.call(
                    self.rendezvous_ip, self.rendezvous_port, "rvz.register",
                    _RegisterBody(self.name, self.connection_info(),
                                  dict(self.attrs)),
                    timeout=5.0)
            except (RpcTimeout, RpcError):
                pass
        return True

    def _upgrade_loop(self):
        """Process: periodically re-punch relayed connections, hoping to
        upgrade them to a direct path (NAT state changes over time)."""
        try:
            while True:
                yield self.sim.timeout(self.upgrade_interval)
                for conn in list(self.connections.values()):
                    if conn.usable and conn.relayed and conn.peer_conn is not None:
                        conn.start_punching()
        except Interrupt:
            return

    # -- lifecycle hooks (Component) -----------------------------------
    def _on_stop(self) -> None:
        self.sim.trace.event("driver.stop", host=self.name,
                             connections=len(self.connections))
        for conn in list(self.connections.values()):
            conn.close()
        self._cancel_repairs()
        for proc in (self._keepalive_proc, self._upgrade_proc, self._rx_proc):
            if proc is not None and proc.is_alive:
                proc.interrupt("stopped")
                proc.defuse()
        self._keepalive_proc = self._upgrade_proc = self._rx_proc = None
        self._stun_client = None  # bound to the socket we are closing
        self.sock.close()
        self.connections.clear()
        self._by_endpoint.clear()
        self._by_cid.clear()
        self._migrating.clear()
        self.tap.up = False

    def _on_restore(self) -> None:
        self.sock = self.host.udp.bind(self._wav_port)
        self.rpc.rebind(self.sock)  # own_loop=False: just reattach
        self._rx_proc = self.sim.process(self._rx_loop(), name=f"wav-rx:{self.name}")
        self.tap.up = True
        self.started = Event(self.sim)
        self.sim.process(self.start(), name=f"wav-restart:{self.name}")

    def _cancel_repairs(self) -> None:
        for proc in list(self._repairing.values()):
            if proc.is_alive:
                proc.interrupt("stopped")
                proc.defuse()
        self._repairing.clear()
        self._outage_start.clear()

    # ------------------------------------------------------------------
    # Resource discovery and connection setup (Fig 3)
    # ------------------------------------------------------------------
    def query_resources(self, limit: int = 8, **attrs):
        """Process: route a resource query through the rendezvous layer."""
        if self.rendezvous_ip is None:
            raise RuntimeError("driver has no rendezvous server")
        query = dict(self.attrs)
        query.update(attrs)
        records = yield from self.rpc.call(
            self.rendezvous_ip, self.rendezvous_port, "rvz.query",
            (query, limit), timeout=10.0)
        return [r for r in records if r.host_name != self.name]

    def connect(self, record: ResourceRecord,
                options: Optional[ConnectOptions] = None,
                timeout=UNSET, allow_relay=UNSET):
        """Process: broker + punch a direct connection to ``record``'s host.
        Behaviour is controlled by a :class:`ConnectOptions` bundle:
        ``allow_relay`` (an extension beyond the paper) lets peers whose
        NATs defeat punching fall back to relaying through the rendezvous
        server; ``timeout`` overrides the punch deadline; the traversal
        and migration knobs override the driver defaults. ``timeout=`` /
        ``allow_relay=`` keywords are deprecated aliases. Returns the
        established WavConnection."""
        opts = ConnectOptions.coerce(options, "connect",
                                     timeout=timeout, allow_relay=allow_relay)
        existing = self.connections.get(record.host_name)
        if existing is not None and existing.usable:
            return existing
        notice = yield from self.rpc.call(
            self.rendezvous_ip, self.rendezvous_port, "rvz.connect",
            _ConnectBody(self.name, self.connection_info(), record.host_name,
                         record.conn.rendezvous_ip, record.conn.rendezvous_port),
            timeout=10.0)
        conn = self._ensure_connection(notice.peer_name, notice.peer_conn, opts)
        conn.start_punching()
        try:
            result = yield conn.wait_established()
        except TimeoutError:
            if not opts.allow_relay or self.rendezvous_ip is None:
                raise
            conn = self._ensure_connection(notice.peer_name, notice.peer_conn, opts)
            conn.establish_relayed()
            # The first relayed pulse converts the peer's side too.
            conn.send(self.assembler.pulse())
            result = conn
        return result

    def connect_by_name(self, peer_name: str,
                        options: Optional[ConnectOptions] = None,
                        allow_relay=UNSET, **attrs):
        """Process: query then connect to the named peer."""
        opts = ConnectOptions.coerce(options, "connect_by_name",
                                     allow_relay=allow_relay)
        records = yield from self.query_resources(limit=64, **attrs)
        for record in records:
            if record.host_name == peer_name:
                conn = yield from self.connect(record, options=opts)
                return conn
        raise RpcError(f"host {peer_name!r} not found in resource directory")

    def _ensure_connection(self, peer_name: str,
                           peer_conn: Optional[ConnectionInfo],
                           opts: Optional[ConnectOptions] = None) -> WavConnection:
        conn = self.connections.get(peer_name)
        if conn is None or conn.state is ConnectionState.DEAD:
            opts = opts or ConnectOptions()
            predict = (self.predict_ports if opts.predict_ports is None
                       else opts.predict_ports)
            fan = self.punch_fan if opts.punch_fan is None else opts.punch_fan
            migrate = self.migration if opts.migrate is None else opts.migrate
            conn = WavConnection(self, peer_name, peer_conn,
                                 pulse_interval=self.pulse_interval,
                                 punch_timeout=opts.timeout or self.punch_timeout,
                                 predict_ports=predict, punch_fan=fan,
                                 migrate=migrate)
            self.connections[peer_name] = conn
        elif peer_conn is not None and conn.peer_conn is None:
            conn.peer_conn = peer_conn
        return conn

    def _on_punch_notice(self, notice: _PunchNotice, _src_ip, _src_port):
        """Rendezvous says: peer is about to punch — punch back (step 3/4)."""
        conn = self._ensure_connection(notice.peer_name, notice.peer_conn)
        conn.start_punching()
        return None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def attach_port(self, port: Port, label: str = "vif") -> None:
        """Plug an external L2 port (a VM's vif) into the bridge."""
        patch(port, self.bridge.new_port(f"{self.name}.br0.{label}"))

    def open_transfer(self, dst_ip, nbytes: int,
                      options: Optional[TransferOptions] = None,
                      fidelity=UNSET, cc=UNSET, **kwargs):
        """Process: one bulk transfer to a virtual IP, at either
        fidelity, behind one API. ``TransferOptions.fidelity="packet"``
        runs a real ttcp over the tunnel (every frame simulated);
        ``"fluid"`` rides the flow-level plane (requires a FluidNetwork
        with a registered route for this host). ``cc`` names a
        registered congestion-control algorithm for the transfer
        (``None`` = host stack default). ``fidelity=`` / ``cc=``
        keywords are deprecated aliases. Returns the app-level
        TtcpResult."""
        from repro.apps.ttcp import ttcp_transfer

        opts = TransferOptions.coerce(options, "open_transfer",
                                      fidelity=fidelity, cc=cc)
        result = yield from ttcp_transfer(self.host, dst_ip, nbytes,
                                          options=opts, **kwargs)
        return result

    def _notify_fluid_conduit(self, peer_name: str, up: bool) -> None:
        """Tell the fluid plane (if any) that the WAV tunnel between
        this driver and ``peer_name`` changed state, so fluid flows
        riding it stall/resume with the tunnel."""
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            fluid.set_conduit((self.name, peer_name), up)

    def _on_captured_frame(self, frame: EthernetFrame) -> None:
        """Frame left the bridge through the tap: tunnel it."""
        sent = False
        for conn in self.switch.select(frame, self.connections.values()):
            conn.send(self.assembler.encapsulate(frame))
            sent = True
        if not sent:
            # No usable tunnel toward this destination — a frame lost
            # during an outage (or before the first connect).
            self._m_dropped_outage.add()

    def _send_raw(self, endpoint: tuple[IPv4Address, int], payload: Payload) -> None:
        self.sock.sendto(endpoint[0], endpoint[1], payload)

    def _send_relayed(self, peer_name: str, payload: Payload,
                      via: Optional[tuple[IPv4Address, int]] = None) -> None:
        """Relay through a rendezvous server — ours by default, or
        ``via`` (e.g. the *peer's* rendezvous, which is the one that
        knows the peer's reach endpoint in multi-server deployments)."""
        self._m_relay_tx.add()
        wrapped = WavRelay(self.name, peer_name, payload.data)
        dst = via or (self.rendezvous_ip, self.rendezvous_port)
        self.sock.sendto(dst[0], dst[1],
                         Payload(wrapped.size, data=wrapped, kind="wav"))

    def _rx_loop(self):
        try:
            yield from self._rx_loop_body()
        except Interrupt:
            return

    def _rx_loop_body(self):
        while True:
            payload, src_ip, src_port = yield self.sock.recvfrom()
            src = (src_ip, src_port)
            body = payload.data
            if isinstance(body, WavData):
                conn = self._by_endpoint.get(src)
                if conn is None:
                    continue  # tunnel data from an unknown endpoint
                conn.on_data(payload.size)
                frame = self.assembler.decapsulate(payload)
                self.switch.learn(frame.src, conn)
                self.tap.inject(frame)
            elif isinstance(body, WavPulse):
                conn = self._by_endpoint.get(src)
                if conn is not None:
                    conn.on_pulse(src)
            elif isinstance(body, WavPunch):
                conn = self._ensure_connection(body.sender, None)
                conn.on_punch(src, body.nonce)
            elif isinstance(body, WavPunchAck):
                conn = self.connections.get(body.sender)
                if conn is not None:
                    conn.on_punch_ack(src)
            elif isinstance(body, WavPathChallenge):
                self._on_path_challenge(body, src)
            elif isinstance(body, WavPathResponse):
                self._on_path_response(body)
            elif isinstance(body, WavRelay):
                self._m_relay_rx.add()
                inner = body.inner
                # Path-validation frames ride the relay for guaranteed
                # delivery during migration; they must not flip the
                # connection into relayed mode.
                if isinstance(inner, WavPathChallenge):
                    self._on_path_challenge(inner, src)
                    continue
                if isinstance(inner, WavPathResponse):
                    self._on_path_response(inner)
                    continue
                conn = self._ensure_connection(body.sender, None)
                if not conn.usable:
                    conn.establish_relayed()
                if isinstance(inner, WavData):
                    conn.on_data(body.size)
                    self.switch.learn(inner.frame.src, conn)
                    self.tap.inject(inner.frame)
                elif isinstance(inner, WavPulse):
                    conn.on_pulse(src)
            elif isinstance(body, StunResponse):
                self._stun_inbox.try_put((payload, src_ip, src_port))
            else:
                self.rpc.handle_datagram(payload, src_ip, src_port)

    # -- connection table callbacks -------------------------------------------
    def _connection_established(self, conn: WavConnection) -> None:
        if conn.relayed:  # relayed conns demux by sender name instead
            self._relay_peers.add(conn.peer_name)
        else:
            self._relay_peers.discard(conn.peer_name)
            self._by_endpoint[conn.remote] = conn
        self._by_cid[conn.cid] = conn
        self._notify_fluid_conduit(conn.peer_name, up=True)

    def _connection_dead(self, conn: WavConnection, reason: str = "closed") -> None:
        self.switch.forget_connection(conn)
        if conn.remote is not None and self._by_endpoint.get(conn.remote) is conn:
            del self._by_endpoint[conn.remote]
        if self._by_cid.get(conn.cid) is conn:
            del self._by_cid[conn.cid]
        if self.connections.get(conn.peer_name) is conn:
            del self.connections[conn.peer_name]
        self._notify_fluid_conduit(conn.peer_name, up=False)
        if reason == "liveness":
            # Keepalive silence: the peer (or the path) died under us.
            # Punch-timeout deaths are handled by connect()'s relay
            # fallback, and closed means we meant it — only liveness
            # deaths get repair supervision.
            self._m_conn_lost.add()
            self.sim.trace.event("conn.lost", host=self.name,
                                 peer=conn.peer_name, reason=reason)
            if self.auto_repair and self.running and self.rendezvous_ip is not None:
                self._schedule_repair(conn.peer_name)

    # -- repair supervision (self-healing) ------------------------------
    def _schedule_repair(self, peer_name: str) -> None:
        if peer_name in self._repairing:
            return
        self._outage_start.setdefault(peer_name, self.sim.now)
        self._repairing[peer_name] = self.sim.process(
            self._repair(peer_name), name=f"wav-repair:{self.name}->{peer_name}")

    def _repair(self, peer_name: str):
        """Process: re-punch a lost connection with exponential backoff
        plus deterministic jitter (own RNG stream, so repair randomness
        never perturbs other draws)."""
        attempts = 0
        try:
            while self.running:
                delay = min(self.repair_backoff_cap,
                            self.repair_backoff_base * (2.0 ** attempts))
                delay *= 1.0 + self.repair_jitter * float(self._repair_rng.random())
                yield self.sim.timeout(delay)
                if not self.running:
                    return
                conn = self.connections.get(peer_name)
                if conn is None or not conn.usable:
                    attempts += 1
                    self._m_repair_attempts.add()
                    try:
                        yield from self.connect_by_name(
                            peer_name, allow_relay=peer_name in self._relay_peers)
                    except (RpcTimeout, RpcError, TimeoutError):
                        # The punch may have failed because our own NAT
                        # mapping moved (reboot, expiry): peers were
                        # aiming at a dead endpoint. Re-discover and
                        # re-register before the next attempt.
                        yield from self._refresh_endpoint()
                        continue  # back off further and retry
                outage = self.sim.now - self._outage_start.pop(peer_name, self.sim.now)
                self._m_repair_success.add()
                self._m_repair_seconds.observe(outage)
                self.sim.trace.event("conn.repaired", host=self.name,
                                     peer=peer_name, attempts=attempts,
                                     seconds=round(outage, 6))
                return
        except Interrupt:
            return
        finally:
            self._repairing.pop(peer_name, None)

    # -- path migration (QUIC-style, §future-work) ----------------------
    def _start_migration(self, conn: WavConnection) -> None:
        """Kick off path validation toward ``conn``'s peer (idempotent
        while one is in flight)."""
        if conn.peer_name in self._migrating or not self.running:
            return
        self._migrating.add(conn.peer_name)
        self.sim.process(self._migrate(conn),
                         name=f"wav-migrate:{self.name}->{conn.peer_name}")

    def _migrate(self, conn: WavConnection):
        """Process: re-discover our public endpoint, then challenge the
        peer on the stable connection ID until the path validates.

        The challenge travels both direct (its very transmission opens
        our fresh NAT mapping toward the peer) and relayed through the
        peer's rendezvous (guaranteed delivery — the peer cannot receive
        direct traffic from our new mapping until it has sent to it).
        On validation both sides have rebound without re-punching; on
        timeout we leave the connection to the classic liveness-death →
        re-punch repair loop.
        """
        peer = conn.peer_name
        t0 = self.sim.now
        self._m_migrate_attempts.add()
        self.sim.trace.event("conn.migrate_start", host=self.name, peer=peer)
        try:
            # Our mapping may have moved (NAT reboot) — rediscover and
            # re-register so relayed frames reach us at the new mapping.
            yield from self._refresh_endpoint()
            if not self.running or not conn.usable or conn.relayed:
                return
            self._migrate_token += 1
            token = self._migrate_token
            conn._path_token = token
            body = WavPathChallenge(self.name, conn.cid, token,
                                    self.public_endpoint[0],
                                    self.public_endpoint[1])
            payload = Payload(body.size, data=body, kind="wav")
            via = None
            if conn.peer_conn is not None and conn.peer_conn.rendezvous_ip.value:
                via = (conn.peer_conn.rendezvous_ip,
                       conn.peer_conn.rendezvous_port)
            deadline = self.sim.now + self.migrate_timeout
            while (self.sim.now < deadline and conn._path_token == token
                   and conn.usable):
                if conn.remote is not None:
                    self._send_raw(conn.remote, payload)
                if via is not None or self.rendezvous_ip is not None:
                    self._send_relayed(peer, payload, via=via)
                yield self.sim.timeout(0.25)
            if conn._path_token == token:
                conn._path_token = None
                self._m_migrate_failed.add()
                self.sim.trace.event("conn.migrate_failed", host=self.name,
                                     peer=peer)
                return
            self._m_migrate_success.add()
            self._m_migrate_seconds.observe(self.sim.now - t0)
            self.sim.trace.event("conn.migrated", host=self.name, peer=peer,
                                 seconds=round(self.sim.now - t0, 6))
        except Interrupt:
            return
        finally:
            self._migrating.discard(peer)

    def _on_path_challenge(self, body: WavPathChallenge, src) -> None:
        """Peer validates its (possibly new) path: adopt the claimed
        endpoint, echo the token both direct and relayed."""
        conn = self._by_cid.get(body.cid)
        if conn is None or conn.peer_name != body.sender or not conn.usable:
            return
        if conn.relayed:
            return  # relayed data path has no direct path to migrate
        new_remote = (body.new_ip, body.new_port)
        if conn.remote != new_remote:
            if self._by_endpoint.get(conn.remote) is conn:
                del self._by_endpoint[conn.remote]
            conn.remote = new_remote
            self._by_endpoint[new_remote] = conn
            self._m_peer_moved.add()
            self.sim.trace.event("conn.peer_moved", host=self.name,
                                 peer=conn.peer_name,
                                 remote=f"{new_remote[0]}:{new_remote[1]}")
        conn.last_heard = self.sim.now
        resp = WavPathResponse(self.name, body.cid, body.token)
        payload = Payload(resp.size, data=resp, kind="wav")
        # Direct reply doubles as the outbound traffic that opens our own
        # NAT filter toward the peer's new endpoint.
        self._send_raw(new_remote, payload)
        via = None
        if conn.peer_conn is not None and conn.peer_conn.rendezvous_ip.value:
            via = (conn.peer_conn.rendezvous_ip, conn.peer_conn.rendezvous_port)
        if via is not None or self.rendezvous_ip is not None:
            self._send_relayed(conn.peer_name, payload, via=via)

    def _on_path_response(self, body: WavPathResponse) -> None:
        conn = self._by_cid.get(body.cid)
        if conn is None or conn.peer_name != body.sender:
            return
        if conn._path_token == body.token:
            conn._path_token = None
            conn.migrations += 1
            conn.last_heard = self.sim.now

    # -- lazy materialization support -----------------------------------
    def export_endpoint_state(self) -> dict:
        """Snapshot the control-plane facts worth folding back into a
        :class:`~repro.core.hoststate.HostTable` row when this host is
        demoted: everything here is re-derivable through the normal
        protocols (STUN, registration) on re-materialization, but
        keeping it lets the directory keep answering queries about the
        endpoint while it has no object stack."""
        pub = self.public_endpoint or (self.host.stack.ips[0], self.sock.port)
        return {
            "nat_type": (self.nat_type or NatType.OPEN).value,
            "public_ip": str(pub[0]),
            "public_port": int(pub[1]),
            "virtual_ip": str(self.virtual_ip),
            "attrs": dict(self.attrs),
            "relay_peers": sorted(self._relay_peers),
        }

    # -- distance reporting (feeds the grouping strategy) ---------------------
    def report_latencies(self, rtts: dict[str, float]):
        """Process: report measured RTTs to the rendezvous distance locator."""
        result = yield from self.rpc.call(
            self.rendezvous_ip, self.rendezvous_port, "rvz.latency_report",
            (self.name, dict(rtts)), timeout=5.0)
        return result

    def __repr__(self) -> str:
        return f"WavnetDriver({self.name}, vip={self.virtual_ip}, conns={len(self.connections)})"
