"""Packet Assembler: WAVNet encapsulation formats.

The PA "categorizes communication packets and encapsulates them with
proper identifiers" (§II.A). Wire formats (sizes are what count in the
simulation):

* ``WavData``   — 4-byte WAVNet header + the tunneled Ethernet frame.
* ``WavPulse``  — the 2-byte CONNECT_PULSE keepalive (§II.B).
* ``WavPunch`` / ``WavPunchAck`` — hole-punching probes.

Everything travels as the payload of a UDP datagram between host public
endpoints, so the per-packet overhead of the virtual layer is
``4 (WAVNet) + 8 (UDP) + 20 (IP) + 18 (outer Ethernet)`` bytes — the
"redundant packet headers" the paper sets out to minimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.packet import EthernetFrame, Payload

__all__ = [
    "DATA_HEADER",
    "PULSE_SIZE",
    "PacketAssembler",
    "WavData",
    "WavPathChallenge",
    "WavPathResponse",
    "WavPulse",
    "WavPunch",
    "WavPunchAck",
    "WavRelay",
]

DATA_HEADER = 4
PULSE_SIZE = 2
PUNCH_SIZE = 20
PATH_FRAME_SIZE = 24


@dataclass(frozen=True)
class WavData:
    """A tunneled layer-2 frame."""

    frame: EthernetFrame

    @property
    def size(self) -> int:
        return DATA_HEADER + self.frame.size


@dataclass(frozen=True)
class WavPulse:
    """CONNECT_PULSE: 2-byte keepalive refreshing NAT bindings."""

    @property
    def size(self) -> int:
        return PULSE_SIZE


@dataclass(frozen=True)
class WavPunch:
    """Hole-punching probe carrying the sender's WAVNet identity."""

    sender: str
    nonce: int = 0

    @property
    def size(self) -> int:
        return PUNCH_SIZE


@dataclass(frozen=True)
class WavPunchAck:
    sender: str
    nonce: int = 0

    @property
    def size(self) -> int:
        return PUNCH_SIZE


@dataclass(frozen=True)
class WavPathChallenge:
    """QUIC-style PATH_CHALLENGE: migrate an established connection to a
    new path without re-punching.

    ``cid`` is the stable connection ID (survives address changes);
    ``token`` must be echoed by the peer; ``new_ip``/``new_port`` is the
    sender's freshly discovered public endpoint, which the peer should
    adopt as the connection's remote address once the token validates.
    """

    sender: str
    cid: int
    token: int
    new_ip: object  # IPv4Address
    new_port: int

    @property
    def size(self) -> int:
        return PATH_FRAME_SIZE


@dataclass(frozen=True)
class WavPathResponse:
    """PATH_RESPONSE: echoes the challenge token, proving the new path
    carries traffic in both directions."""

    sender: str
    cid: int
    token: int

    @property
    def size(self) -> int:
        return PATH_FRAME_SIZE


@dataclass(frozen=True)
class WavRelay:
    """Extension (paper future work): rendezvous-relayed tunnel payload
    for peers whose NATs defeat hole punching (symmetric<->symmetric).

    Carries any WAVNet payload plus sender/target names so the
    rendezvous server can forward it to the target's registered
    endpoint. 16 bytes of relay header on top of the inner payload.
    """

    sender: str
    target: str
    inner: object  # WavData | WavPulse

    @property
    def size(self) -> int:
        return 16 + self.inner.size


class PacketAssembler:
    """Encapsulation/decapsulation with byte and packet accounting."""

    def __init__(self) -> None:
        self.frames_encapsulated = 0
        self.frames_decapsulated = 0
        self.bytes_tunneled = 0
        self.pulses_sent = 0

    def encapsulate(self, frame: EthernetFrame) -> Payload:
        self.frames_encapsulated += 1
        body = WavData(frame)
        self.bytes_tunneled += body.size
        return Payload(body.size, data=body, kind="wav")

    def decapsulate(self, payload: Payload) -> Optional[EthernetFrame]:
        body = payload.data
        if not isinstance(body, WavData):
            return None
        self.frames_decapsulated += 1
        return body.frame

    def pulse(self) -> Payload:
        self.pulses_sent += 1
        body = WavPulse()
        return Payload(body.size, data=body, kind="wav")

    @staticmethod
    def punch(sender: str, nonce: int = 0, ack: bool = False) -> Payload:
        body = WavPunchAck(sender, nonce) if ack else WavPunch(sender, nonce)
        return Payload(body.size, data=body, kind="wav")
