"""The user-level virtual network device (tap).

A :class:`TapDevice` is an L2 port that, instead of leading to a wire,
hands every frame to the WAVNet driver (capture direction) and lets the
driver inject frames back (delivery direction). Crossing the tap costs
CPU time — the user/kernel copy that makes user-level virtual networks
slower than native — modeled as a per-frame cost plus a per-byte cost.

Each direction is a *serialized* station (the real driver is a single
``read()``/``write()`` loop per direction), so line-rate bursts are
naturally paced through the tap instead of arriving at the access queue
as one slug. These two knobs (per-frame/per-byte cost) are what Figures
6-7's "close-to-native" comparison is sensitive to.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.l2 import Port
from repro.net.packet import EthernetFrame
from repro.sim.engine import Simulator
from repro.sim.queues import Store

__all__ = ["TapDevice"]


class TapDevice:
    """Simulated /dev/net/tun endpoint attached to a bridge."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "tap0",
        per_frame_cost: float = 15e-6,
        per_byte_cost: float = 4e-9,
        queue_capacity: int = 1024,
    ) -> None:
        self.sim = sim
        self.name = name
        self.per_frame_cost = per_frame_cost
        self.per_byte_cost = per_byte_cost
        self.port = Port(self, name=name)
        self.capture_handler: Optional[Callable[[EthernetFrame], None]] = None
        self.frames_captured = 0
        self.frames_injected = 0
        self.drops = 0
        self.up = True
        self._capture_q: Store = Store(sim, capacity=queue_capacity)
        self._inject_q: Store = Store(sim, capacity=queue_capacity)
        sim.process(self._worker(self._capture_q, self._deliver_captured),
                    name=f"tap-rd:{name}")
        sim.process(self._worker(self._inject_q, self._deliver_injected),
                    name=f"tap-wr:{name}")

    def _cost(self, frame: EthernetFrame) -> float:
        return self.per_frame_cost + self.per_byte_cost * frame.size

    def _worker(self, queue: Store, deliver: Callable[[EthernetFrame], None]):
        while True:
            frame = yield queue.get()
            yield self.sim.timeout(self._cost(frame))
            if self.up:
                deliver(frame)

    def _deliver_captured(self, frame: EthernetFrame) -> None:
        if self.capture_handler is not None:
            self.capture_handler(frame)

    def _deliver_injected(self, frame: EthernetFrame) -> None:
        self.port.transmit(frame)

    # Bridge -> tap (capture: frame leaves the host for the tunnel).
    def on_frame(self, frame: EthernetFrame, port: Port) -> None:
        if not self.up or self.capture_handler is None:
            return
        self.frames_captured += 1
        if not self._capture_q.try_put(frame):
            self.drops += 1

    # Tunnel -> tap (inject: frame enters the host's bridge).
    def inject(self, frame: EthernetFrame) -> None:
        if not self.up:
            return
        self.frames_injected += 1
        if not self._inject_q.try_put(frame):
            self.drops += 1
