"""WAVNet core: the paper's primary contribution.

Composition on each participating host (Fig 2 / Fig 5)::

    applications / VMs
        |                +---------------------------+
      bridge (br0) ------| tap  ->  Packet Assembler |
        |  \\             |  WAV-Switch  ->  tunnels  |--> UDP --> WAN
      wav0  vif(VMs)     +---------------------------+
                                 WavnetDriver

* :mod:`repro.core.tap` — the user-level virtual network device.
* :mod:`repro.core.assembler` — WAVNet encapsulation + CONNECT_PULSE.
* :mod:`repro.core.switch` — the Wide-Area Virtual Switch (MAC ->
  host-to-host connection).
* :mod:`repro.core.connection` — connection lifecycle: UDP hole punching,
  keepalive, liveness.
* :mod:`repro.core.driver` — :class:`WavnetDriver`, the per-host entry
  point tying everything to a rendezvous server.
* :mod:`repro.core.latency` / :mod:`repro.core.grouping` — the distance
  locator matrix and the locality-sensitive grouping strategy (§II.D).
"""

from repro.core.connection import ConnectionState, WavConnection
from repro.core.driver import WavnetDriver
from repro.core.grouping import (
    brute_force_group,
    greedy_group,
    locality_sensitive_group,
    random_group,
)
from repro.core.latency import LatencyMatrix
from repro.core.switch import WavSwitch
from repro.core.tap import TapDevice

__all__ = [
    "ConnectionState",
    "LatencyMatrix",
    "TapDevice",
    "WavConnection",
    "WavSwitch",
    "WavnetDriver",
    "brute_force_group",
    "greedy_group",
    "locality_sensitive_group",
    "random_group",
]
