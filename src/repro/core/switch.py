"""WAV-Switch: the Wide-Area Virtual Switch.

"It inspects the hardware address of communication packets and
determines the connection over which the packets will be sent. The
difference ... is that WAV-Switch works for WAN" (§II.A).

Ports here are established host-to-host connections. MAC learning works
exactly like an Ethernet switch — which is precisely why VM live
migration is seamless (Fig 5): the migrated VM's gratuitous ARP arrives
over the *new* host's connection and rewrites the MAC table entry in one
frame time, with no overlay/DHT update round."""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.packet import EthernetFrame

__all__ = ["WavSwitch"]


class WavSwitch:
    """MAC address -> WAVNet connection mapping with learning."""

    def __init__(self, owner_name: str = "") -> None:
        self.owner_name = owner_name
        self.mac_table: dict[MacAddress, "object"] = {}  # mac -> WavConnection
        self.frames_unicast = 0
        self.frames_broadcast = 0

    def learn(self, mac: MacAddress, connection) -> None:
        self.mac_table[mac] = connection

    def lookup(self, mac: MacAddress) -> Optional[object]:
        conn = self.mac_table.get(mac)
        if conn is not None and not conn.usable:
            del self.mac_table[mac]
            return None
        return conn

    def forget_connection(self, connection) -> None:
        for mac in [m for m, c in self.mac_table.items() if c is connection]:
            del self.mac_table[mac]

    def select(self, frame: EthernetFrame, connections) -> list:
        """Connections a captured frame must be sent over: one for a
        learned unicast MAC, all established ones for broadcast/unknown."""
        if not frame.dst.is_broadcast:
            conn = self.lookup(frame.dst)
            if conn is not None:
                self.frames_unicast += 1
                return [conn]
        self.frames_broadcast += 1
        return [c for c in connections if c.usable]
