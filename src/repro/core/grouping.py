"""Locality-sensitive virtual-cluster selection (§II.D, second part).

Given N candidate hosts and their latency matrix, pick k hosts whose
average mutual latency L(Π) (Formula 1) is minimal.

* :func:`locality_sensitive_group` — the paper's approximation: for each
  matrix row take the k+1 nearest hosts, form the k+1 "leave-one-out"
  k-subsets, filter subsets containing an over-large connection, keep
  the best. O(N·k) candidate groups (the paper's complexity claim),
  each scored in O(k) via an incremental leave-one-out identity.
* :func:`brute_force_group` — the optimal O(C(N,k)) reference.
* :func:`greedy_group` — seed with the closest pair, grow greedily.
* :func:`random_group` — the random-selection baseline of Fig 14.

All functions return ``GroupResult`` with member indices (sorted),
average and max intra-group latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional

import numpy as np

from repro.core.latency import LatencyMatrix

__all__ = [
    "GroupResult",
    "brute_force_group",
    "greedy_group",
    "locality_sensitive_group",
    "random_group",
]


@dataclass(frozen=True)
class GroupResult:
    members: tuple
    average_latency: float
    max_latency: float
    candidates_examined: int = 0

    def names(self, matrix: LatencyMatrix) -> list[str]:
        return [matrix.names[i] for i in self.members]


def _check_k(matrix: LatencyMatrix, k: int) -> None:
    if not 2 <= k <= len(matrix):
        raise ValueError(f"k={k} out of range for N={len(matrix)}")


def _result(matrix: LatencyMatrix, members, examined: int = 0) -> GroupResult:
    members = tuple(sorted(int(i) for i in members))
    return GroupResult(members, matrix.group_average(members),
                       matrix.group_max(members), examined)


def locality_sensitive_group(
    matrix: LatencyMatrix,
    k: int,
    max_latency: Optional[float] = None,
    fallback: bool = False,
) -> GroupResult:
    """The paper's O(N·k) approximation algorithm.

    ``max_latency`` implements the "filter those with at least one
    unreasonable or over-large connection" step; None disables it (a
    group is then only rejected against the running best). With
    ``fallback=True``, if every candidate violates the filter the best
    unfiltered group is returned instead of raising.
    """
    _check_k(matrix, k)
    m = matrix.m
    n = len(matrix)
    order = matrix.sorted_rows()
    pair_count = k * (k - 1)  # directed pairs; L uses the sum/(2*C(k,2))
    best_members = None
    best_avg = np.inf
    best_max = np.inf
    fb_members = None
    fb_avg = np.inf
    fb_max = np.inf
    examined = 0
    take = min(k + 1, n)
    for i in range(n):
        # "group the first k+1 elements at each row": the sorted row leads
        # with the host itself (self-latency 0), so the candidate set is
        # host i plus its k nearest peers.
        nearest = order[i][:take]
        if nearest.size < k:
            continue
        sub = m[np.ix_(nearest, nearest)]
        if not np.all(np.isfinite(sub)):
            continue
        total = float(sub.sum())
        col_sums = sub.sum(axis=1)  # contribution of each member (directed)
        if nearest.size == k:
            drops = [None]
        else:
            drops = range(nearest.size)
        for drop in drops:
            examined += 1
            if drop is None:
                members = nearest
                group_sum = total
            else:
                members = np.delete(nearest, drop)
                # Leave-one-out: removing x drops its row+column once each.
                group_sum = total - 2.0 * float(col_sums[drop])
            avg = group_sum / pair_count
            if avg >= best_avg and avg >= fb_avg:
                continue
            gmax = float(m[np.ix_(members, members)].max())
            if avg < fb_avg:
                fb_avg, fb_max, fb_members = avg, gmax, members
            if avg >= best_avg:
                continue
            if max_latency is not None and gmax > max_latency:
                continue
            best_avg = avg
            best_max = gmax
            best_members = members
    if best_members is None and fallback:
        best_members, best_avg, best_max = fb_members, fb_avg, fb_max
    if best_members is None:
        raise ValueError("no feasible group (matrix incomplete or filter too strict)")
    return GroupResult(tuple(sorted(int(i) for i in best_members)),
                       best_avg, best_max, examined)


def brute_force_group(matrix: LatencyMatrix, k: int,
                      max_latency: Optional[float] = None) -> GroupResult:
    """Optimal reference: evaluates every C(N, k) subset."""
    _check_k(matrix, k)
    best = None
    best_avg = np.inf
    examined = 0
    for members in combinations(range(len(matrix)), k):
        examined += 1
        avg = matrix.group_average(members)
        if max_latency is not None and matrix.group_max(members) > max_latency:
            continue
        if avg < best_avg:
            best_avg = avg
            best = members
    if best is None:
        raise ValueError("no feasible group under the latency filter")
    return _result(matrix, best, examined)


def greedy_group(matrix: LatencyMatrix, k: int) -> GroupResult:
    """Seed with the globally closest pair; repeatedly add the host that
    minimizes the new average."""
    _check_k(matrix, k)
    m = matrix.m
    n = len(matrix)
    masked = m + np.where(np.eye(n, dtype=bool), np.inf, 0.0)
    i, j = np.unravel_index(np.argmin(masked), masked.shape)
    members = [int(i), int(j)]
    examined = 1
    while len(members) < k:
        idx = np.asarray(members)
        outside = np.setdiff1d(np.arange(n), idx)
        #

        # Adding x contributes 2 * sum(m[x, members]) to the pair sum.
        contrib = m[np.ix_(outside, idx)].sum(axis=1)
        examined += outside.size
        members.append(int(outside[np.argmin(contrib)]))
    return _result(matrix, members, examined)


def random_group(matrix: LatencyMatrix, k: int, rng: np.random.Generator,
                 pool: Optional[list] = None) -> GroupResult:
    """Random-selection baseline (Fig 14's comparison case)."""
    _check_k(matrix, k)
    candidates = np.asarray(pool if pool is not None else np.arange(len(matrix)))
    members = rng.choice(candidates, size=k, replace=False)
    return _result(matrix, members, 1)
