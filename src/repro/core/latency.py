"""Distance-locator latency matrix (§II.D, first part).

The paper's distance locator "maintains a latency matrix by periodically
communicating with neighbors. Each row in this matrix is always sorted
in increasing order." :class:`LatencyMatrix` keeps the symmetric RTT
matrix plus the per-row sort order the O(N·k) grouping algorithm needs.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = ["LatencyMatrix"]


class LatencyMatrix:
    """Symmetric host-to-host RTT matrix with sorted-row access."""

    def __init__(self, names: Iterable[str]) -> None:
        self.names = list(names)
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate host names")
        self.index = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)
        self.m = np.full((n, n), np.inf)
        np.fill_diagonal(self.m, 0.0)
        self._sorted_rows: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.names)

    @classmethod
    def from_array(cls, names: Iterable[str], matrix: np.ndarray) -> "LatencyMatrix":
        lm = cls(names)
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != lm.m.shape:
            raise ValueError(f"matrix shape {matrix.shape} != {lm.m.shape}")
        if not np.allclose(matrix, matrix.T, equal_nan=True):
            raise ValueError("latency matrix must be symmetric (paper Eq. 2)")
        lm.m = matrix.copy()
        np.fill_diagonal(lm.m, 0.0)
        lm._sorted_rows = None
        return lm

    def update(self, a: str, b: str, rtt: float) -> None:
        """Record a measured RTT (stored symmetrically, Eq. 2)."""
        if rtt < 0:
            raise ValueError(f"negative RTT {rtt}")
        i, j = self.index[a], self.index[b]
        self.m[i, j] = rtt
        self.m[j, i] = rtt
        self._sorted_rows = None

    def rtt(self, a: str, b: str) -> float:
        return float(self.m[self.index[a], self.index[b]])

    def sorted_rows(self) -> np.ndarray:
        """Per-row argsort (cached): ``sorted_rows()[i]`` lists host
        indices in increasing latency from host i (self first)."""
        if self._sorted_rows is None:
            self._sorted_rows = np.argsort(self.m, axis=1, kind="stable")
        return self._sorted_rows

    def complete(self) -> bool:
        return bool(np.all(np.isfinite(self.m)))

    def coverage(self) -> float:
        """Fraction of off-diagonal pairs with a measurement."""
        n = len(self)
        if n < 2:
            return 1.0
        off = n * n - n
        return float(np.sum(np.isfinite(self.m)) - n) / off

    def group_average(self, members: Iterable[int]) -> float:
        """L(Π) of Formula (1): mean pairwise latency within the group."""
        idx = np.fromiter(members, dtype=int)
        k = idx.size
        if k < 2:
            return 0.0
        sub = self.m[np.ix_(idx, idx)]
        return float(np.sum(sub) / (k * (k - 1)))

    def group_max(self, members: Iterable[int]) -> float:
        idx = np.fromiter(members, dtype=int)
        if idx.size < 2:
            return 0.0
        sub = self.m[np.ix_(idx, idx)]
        return float(np.max(sub))
