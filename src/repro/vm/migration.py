"""Iterative pre-copy live migration (Clark et al., NSDI'05 — ref [6]).

Round 0 pushes every page; each later round pushes the pages dirtied
while the previous round was in flight. Rounds stop when the dirty set
is small enough, stops shrinking, or the round budget runs out; then the
VM pauses, the final set + CPU state crosses, and the VM resumes at the
destination, announcing itself with a gratuitous ARP.

Because rounds transfer over a *real* simulated TCP connection, the
dynamics the paper observes emerge naturally: long-RTT paths slow each
round, more pages are dirtied per round, so "migration time is not
always proportional to the VM memory size" (Table V) and grows
super-linearly with RTT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.tcp import TcpConnection, stream_bytes
from repro.vm.machine import PAGE_SIZE, VirtualMachine

__all__ = ["MigrationReport", "PreCopyConfig", "run_precopy"]

# Per-page metadata sent along with the page (page number, checksums).
PAGE_OVERHEAD = 16
CPU_STATE_BYTES = 64 * 1024


@dataclass(frozen=True)
class PreCopyConfig:
    """Stop conditions of the iterative pre-copy loop."""

    max_rounds: int = 30
    stop_pages: int = 64          # dirty set small enough for stop-and-copy
    min_progress: float = 0.95    # stop if round N isn't < 95% of round N-1
    resume_cost: float = 0.15     # VMM resume + device re-attach (seconds)


@dataclass
class MigrationReport:
    """What the benchmarks read out of one migration."""

    vm_name: str
    started_at: float
    rounds: list = field(default_factory=list)  # (pages, seconds) per round
    bytes_transferred: int = 0
    downtime_start: float = 0.0
    finished_at: float = 0.0
    converged: bool = True

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def downtime(self) -> float:
        return self.finished_at - self.downtime_start

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


def _round_bytes(pages: int) -> int:
    return pages * (PAGE_SIZE + PAGE_OVERHEAD)


def run_precopy(
    vm: VirtualMachine,
    conn: TcpConnection,
    config: PreCopyConfig,
    report: MigrationReport,
):
    """Process body: drive the pre-copy rounds over ``conn`` (sender side).

    The receiver side just drains bytes (see Hypervisor._migration_server).
    Returns the report with rounds/downtime filled in; the caller pauses
    and resumes the VM around the stop-and-copy phase.
    """
    sim = vm.sim
    to_send = vm.total_pages  # round 0: everything
    for round_no in range(config.max_rounds):
        t0 = sim.now
        yield from stream_bytes(conn, _round_bytes(to_send))
        elapsed = sim.now - t0
        report.rounds.append((to_send, elapsed))
        report.bytes_transferred += _round_bytes(to_send)
        sim.trace.event("migrate.round", vm=vm.name, round=round_no,
                        pages=to_send, seconds=elapsed)
        dirtied = vm.dirty_model.unique_dirty_pages(elapsed, vm.total_pages)
        if dirtied <= config.stop_pages:
            to_send = dirtied
            return to_send
        if dirtied >= to_send * config.min_progress and round_no > 0:
            # Dirty rate caught up with transfer rate: further rounds
            # cannot shrink the set (Xen's writable-working-set bailout).
            report.converged = False
            return dirtied
        to_send = dirtied
    report.converged = False
    return to_send
