"""The virtual machine: a guest network stack plus a paged memory image.

A :class:`VirtualMachine` owns a full :class:`~repro.net.stack.Host`
(so unmodified guest workloads — HTTP servers, MPI ranks, netperf —
run *inside* the VM), a vif port the hypervisor patches into a bridge,
and the memory/dirty-model state the migration algorithm works on.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.stack import Host, Interface
from repro.sim.engine import Simulator

__all__ = ["PAGE_SIZE", "VirtualMachine"]

PAGE_SIZE = 4096


class VirtualMachine:
    """A guest VM (the paper's CentOS guests, 128-512 MB)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        memory_mb: int,
        mac_mint,
        dirty_model=None,
        cpu_factor: float = 1.0,
        **stack_kwargs,
    ) -> None:
        from repro.vm.dirty import IdleDirtyModel

        self.sim = sim
        self.name = name
        self.memory_mb = memory_mb
        self.total_pages = memory_mb * 1024 * 1024 // PAGE_SIZE
        self.dirty_model = dirty_model or IdleDirtyModel()
        self.guest = Host(sim, f"vm:{name}", mac_mint, cpu_factor=cpu_factor,
                          **stack_kwargs)
        self.vif: Interface = self.guest.add_nic("eth0")
        self.paused = False
        self.migrations = 0
        self.current_host: Optional[object] = None  # Hypervisor

    # -- guest configuration -----------------------------------------------
    def configure_network(self, ip: IPv4Address | str, network: IPv4Network | str,
                          gateway: Optional[IPv4Address | str] = None) -> None:
        self.vif.configure(ip, network)
        self.guest.stack.connected_route_for(self.vif)
        if gateway is not None:
            self.guest.stack.add_route("0.0.0.0/0", self.vif, gateway=gateway)

    @property
    def ip(self) -> IPv4Address:
        if self.vif.ip is None:
            raise RuntimeError(f"{self.name}: guest network unconfigured")
        return self.vif.ip

    @property
    def mac(self) -> MacAddress:
        return self.vif.mac

    # -- pause/resume (stop-and-copy window) ------------------------------------
    def pause(self) -> None:
        """Stop-and-copy begins: the guest stops executing; its vif drops
        all traffic (in-flight TCP recovers by retransmission, which is
        what netperf/AB observe as the downtime dip)."""
        self.paused = True
        self.vif.port.up = False

    def resume(self) -> None:
        self.paused = False
        self.vif.port.up = True

    def announce(self) -> None:
        """Gratuitous ARP after resume ("the VMM will inject an
        unsolicited ARP broadcast ... on behalf of the virtual machine")."""
        self.sim.trace.event("garp", vm=self.name, mac=str(self.vif.mac),
                             ip=str(self.vif.ip))
        self.guest.stack.gratuitous_arp(self.vif)

    def memory_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    def __repr__(self) -> str:
        where = getattr(self.current_host, "name", None)
        return f"VirtualMachine({self.name}, {self.memory_mb}MB, on={where})"
