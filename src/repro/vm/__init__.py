"""Virtualization substrate: VMs, dirty-page models, live migration.

Implements the parts of Xen the paper depends on (§II.C):

* :mod:`repro.vm.machine` — a guest VM: its own network stack whose vif
  plugs into the host bridge, plus a paged memory image.
* :mod:`repro.vm.dirty` — write-working-set models driving how much
  memory each pre-copy round must resend.
* :mod:`repro.vm.migration` — the iterative pre-copy algorithm (Clark et
  al., NSDI'05): full first round, dirty-page rounds, stop-and-copy,
  gratuitous ARP on resume.
* :mod:`repro.vm.hypervisor` — per-host VMM: vif plumbing, migration
  orchestration over a real (simulated) TCP connection.
"""

from repro.vm.dirty import HotColdDirtyModel, UniformDirtyModel
from repro.vm.hypervisor import Hypervisor
from repro.vm.machine import VirtualMachine
from repro.vm.migration import MigrationReport, PreCopyConfig

__all__ = [
    "HotColdDirtyModel",
    "Hypervisor",
    "MigrationReport",
    "PreCopyConfig",
    "UniformDirtyModel",
    "VirtualMachine",
]
