"""Per-host VMM: vif plumbing and live-migration orchestration.

A :class:`Hypervisor` sits on a physical host and plugs guest vifs into
an L2 attachment point — either a plain LAN bridge/switch or a WAVNet
driver's bridge (the paper's Fig 5 deployment). Migration runs the
pre-copy engine over a TCP connection between the physical hosts; for
WAN migration under WAVNet that connection naturally rides the tunnel.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.net.tcp import drain_bytes
from repro.sim.engine import Simulator
from repro.vm.machine import VirtualMachine
from repro.vm.migration import (
    CPU_STATE_BYTES,
    MigrationReport,
    PreCopyConfig,
    _round_bytes,
    run_precopy,
)

__all__ = ["Hypervisor", "MIGRATION_PORT", "bridge_attach"]

MIGRATION_PORT = 8002


def bridge_attach(bridge):
    """Attachment callable for a plain LAN bridge/switch (non-WAVNet)."""
    from repro.net.l2 import patch

    def attach(port, label):
        patch(port, bridge.new_port(label))

    return attach


class Hypervisor:
    """Xen-like VMM on one physical host."""

    def __init__(self, host: Host, attach, name: Optional[str] = None,
                 migration_port: int = MIGRATION_PORT) -> None:
        """``attach`` is a callable ``attach(port, label)`` plugging a vif
        into the host's L2 domain — ``WavnetDriver.attach_port`` for
        WAVNet hosts, or a closure over ``Bridge.new_port`` + ``patch``
        for plain LAN hosts."""
        self.host = host
        self.sim: Simulator = host.sim
        self.name = name or f"vmm:{host.name}"
        self.attach = attach
        self.vms: dict[str, VirtualMachine] = {}
        self.migration_port = migration_port
        self.migrations_in = 0
        self.migrations_out = 0
        self.metrics = self.sim.metrics.scope(f"{host.name}.vmm")
        self._listener = host.tcp.listen(migration_port)
        self.sim.process(self._migration_server(), name=f"migrated:{host.name}")

    # -- VM lifecycle -----------------------------------------------------
    def create_vm(self, name: str, memory_mb: int = 256, dirty_model=None,
                  cpu_factor: float = 1.0, **stack_kwargs) -> VirtualMachine:
        vm = VirtualMachine(self.sim, name, memory_mb, self.host.mac_mint,
                            dirty_model=dirty_model, cpu_factor=cpu_factor,
                            **stack_kwargs)
        self.adopt(vm)
        return vm

    def adopt(self, vm: VirtualMachine) -> None:
        """Plug an existing VM's vif into this host's bridge."""
        if vm.vif.port.connected:
            raise RuntimeError(f"{vm.name} is already attached somewhere")
        self.attach(vm.vif.port, f"vif-{vm.name}")
        self.vms[vm.name] = vm
        vm.current_host = self

    def detach(self, vm: VirtualMachine) -> None:
        """Unplug the vif (the bridge port is abandoned, as Xen does)."""
        vm.vif.port.disconnect()
        self.vms.pop(vm.name, None)

    # -- live migration (sender side) --------------------------------------------
    def migrate(self, vm: VirtualMachine, dest: "Hypervisor",
                dest_ip: IPv4Address, config: Optional[PreCopyConfig] = None):
        """Process: live-migrate ``vm`` to ``dest`` reachable at
        ``dest_ip`` (a LAN or WAVNet-virtual address of the destination
        physical host). Returns a MigrationReport."""
        if vm.name not in self.vms:
            raise RuntimeError(f"{vm.name} is not on {self.name}")
        config = config or PreCopyConfig()
        sim = self.sim
        report = MigrationReport(vm_name=vm.name, started_at=sim.now)
        span = sim.trace.begin("migrate", vm=vm.name, src=self.name, dst=dest.name)
        sim.trace.event("migrate.start", vm=vm.name, src=self.name, dst=dest.name)
        conn = self.host.tcp.connect(dest_ip, dest.migration_port)
        yield conn.wait_established()
        # Iterative pre-copy rounds while the guest keeps running.
        with sim.trace.span("migrate.precopy", vm=vm.name) as precopy:
            remaining = yield from run_precopy(vm, conn, config, report)
            precopy.annotate(rounds=report.n_rounds, converged=report.converged)
        # Stop-and-copy: pause, move the last dirty set + CPU state.
        report.downtime_start = sim.now
        downtime = sim.trace.begin("migrate.downtime", vm=vm.name, pages=remaining)
        vm.pause()
        final_bytes = _round_bytes(remaining) + CPU_STATE_BYTES
        from repro.net.tcp import stream_bytes
        yield from stream_bytes(conn, final_bytes, obj_last=("resume", vm.name))
        report.bytes_transferred += final_bytes
        conn.close()
        # Re-home the vif: source unplugs, destination adopts + resumes.
        self.detach(vm)
        self.migrations_out += 1
        self.metrics.counter("migrations.out").add()
        yield sim.timeout(config.resume_cost)
        dest.adopt(vm)
        vm.resume()
        vm.migrations += 1
        vm.announce()  # gratuitous ARP through the new attachment
        report.finished_at = sim.now
        downtime.end()
        sim.trace.event("migrate.done", vm=vm.name, src=self.name,
                        dst=dest.name, seconds=report.total_time,
                        downtime=report.downtime,
                        bytes=report.bytes_transferred)
        span.end(rounds=report.n_rounds, bytes=report.bytes_transferred,
                 downtime=report.downtime, converged=report.converged)
        return report

    # -- receiver side ----------------------------------------------------------
    def _migration_server(self):
        while True:
            conn = yield self._listener.accept()
            self.sim.process(self._receive_one(conn), name=f"migrate-rx:{self.host.name}")

    def _receive_one(self, conn):
        # Sink the page stream; the sender drives the protocol. The
        # ("resume", name) marker arrives with the last stop-and-copy byte.
        yield from drain_bytes(conn)
        self.migrations_in += 1
        self.metrics.counter("migrations.in").add()
        conn.close()
