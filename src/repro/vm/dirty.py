"""Dirty-page models for pre-copy migration.

During a pre-copy round of duration T the guest keeps writing memory;
the pages written must be resent in the next round. What matters to
migration dynamics is the number of *unique* pages dirtied as a function
of T — these models provide that.

* :class:`UniformDirtyModel` — writes land uniformly at random over all
  pages: unique(T) = P·(1 − e^(−rT/P)) for write rate r pages/s.
* :class:`HotColdDirtyModel` — a hot write working set (WWS) is dirtied
  quickly and repeatedly, the cold remainder slowly. This is the model
  that reproduces Table V's "migration time is not always proportional
  to memory size": the hot set is resent every round regardless of how
  big the VM is.
"""

from __future__ import annotations

import math

__all__ = ["HotColdDirtyModel", "UniformDirtyModel"]


class UniformDirtyModel:
    """Uniform random writes at ``rate_pages_per_s`` over ``total_pages``."""

    def __init__(self, rate_pages_per_s: float) -> None:
        if rate_pages_per_s < 0:
            raise ValueError("negative dirty rate")
        self.rate = rate_pages_per_s

    def unique_dirty_pages(self, duration: float, total_pages: int) -> int:
        if duration <= 0 or total_pages <= 0 or self.rate == 0:
            return 0
        expected = total_pages * (1.0 - math.exp(-self.rate * duration / total_pages))
        return min(int(round(expected)), total_pages)


class HotColdDirtyModel:
    """Hot working set + cold tail.

    ``hot_fraction`` of pages is rewritten at ``hot_rate`` (pages/s,
    spread over the hot set); the rest at ``cold_rate``. The hot set
    saturates within a fraction of a second, so every round longer than
    ~``hot_pages/hot_rate`` resends the whole WWS — exactly the behaviour
    that keeps migration time super-linear in RTT (more dirtying per
    longer round) but sub-linear in memory size.
    """

    def __init__(self, hot_fraction: float = 0.05, hot_rate: float = 10_000.0,
                 cold_rate: float = 50.0) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0,1]")
        if hot_rate < 0 or cold_rate < 0:
            raise ValueError("negative dirty rate")
        self.hot_fraction = hot_fraction
        self.hot_rate = hot_rate
        self.cold_rate = cold_rate

    def unique_dirty_pages(self, duration: float, total_pages: int) -> int:
        if duration <= 0 or total_pages <= 0:
            return 0
        hot_pages = int(total_pages * self.hot_fraction)
        cold_pages = total_pages - hot_pages
        hot = 0.0
        if hot_pages > 0 and self.hot_rate > 0:
            hot = hot_pages * (1.0 - math.exp(-self.hot_rate * duration / hot_pages))
        cold = 0.0
        if cold_pages > 0 and self.cold_rate > 0:
            cold = cold_pages * (1.0 - math.exp(-self.cold_rate * duration / cold_pages))
        return min(int(round(hot + cold)), total_pages)


class IdleDirtyModel:
    """A guest that writes nothing (migration converges in one round)."""

    def unique_dirty_pages(self, duration: float, total_pages: int) -> int:
        return 0
