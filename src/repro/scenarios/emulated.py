"""The emulated WAN of §III: up to 64 hosts, tc-shaped bandwidth.

The paper's lab emulation connects machines through fast Ethernet
switches, adds NAT gateways via iptables, and shapes the "WAN" rate with
``tc``. Here each host is its own NATed site; the shaped WAN rate is the
site's access-link bandwidth, and the switch fabric is the low-latency
cloud."""

from __future__ import annotations

from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator

__all__ = ["build_emulated_wan"]


def build_emulated_wan(
    sim: Simulator,
    n_hosts: int,
    wan_bandwidth_bps: float = 100e6,
    wan_latency: float = 0.0005,
    nat_type: str = "port-restricted",
    tcp_mss: int = 1460,
    pulse_interval: float = 5.0,
    udp_timeout: float = 60.0,
    tcp_send_buf: int = 262144,
    tcp_recv_buf: int = 262144,
) -> "tuple[WavnetEnvironment, list[WavnetHost]]":
    """Build the emulated WAN with ``n_hosts`` NATed hosts."""
    env = WavnetEnvironment(sim, default_latency=wan_latency)
    hosts = []
    for i in range(n_hosts):
        hosts.append(env.add_host(
            f"n{i:02d}",
            nat_type=nat_type,
            access_bandwidth_bps=wan_bandwidth_bps,
            access_latency=0.0002,
            udp_timeout=udp_timeout,
            tcp_mss=tcp_mss,
            tcp_send_buf=tcp_send_buf,
            tcp_recv_buf=tcp_recv_buf,
            pulse_interval=pulse_interval,
        ))
    return env, hosts
