"""The emulated WAN of §III: up to 64 hosts, tc-shaped bandwidth.

The paper's lab emulation connects machines through fast Ethernet
switches, adds NAT gateways via iptables, and shapes the "WAN" rate with
``tc``. Here each host is its own NATed site; the shaped WAN rate is the
site's access-link bandwidth, and the switch fabric is the low-latency
cloud."""

from __future__ import annotations

from repro.exp.spec import scenario
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator

__all__ = ["build_emulated_wan", "netperf_cluster"]


def build_emulated_wan(
    sim: Simulator,
    n_hosts: int,
    wan_bandwidth_bps: float = 100e6,
    wan_latency: float = 0.0005,
    nat_type: str = "port-restricted",
    tcp_mss: int = 1460,
    pulse_interval: float = 5.0,
    udp_timeout: float = 60.0,
    tcp_send_buf: int = 262144,
    tcp_recv_buf: int = 262144,
) -> "tuple[WavnetEnvironment, list[WavnetHost]]":
    """Build the emulated WAN with ``n_hosts`` NATed hosts."""
    env = WavnetEnvironment(sim, default_latency=wan_latency)
    hosts = []
    for i in range(n_hosts):
        hosts.append(env.add_host(
            f"n{i:02d}",
            nat_type=nat_type,
            access_bandwidth_bps=wan_bandwidth_bps,
            access_latency=0.0002,
            udp_timeout=udp_timeout,
            tcp_mss=tcp_mss,
            tcp_send_buf=tcp_send_buf,
            tcp_recv_buf=tcp_recv_buf,
            pulse_interval=pulse_interval,
        ))
    return env, hosts


@scenario("netperf_cluster")
def netperf_cluster(seed: int = 0, n_hosts: int = 8,
                    wan_bandwidth_bps: float = 100e6, tcp_mss: int = 8192,
                    udp_timeout: float = 30.0, sample_peers: int = 6,
                    duration: float = 5.0, settle: float = 15.0):
    """Figure 8's measurement at one cluster size: full-mesh WAVNet
    cluster with live keepalives, netperf from one node to a sample of
    peers. Payload carries the per-host average rate, connection count,
    and keepalive pulses observed during the tests."""
    from repro.apps.netperf import netperf_stream, netserver

    sim = Simulator(seed=seed)
    env, hosts = build_emulated_wan(sim, n_hosts,
                                    wan_bandwidth_bps=wan_bandwidth_bps,
                                    tcp_mss=tcp_mss, udp_timeout=udp_timeout)
    env.up().connect()
    # Let keepalives run for several pulse periods before measuring.
    sim.run(until=sim.now + settle)
    source = hosts[0]
    rates = []
    pulses_before = sum(c.pulses_received
                        for h in hosts for c in h.driver.connections.values())
    for peer in hosts[1:1 + sample_peers]:
        sim.process(netserver(peer.host))
        report = sim.run_coro(netperf_stream(source.host, peer.virtual_ip,
                                             duration=duration))
        rates.append(report.throughput_mbps)
    pulses_after = sum(c.pulses_received
                      for h in hosts for c in h.driver.connections.values())
    payload = {
        "n_hosts": n_hosts,
        "avg_mbps": sum(rates) / len(rates),
        "rates_mbps": rates,
        "connections": sum(len(h.driver.connections) for h in hosts) // 2,
        "pulses_during_tests": pulses_after - pulses_before,
    }
    return sim, payload
