"""Synthetic PlanetLab-like latency matrices (Figs 12-14).

The paper measures ~80 000 host pairs over 400 PlanetLab hosts. We
cannot reach PlanetLab (retired), so we generate matrices with the same
structure its published measurements show:

* two-level locality — hosts cluster into *sites* (sub-millisecond to a
  few ms apart) inside *regions* (tens of ms), with inter-region RTTs
  from ~60 to ~350 ms;
* symmetry (the paper's Eq. 2) by construction;
* approximate transitivity (Eq. 3) because latencies derive from region
  coordinates;
* a heavy tail: a small fraction of pathological pairs reaching seconds
  (the up-to-10 s outliers of Fig 12a).
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import LatencyMatrix
from repro.exp.spec import scenario

__all__ = ["planetlab_grouping", "planetlab_latency_matrix"]

N_REGIONS = 12
SITE_SIZE_RANGE = (2, 8)


def planetlab_latency_matrix(
    n_hosts: int = 400,
    seed: int = 0,
    outlier_fraction: float = 0.012,
    jitter_sigma: float = 0.18,
) -> LatencyMatrix:
    """Generate a symmetric n x n RTT matrix (seconds)."""
    rng = np.random.default_rng(seed)
    # Regions on a ring: inter-region base RTT from angular distance.
    region_angle = rng.uniform(0, 2 * np.pi, size=N_REGIONS)
    region_weight = rng.dirichlet(np.ones(N_REGIONS) * 2.0)

    # Assign hosts to sites inside regions.
    host_region = np.empty(n_hosts, dtype=int)
    host_site = np.empty(n_hosts, dtype=int)
    site_counter = 0
    i = 0
    while i < n_hosts:
        region = int(rng.choice(N_REGIONS, p=region_weight))
        size = int(rng.integers(SITE_SIZE_RANGE[0], SITE_SIZE_RANGE[1] + 1))
        size = min(size, n_hosts - i)
        host_region[i:i + size] = region
        host_site[i:i + size] = site_counter
        site_counter += 1
        i += size

    # Base distances.
    ang = region_angle[host_region]
    dtheta = np.abs(ang[:, None] - ang[None, :])
    dtheta = np.minimum(dtheta, 2 * np.pi - dtheta)
    inter_base = 0.060 + 0.290 * dtheta / np.pi          # 60..350 ms
    same_region = host_region[:, None] == host_region[None, :]
    same_site = host_site[:, None] == host_site[None, :]
    base = np.where(same_site, rng.uniform(0.0004, 0.004),
                    np.where(same_region, rng.uniform(0.008, 0.055), inter_base))

    # Symmetric multiplicative jitter.
    jitter = rng.lognormal(mean=0.0, sigma=jitter_sigma, size=(n_hosts, n_hosts))
    m = base * jitter
    m = (m + m.T) / 2.0

    # Heavy tail: *overloaded hosts* (Fig 12a's seconds-scale outliers).
    # On PlanetLab the pathological latencies cluster on specific loaded
    # nodes — every pair touching such a node is slow — rather than on
    # random pairs. This is what lets the grouping algorithm (Fig 13)
    # find large outlier-free clusters by simply avoiding those hosts.
    n_bad = max(int(outlier_fraction * n_hosts * 4), 1)
    bad_hosts = rng.choice(n_hosts, size=n_bad, replace=False)
    for host in bad_hosts:
        mult = 1.0 + float(rng.lognormal(mean=3.0, sigma=0.9))  # x5 .. x200
        m[host, :] = np.minimum(m[host, :] * mult, 10.0)
        m[:, host] = m[host, :]

    np.fill_diagonal(m, 0.0)
    names = [f"pl{i:03d}" for i in range(n_hosts)]
    return LatencyMatrix.from_array(names, m)


@scenario("planetlab_grouping")
def planetlab_grouping(seed: int = 0, n_hosts: int = 200, k: int = 8,
                       max_latency: float = 0.2,
                       outlier_fraction: float = 0.012):
    """Generate a PlanetLab-like matrix and compare locality-sensitive
    against random k-host cluster selection (Figs 12-13 in miniature) —
    a pure-numpy scenario exercising the payload-only contract."""
    import numpy as np

    from repro.core.grouping import locality_sensitive_group, random_group

    lm = planetlab_latency_matrix(n_hosts, seed=seed,
                                  outlier_fraction=outlier_fraction)
    off = lm.m[~np.eye(len(lm), dtype=bool)]
    good = locality_sensitive_group(lm, k, max_latency=max_latency,
                                    fallback=True)
    rand = random_group(lm, k, np.random.default_rng(seed + 1))
    return {
        "n_hosts": n_hosts,
        "k": k,
        "median_rtt_ms": float(np.median(off)) * 1000.0,
        "p95_rtt_ms": float(np.percentile(off, 95)) * 1000.0,
        "grouped_avg_ms": good.average_latency * 1000.0,
        "grouped_max_ms": good.max_latency * 1000.0,
        "random_avg_ms": rand.average_latency * 1000.0,
        "random_max_ms": rand.max_latency * 1000.0,
        "candidates_examined": good.candidates_examined,
    }
