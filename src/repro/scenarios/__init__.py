"""Topology builders for the paper's three evaluation environments.

* :mod:`repro.scenarios.builder` — generic assembly helpers (host pairs,
  LANs, NATed sites on a WAN cloud).
* :mod:`repro.scenarios.sites` — the 7-site real-WAN testbed of Table I.
* :mod:`repro.scenarios.emulated` — the 64-host emulated WAN.
* :mod:`repro.scenarios.planetlab` — synthetic 400-host latency matrices
  for the grouping experiments (Figs 12-14).
"""

from repro.scenarios.builder import (
    Lan,
    NattedSite,
    host_pair,
    make_lan,
    make_natted_site,
)

__all__ = ["Lan", "NattedSite", "host_pair", "make_lan", "make_natted_site"]
