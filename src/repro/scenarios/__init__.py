"""Topology builders for the paper's three evaluation environments.

* :mod:`repro.scenarios.builder` — generic assembly helpers (host pairs,
  LANs, NATed sites on a WAN cloud).
* :mod:`repro.scenarios.sites` — the 7-site real-WAN testbed of Table I.
* :mod:`repro.scenarios.emulated` — the 64-host emulated WAN.
* :mod:`repro.scenarios.planetlab` — synthetic 400-host latency matrices
  for the grouping experiments (Figs 12-14).
* :mod:`repro.scenarios.stacks` — matched physical/WAVNet/IPOP endpoint
  pairs for the head-to-head comparisons (Table II, Figs 6-7).
* :mod:`repro.scenarios.churn` — the self-healing mesh under a scripted
  fault schedule.

These modules also register the named experiment scenarios
(``stack_ping``, ``churn_recovery``, ``netperf_cluster``, ...) that
:mod:`repro.exp` sweeps resolve by name.
"""

from repro.scenarios.builder import (
    Lan,
    NattedSite,
    host_pair,
    make_lan,
    make_natted_site,
)

# The stack-pair builders live one import hop above the driver stack
# (stacks -> wavnet_env -> core.driver), and core.driver itself reaches
# this package through repro.stun — so re-export them lazily to keep
# `import repro` acyclic.
_STACK_EXPORTS = ("StackPair", "ipop_pair", "physical_pair", "stack_pair",
                  "wavnet_pair")


def __getattr__(name: str):
    if name in _STACK_EXPORTS:
        from repro.scenarios import stacks

        return getattr(stacks, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Lan",
    "NattedSite",
    "StackPair",
    "host_pair",
    "ipop_pair",
    "make_lan",
    "make_natted_site",
    "physical_pair",
    "stack_pair",
    "wavnet_pair",
]
