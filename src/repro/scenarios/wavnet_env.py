"""Complete WAVNet deployments: cloud, STUN, rendezvous layer, hosts.

:class:`WavnetEnvironment` assembles everything a WAVNet experiment
needs and exposes the knobs the paper's evaluation varies: NAT types,
site latencies/bandwidths, number of hosts, keepalive period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.driver import WavnetDriver
from repro.core.hoststate import HostTable
from repro.exp.spec import scenario
from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.net.wan import WanCloud
from repro.overlay.fleet import HashRing, RendezvousFleet
from repro.overlay.rendezvous import RendezvousServer
from repro.overlay.resources import ResourceSpec
from repro.scenarios.builder import NattedSite, make_natted_site, make_public_host
from repro.sim.engine import Simulator
from repro.stun.server import StunServerPair

__all__ = ["WavnetEnvironment", "WavnetHost", "wavnet_mesh"]


@dataclass
class WavnetHost:
    """One desktop host participating in WAVNet."""

    host: Host
    driver: WavnetDriver
    site: Optional[NattedSite] = None

    @property
    def name(self) -> str:
        return self.driver.name

    @property
    def virtual_ip(self) -> IPv4Address:
        return self.driver.virtual_ip


class WavnetEnvironment:
    """A WAN with STUN + rendezvous infrastructure and WAVNet hosts."""

    def __init__(self, sim: Simulator, default_latency: float = 0.025,
                 n_rendezvous: int = 1, spec: Optional[ResourceSpec] = None,
                 virtual_network: str = "10.99.0.0/16",
                 admission_rate: Optional[float] = None,
                 admission_burst: Optional[float] = None,
                 replication_factor: Optional[int] = None,
                 hot_zone_limit: Optional[int] = None,
                 expiry_interval: Optional[float] = None,
                 retry_concurrency: Optional[int] = None,
                 build_control: bool = True,
                 control_partition: int = 0) -> None:
        self.sim = sim
        self.cloud = WanCloud(sim, default_latency=default_latency)
        self.spec = spec or ResourceSpec()
        self.virtual_network = virtual_network
        self.n_rendezvous = n_rendezvous
        self.rendezvous: list[RendezvousServer] = []
        self.hosts: dict[str, WavnetHost] = {}
        self.retry_concurrency = retry_concurrency
        self._next_vip = 1
        self._next_pub = 1
        # Driver-side view of the fleet assignment: pure name hashing,
        # identical with or without live server objects.
        self.ring = HashRing([f"rvz{i}" for i in range(n_rendezvous)])
        # Single source of truth for every registered endpoint; the
        # rendezvous servers all own slices of it (fleet sharding).
        self.table = HostTable(sim, spec=self.spec)
        self.table.materializer = self._materialize_host
        self.table.dematerializer = self._dematerialize_host
        if not build_control:
            # PDES: the control plane (STUN pair + rendezvous servers +
            # the authoritative table mutations) lives in another
            # partition's process; here those sites are boundary
            # declarations and their addresses are derived, not built.
            self.stun = None
            self.fleet = None
            for site in ("stun.primary", "stun.alt"):
                self.cloud.declare_remote_site(site, control_partition)
            for i in range(n_rendezvous):
                self.cloud.declare_remote_site(f"rvz{i}", control_partition)
            return
        self.stun = StunServerPair(sim, self.cloud)
        for i in range(n_rendezvous):
            rhost = make_public_host(sim, self.cloud, f"rvz{i}", f"9.1.0.{i + 1}",
                                     network="9.1.0.0/24")
            server = RendezvousServer(rhost, spec=self.spec,
                                      table=self.table, server_index=i,
                                      admission_rate=admission_rate,
                                      admission_burst=admission_burst,
                                      replication_factor=replication_factor,
                                      hot_zone_limit=hot_zone_limit,
                                      expiry_interval=expiry_interval,
                                      retry_concurrency=retry_concurrency)
            if i == 0:
                server.bootstrap()
            self.rendezvous.append(server)
        self.fleet = RendezvousFleet(self.rendezvous)

    def join_rendezvous_overlay(self):
        """Process: join all non-bootstrap rendezvous nodes into the CAN
        (servers already in the overlay are left alone)."""
        for server in self.rendezvous[1:]:
            if not server.can.joined:
                yield self.sim.process(server.join_via(self.rendezvous[0]))

    def _alloc_vip(self) -> IPv4Address:
        vip = IPv4Address("10.99.0.0") + self._next_vip
        self._next_vip += 1
        return vip

    # -- fleet addressing (works with or without server objects) -------
    def rendezvous_addr(self, index: int) -> IPv4Address:
        """IP of rendezvous server ``index``; derived from the fixed
        addressing plan, so control-less PDES partitions agree with the
        partition that actually built the server."""
        if not 0 <= index < self.n_rendezvous:
            raise IndexError(f"rendezvous index {index} out of range")
        if self.rendezvous:
            return self.rendezvous[index].ip
        return IPv4Address(f"9.1.0.{index + 1}")

    @property
    def stun_primary_ip(self) -> IPv4Address:
        return self.stun.primary_ip if self.stun else IPv4Address("9.9.9.1")

    def assign_rendezvous(self, name: str) -> int:
        """Fleet consistent-hash assignment for an endpoint name (static
        ring — identical to ``fleet.assign_index`` while all servers are
        up, and available without server objects)."""
        return self.ring.index(name)

    # -- pdes boundary -------------------------------------------------
    def declare_remote_host(self, name: str, partition: int) -> None:
        """Mark an endpoint whose object stack lives in another PDES
        partition: its cloud site becomes a boundary declaration. The
        endpoint's table row should still be declared locally (via
        :meth:`add_endpoint`) so address allocation stays in lock-step
        across partitions."""
        self.cloud.declare_remote_site(name, partition)

    def add_host(
        self,
        name: str,
        nat_type: str = "port-restricted",
        rendezvous_index: Optional[int] = None,
        access_bandwidth_bps: float = 100e6,
        access_latency: float = 0.0005,
        udp_timeout: float = 60.0,
        attrs: Optional[dict] = None,
        pulse_interval: float = 5.0,
        public: bool = False,
        tcp_mss: int = 1460,
        tcp_send_buf: int = 262144,
        tcp_recv_buf: int = 262144,
        cpu_factor: float = 1.0,
        port_alloc: Optional[str] = None,
        port_stride: int = 1,
        **driver_kwargs,
    ) -> WavnetHost:
        """Add one desktop host (behind its own NAT unless ``public``):
        reserve its directory row, then build the full object stack.

        ``nat_type`` accepts combined specs like ``"symmetric-sequential"``
        naming the NAT's port-allocation policy; ``port_alloc=`` /
        ``port_stride=`` override it explicitly."""
        self.add_endpoint(name, nat_type=nat_type,
                          rendezvous_index=rendezvous_index,
                          access_bandwidth_bps=access_bandwidth_bps,
                          access_latency=access_latency,
                          udp_timeout=udp_timeout, attrs=attrs,
                          pulse_interval=pulse_interval, public=public,
                          tcp_mss=tcp_mss, tcp_send_buf=tcp_send_buf,
                          tcp_recv_buf=tcp_recv_buf, cpu_factor=cpu_factor,
                          port_alloc=port_alloc, port_stride=port_stride,
                          **driver_kwargs)
        return self._build_host(name)

    def add_endpoint(self, name: str, region: int = -1, **site_config) -> int:
        """Reserve a table row for an endpoint *without* building any
        object stack: allocates its stable virtual IP and public-address
        slot and records the site configuration, so a later
        :meth:`materialize` (or :meth:`add_host`, which calls this)
        constructs an identical host every time. Returns the row id."""
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host_id = self.table.ensure_row(name)
        if self.table.site_config(host_id):
            raise ValueError(f"endpoint {name!r} already declared")
        # Fleet-aware server selection: a ``None`` (or absent) index
        # means "hash me onto the ring" — the same assignment the fleet
        # itself would compute. An explicit integer keeps the legacy
        # static pinning.
        rendezvous_index = site_config.get("rendezvous_index")
        fleet_assigned = rendezvous_index is None
        if fleet_assigned:
            rendezvous_index = self.ring.index(name)
        if not 0 <= rendezvous_index < self.n_rendezvous:
            raise IndexError(f"rendezvous_index {rendezvous_index} out of range")
        pub_index = self._next_pub
        self._next_pub += 1
        vip = self._alloc_vip()
        self.table.virtual_ip[host_id] = vip.value
        if region >= 0:
            self.table.region[host_id] = region
        cfg = dict(nat_type="port-restricted", rendezvous_index=0,
                   access_bandwidth_bps=100e6, access_latency=0.0005,
                   udp_timeout=60.0, attrs=None, pulse_interval=5.0,
                   public=False, tcp_mss=1460, tcp_send_buf=262144,
                   tcp_recv_buf=262144, cpu_factor=1.0,
                   port_alloc=None, port_stride=1)
        driver_kwargs = {k: v for k, v in site_config.items() if k not in cfg}
        cfg.update({k: v for k, v in site_config.items() if k in cfg})
        cfg["rendezvous_index"] = rendezvous_index
        cfg["fleet_assigned"] = fleet_assigned
        cfg["pub_index"] = pub_index
        cfg["driver_kwargs"] = driver_kwargs
        self.table.set_site_config(host_id, **cfg)
        return host_id

    def _build_host(self, name: str) -> WavnetHost:
        """Construct the full host/NAT/driver stack for a declared
        endpoint from its table row — used by :meth:`add_host` and by
        lazy materialization, so both produce identical stacks."""
        host_id = self.table.lookup(name)
        cfg = self.table.site_config(host_id)
        if not cfg:
            raise KeyError(f"endpoint {name!r} was never declared")
        pub_index = cfg["pub_index"]
        rendezvous_index = cfg["rendezvous_index"]
        rendezvous_ip = self.rendezvous_addr(rendezvous_index)
        stack_kwargs = dict(tcp_mss=cfg["tcp_mss"],
                            tcp_send_buf=cfg["tcp_send_buf"],
                            tcp_recv_buf=cfg["tcp_recv_buf"],
                            cpu_factor=cfg["cpu_factor"])
        if cfg["public"]:
            host = make_public_host(self.sim, self.cloud, name,
                                    f"8.2.{pub_index // 250}.{(pub_index % 250) + 1}",
                                    network="8.0.0.0/8",
                                    access_latency=cfg["access_latency"],
                                    access_bandwidth_bps=cfg["access_bandwidth_bps"],
                                    **stack_kwargs)
            site = None
        else:
            subnet_octet = 1 + (pub_index % 254)
            site = make_natted_site(
                self.sim, self.cloud, name,
                f"8.3.{pub_index // 250}.{(pub_index % 250) + 1}",
                nat_type=cfg["nat_type"],
                lan_subnet=f"192.168.{subnet_octet}.0/24",
                access_bandwidth_bps=cfg["access_bandwidth_bps"],
                access_latency=cfg["access_latency"],
                udp_timeout=cfg["udp_timeout"],
                port_alloc=cfg.get("port_alloc"),
                port_stride=cfg.get("port_stride", 1),
                **stack_kwargs)
            host = site.hosts[0]
        # Every other rendezvous server is a registration failover
        # target: fleet-assigned endpoints fail over in ring-successor
        # order (the server that inherits their ring arc), pinned ones
        # in index order.
        driver_kwargs = dict(cfg["driver_kwargs"])
        if cfg.get("fleet_assigned"):
            backups = [self.rendezvous_addr(j)
                       for j in self.ring.order(name)[1:]]
        else:
            backups = [self.rendezvous_addr(j)
                       for j in range(self.n_rendezvous)
                       if j != rendezvous_index]
        driver_kwargs.setdefault("backup_rendezvous_ips", backups)
        if self.retry_concurrency is not None:
            driver_kwargs.setdefault("retry_concurrency", self.retry_concurrency)
        driver = WavnetDriver(
            host,
            virtual_ip=IPv4Address(int(self.table.virtual_ip[host_id])),
            virtual_network=self.virtual_network,
            rendezvous_ip=rendezvous_ip,
            stun_server_ip=self.stun_primary_ip,
            attrs=cfg["attrs"],
            name=name,
            pulse_interval=cfg["pulse_interval"],
            **driver_kwargs,
        )
        wav_host = WavnetHost(host=host, driver=driver, site=site)
        self.hosts[wav_host.name] = wav_host
        return wav_host

    def build_declared(self, name: str) -> WavnetHost:
        """Construct (without starting) the full stack for an endpoint
        previously declared via :meth:`add_endpoint` — the PDES path:
        every partition declares every endpoint (lock-step address
        allocation), then builds only the ones it owns."""
        return self._build_host(name)

    # -- lazy materialization ------------------------------------------
    def materialize(self, name: str) -> WavnetHost:
        """Instantiate and start the full stack for a table-resident
        endpoint (runs the simulator to drive STUN + registration)."""
        host_id = self.table.lookup(name)
        if host_id < 0:
            raise KeyError(name)
        return self.table.materialize(host_id)

    def demote(self, name: str) -> None:
        """Fold a materialized host back into its table row: capture its
        control-plane state, tear down driver/NAT/links, and release the
        lifecycle registrations. The directory row survives, so the
        endpoint stays queryable and can re-materialize identically."""
        host_id = self.table.lookup(name)
        if host_id < 0:
            raise KeyError(name)
        self.table.demote(host_id)

    def _materialize_host(self, name: str) -> WavnetHost:
        wav = self._build_host(name)
        self.sim.run_coro(wav.driver.start())
        return wav

    def _dematerialize_host(self, name: str, wav: WavnetHost) -> None:
        host_id = self.table.lookup(name)
        state = wav.driver.export_endpoint_state()
        self.table.public_ip[host_id] = IPv4Address(state["public_ip"]).value
        self.table.public_port[host_id] = state["public_port"]
        self.table.touch(host_id, self.sim.now)
        wav.driver.stop()
        self.cloud.detach(name)
        registry = self.sim.components
        doomed = {wav.driver.component_id}
        doomed.update(cid for cid in registry
                      if cid.startswith((f"link:{name}.", f"nat:{name}.")))
        for cid in doomed:
            registry.remove(cid)
        del self.hosts[name]

    def set_site_rtt(self, a: str, b: str, rtt: float) -> None:
        """Pairwise RTT between two host sites over the cloud."""
        self.cloud.set_rtt(a, b, rtt)

    # -- conveniences (run the simulator themselves) -------------------
    def up(self) -> "WavnetEnvironment":
        """Bring the deployment up: join extra rendezvous servers into
        the CAN, then start every driver. Runs the simulator; returns
        self so ``env.up().connect(...)`` chains."""
        if len(self.rendezvous) > 1:
            self.sim.run_coro(self.join_rendezvous_overlay())
        self.sim.run_coro(self.start_all())
        return self

    def connect(self, *pairs):
        """Punch tunnels and return the connections (runs the simulator).

        * ``env.connect("a", "b")`` — one pair, returns its connection;
        * ``env.connect(("a", "b"), ("a", "c"))`` — returns a list;
        * ``env.connect()`` — full mesh over all hosts, returns a list.
        """
        if len(pairs) == 2 and all(isinstance(p, str) for p in pairs):
            return self.sim.run_coro(self.connect_pair(*pairs))
        if not pairs:
            return self.sim.run_coro(self.connect_full_mesh())
        return [self.sim.run_coro(self.connect_pair(a, b)) for a, b in pairs]

    def start_all(self):
        """Process: start every driver (STUN + registration), serially to
        keep rendezvous registration deterministic."""
        for wav_host in self.hosts.values():
            yield self.sim.process(wav_host.driver.start())

    def connect_pair(self, a: str, b: str):
        """Process: host ``a`` discovers and punches to host ``b``."""
        driver = self.hosts[a].driver
        conn = yield from driver.connect_by_name(b)
        return conn

    def connect_full_mesh(self, names: Optional[list[str]] = None):
        """Process: pairwise connections among ``names`` (default: all);
        returns the connections in pair order."""
        names = names or list(self.hosts)
        conns = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                conn = yield self.sim.process(self.connect_pair(a, b))
                conns.append(conn)
        return conns


@scenario("wavnet_mesh")
def wavnet_mesh(seed: int = 0, n_hosts: int = 2, n_rendezvous: int = 1,
                nat_type: str = "port-restricted", rtt: float = 0.05,
                settle: float = 0.0):
    """Bring up a full-mesh WAVNet deployment and report how it punched:
    the baseline scenario for sweeping NAT types, host counts, and WAN
    RTTs through the experiment plane."""
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, default_latency=rtt / 2.0,
                            n_rendezvous=n_rendezvous)
    for i in range(n_hosts):
        env.add_host(f"m{i}", nat_type=nat_type)
    conns = env.up().connect()
    if settle > 0:
        sim.run(until=sim.now + settle)
    punch = [c.established_at for c in conns]
    payload = {
        "n_hosts": n_hosts,
        "nat_type": nat_type,
        "connections": len(conns),
        "relayed": sum(1 for c in conns if c.relayed),
        "punch_done_at": punch,
        "mesh_done_at": max(punch) if punch else None,
    }
    return sim, payload
