"""Churn scenario: a WAVNet mesh surviving infrastructure failures.

Builds a full-mesh deployment (multiple rendezvous servers joined into
one CAN overlay), then drives a deterministic fault schedule against it:
a rendezvous-server kill, host-driver crash/restore churn, a NAT reboot
and an access-link flap. With self-healing drivers, the mesh is expected
to converge back — every surviving host re-registered (failed over to a
surviving rendezvous server) and all host pairs re-punched — without
anyone calling ``connect()`` again.

Used by ``tests/test_faults.py`` (acceptance) and
``benchmarks/bench_churn_recovery.py`` (recovery-time distributions).
"""

from __future__ import annotations

from typing import Optional

from repro.exp.spec import scenario
from repro.faults import FaultPlan
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator

__all__ = ["build_churn_env", "churn_recovery", "mesh_converged",
           "scripted_churn_plan"]


def build_churn_env(
    sim: Simulator,
    n_hosts: int = 4,
    n_rendezvous: int = 2,
    pulse_interval: float = 2.0,
    keepalive_interval: float = 10.0,
    punch_timeout: float = 5.0,
    **host_kwargs,
) -> WavnetEnvironment:
    """Full-mesh WAVNet with fast keepalive/repair knobs, hosts spread
    round-robin across the rendezvous servers. Runs the simulator up to
    the point where the mesh is established."""
    env = WavnetEnvironment(sim, n_rendezvous=n_rendezvous)
    for i in range(n_hosts):
        env.add_host(
            f"h{i}",
            rendezvous_index=i % n_rendezvous,
            pulse_interval=pulse_interval,
            keepalive_interval=keepalive_interval,
            punch_timeout=punch_timeout,
            repair_backoff_base=0.5,
            repair_backoff_cap=8.0,
            **host_kwargs,
        )
    env.up().connect()
    return env


def scripted_churn_plan(
    sim: Simulator,
    env: WavnetEnvironment,
    rendezvous_kill_at: float = 30.0,
    rendezvous_restore_at: Optional[float] = 150.0,
    host_crash_at: Optional[float] = 60.0,
    host_downtime: float = 20.0,
    nat_reboot_at: Optional[float] = 100.0,
    link_flap_at: Optional[float] = 115.0,
    link_down_for: float = 6.0,
) -> FaultPlan:
    """The canonical churn schedule. Times are offsets from ``sim.now``
    at the moment the plan is built (i.e. from the established mesh);
    pass None to skip a fault:

    * ``rendezvous_kill_at``  — crash rendezvous server 0 (the CAN
      bootstrap node); hosts registered there must fail over.
    * ``host_crash_at``       — crash the last host's driver, restore it
      ``host_downtime`` later; peers must re-punch.
    * ``nat_reboot_at``       — power-cycle the first NATed site's box
      (mapping flush: tunnels through it must re-open).
    * ``link_flap_at``        — flap the same site's access link.
    * ``rendezvous_restore_at`` — bring the killed server back (it
      rejoins the CAN through its cached peers).
    """
    plan = FaultPlan(sim, name="churn")
    base = sim.now
    rvz0 = env.rendezvous[0]
    if rendezvous_kill_at is not None:
        plan.at(base + rendezvous_kill_at, "crash",
                component_id=rvz0.component_id)
        if rendezvous_restore_at is not None:
            plan.at(base + rendezvous_restore_at, "restore",
                    component_id=rvz0.component_id)
    if host_crash_at is not None:
        victim = list(env.hosts.values())[-1]
        plan.at(base + host_crash_at, "crash",
                component_id=victim.driver.component_id)
        plan.at(base + host_crash_at + host_downtime, "restore",
                component_id=victim.driver.component_id)
    natted = next((h for h in env.hosts.values() if h.site is not None), None)
    if natted is not None:
        if nat_reboot_at is not None:
            plan.at(base + nat_reboot_at, "nat_reboot", nat=natted.site.nat)
        if link_flap_at is not None:
            plan.at(base + link_flap_at, "link_flap",
                    link=natted.site.access_link, down_for=link_down_for)
    return plan


@scenario("churn_recovery")
def churn_recovery(seed: int = 0, n_hosts: int = 4, n_rendezvous: int = 2,
                   horizon: float = 220.0, ping: bool = True):
    """One seed of the churn-recovery experiment: scripted faults against
    an established mesh, with optional ring traffic so outages register
    as dropped frames. Payload carries the recovery distributions
    ``benchmarks/bench_churn_recovery.py`` aggregates."""
    from repro.net.icmp import Pinger

    sim = Simulator(seed=seed)
    env = build_churn_env(sim, n_hosts=n_hosts, n_rendezvous=n_rendezvous)
    plan = scripted_churn_plan(sim, env).arm()
    if ping:
        # Ring traffic for the whole run: hosts that lose their tunnel
        # drop these pings into ``frames.dropped_outage`` until repair.
        names = list(env.hosts)
        for i, name in enumerate(names):
            nxt = env.hosts[names[(i + 1) % len(names)]]
            pinger = Pinger(env.hosts[name].host.stack, nxt.virtual_ip,
                            interval=1.0, timeout=1.0)
            sim.process(pinger.run(max(int(horizon) - 5, 1)),
                        name=f"churn-ping:{name}")
    sim.run(until=sim.now + horizon)

    repair, failover = [], []
    frames_lost = repairs = failovers = 0
    for name in env.hosts:
        scope = sim.metrics.scope(f"{name}.driver")
        repair.extend(scope.histogram("repair.seconds").values.tolist())
        failover.extend(scope.histogram("rvz.failover_seconds").values.tolist())
        frames_lost += int(scope.value("frames.dropped_outage"))
        repairs += int(scope.value("repair.success"))
        failovers += int(scope.value("rvz.failovers"))
    payload = {
        "seed": seed,
        "faults_injected": len(plan),
        "repairs": repairs,
        "failovers": failovers,
        "repair_seconds": repair,
        "failover_seconds": failover,
        "frames_lost": frames_lost,
        "converged": mesh_converged(env),
    }
    return sim, payload


def mesh_converged(env: WavnetEnvironment) -> bool:
    """True when every pair of running hosts has a usable tunnel in at
    least one direction and every running host is registered with a
    running rendezvous server."""
    running = [h for h in env.hosts.values() if h.driver.running]
    by_ip = {s.ip: s for s in env.rendezvous}
    for wav in running:
        server = by_ip.get(wav.driver.rendezvous_ip)
        if server is None or not server.running:
            return False
        if wav.name not in server.hosts:
            return False
    for i, a in enumerate(running):
        for b in running[i + 1:]:
            fwd = a.driver.connections.get(b.name)
            rev = b.driver.connections.get(a.name)
            if not ((fwd is not None and fwd.usable)
                    or (rev is not None and rev.usable)):
                return False
    return True
