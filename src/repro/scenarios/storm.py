"""Registration storm: mass reconnect after a regional outage.

The scale scenario for the struct-of-arrays control plane. Synthetic
endpoints never get an object stack — per region, one public "lane"
host (a concentrator/proxy) batch-registers them with the rendezvous
fleet over ``rvz.register_batch``, so 10^4-10^6 endpoints cost table
rows plus RPC envelopes, not drivers and NAT boxes. The storm itself:

1. **Fill** — every lane registers its region's endpoints, batched and
   spread across the fleet by consistent hashing.
2. **Outage** — one region goes dark at once
   (:meth:`~repro.faults.injector.FaultInjector.regional_outage`), the
   table-resident fault verb: registrations drop, rows survive.
3. **Reconnect storm** — the dark region re-registers everything. With
   admission control on, the token buckets shed the front of the wave
   and the lane backs off with jittered retries; with
   ``hot_zone_limit`` set, the CAN sheds hot zones under the load.
   Meanwhile a handful of *real* (materialized) hosts punch tunnels
   through the same brokering path, sampling punch-coordination
   latency under control-plane pressure.

Payload carries the fig08-style curve inputs: control-plane ops/sec
for fill and reconnect, punch latencies, admission accept/reject
counts, per-server fleet load, CAN split/handle counters, and a
steady-state bytes-per-endpoint accounting of everything the control
plane keeps per idle endpoint (table columns, name index, CAN handle
stores).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.exp.spec import scenario
from repro.faults import FaultInjector
from repro.nat.types import NatType
from repro.overlay.rendezvous import (RENDEZVOUS_PORT, _KeepaliveBatch,
                                      _RegisterBatch)
from repro.overlay.rpc import RpcEndpoint, RpcError, RpcTimeout
from repro.scenarios.builder import make_public_host
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator

__all__ = ["StormLane", "build_storm_lanes", "registration_storm",
           "steady_state_bytes"]

LANE_PORT = 4700
_NAT_CODE = list(NatType).index(NatType.PORT_RESTRICTED)


class StormLane:
    """One region's registration concentrator: a public host that
    batch-registers synthetic endpoints with the rendezvous fleet."""

    def __init__(self, sim, env: WavnetEnvironment, region: int,
                 count: int, base_index: int,
                 retry_concurrency: int | None = 4) -> None:
        self.sim = sim
        self.env = env
        self.region = region
        self.names = tuple(f"r{region}e{j}" for j in range(count))
        self.rng = sim.rng.stream(f"storm.lane{region}")
        self.rejected_batches = 0
        self.failed = 0
        self.done_at = -1.0
        self.keepalive_sweeps = 0
        self.keepalives_acked = 0
        # Server assignment is the fleet's static consistent hash,
        # computed through the env's ring so it needs no live server
        # objects (the lane works inside a control-less PDES partition).
        self._groups: dict[int, list[int]] = {}
        for k, name in enumerate(self.names):
            self._groups.setdefault(env.assign_rendezvous(name), []).append(k)
        host = make_public_host(sim, env.cloud, f"lane{region}",
                                f"7.1.{region // 250}.{(region % 250) + 1}",
                                network="7.0.0.0/8")
        self.rpc = RpcEndpoint(host.stack, host.udp.bind(LANE_PORT),
                               name=f"lane{region}",
                               retry_concurrency=retry_concurrency)
        # Synthetic per-endpoint columns: deterministic addresses, NAT
        # mappings, and attribute draws spread across the CAN space.
        idx = base_index + np.arange(count, dtype=np.int64)
        self.public_ip = (0x0B000000 + idx).astype(np.uint32)
        self.public_port = (20000 + idx % 40000).astype(np.uint16)
        self.private_ip = np.full(count, 0xC0A80002, dtype=np.uint32)
        self.private_port = np.full(count, 4242, dtype=np.uint16)
        self.nat_code = np.full(count, _NAT_CODE, dtype=np.uint8)
        attrs = env.spec.attributes
        self.attr_values = np.empty((count, len(attrs)), dtype=np.float32)
        for k, (_name, lo, hi) in enumerate(attrs):
            self.attr_values[:, k] = self.rng.uniform(lo, hi, size=count)

    def _batch(self, ks: np.ndarray) -> _RegisterBatch:
        return _RegisterBatch(
            names=tuple(self.names[k] for k in ks),
            public_ip=self.public_ip[ks],
            public_port=self.public_port[ks],
            private_ip=self.private_ip[ks],
            private_port=self.private_port[ks],
            nat_code=self.nat_code[ks],
            attr_values=self.attr_values[ks],
            region=self.region,
        )

    def register(self, batch_size: int = 256, max_attempts: int = 10):
        """Process: register every endpoint of this lane, grouped by the
        fleet's consistent-hash assignment, with jittered backoff when a
        server's admission bucket sheds the batch. Returns the number of
        endpoints acknowledged."""
        registered = 0
        for idx in sorted(self._groups):
            server_ip = self.env.rendezvous_addr(idx)
            ks = np.asarray(self._groups[idx], dtype=np.int64)
            for start in range(0, len(ks), batch_size):
                chunk = ks[start:start + batch_size]
                body = self._batch(chunk)
                for attempt in range(max_attempts):
                    try:
                        yield from self.rpc.call(
                            server_ip, RENDEZVOUS_PORT, "rvz.register_batch",
                            body, timeout=10.0, retries=2)
                    except RpcError as exc:
                        if "AdmissionReject" not in str(exc):
                            raise
                        self.rejected_batches += 1
                        delay = min(0.2 * 2.0 ** attempt, 10.0)
                        yield self.sim.timeout(
                            delay * (0.5 + float(self.rng.random())))
                    except RpcTimeout:
                        self.failed += len(chunk)
                        break
                    else:
                        registered += len(chunk)
                        break
                else:
                    self.failed += len(chunk)
        self.done_at = self.sim.now
        return registered

    def keepalive_loop(self, interval: float = 20.0, batch_size: int = 4096):
        """Process: batched keepalive sweeps for every endpoint of this
        lane. One calendar timer and a handful of ``rvz.keepalive_batch``
        RPCs per interval replace 10^5-10^6 per-host keepalive timers —
        the per-lane scheduler that keeps calendar pressure flat as the
        table grows."""
        while True:
            yield self.sim.timeout(interval)
            for idx in sorted(self._groups):
                server_ip = self.env.rendezvous_addr(idx)
                ks = self._groups[idx]
                for start in range(0, len(ks), batch_size):
                    names = tuple(self.names[k]
                                  for k in ks[start:start + batch_size])
                    try:
                        result = yield from self.rpc.call(
                            server_ip, RENDEZVOUS_PORT,
                            "rvz.keepalive_batch", _KeepaliveBatch(names),
                            timeout=10.0, retries=2)
                    except (RpcError, RpcTimeout):
                        continue
                    self.keepalives_acked += int(result[1])
            self.keepalive_sweeps += 1


def build_storm_lanes(sim, env: WavnetEnvironment, n_endpoints: int,
                      n_regions: int) -> list[StormLane]:
    """One lane per region, endpoints split as evenly as possible."""
    lanes = []
    base = 0
    for r in range(n_regions):
        count = n_endpoints // n_regions + (1 if r < n_endpoints % n_regions else 0)
        lanes.append(StormLane(sim, env, region=r, count=count, base_index=base))
        base += count
    return lanes


def steady_state_bytes(env: WavnetEnvironment) -> int:
    """Accounting of what the control plane keeps per *idle* endpoint:
    the table's numpy columns, the name index, and the CAN handle
    stores (primaries + replicas). Materialized-host object stacks are
    deliberately excluded — they are the non-idle hosts."""
    table = env.table
    total = table.nbytes
    total += sys.getsizeof(table._ids) + sys.getsizeof(table._names)
    total += sum(sys.getsizeof(n) for n in table._names if n is not None)
    for server in env.rendezvous:
        can = server.can
        total += sys.getsizeof(can.handles) + 28 * len(can.handles)
        for reps in can.handle_replicas.values():
            total += sys.getsizeof(reps) + 28 * len(reps)
    return int(total)


def _join(procs):
    results = []
    for proc in procs:
        results.append((yield proc))
    return results


def _punch_probe(sim, env: WavnetEnvironment, pairs, latencies: list):
    """Process: punch each pair through the storm-loaded control plane,
    recording wall (sim) time from connect() to an established tunnel."""
    for a, b in pairs:
        t0 = sim.now
        try:
            yield sim.process(env.connect_pair(a, b))
        except (RpcError, RpcTimeout):
            continue
        latencies.append(sim.now - t0)
    return latencies


@scenario("registration_storm")
def registration_storm(seed: int = 0, n_endpoints: int = 10_000,
                       n_rendezvous: int = 4, n_regions: int = 4,
                       batch: int = 256,
                       admission_rate: float | None = None,
                       admission_burst: float | None = None,
                       replication_factor: int | None = 1,
                       hot_zone_limit: int | None = None,
                       punch_pairs: int = 2, outage_region: int = 0,
                       settle: float = 2.0,
                       keepalive_interval: float | None = None):
    """Fill the table, kill a region, reconnect it — see module docs."""
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, n_rendezvous=n_rendezvous,
                            admission_rate=admission_rate,
                            admission_burst=admission_burst,
                            replication_factor=replication_factor,
                            hot_zone_limit=hot_zone_limit)
    for i in range(2 * punch_pairs):
        env.add_host(f"p{i}", rendezvous_index=i % n_rendezvous)
    env.up()
    lanes = build_storm_lanes(sim, env, n_endpoints, n_regions)

    # Phase 1: fill.
    t0 = sim.now
    procs = [sim.process(lane.register(batch), name=f"storm-fill:r{lane.region}")
             for lane in lanes]
    filled = sum(sim.run_coro(_join(procs)))
    fill_elapsed = max(sim.now - t0, 1e-9)
    loads_filled = env.fleet.publish_load()
    if keepalive_interval is not None:
        for lane in lanes:
            sim.process(lane.keepalive_loop(keepalive_interval),
                        name=f"storm-keepalive:r{lane.region}")

    # Phase 2: regional outage (table-resident — nothing materialized).
    injector = FaultInjector(sim)
    downed = injector.regional_outage(env.table, outage_region)

    # Phase 3: mass reconnect + punch probes under the storm.
    t1 = sim.now
    storm_lane = lanes[outage_region]
    reconnect_proc = sim.process(storm_lane.register(batch),
                                 name="storm-reconnect")
    punch_latencies: list[float] = []
    pairs = [(f"p{2 * i}", f"p{2 * i + 1}") for i in range(punch_pairs)]
    punch_proc = sim.process(
        _punch_probe(sim, env, pairs, punch_latencies), name="storm-punch")
    reconnected, _ = sim.run_coro(_join([reconnect_proc, punch_proc]))
    reconnect_elapsed = max(storm_lane.done_at - t1, 1e-9)
    if settle > 0:
        sim.run(until=sim.now + settle)
    loads_final = env.fleet.publish_load()

    accepted = rejected = splits = merges = remerges = handles = 0
    for server in env.rendezvous:
        rvz = sim.metrics.scope(f"{server.host.name}.rvz")
        accepted += int(rvz.value("admission.accepted"))
        rejected += int(rvz.value("admission.rejected"))
        can = sim.metrics.scope(f"{server.can.node_id}.can")
        splits += int(can.value("splits"))
        merges += int(can.value("merges"))
        remerges += int(can.value("remerges"))
        handles += int(can.value("handles.stored"))
    coalesced = sum(int(sim.metrics.value(f"lane{r}.rpc.retries_coalesced"))
                    for r in range(n_regions))
    bytes_total = steady_state_bytes(env)
    payload = {
        "n_endpoints": n_endpoints,
        "n_rendezvous": n_rendezvous,
        "n_regions": n_regions,
        "rows": len(env.table),
        "registered": env.table.registered_count,
        "filled": filled,
        "fill_elapsed_s": fill_elapsed,
        "fill_ops_per_sec": filled / fill_elapsed,
        "outage_endpoints": len(downed),
        "reconnected": reconnected,
        "reconnect_elapsed_s": reconnect_elapsed,
        "reconnect_ops_per_sec": reconnected / reconnect_elapsed,
        "rejected_batches": sum(lane.rejected_batches for lane in lanes),
        "admission_accepted": accepted,
        "admission_rejected": rejected,
        "retries_coalesced": coalesced,
        "punch_latency_s": punch_latencies,
        "keepalive_sweeps": sum(lane.keepalive_sweeps for lane in lanes),
        "keepalives_acked": sum(lane.keepalives_acked for lane in lanes),
        "can_splits": splits,
        "can_merges": merges,
        "can_remerges": remerges,
        "handles_stored": handles,
        "fleet_load_filled": loads_filled,
        "fleet_load_final": loads_final,
        "steady_state_bytes": bytes_total,
        "bytes_per_endpoint": bytes_total / max(len(env.table), 1),
    }
    return sim, payload
