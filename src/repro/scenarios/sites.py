"""The 7-site real-WAN testbed of Table I.

Latencies come from the paper's own measurements (Tables I-V): pairwise
RTTs where reported, composed via HKU (the paper's transitivity
assumption, Eq. 3) otherwise. Access bandwidths are backed out of the
Netperf/WAVNet bandwidth column of Tables IV-V: the pair bottleneck in
those tables equals min(access(a), access(b)).

Note: the paper reports the HKU-SDSC RTT as 271.2 ms in Table I and
217.2 ms in Table V; we use Table V's value since it feeds the headline
migration experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scenarios.wavnet_env import WavnetEnvironment, WavnetHost
from repro.sim.engine import Simulator

__all__ = ["SITES", "PAIR_RTTS_MS", "RealWan", "build_real_wan"]


@dataclass(frozen=True)
class SiteSpec:
    """One row of Table I (plus backed-out access bandwidth)."""

    name: str
    machine: str
    rtt_to_hku_ms: float
    access_mbps: float
    cpu_factor: float


SITES: dict[str, SiteSpec] = {
    "pu": SiteSpec("pu", "Intel Core 2 Quad Q6600 2.40GHz (4085MB), Taiwan",
                   30.2, 45.0, 1.2),
    "sinica": SiteSpec("sinica", "Intel Xeon E5520 2.27GHz KVM 2 cores (8183MB), Taiwan",
                       24.8, 43.0, 1.3),
    "aist": SiteSpec("aist", "Intel Core 2 Duo E6300 1.86GHz (3191MB), Japan",
                     75.8, 55.0, 1.0),
    "sdsc": SiteSpec("sdsc", "Intel Xeon 3.20GHz KVM 4 cores (16383MB), USA",
                     217.2, 28.0, 1.1),
    "hku1": SiteSpec("hku1", "Intel Core 2 Duo T7250 (1526MB), HK", 0.5, 100.0, 1.0),
    "hku2": SiteSpec("hku2", "Intel Pentium 4 2.80GHz (1526MB), HK", 0.5, 100.0, 0.6),
    "offcam": SiteSpec("offcam", "Home PC, Intel Pentium 4 2.80GHz (1279MB), HK",
                       4.4, 90.0, 0.6),
    "siat": SiteSpec("siat", "Intel Pentium 4 2.80GHz (1279MB), Shenzhen",
                     74.2, 19.0, 0.6),
}

# Directly measured pair RTTs (ms) from Tables II and III.
PAIR_RTTS_MS: dict[tuple[str, str], float] = {
    ("hku1", "siat"): 74.244,
    ("hku1", "pu"): 30.233,
    ("siat", "pu"): 219.427,
    ("sinica", "siat"): 100.3,
    ("hku1", "sinica"): 24.8,
    ("hku1", "aist"): 75.8,
    ("hku1", "sdsc"): 217.2,
    ("hku1", "offcam"): 4.4,
    ("hku1", "hku2"): 0.5,
}


def pair_rtt_ms(a: str, b: str) -> float:
    """RTT between two sites: measured if reported, composed via HKU
    (Eq. 3 transitivity) otherwise."""
    if a == b:
        return 0.2
    for key in ((a, b), (b, a)):
        if key in PAIR_RTTS_MS:
            return PAIR_RTTS_MS[key]

    def to_hku(site: str) -> float:
        return SITES[site].rtt_to_hku_ms

    return to_hku(a) + to_hku(b)


@dataclass
class RealWan:
    """The built testbed: environment + per-site WAVNet hosts."""

    env: WavnetEnvironment
    hosts: dict[str, WavnetHost]

    def host(self, name: str) -> WavnetHost:
        return self.hosts[name]


def build_real_wan(sim: Simulator, site_names=None, nat_type: str = "port-restricted",
                   tcp_mss: int = 1460, pulse_interval: float = 5.0,
                   tcp_send_buf: int = 262144, tcp_recv_buf: int = 262144) -> RealWan:
    """Assemble the Table I testbed as a WAVNet environment.

    ``hku1`` and ``hku2`` are separate attachments whose mutual RTT is
    the paper's 0.5 ms; one rendezvous server (public IP in Hong Kong,
    as in the paper) serves all sites.
    """
    site_names = list(site_names or SITES)
    env = WavnetEnvironment(sim, default_latency=0.040)
    hosts: dict[str, WavnetHost] = {}
    for name in site_names:
        spec = SITES[name]
        hosts[name] = env.add_host(
            name,
            nat_type=nat_type,
            access_bandwidth_bps=spec.access_mbps * 1e6,
            access_latency=0.0002,
            attrs={"cpu_ghz": spec.cpu_factor * 2.0, "mem_mb": 2048.0},
            cpu_factor=spec.cpu_factor,
            tcp_mss=tcp_mss,
            tcp_send_buf=tcp_send_buf,
            tcp_recv_buf=tcp_recv_buf,
            pulse_interval=pulse_interval,
        )
    for i, a in enumerate(site_names):
        for b in site_names[i + 1:]:
            # Access links already contribute 0.4 ms per site + LAN hops;
            # the cloud carries the remainder of the measured RTT.
            residual = max(pair_rtt_ms(a, b) / 1000.0 - 2 * (0.0002 * 2 + 0.0001 * 2), 1e-4)
            env.cloud.set_rtt(a, b, residual)
        # Control-plane paths (rendezvous/STUN sit in Hong Kong).
        hku_ms = SITES[a].rtt_to_hku_ms
        for infra in ("rvz0", "stun.primary", "stun.alt"):
            env.cloud.set_rtt(a, infra, max(hku_ms / 1000.0, 1e-4))
    return RealWan(env=env, hosts=hosts)
