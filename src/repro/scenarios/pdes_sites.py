"""PDES-capable scenarios: site-partitioned builds of the standard
workloads.

Every scenario here follows the :mod:`repro.sim.pdes` contract — it
takes ``partitions=`` as an ordinary parameter plus the private
``_partition=None`` hook, assigns each WAN site (and everything behind
it) to a *site group*, builds only the groups its partition owns, and
declares every other group's attachment points as remote cloud sites.
Serial runs (``run_spec``) execute the identical code path with a
serial :class:`~repro.sim.pdes.PartitionContext` that owns every group.

Three properties keep the merged partitioned result byte-identical to
the serial run:

* **Full remote declarations.** A partition declares *all* non-owned
  sites, in both directions: replies to MACs learned from injected
  frames must hit the outbox (not fall through to a missing local
  port), and flood records must reach every partition — exactly the
  sites a serial flood would deliver to.
* **Distinct event times.** Per-pair WAN latencies are drawn from a
  hash of the site names (20–30 ms, all distinct), and every scripted
  action (driver starts, connects, transfers, faults) gets its own
  timestamp. Cross-partition calendar ties would otherwise make the
  merged trace order differ from the serial log order.
* **Time-scripted orchestration.** All cross-group coordination is
  scheduled at fixed simulation times; no scenario-level process ever
  awaits a completion that lives in another partition.
"""

from __future__ import annotations

import zlib

from repro.apps.netperf import netperf_stream, netserver
from repro.apps.ttcp import ttcp_receiver, ttcp_transfer
from repro.exp.spec import scenario
from repro.faults.plan import FaultPlan
from repro.net.addresses import IPv4Address
from repro.net.fluid import FluidNetwork, FluidPath
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_public_host
from repro.scenarios.fluid import _find_link
from repro.scenarios.storm import StormLane
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator
from repro.sim.pdes import PartitionContext, pdes_merger

__all__ = ["pdes_churn", "pdes_fluid_mix", "pdes_mesh", "pdes_storm"]

# All cross-site latencies live in [20ms, 30ms): a fat conservative
# lookahead (few windows per simulated second) while staying in the
# paper's wide-area regime.
_LAT_BASE = 0.020


def _pair_latency(a: str, b: str) -> float:
    """Deterministic, symmetric, per-pair-distinct one-way latency."""
    lo, hi = sorted((a, b))
    return _LAT_BASE + (zlib.crc32(f"{lo}|{hi}".encode()) % 997) * 1e-5


def _set_mesh_latencies(cloud: WanCloud, sites: list[str],
                        scale: float = 1.0) -> None:
    """Install the pairwise latency plan — called with the identical
    site list in every partition, so the replicated tables agree.
    ``scale`` stretches every latency (global-region deployments):
    a bigger minimum latency means a bigger PDES lookahead, so fewer
    window barriers per simulated second."""
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            cloud.set_latency(a, b, scale * _pair_latency(a, b))


def _build_mesh(sim: Simulator, ctx: PartitionContext, n_sites: int,
                hosts_per_site: int, n_rendezvous: int):
    """Shared topology for the mesh scenarios: site group ``g`` owns
    hosts ``s{g}h{j}``; the control plane (STUN + rendezvous fleet)
    rides along in group 0."""
    env = WavnetEnvironment(sim, default_latency=_LAT_BASE,
                            n_rendezvous=n_rendezvous,
                            build_control=ctx.owns(0),
                            control_partition=ctx.owner_of(0))
    names = [[f"s{g}h{j}" for j in range(hosts_per_site)]
             for g in range(n_sites)]
    control = ["stun.primary", "stun.alt"] + \
              [f"rvz{i}" for i in range(n_rendezvous)]
    _set_mesh_latencies(env.cloud,
                        control + [n for group in names for n in group])
    # Declare every endpoint everywhere (lock-step vip/address
    # allocation), then build owned groups / declare the rest remote.
    for group in names:
        for name in group:
            env.add_endpoint(name)  # fleet-assigned rendezvous server
    for g, group in enumerate(names):
        for name in group:
            if ctx.owns(g):
                env.build_declared(name)
            else:
                env.declare_remote_host(name, ctx.owner_of(g))
    if ctx.owns(0) and n_rendezvous > 1:
        sim.call_at(0.01,
                    lambda: sim.process(env.join_rendezvous_overlay()))
    k = 0
    for g, group in enumerate(names):
        for name in group:
            if ctx.owns(g):
                drv = env.hosts[name].driver
                sim.call_at(0.5 + 0.131 * k,
                            lambda d=drv: sim.process(d.start()))
            k += 1
    return env, names


def _record_connect(sim, driver, peer: str, out: dict, key: str):
    """Process: punch a tunnel and record when it came up."""
    conn = yield from driver.connect_by_name(peer)
    out[key] = {"established_at": conn.established_at,
                "relayed": bool(conn.relayed)}


def _record_netperf(sim, host, dst_ip, duration: float, out: dict, key: str):
    """Process: one netperf TCP_STREAM over the tunnel."""
    res = yield from netperf_stream(host, dst_ip, duration=duration,
                                    interval=1.0)
    out[key] = {"bytes": int(res.bytes_received),
                "mbps": float(res.throughput_mbps)}


@scenario("pdes_mesh")
def pdes_mesh(seed: int = 0, partitions: int = 1, n_sites: int = 4,
              hosts_per_site: int = 1, n_rendezvous: int = 2,
              duration: float = 6.0, horizon: float = 32.0,
              _partition=None):
    """Fig-08-style site mesh, partitionable by site: every site brings
    up WAVNet hosts, punches a tunnel ring across sites, and streams
    netperf over the tunnels — registration, punch coordination, and
    bulk traffic all cross the partition boundary."""
    ctx = _partition or PartitionContext(int(partitions))
    sim = Simulator(seed=seed)
    env, names = _build_mesh(sim, ctx, n_sites, hosts_per_site, n_rendezvous)
    connect: dict[int, dict] = {g: {} for g in range(n_sites) if ctx.owns(g)}
    netperf: dict[int, dict] = {g: {} for g in range(n_sites) if ctx.owns(g)}
    k = 0
    for g, group in enumerate(names):
        for name in group:
            if ctx.owns(g):
                host = env.hosts[name].host
                sim.call_at(4.0 + 0.071 * k,
                            lambda h=host: sim.process(netserver(h)))
            k += 1
    for g in range(n_sites):
        peer_g = (g + 1) % n_sites
        src, dst = names[g][0], names[peer_g][0]
        dst_vip = IPv4Address(int(env.table.virtual_ip[env.table.lookup(dst)]))
        if not ctx.owns(g):
            continue
        drv = env.hosts[src].driver
        sim.call_at(12.0 + 0.211 * g,
                    lambda d=drv, p=dst, o=connect[g], key=f"{src}->{dst}":
                    sim.process(_record_connect(sim, d, p, o, key)))
        host = env.hosts[src].host
        sim.call_at(20.0 + 0.173 * g,
                    lambda h=host, ip=dst_vip, o=netperf[g],
                    key=f"{src}->{dst}":
                    sim.process(_record_netperf(sim, h, ip, duration, o, key)))
    ctx.run(sim, env.cloud, horizon)
    shards = {g: {"connect": connect[g], "netperf": netperf[g]}
              for g in connect}
    if ctx.serial:
        return sim, _merge_mesh(shards)
    return sim, shards


@pdes_merger("pdes_mesh")
def _merge_mesh(shards: dict) -> dict:
    connect: dict = {}
    netperf: dict = {}
    for g in sorted(shards):
        connect.update(shards[g]["connect"])
        netperf.update(shards[g]["netperf"])
    established = sorted(v["established_at"] for v in connect.values())
    return {
        "n_groups": len(shards),
        "connect": connect,
        "netperf": netperf,
        "tunnels": len(connect),
        "relayed": sum(1 for v in connect.values() if v["relayed"]),
        "mesh_established_at": established[-1] if established else None,
        "total_mbytes": sum(v["bytes"] for v in netperf.values()) / 1e6,
    }


@scenario("pdes_churn")
def pdes_churn(seed: int = 0, partitions: int = 1, n_rendezvous: int = 2,
               horizon: float = 34.0, _partition=None):
    """Two host sites plus control, with a group-tagged fault schedule:
    a driver crash/restore and a NAT reboot in group 1, a link flap in
    group 0 — each verb armed exactly once, in the partition that owns
    the faulted object, while the tunnel's other end reacts from the
    neighboring partition."""
    ctx = _partition or PartitionContext(int(partitions))
    sim = Simulator(seed=seed)
    env, names = _build_mesh(sim, ctx, 2, 2, n_rendezvous)
    connect: dict[int, dict] = {g: {} for g in (0, 1) if ctx.owns(g)}
    for j, t in ((0, 12.1), (1, 12.9)):
        src, dst = f"s0h{j}", f"s1h{j}"
        if ctx.owns(0):
            drv = env.hosts[src].driver
            sim.call_at(t,
                        lambda d=drv, p=dst, o=connect[0],
                        key=f"{src}->{dst}":
                        sim.process(_record_connect(sim, d, p, o, key)))
    plan = FaultPlan(sim, name="pdes-churn")
    if ctx.owns(1):
        cid = env.hosts["s1h0"].driver.component_id
        plan.at(18.31, "crash", group=1, component_id=cid)
        plan.at(24.71, "restore", group=1, component_id=cid)
        plan.at(27.13, "nat_reboot", group=1,
                nat=env.hosts["s1h1"].site.nat)
    if ctx.owns(0):
        plan.at(20.57, "link_flap", group=0,
                link=env.hosts["s0h0"].site.access_link, down_for=2.0)
    plan.arm(partition=None if ctx.serial else ctx)
    ctx.run(sim, env.cloud, horizon)
    shards: dict[int, dict] = {}
    for g in (0, 1):
        if not ctx.owns(g):
            continue
        hosts = {}
        for name in names[g]:
            drv = env.hosts[name].driver
            hosts[name] = {"running": bool(drv.running),
                           "connections": sorted(drv.connections)}
        shard = {"hosts": hosts, "connect": connect.get(g, {}),
                 "faults_armed": sum(1 for e in plan.events if e.group == g)}
        if g == 0:
            shard["registered"] = int(env.table.registered_count)
        shards[g] = shard
    if ctx.serial:
        return sim, _merge_churn(shards)
    return sim, shards


@pdes_merger("pdes_churn")
def _merge_churn(shards: dict) -> dict:
    hosts: dict = {}
    connect: dict = {}
    registered = None
    armed = 0
    for g in sorted(shards):
        sh = shards[g]
        hosts.update(sh["hosts"])
        connect.update(sh["connect"])
        armed += sh["faults_armed"]
        if "registered" in sh:
            registered = sh["registered"]
    return {
        "hosts": hosts,
        "connect": connect,
        "faults_armed": armed,
        "registered": registered,
        "running": sum(1 for h in hosts.values() if h["running"]),
    }


def _record_fill(sim, lane: StormLane, batch: int, out: dict, key: str):
    """Process: one lane registration pass, with its finish time."""
    count = yield from lane.register(batch)
    out[key] = {"count": int(count), "done_at": sim.now}


@scenario("pdes_storm")
def pdes_storm(seed: int = 0, partitions: int = 1, n_endpoints: int = 600,
               n_rendezvous: int = 2, n_regions: int = 3, batch: int = 128,
               keepalive_interval: float = 6.0, outage_region: int = 0,
               horizon: float = 45.0, lat_scale: float = 1.0,
               _partition=None):
    """Registration storm partitioned by region: group 0 owns the whole
    control plane (STUN, rendezvous fleet, the authoritative table),
    groups ``1+r`` own one lane concentrator each. Lanes register,
    sweep batched keepalives, and re-register after a regional outage —
    every control-plane op is a cross-partition RPC."""
    ctx = _partition or PartitionContext(int(partitions))
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, n_rendezvous=n_rendezvous,
                            replication_factor=1,
                            build_control=ctx.owns(0),
                            control_partition=ctx.owner_of(0))
    # Registrations land only where the servers live; every other
    # partition's table replica is allocation-only.
    env.table.claim_partition(0, ctx)
    control = ["stun.primary", "stun.alt"] + \
              [f"rvz{i}" for i in range(n_rendezvous)]
    _set_mesh_latencies(env.cloud,
                        control + [f"lane{r}" for r in range(n_regions)],
                        scale=lat_scale)
    if ctx.owns(0) and n_rendezvous > 1:
        sim.call_at(0.01,
                    lambda: sim.process(env.join_rendezvous_overlay()))
    lanes: dict[int, StormLane] = {}
    fills: dict[int, dict] = {}
    base = 0
    for r in range(n_regions):
        count = n_endpoints // n_regions \
            + (1 if r < n_endpoints % n_regions else 0)
        if ctx.owns(1 + r):
            lanes[r] = StormLane(sim, env, region=r, count=count,
                                 base_index=base)
            fills[r] = {}
        else:
            env.cloud.declare_remote_site(f"lane{r}", ctx.owner_of(1 + r))
        base += count
    for r, lane in lanes.items():
        sim.call_at(1.0 + 0.157 * r,
                    lambda ln=lane, o=fills[r]: sim.process(
                        _record_fill(sim, ln, batch, o, "fill"),
                        name=f"storm-fill:r{ln.region}"))
        if keepalive_interval:
            sim.call_at(8.0 + 0.193 * r,
                        lambda ln=lane: sim.process(
                            ln.keepalive_loop(keepalive_interval),
                            name=f"storm-keepalive:r{ln.region}"))
    plan = FaultPlan(sim, name="pdes-storm")
    plan.at(22.0, "regional_outage", group=0, table=env.table,
            region=outage_region)
    plan.arm(partition=None if ctx.serial else ctx)
    if outage_region in lanes:
        sim.call_at(28.0, lambda ln=lanes[outage_region],
                    o=fills[outage_region]: sim.process(
                        _record_fill(sim, ln, batch, o, "refill"),
                        name="storm-reconnect"))
    ctx.run(sim, env.cloud, horizon)
    shards: dict[int, dict] = {}
    if ctx.owns(0):
        accepted = rejected = splits = merges = remerges = handles = 0
        for server in env.rendezvous:
            rvz = sim.metrics.scope(f"{server.host.name}.rvz")
            accepted += int(rvz.value("admission.accepted"))
            rejected += int(rvz.value("admission.rejected"))
            can = sim.metrics.scope(f"{server.can.node_id}.can")
            splits += int(can.value("splits"))
            merges += int(can.value("merges"))
            remerges += int(can.value("remerges"))
            handles += int(can.value("handles.stored"))
        shards[0] = {"rows": len(env.table),
                     "registered": int(env.table.registered_count),
                     "admission_accepted": accepted,
                     "admission_rejected": rejected,
                     "can_splits": splits, "can_merges": merges,
                     "can_remerges": remerges, "handles_stored": handles}
    for r, lane in lanes.items():
        shards[1 + r] = {
            "region": r,
            "endpoints": len(lane.names),
            "fill": fills[r].get("fill"),
            "refill": fills[r].get("refill"),
            "rejected_batches": lane.rejected_batches,
            "failed": lane.failed,
            "keepalive_sweeps": lane.keepalive_sweeps,
            "keepalives_acked": lane.keepalives_acked,
        }
    if ctx.serial:
        return sim, _merge_storm(shards)
    return sim, shards


@pdes_merger("pdes_storm")
def _merge_storm(shards: dict) -> dict:
    control = shards.get(0, {})
    lanes = [shards[g] for g in sorted(shards) if g != 0]
    payload = {
        "n_regions": len(lanes),
        "filled": sum((ln["fill"] or {}).get("count", 0) for ln in lanes),
        "reconnected": sum((ln["refill"] or {}).get("count", 0)
                           for ln in lanes),
        "rejected_batches": sum(ln["rejected_batches"] for ln in lanes),
        "failed": sum(ln["failed"] for ln in lanes),
        "keepalive_sweeps": sum(ln["keepalive_sweeps"] for ln in lanes),
        "keepalives_acked": sum(ln["keepalives_acked"] for ln in lanes),
        "lanes": {str(ln["region"]): ln for ln in lanes},
    }
    payload.update(control)
    return payload


def _record_ttcp(sim, host, dst_ip, nbytes: int, out: dict, key):
    """Process: one cross-group packet-fidelity TCP transfer."""
    res = yield from ttcp_transfer(host, dst_ip, nbytes)
    out[key] = {"bytes": int(res.total_bytes),
                "elapsed": float(res.elapsed), "done_at": sim.now}


@scenario("pdes_fluid_mix")
def pdes_fluid_mix(seed: int = 0, partitions: int = 1, n_groups: int = 2,
                   fluid_mb: float = 40.0, packet_mb: float = 4.0,
                   horizon: float = 16.0, _partition=None):
    """Mixed fidelity under partitioning: each group runs an
    intra-group bulk transfer on its own fluid solver, then the groups
    exchange packet-fidelity TCP transfers across the partition
    boundary (ARP floods, SYNs, and data all cross at the barrier).
    Fluid flows never ride a remote site — each partition's solver is
    self-contained, which is exactly what the cloud-boundary guard in
    :meth:`repro.net.fluid.FluidNetwork.open` enforces."""
    ctx = _partition or PartitionContext(int(partitions))
    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=_LAT_BASE)
    _set_mesh_latencies(cloud, [f"g{g}{x}" for g in range(n_groups)
                                for x in "ab"])
    net = FluidNetwork(sim, refresh_interval=0.0)
    hosts: dict[str, object] = {}
    for g in range(n_groups):
        for x, last in (("a", 1), ("b", 2)):
            site = f"g{g}{x}"
            if ctx.owns(g):
                hosts[site] = make_public_host(sim, cloud, site,
                                               f"8.9.{g}.{last}",
                                               network="8.9.0.0/16")
            else:
                cloud.declare_remote_site(site, ctx.owner_of(g))
    flows: dict[int, object] = {}
    ttcp: dict[int, dict] = {}
    for g in range(n_groups):
        if not ctx.owns(g):
            continue
        a, b = f"g{g}a", f"g{g}b"
        path = FluidPath(
            links=((net.link_for(_find_link(sim, f"{a}.access"), "ab"), 1.0),
                   (net.link_for(_find_link(sim, f"{b}.access"), "ba"), 1.0)),
            rtt=2.0 * (_pair_latency(a, b) + 0.001),
            sites=(a, b), cloud=cloud)
        dst = f"8.9.{g}.2"
        net.add_route(a, dst, path)
        # Fluid phase first (done by ~t=4), packet phase after t=10 —
        # no packet bytes in flight while the solver is measuring, so
        # the per-partition solvers see the serial run's utilization.
        sim.call_at(2.0 + 0.37 * g,
                    lambda gg=g, aa=a, dd=dst: flows.__setitem__(
                        gg, net.open(aa, dd,
                                     size_bytes=int(fluid_mb * 1e6),
                                     ramp=False, name=f"bulk{gg}")))
        sim.call_at(9.5 + 0.11 * g,
                    lambda h=hosts[b]: sim.process(ttcp_receiver(h)))
        peer_ip = IPv4Address(f"8.9.{(g + 1) % n_groups}.2")
        sim.call_at(10.0 + 0.29 * g,
                    lambda h=hosts[a], ip=peer_ip, o=ttcp, kk=g:
                    sim.process(_record_ttcp(sim, h, ip,
                                             int(packet_mb * 1e6), o, kk)))
    ctx.run(sim, cloud, horizon)
    shards: dict[int, dict] = {}
    for g in range(n_groups):
        if not ctx.owns(g):
            continue
        flow = flows.get(g)
        shards[g] = {
            "fluid": {"state": flow.state if flow else None,
                      "delivered": float(flow.delivered) if flow else 0.0},
            "ttcp": ttcp.get(g),
        }
    if ctx.serial:
        return sim, _merge_fluid_mix(shards)
    return sim, shards


@pdes_merger("pdes_fluid_mix")
def _merge_fluid_mix(shards: dict) -> dict:
    return {
        "groups": {str(g): shards[g] for g in sorted(shards)},
        "fluid_done": sum(1 for s in shards.values()
                          if s["fluid"]["state"] == "done"),
        "ttcp_done": sum(1 for s in shards.values() if s["ttcp"]),
        "fluid_mbytes": sum(s["fluid"]["delivered"]
                            for s in shards.values()) / 1e6,
    }
