"""Builders for the three network stacks every comparison runs on:
physical (native), WAVNet, and IPOP — over matched path parameters.

Each builder returns, for a given (RTT, bottleneck bandwidth), one
:class:`StackPair` exposing the same ``(sim, host_a, host_b, ip_b)``
surface, so measurement code is identical across stacks;
:func:`stack_pair` dispatches on the stack name, which is how the
``stack_ping`` experiment scenario parameterizes Table II cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.ipop import IpopConfig, IpopOverlay
from repro.exp.spec import scenario
from repro.net.addresses import IPv4Address
from repro.net.stack import Host
from repro.net.wan import WanCloud
from repro.scenarios.builder import make_natted_site
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator

__all__ = ["SITE_PATH_RTT", "StackPair", "ipop_pair", "physical_pair",
           "stack_pair", "wavnet_pair"]

# Fixed per-pair path cost outside the cloud: two sites, each with
# host->switch (0.1 ms) + switch->NAT (0.1 ms) + access (0.2 ms), both
# directions. The cloud carries the measured RTT minus this.
ACCESS_LATENCY = 0.0002
SITE_PATH_RTT = 2 * 2 * (0.0001 + 0.0001 + ACCESS_LATENCY)


@dataclass
class StackPair:
    """Endpoint pair for one stack, over matched path parameters.

    Exactly one of the stack-specific fields is set: ``env`` for WAVNet,
    ``overlay`` for IPOP, neither for the physical path. ``cloud`` is
    always the WAN carrying the pair."""

    sim: Simulator
    host_a: Host
    host_b: Host
    ip_b: IPv4Address
    cloud: WanCloud
    env: Optional[WavnetEnvironment] = None
    overlay: Optional[IpopOverlay] = None

    @property
    def metrics(self):
        """The pair's simulator-wide metrics registry (``repro.obs``)."""
        return self.sim.metrics

    @property
    def trace(self):
        """The pair's simulator-wide tracer (``repro.obs``)."""
        return self.sim.trace


def physical_pair(rtt: float, bandwidth_bps: float, seed: int = 0,
                  mss: int = 1460,
                  send_buf: int = 262144, recv_buf: int = 262144) -> StackPair:
    """Native path: two public hosts on the same cloud + access links the
    NATed builders use, so all three stacks share identical bottleneck
    structure; only NAT boxes and tunneling differ."""
    from repro.scenarios.builder import make_public_host

    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=0.010)
    a = make_public_host(sim, cloud, "pa", "8.5.0.1", access_latency=ACCESS_LATENCY,
                         access_bandwidth_bps=bandwidth_bps, tcp_mss=mss,
                         tcp_send_buf=send_buf, tcp_recv_buf=recv_buf)
    b = make_public_host(sim, cloud, "pb", "8.5.0.2", access_latency=ACCESS_LATENCY,
                         access_bandwidth_bps=bandwidth_bps, tcp_mss=mss,
                         tcp_send_buf=send_buf, tcp_recv_buf=recv_buf)
    cloud.set_rtt("pa", "pb", max(rtt - 2 * 2 * ACCESS_LATENCY, 1e-4))
    return StackPair(sim, a, b, IPv4Address("8.5.0.2"), cloud)


def wavnet_pair(rtt: float, bandwidth_bps: float, seed: int = 0,
                mss: int = 1460, nat_type: str = "port-restricted",
                send_buf: int = 262144, recv_buf: int = 262144) -> StackPair:
    """Two NATed WAVNet hosts punched together across the cloud."""
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, default_latency=0.010)
    for name in ("wa", "wb"):
        env.add_host(name, nat_type=nat_type,
                     access_bandwidth_bps=bandwidth_bps, tcp_mss=mss,
                     access_latency=ACCESS_LATENCY,
                     tcp_send_buf=send_buf, tcp_recv_buf=recv_buf)
    env.cloud.set_rtt("wa", "wb", max(rtt - SITE_PATH_RTT, 1e-4))
    env.up().connect("wa", "wb")
    a = env.hosts["wa"].host
    b = env.hosts["wb"].host
    return StackPair(sim, a, b, env.hosts["wb"].virtual_ip, env.cloud, env=env)


def ipop_pair(rtt: float, bandwidth_bps: float, seed: int = 0,
              mss: int = 1460, config: IpopConfig | None = None,
              send_buf: int = 262144, recv_buf: int = 262144) -> StackPair:
    """Two NATed IPOP endpoints (direct P2P edge, so the comparison
    isolates the per-packet user-level stack cost, as Table II/Fig 6 do).
    Full-size segments fragment over IPOP's ~1280 B P2P MTU inside the
    overlay (costing two stack services each), as real IPOP does."""
    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=0.010)
    overlay = IpopOverlay(sim, config=config)
    sites = []
    for i, name in enumerate(("ia", "ib")):
        site = make_natted_site(sim, cloud, name, f"8.6.0.{i + 1}",
                                lan_subnet=f"192.168.{60 + i}.0/24",
                                access_bandwidth_bps=bandwidth_bps, tcp_mss=mss,
                                access_latency=ACCESS_LATENCY,
                                tcp_send_buf=send_buf, tcp_recv_buf=recv_buf)
        overlay.add_node(site.hosts[0], f"10.128.0.{i + 1}", nat=site.nat)
        sites.append(site)
    cloud.set_rtt("ia", "ib", max(rtt - SITE_PATH_RTT, 1e-4))
    sim.run_coro(overlay.build_ring())
    a = sites[0].hosts[0]
    b = sites[1].hosts[0]
    return StackPair(sim, a, b, IPv4Address("10.128.0.2"), cloud, overlay=overlay)


STACKS = {"physical": physical_pair, "wavnet": wavnet_pair, "ipop": ipop_pair}


def stack_pair(stack: str, rtt: float, bandwidth_bps: float, seed: int = 0,
               **kwargs) -> StackPair:
    """Build the endpoint pair for ``stack`` ("physical" / "wavnet" /
    "ipop") over the given path parameters."""
    try:
        builder = STACKS[stack]
    except KeyError:
        raise ValueError(f"unknown stack {stack!r}; choose from {sorted(STACKS)}")
    return builder(rtt, bandwidth_bps, seed=seed, **kwargs)


@scenario("stack_ping")
def stack_ping(seed: int = 0, stack: str = "wavnet", rtt_ms: float = 50.0,
               bandwidth_mbps: float = 50.0, probes: int = 12,
               warmup: int = 2, interval: float = 0.5, pair: str = ""):
    """ICMP RTT through one stack (the Table II measurement, one cell):
    payload carries the post-warmup mean RTT and the loss count.
    ``pair`` is a pass-through label (e.g. the site pair a sweep axis
    names) echoed into the payload."""
    from repro.apps.ping import Pinger

    label = pair
    pair = stack_pair(stack, rtt_ms / 1000.0, bandwidth_mbps * 1e6, seed=seed)
    pinger = Pinger(pair.host_a.stack, pair.ip_b, interval=interval, timeout=5.0)
    pair.sim.run_coro(pinger.run(probes))
    name = pair.host_a.stack.name
    rtts = pair.metrics.series(f"{name}.ping.rtt").values[warmup:].tolist()
    payload = {
        "pair": label,
        "stack": stack,
        "mean_rtt_ms": sum(rtts) / len(rtts) * 1000.0 if rtts else None,
        "replies": len(rtts) + warmup,
        "lost": int(pair.metrics.value(f"{name}.ping.lost")),
    }
    return pair.sim, payload
