"""Generic topology assembly helpers.

These functions wire hosts, switches, NAT gateways, and the WAN cloud
together so tests and benchmarks never hand-build plumbing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import IPv4Address, IPv4Network, mac_factory
from repro.net.l2 import Link, Switch
from repro.net.stack import Host
from repro.net.wan import WanCloud
from repro.sim.engine import Simulator

__all__ = ["Lan", "NattedSite", "host_pair", "make_lan", "make_natted_site",
           "make_public_host", "named_mac_factory"]


def named_mac_factory(name: str):
    """A MAC factory whose prefix is derived from ``name``, so separately
    built sites/LANs never mint colliding addresses."""
    digest = zlib.crc32(name.encode("utf-8")) & 0x3FFFFF
    return mac_factory(prefix=(0x02 << 40) | (digest << 18))


def make_public_host(
    sim: Simulator,
    cloud: WanCloud,
    name: str,
    ip: str,
    network: str = "8.0.0.0/8",
    access_latency: float = 0.0005,
    access_bandwidth_bps: Optional[float] = 1e9,
    queue_capacity: int = 128,
    **stack_kwargs,
) -> Host:
    """A host with a public address attached directly to the WAN cloud
    (rendezvous servers, STUN servers, public test endpoints)."""
    host = Host(sim, name, named_mac_factory(name), **stack_kwargs)
    iface = host.add_nic().configure(ip, network)
    host.stack.connected_route_for(iface)
    host.stack.add_route("0.0.0.0/0", iface)
    Link(sim, iface.port, cloud.attach(name), latency=access_latency,
         bandwidth_bps=access_bandwidth_bps, queue_capacity=queue_capacity,
         name=f"{name}.access")
    return host


def host_pair(
    sim: Simulator,
    latency: float = 0.001,
    bandwidth_bps: Optional[float] = 100e6,
    loss: float = 0.0,
    queue_capacity: int = 128,
    subnet: str = "10.0.0.0/24",
    name_a: str = "hostA",
    name_b: str = "hostB",
    **stack_kwargs,
) -> tuple[Host, Host, Link]:
    """Two hosts on a direct link — the smallest usable topology."""
    mint = mac_factory()
    net = IPv4Network(subnet)
    a = Host(sim, name_a, mint, **stack_kwargs)
    b = Host(sim, name_b, mint, **stack_kwargs)
    ia = a.add_nic().configure(net.host(1), net)
    ib = b.add_nic().configure(net.host(2), net)
    a.stack.connected_route_for(ia)
    b.stack.connected_route_for(ib)
    link = Link(sim, ia.port, ib.port, latency=latency, bandwidth_bps=bandwidth_bps,
                loss=loss, queue_capacity=queue_capacity, name=f"{name_a}-{name_b}")
    return a, b, link


@dataclass
class Lan:
    """A switched LAN of hosts in one subnet."""

    switch: Switch
    network: IPv4Network
    hosts: list = field(default_factory=list)
    links: list = field(default_factory=list)

    def host_by_name(self, name: str) -> Host:
        for h in self.hosts:
            if h.name == name:
                return h
        raise KeyError(name)


def make_lan(
    sim: Simulator,
    n_hosts: int,
    subnet: str = "192.168.1.0/24",
    name: str = "lan",
    link_latency: float = 0.0001,
    link_bandwidth_bps: Optional[float] = 1e9,
    first_host_index: int = 10,
    mint=None,
    **stack_kwargs,
) -> Lan:
    """``n_hosts`` hosts attached to one learning switch."""
    mint = mint or named_mac_factory(name)
    net = IPv4Network(subnet)
    switch = Switch(sim, name=f"{name}.sw")
    lan = Lan(switch=switch, network=net)
    for i in range(n_hosts):
        host = Host(sim, f"{name}.h{i}", mint, **stack_kwargs)
        iface = host.add_nic().configure(net.host(first_host_index + i), net)
        host.stack.connected_route_for(iface)
        link = Link(sim, iface.port, switch.new_port(), latency=link_latency,
                    bandwidth_bps=link_bandwidth_bps, name=f"{name}.h{i}-sw")
        lan.hosts.append(host)
        lan.links.append(link)
    return lan


@dataclass
class NattedSite:
    """A site: private LAN behind a NAT gateway on the WAN cloud."""

    name: str
    nat: object  # repro.nat.box.NatBox
    lan: Lan
    access_link: Link
    public_ip: IPv4Address

    @property
    def hosts(self) -> list:
        return self.lan.hosts


def make_natted_site(
    sim: Simulator,
    cloud: WanCloud,
    name: str,
    public_ip: str,
    nat_type: str = "port-restricted",
    lan_subnet: str = "192.168.1.0/24",
    n_hosts: int = 1,
    access_bandwidth_bps: Optional[float] = 100e6,
    access_latency: float = 0.0005,
    udp_timeout: float = 60.0,
    port_alloc: Optional[str] = None,
    port_stride: int = 1,
    mint=None,
    **stack_kwargs,
) -> NattedSite:
    """Build LAN + NAT gateway and attach the site to the WAN cloud.

    Hosts get a default route via the NAT's inside address; the NAT gets a
    default route out its public interface. ``nat_type`` accepts combined
    specs like ``"symmetric-sequential"`` naming the port-allocation
    policy; ``port_alloc=``/``port_stride=`` override it explicitly.
    """
    from repro.nat.box import NatBox  # local import: nat depends on net

    mint = mint or named_mac_factory(name)
    lan = make_lan(sim, n_hosts, subnet=lan_subnet, name=name, mint=mint, **stack_kwargs)
    nat = NatBox(sim, f"{name}.nat", mint, nat_type=nat_type, udp_timeout=udp_timeout,
                 port_alloc=port_alloc, port_stride=port_stride)
    inside_ip = lan.network.host(1)
    inside = nat.add_inside(inside_ip, lan.network)
    Link(sim, inside.port, lan.switch.new_port(), latency=0.0001,
         bandwidth_bps=1e9, name=f"{name}.nat-sw")
    pub_ip = IPv4Address(public_ip)
    outside = nat.add_outside(pub_ip, "0.0.0.0/0")
    access = Link(sim, outside.port, cloud.attach(name), latency=access_latency,
                  bandwidth_bps=access_bandwidth_bps, name=f"{name}.access")
    for host in lan.hosts:
        host.stack.add_route("0.0.0.0/0", host.stack.interfaces[0], gateway=inside_ip)
    return NattedSite(name=name, nat=nat, lan=lan, access_link=access, public_ip=pub_ip)
