"""Bottleneck-fairness scenario family (ROADMAP item 2).

Does L2-over-UDP tunneling distort TCP fairness the way overlay
routing does? Every paper figure is single-flow; this family puts
*competing* flows on one constrained path and measures how the share
splits, per congestion-control algorithm (:mod:`repro.net.cc`) and per
stack (WAVNet tunnel vs the IPOP baseline vs the native path):

* :func:`fairness_bottleneck` — n flows through one shared
  1 Mbps / 200 ms-RTT bottleneck (the defaults; both knobs are
  parameters). Runs at either fidelity: ``packet`` simulates every
  frame, ``fluid`` asks the max-min solver for the same shares.
* :func:`fairness_parking_lot` — the classic multi-hop topology: one
  long flow crosses every hop, one short flow per hop crosses only
  its own, so max-min says everyone gets half a link but RTT bias
  says otherwise.
* :func:`fairness_mix` — elephants vs mice: long streams share the
  bottleneck with a stream of short transfers; reports elephant
  shares and mice flow-completion times.

Every payload carries per-flow goodput, Jain's fairness index
(:func:`jains_index`), RTT inflation (mean smoothed RTT over the base
path RTT, from the per-flow cc-trace series) and bottleneck-link
utilization, which is what ``benchmarks/bench_fairness.py`` gates on.

The default buffer sizing (``send_buf=recv_buf=32768``) puts the
aggregate window just under queue + BDP at the default bottleneck, so
loss-based algorithms reach a stable ACK-clocked equilibrium — the
regime where the fluid solver's shares are comparable within a few
percent. Raise the buffers to study the lossy regime (drops, w_max
convergence, BBR's probe cycles); the fluid plane has no queue, so
expect packet shares to drift from max-min there.
"""

from __future__ import annotations

import math

from repro.apps.netperf import netperf_stream, netserver
from repro.core.options import TransferOptions
from repro.exp.spec import scenario
from repro.net.cc import cc_class
from repro.scenarios.fluid import fluidify, wire_overhead_for
from repro.scenarios.stacks import stack_pair

__all__ = ["fairness_bottleneck", "fairness_mix", "fairness_parking_lot",
           "jains_index"]


def jains_index(rates) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in (0, 1];
    1.0 means perfectly equal shares, 1/n means one flow has it all."""
    xs = [float(x) for x in rates]
    if not xs:
        return 0.0
    total = sum(xs)
    square = sum(x * x for x in xs)
    if square <= 0.0:
        return 0.0
    return total * total / (len(xs) * square)


def _cc_list(cc, n_flows: int) -> list:
    """Expand a cc spec ("cubic", "reno,cubic,bbr", or a list) to one
    algorithm name per flow, validating each against the registry."""
    if isinstance(cc, str):
        names = [c.strip() for c in cc.split(",") if c.strip()]
    else:
        names = list(cc)
    for name in names:
        cc_class(name)  # unknown names fail here, listing what exists
    return [names[i % len(names)] for i in range(n_flows)]


def _rtt_inflation(metrics, stack_name: str, labels, base_rtt_ms: float):
    """Mean smoothed RTT across the labelled flows' cc-trace series,
    over the base path RTT (1.0 = no queueing delay)."""
    means = []
    for label in labels:
        series = metrics.series(f"{stack_name}.tcp.{label}.srtt_ms").values
        if series.size:
            means.append(float(series.mean()))
    if not means or base_rtt_ms <= 0:
        return None
    return (sum(means) / len(means)) / base_rtt_ms


@scenario("fairness_bottleneck")
def fairness_bottleneck(seed: int = 0, stack: str = "wavnet",
                        cc: str = "cubic", n_flows: int = 3,
                        fidelity: str = "packet", rtt_ms: float = 200.0,
                        bandwidth_mbps: float = 1.0, duration: float = 40.0,
                        mss: int = 1460, send_buf: int = 32768,
                        recv_buf: int = 32768, interval: float = 1.0,
                        stagger: float = 0.5):
    """``n_flows`` concurrent streams through one shared bottleneck.

    ``cc`` may name one algorithm for all flows or a comma-separated
    list assigned round-robin ("reno,cubic,bbr" races the three).
    Flow starts are staggered ``stagger`` seconds apart to break
    slow-start synchronization; each flow runs ``duration`` seconds."""
    if fidelity not in ("packet", "fluid"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    ccs = _cc_list(cc, n_flows)
    pair = stack_pair(stack, rtt_ms / 1000.0, bandwidth_mbps * 1e6,
                      seed=seed, mss=mss, send_buf=send_buf,
                      recv_buf=recv_buf)
    sim = pair.sim
    if fidelity == "fluid":
        fluidify(pair, mss=mss)
    else:
        sim.process(netserver(pair.host_b))

    labels = [f"fair{i}" for i in range(n_flows)]
    procs = []

    def one_flow(i):
        yield sim.timeout(i * stagger)
        result = yield from netperf_stream(
            pair.host_a, pair.ip_b, duration=duration, interval=interval,
            options=TransferOptions(
                fidelity=fidelity, cc=ccs[i],
                cc_trace=labels[i] if fidelity == "packet" else None))
        return result

    for i in range(n_flows):
        procs.append(sim.process(one_flow(i), name=labels[i]))
    for p in procs:
        sim.run(until=p)

    results = [p.value for p in procs]
    per_flow = [r.throughput_mbps for r in results]
    overhead = wire_overhead_for(
        stack, mss, pair.overlay.config if pair.overlay is not None else None)
    wire_factor = (mss + overhead) / mss
    window = duration + (n_flows - 1) * stagger
    total_bytes = sum(r.bytes_received for r in results)
    utilization = (total_bytes * 8 * wire_factor
                   / (bandwidth_mbps * 1e6 * window))
    inflation = (1.0 if fidelity == "fluid" else _rtt_inflation(
        sim.metrics, pair.host_a.stack.name, labels, rtt_ms))
    payload = {
        "stack": stack, "fidelity": fidelity, "cc": ccs,
        "n_flows": n_flows, "base_rtt_ms": rtt_ms,
        "bandwidth_mbps": bandwidth_mbps,
        "per_flow_mbps": per_flow,
        "jain": jains_index(per_flow),
        "rtt_inflation": inflation,
        "utilization": utilization,
    }
    return sim, payload


@scenario("fairness_parking_lot")
def fairness_parking_lot(seed: int = 0, cc: str = "cubic", n_hops: int = 3,
                         fidelity: str = "packet", rtt_ms: float = 200.0,
                         bandwidth_mbps: float = 1.0, duration: float = 40.0,
                         mss: int = 1460, send_buf: int = 32768,
                         recv_buf: int = 32768, interval: float = 1.0):
    """Parking lot: hosts h0..hN hang off a chain of switches joined by
    ``n_hops`` equal bottleneck links. One long flow h0 -> hN crosses
    every link; short flow i (h_{i-1} -> h_i) crosses only link i. Flow
    0 of the payload is the long flow. Max-min grants every flow half a
    link; the packet plane shows how far RTT bias pulls the long flow
    below that."""
    from repro.net.addresses import IPv4Address
    from repro.net.fluid import FluidNetwork, FluidPath
    from repro.net.l2 import Link, Switch
    from repro.net.stack import Host
    from repro.net.tcp import WIRE_OVERHEAD_TCP
    from repro.scenarios.builder import named_mac_factory
    from repro.sim.engine import Simulator

    if fidelity not in ("packet", "fluid"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    n_flows = n_hops + 1
    ccs = _cc_list(cc, n_flows)
    sim = Simulator(seed=seed)
    hop_latency = (rtt_ms / 1000.0) / (2.0 * n_hops)

    switches = [Switch(sim, name=f"pl.s{i}") for i in range(n_hops + 1)]
    hop_links = []
    for i in range(n_hops):
        hop_links.append(Link(sim, switches[i].new_port(),
                              switches[i + 1].new_port(),
                              latency=hop_latency,
                              bandwidth_bps=bandwidth_mbps * 1e6,
                              name=f"pl.l{i + 1}"))
    hosts, ips = [], []
    for i in range(n_hops + 1):
        host = Host(sim, f"plh{i}", named_mac_factory(f"plh{i}"),
                    tcp_mss=mss, tcp_send_buf=send_buf, tcp_recv_buf=recv_buf)
        ip = f"10.50.0.{i + 1}"
        iface = host.add_nic().configure(ip, "10.50.0.0/24")
        host.stack.connected_route_for(iface)
        Link(sim, iface.port, switches[i].new_port(), latency=1e-4,
             bandwidth_bps=1e9, name=f"plh{i}.access")
        hosts.append(host)
        ips.append(IPv4Address(ip))

    # (src_idx, dst_idx): long flow first, then one short flow per hop.
    flows = [(0, n_hops)] + [(i, i + 1) for i in range(n_hops)]
    for host in hosts:
        sim.process(netserver(host))

    if fidelity == "fluid":
        net = FluidNetwork(sim)
        factor = (mss + WIRE_OVERHEAD_TCP) / mss
        for src, dst in flows:
            links = tuple((net.link_for(hop_links[k], "ab"), factor)
                          for k in range(src, dst))
            path_rtt = 2.0 * hop_latency * (dst - src) + 4e-4
            net.add_route(hosts[src].name, str(ips[dst]),
                          FluidPath(links=links, rtt=path_rtt, mss=mss))

    labels = [f"pl{i}" for i in range(n_flows)]
    procs = []

    def one_flow(i, src, dst):
        yield sim.timeout(i * 0.5)
        result = yield from netperf_stream(
            hosts[src], ips[dst], duration=duration, interval=interval,
            options=TransferOptions(
                fidelity=fidelity, cc=ccs[i],
                cc_trace=labels[i] if fidelity == "packet" else None))
        return result

    for i, (src, dst) in enumerate(flows):
        procs.append(sim.process(one_flow(i, src, dst), name=labels[i]))
    for p in procs:
        sim.run(until=p)

    per_flow = [p.value.throughput_mbps for p in procs]
    fair_share = bandwidth_mbps / 2.0 * mss / (mss + WIRE_OVERHEAD_TCP)
    payload = {
        "fidelity": fidelity, "cc": ccs, "n_hops": n_hops,
        "base_rtt_ms": rtt_ms, "bandwidth_mbps": bandwidth_mbps,
        "per_flow_mbps": per_flow,
        "long_flow_mbps": per_flow[0],
        "jain": jains_index(per_flow),
        "long_vs_maxmin": per_flow[0] / fair_share if fair_share else None,
    }
    return sim, payload


@scenario("fairness_mix")
def fairness_mix(seed: int = 0, stack: str = "wavnet", cc: str = "cubic",
                 mice_cc: str = "", n_elephants: int = 2,
                 mice_kb: int = 64, mice_interval: float = 2.0,
                 fidelity: str = "packet", rtt_ms: float = 200.0,
                 bandwidth_mbps: float = 1.0, duration: float = 40.0,
                 mss: int = 1460, send_buf: int = 32768,
                 recv_buf: int = 32768):
    """Elephants vs mice on the shared bottleneck: ``n_elephants``
    long-running streams plus one short ``mice_kb`` transfer launched
    every ``mice_interval`` seconds. Reports elephant shares (Jain over
    elephants) and mice flow-completion times — the latency cost
    background bulk traffic imposes on short flows."""
    if fidelity not in ("packet", "fluid"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    from repro.apps.ttcp import TTCP_PORT, ttcp_transfer

    e_ccs = _cc_list(cc, n_elephants)
    m_cc = mice_cc or (e_ccs[0] if e_ccs else "cubic")
    _cc_list(m_cc, 1)
    pair = stack_pair(stack, rtt_ms / 1000.0, bandwidth_mbps * 1e6,
                      seed=seed, mss=mss, send_buf=send_buf,
                      recv_buf=recv_buf)
    sim = pair.sim
    if fidelity == "fluid":
        fluidify(pair, mss=mss)
    else:
        sim.process(netserver(pair.host_b))
        sim.process(netserver(pair.host_b, port=TTCP_PORT))

    elephants = [sim.process(
        netperf_stream(pair.host_a, pair.ip_b, duration=duration,
                       options=TransferOptions(fidelity=fidelity,
                                               cc=e_ccs[i])),
        name=f"elephant{i}") for i in range(n_elephants)]

    fcts: list[float] = []
    mice_failed = [0]

    def mouse():
        t0 = sim.now
        try:
            yield from ttcp_transfer(pair.host_a, pair.ip_b, mice_kb * 1024,
                                     options=TransferOptions(
                                         fidelity=fidelity, cc=m_cc))
        except Exception:
            mice_failed[0] += 1
            return
        fcts.append(sim.now - t0)

    def mice_loop():
        t_end = sim.now + duration
        while sim.now < t_end - 1e-9:
            sim.process(mouse())
            yield sim.timeout(mice_interval)

    sim.process(mice_loop())
    for p in elephants:
        sim.run(until=p)
    sim.run(until=sim.now + 5.0)  # let the last mice drain

    e_rates = [p.value.throughput_mbps for p in elephants]
    fct_ms = sorted(f * 1000.0 for f in fcts)
    payload = {
        "stack": stack, "fidelity": fidelity, "cc": e_ccs, "mice_cc": m_cc,
        "elephant_mbps": e_rates,
        "jain_elephants": jains_index(e_rates),
        "mice_done": len(fct_ms), "mice_failed": mice_failed[0],
        "mice_fct_ms_mean": (sum(fct_ms) / len(fct_ms)) if fct_ms else None,
        "mice_fct_ms_p95": (fct_ms[min(len(fct_ms) - 1,
                                       math.ceil(0.95 * len(fct_ms)) - 1)]
                            if fct_ms else None),
    }
    return sim, payload
