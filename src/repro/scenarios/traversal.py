"""NAT-traversal matrix and path-migration scenarios (DESIGN.md §16).

Three registered scenarios back ``tests/test_traversal.py`` and
``benchmarks/bench_traversal.py``:

* ``traversal_pair``    — one WAVNet pair across an arbitrary NAT×NAT
  cell; reports whether the punch went direct or fell back to relay.
* ``ipop_traversal``    — the same cell under the IPOP baseline's
  scripted simultaneous-hello bootstrap (no port prediction), reporting
  whether a direct overlay edge formed.
* ``migration_repair``  — an established pair whose NAT reboots;
  measures time-to-repair either via QUIC-style path migration
  (``migration=True``) or the classic liveness-death → re-punch loop.

NAT specs accept the combined ``"<type>-<policy>"`` form, e.g.
``"symmetric-sequential"`` (see :func:`repro.nat.types.split_nat_spec`).
"""

from __future__ import annotations

from repro.exp.spec import scenario
from repro.faults import FaultPlan
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator

__all__ = ["NAT_SPECS", "expected_direct", "ipop_traversal",
           "migration_repair", "traversal_pair"]

#: The NAT-type axis of the traversal matrix (both sides).
NAT_SPECS = ("full-cone", "restricted-cone", "port-restricted",
             "symmetric-sequential", "symmetric-random")


def expected_direct(nat_a: str, nat_b: str) -> bool:
    """Whether WAVNet (with port prediction) should punch the cell
    directly. Any cone×cone cell punches classically; a predictable
    (sequential) symmetric side punches against anything predictable or
    cone; a random-allocating symmetric side is only reachable direct
    when the *other* side filters on IP alone (full/restricted cone) —
    its unpredictable port defeats prediction, but cone filters do not
    care which port the reply comes from."""
    def sym(s):
        return s.startswith("symmetric")

    def predictable(s):
        return s == "symmetric-sequential"

    if not sym(nat_a) and not sym(nat_b):
        return True
    for mine, other in ((nat_a, nat_b), (nat_b, nat_a)):
        if sym(mine) and not predictable(mine):
            # Random symmetric side: direct only if the peer admits
            # replies from any port (IP-restricted or open filter).
            if other not in ("full-cone", "restricted-cone"):
                return False
    return True


def _pair_env(sim: Simulator, nat_a: str, nat_b: str, rtt: float,
              **host_kwargs) -> WavnetEnvironment:
    env = WavnetEnvironment(sim, default_latency=rtt / 2.0, n_rendezvous=1)
    env.add_host("ta", nat_type=nat_a, **host_kwargs)
    env.add_host("tb", nat_type=nat_b, **host_kwargs)
    return env


@scenario("traversal_pair")
def traversal_pair(seed: int = 0, nat_a: str = "port-restricted",
                   nat_b: str = "port-restricted", rtt: float = 0.05,
                   predict_ports: bool = True, punch_fan: int = 8,
                   settle: float = 1.0):
    """One cell of the NAT×NAT traversal matrix: bring up two hosts
    behind the given NAT specs, punch ``ta -> tb``, and report how the
    connection came up."""
    sim = Simulator(seed=seed)
    env = _pair_env(sim, nat_a, nat_b, rtt,
                    predict_ports=predict_ports, punch_fan=punch_fan)
    conn = env.up().connect("ta", "tb")
    if settle > 0:
        sim.run(until=sim.now + settle)
    da, db = env.hosts["ta"].driver, env.hosts["tb"].driver
    payload = {
        "seed": seed,
        "nat_a": nat_a,
        "nat_b": nat_b,
        "direct": bool(conn is not None and not conn.relayed),
        "relayed": bool(conn is not None and conn.relayed),
        "usable": bool(conn is not None and conn.usable),
        "established_at": conn.established_at if conn is not None else None,
        "stride_a": da.alloc_stride,
        "stride_b": db.alloc_stride,
        "expected_direct": expected_direct(nat_a, nat_b),
    }
    return sim, payload


@scenario("ipop_traversal")
def ipop_traversal(seed: int = 0, nat_a: str = "port-restricted",
                   nat_b: str = "port-restricted", rtt: float = 0.05,
                   settle: float = 2.0):
    """The same NAT×NAT cell under the IPOP baseline: two overlay nodes
    bootstrap their ring edge with scripted simultaneous hellos toward
    build-time STUN-discovered endpoints — no allocation inference, no
    predicted-port fan. A cell is *direct* when both sides learned the
    other as a live edge."""
    from repro.baselines.ipop import IpopOverlay
    from repro.net.wan import WanCloud
    from repro.scenarios.builder import make_natted_site

    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=rtt / 2.0)
    site_a = make_natted_site(sim, cloud, "ia", "8.3.0.1", nat_type=nat_a,
                              lan_subnet="192.168.101.0/24")
    site_b = make_natted_site(sim, cloud, "ib", "8.3.0.2", nat_type=nat_b,
                              lan_subnet="192.168.102.0/24")
    overlay = IpopOverlay(sim)
    node_a = overlay.add_node(site_a.hosts[0], "10.128.0.1", nat=site_a.nat)
    node_b = overlay.add_node(site_b.hosts[0], "10.128.0.2", nat=site_b.nat)
    sim.run_coro(overlay.build_ring())
    if settle > 0:
        sim.run(until=sim.now + settle)
    direct = (node_b.name in node_a.neighbors
              and node_a.name in node_b.neighbors)
    payload = {
        "seed": seed,
        "nat_a": nat_a,
        "nat_b": nat_b,
        "direct": bool(direct),
    }
    return sim, payload


@scenario("migration_repair")
def migration_repair(seed: int = 0, migration: bool = True,
                     nat_type: str = "port-restricted",
                     pulse_interval: float = 0.5, reboot_at: float = 5.0,
                     horizon: float = 40.0):
    """Reboot one side's NAT under an established tunnel and measure the
    time until the pair is healed. ``migration=True`` heals via
    QUIC-style path validation on the stable connection ID;
    ``migration=False`` is the classic arm — liveness death, then the
    re-punch repair loop — at identical detection/backoff knobs."""
    sim = Simulator(seed=seed)
    env = WavnetEnvironment(sim, n_rendezvous=1)
    for name in ("ma", "mb"):
        env.add_host(name, nat_type=nat_type,
                     pulse_interval=pulse_interval,
                     keepalive_interval=10.0, punch_timeout=5.0,
                     repair_backoff_base=0.5, repair_backoff_cap=8.0,
                     migration=migration)
    env.up().connect("ma", "mb")
    fault_at = sim.now + reboot_at
    plan = FaultPlan(sim, name="traversal-migration")
    plan.at(fault_at, "nat_reboot", nat=env.hosts["ma"].site.nat)
    plan.arm()
    sim.run(until=fault_at + horizon)

    heal_names = ("conn.migrated", "conn.repaired")
    heals = [r for r in sim.trace.records
             if r["kind"] == "event" and r["name"] in heal_names
             and r["t"] >= fault_at]
    repair_seconds = [round(heals[0]["t"] - fault_at, 6)] if heals else []
    fwd = env.hosts["ma"].driver.connections.get("mb")
    rev = env.hosts["mb"].driver.connections.get("ma")
    usable = ((fwd is not None and fwd.usable)
              or (rev is not None and rev.usable))
    migrations = sum(1 for r in heals if r["name"] == "conn.migrated")
    payload = {
        "seed": seed,
        "migration": migration,
        "fault_at": fault_at,
        "healed": bool(heals),
        "repair_seconds": repair_seconds,
        "healed_by_migration": migrations > 0,
        "repunches": sum(1 for r in heals if r["name"] == "conn.repaired"),
        "usable": bool(usable),
        "relayed_after": bool((fwd is not None and fwd.relayed)
                              or (rev is not None and rev.relayed)),
    }
    return sim, payload
