"""Fluid-plane wiring for the standard topologies.

:func:`fluidify` attaches a :class:`~repro.net.fluid.FluidNetwork` to a
:class:`~repro.scenarios.stacks.StackPair` and registers the capacity
paths between its endpoints, so the same measurement code (`ttcp`,
`netperf`, `ab`) can run at ``fidelity="fluid"`` over any of the three
stacks. The per-stack knowledge lives here:

* **physical** — access links only; wire overhead 58 B per MSS
  (TCP/IP/Ethernet/FCS).
* **wavnet** — the NATed site chains (host-switch, switch-NAT, access),
  108 B per MSS (inner frame + WavData/UDP/IP/outer-Ethernet
  encapsulation), and the WAV tunnel as a conduit, so driver connection
  death stalls fluid flows exactly as it stalls packet ones.
* **ipop** — the same site chains with IPOP's fragmented framing
  (~226 B per full MSS), plus one *CPU* capacity link per endpoint
  modeling the serialized user-level stack, which is what caps IPOP
  throughput on fast paths. Its capacity is *calibrated* against the
  packet plane (:data:`IPOP_STEADY_CPU_BPS`) because the packet
  model's ceiling is an emergent ACK-clocking property, not a
  per-packet constant.

Also registers the ``fluid_fanout`` experiment scenario: N concurrent
bulk flows over a fan-out of host pairs, runnable at either fidelity —
the scalability workload behind ``benchmarks/bench_fluid_scale.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.exp.spec import scenario
from repro.net.fluid import FluidLink, FluidNetwork, FluidPath
from repro.net.tcp import WIRE_OVERHEAD_TCP

__all__ = ["IPOP_STEADY_CPU_BPS", "fluidify",
           "ipop_cpu_seconds_per_mss", "wire_overhead_for"]

# Per-packet encapsulation on top of the native frame (58 B):
# WAVNet: WavData header 4 + UDP 8 + IP 20 + outer Ethernet+FCS 18.
WAVNET_TUNNEL_OVERHEAD = 4 + 8 + 20 + 18

# -- Calibrated IPOP capacity ------------------------------------------
# The IPOP packet model's throughput cap is an *emergent* property: its
# serialized user-level stack is ACK-clocked, and the mean data-segment
# size the clocking converges to is not derivable from the per-packet
# constants (IpopConfig) alone. The fluid plane therefore carries the
# packet plane's measured steady-state goodput as a calibrated capacity
# (DESIGN.md §12, "Calibrated IPOP capacity").
#
# IPOP_STEADY_CPU_BPS is the full-MSS steady regime every unshaped (or
# mildly shaped) path converges to. Measured by size/duration
# differencing (which cancels the startup transient): ttcp increments
# 8->16 and 16->32 MB at 74.2 ms / 18.6 Mbps are wire-limited at
# 16.02 Mbps while netperf tails on fast wires sit at 17.90 Mbps — the
# CPU ceiling itself.
#
# Caveat: when the wire is shaped *near or below* this rate the packet
# plane is metastable — it wanders between the full-MSS regime and a
# slower small-segment interleaved-ACK regime depending on history.
# There is no single constant to calibrate there; that band needs
# packet fidelity (DESIGN.md §12, "When the fluid model applies").
IPOP_STEADY_CPU_BPS = 17.90e6


def wire_overhead_for(stack: str, mss: int, ipop_config=None) -> int:
    """Wire bytes per MSS of goodput beyond the MSS itself."""
    if stack == "physical":
        return WIRE_OVERHEAD_TCP
    if stack == "wavnet":
        return WIRE_OVERHEAD_TCP + WAVNET_TUNNEL_OVERHEAD
    if stack == "ipop":
        # Inner IP packet (mss + TCP 20 + IP 20) fragmented over the P2P
        # MTU; each fragment carries Brunet framing, the whole bundle
        # rides one UDP/IP/Ethernet datagram.
        from repro.baselines.ipop import IpopConfig

        cfg = ipop_config or IpopConfig()
        frags = max(1, -(-(mss + 40) // cfg.p2p_mtu))
        return 40 + frags * cfg.header_bytes + 8 + 20 + 18
    raise ValueError(f"unknown stack {stack!r}")


def ipop_cpu_seconds_per_mss(mss: int, ipop_config=None) -> float:
    """Serialized user-level stack time one endpoint spends per MSS of
    goodput: data service (one endpoint_cost per fragment) + the
    matching ACK service (one fragment) + jitter on each."""
    from repro.baselines.ipop import IpopConfig

    cfg = ipop_config or IpopConfig()
    frags = max(1, -(-(mss + 40) // cfg.p2p_mtu))
    return (frags + 1) * cfg.endpoint_cost + 2 * cfg.cpu_jitter_mean


def _find_link(sim, name: str):
    for comp in sim.components.find(kind="link").values():
        if comp.name == name:
            return comp
    raise KeyError(f"no link named {name!r}")


def _site_chains(net: FluidNetwork, sim, site: str, natted: bool,
                 factor: float):
    """(egress, ingress) chains of (FluidLink, factor) for one site,
    plus the one-way latency each chain contributes."""
    if not natted:
        access = _find_link(sim, f"{site}.access")
        egress = [(net.link_for(access, "ab"), factor)]
        ingress = [(net.link_for(access, "ba"), factor)]
        latency = access.ab.latency
        return egress, ingress, latency
    h0sw = _find_link(sim, f"{site}.h0-sw")
    natsw = _find_link(sim, f"{site}.nat-sw")
    access = _find_link(sim, f"{site}.access")
    egress = [(net.link_for(h0sw, "ab"), factor),
              (net.link_for(natsw, "ba"), factor),
              (net.link_for(access, "ab"), factor)]
    ingress = [(net.link_for(access, "ba"), factor),
               (net.link_for(natsw, "ab"), factor),
               (net.link_for(h0sw, "ba"), factor)]
    latency = h0sw.ab.latency + natsw.ab.latency + access.ab.latency
    return egress, ingress, latency


def fluidify(pair, mss: int = 1460, refresh_interval: float = 0.5,
             util_floor: float = 0.01,
             stall_timeout: Optional[float] = None,
             extra_rtt: Optional[float] = None,
             ipop_cpu_bps: Optional[float] = None) -> FluidNetwork:
    """Attach a FluidNetwork to a StackPair's simulator and register the
    bidirectional routes between its endpoints.

    ``extra_rtt`` adds the per-stack forwarding costs the link latencies
    miss (switch/bridge forward delays, per-packet stack latency); the
    default uses the known constants of each topology.

    ``ipop_cpu_bps`` overrides the goodput rate one IPOP endpoint's
    user-level stack can sustain (defaults to
    :data:`IPOP_STEADY_CPU_BPS`, the calibrated full-MSS steady rate).
    Pass a measured value when modeling a shaped wire that holds the
    packet plane in its slow interleaved-segment regime — see
    "Calibrated IPOP capacity" in DESIGN.md §12."""
    sim = pair.sim
    net = FluidNetwork(sim, refresh_interval=refresh_interval,
                       util_floor=util_floor, stall_timeout=stall_timeout)
    if pair.env is not None:
        stack = "wavnet"
    elif pair.overlay is not None:
        stack = "ipop"
    else:
        stack = "physical"
    natted = stack != "physical"
    site_a = pair.host_a.name.split(".")[0]
    site_b = pair.host_b.name.split(".")[0]
    factor = (mss + wire_overhead_for(
        stack, mss,
        pair.overlay.config if pair.overlay is not None else None)) / mss

    eg_a, in_a, lat_a = _site_chains(net, sim, site_a, natted, factor)
    eg_b, in_b, lat_b = _site_chains(net, sim, site_b, natted, factor)

    if stack == "ipop":
        cfg = pair.overlay.config
        if ipop_cpu_bps is None:
            ipop_cpu_bps = IPOP_STEADY_CPU_BPS
        cpu_factor = 1.0 / ipop_cpu_bps
        cpu_a = FluidLink(f"ipop.{site_a}.cpu", capacity_bps=1.0, kind="cpu")
        cpu_b = FluidLink(f"ipop.{site_b}.cpu", capacity_bps=1.0, kind="cpu")
        eg_a = [(cpu_a, cpu_factor)] + eg_a
        in_b = in_b + [(cpu_b, cpu_factor)]
        eg_b = [(cpu_b, cpu_factor)] + eg_b
        in_a = in_a + [(cpu_a, cpu_factor)]

    if extra_rtt is None:
        # Switch forward delay (5 us) once per LAN crossing per
        # direction; the WAVNet tap/bridge adds a bridge forward (15 us)
        # per direction on each side.
        if stack == "physical":
            extra_rtt = 0.0
        elif stack == "wavnet":
            extra_rtt = 2 * 2 * (5e-6 + 15e-6)
        else:
            extra_rtt = 2 * 2 * 5e-6

    rtt = 2 * (lat_a + pair.cloud.latency(site_a, site_b) + lat_b) + extra_rtt
    conduits = ((FluidNetwork.conduit_key(site_a, site_b),)
                if stack == "wavnet" else ())

    fwd = FluidPath(links=tuple(eg_a + in_b), rtt=rtt, mss=mss,
                    sites=(site_a, site_b), cloud=pair.cloud,
                    conduits=conduits)
    rev = FluidPath(links=tuple(eg_b + in_a), rtt=rtt, mss=mss,
                    sites=(site_b, site_a), cloud=pair.cloud,
                    conduits=conduits)
    net.add_route(pair.host_a.name, pair.ip_b, fwd)

    # Reverse route, when the A-side address is discoverable.
    ip_a = None
    if pair.env is not None:
        ip_a = pair.env.hosts[site_a].virtual_ip
    elif pair.overlay is not None:
        node = pair.overlay.nodes.get(pair.host_a.name)
        ip_a = node.virtual_ip if node is not None else None
    elif pair.host_a.stack.ips:
        ip_a = pair.host_a.stack.ips[0]
    if ip_a is not None:
        net.add_route(pair.host_b.name, ip_a, rev)
    return net


@scenario("fluid_fanout")
def fluid_fanout(seed: int = 0, fidelity: str = "fluid",
                 n_flows: int = 10000, flow_kb: int = 64,
                 n_pairs: int = 10, bandwidth_mbps: float = 1000.0,
                 rtt_ms: float = 20.0, queue_capacity: int = 4096,
                 mss: int = 1460):
    """N concurrent bulk transfers fanned over ``n_pairs`` host pairs,
    all arriving at t=0 — the scalability workload. At
    ``fidelity="packet"`` every flow is a real TCP transfer into a
    draining server; at ``"fluid"`` each is one FluidFlow. The payload
    reports completion statistics; the envelope's ``obs`` block carries
    the event count the bench compares."""
    from repro.net.addresses import IPv4Address
    from repro.net.wan import WanCloud
    from repro.scenarios.builder import make_public_host
    from repro.sim.engine import Simulator

    if fidelity not in ("packet", "fluid"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    sim = Simulator(seed=seed)
    cloud = WanCloud(sim, default_latency=rtt_ms / 2000.0)
    flow_bytes = flow_kb * 1024
    access_lat = 0.0002
    cloud_rtt = max(rtt_ms / 1000.0 - 4 * access_lat, 1e-4)
    senders, receivers, dst_ips = [], [], []
    for i in range(n_pairs):
        src_ip, dst_ip = f"8.7.{i}.1", f"8.7.{i}.2"
        tx = make_public_host(sim, cloud, f"tx{i}", src_ip,
                              access_latency=access_lat,
                              access_bandwidth_bps=bandwidth_mbps * 1e6,
                              queue_capacity=queue_capacity, tcp_mss=mss)
        rx = make_public_host(sim, cloud, f"rx{i}", dst_ip,
                              access_latency=access_lat,
                              access_bandwidth_bps=bandwidth_mbps * 1e6,
                              queue_capacity=queue_capacity, tcp_mss=mss)
        cloud.set_rtt(f"tx{i}", f"rx{i}", cloud_rtt)
        senders.append(tx)
        receivers.append(rx)
        dst_ips.append(IPv4Address(dst_ip))

    rtt = rtt_ms / 1000.0
    if fidelity == "fluid":
        net = FluidNetwork(sim, refresh_interval=0.0)
        factor = (mss + WIRE_OVERHEAD_TCP) / mss
        flows = []
        for i in range(n_pairs):
            tx_access = _find_link(sim, f"tx{i}.access")
            rx_access = _find_link(sim, f"rx{i}.access")
            path = FluidPath(links=((net.link_for(tx_access, "ab"), factor),
                                    (net.link_for(rx_access, "ba"), factor)),
                             rtt=rtt, mss=mss,
                             sites=(f"tx{i}", f"rx{i}"), cloud=cloud)
            net.add_route(f"tx{i}", str(dst_ips[i]), path)
        for k in range(n_flows):
            i = k % n_pairs
            # ramp=False: at 10^3 flows per pair the fair share sits far
            # below slow-start territory; modeling the ramp would only
            # add per-flow timer events without moving the answer.
            flows.append(net.open(f"tx{i}", str(dst_ips[i]),
                                  size_bytes=flow_bytes, ramp=False,
                                  name=f"f{k}"))
        sim.run()
        completed = sum(1 for f in flows if f.state == "done")
        payload = {
            "fidelity": fidelity, "n_flows": n_flows,
            "completed": completed,
            "sim_seconds": sim.now,
            "goodput_mbps": completed * flow_bytes * 8 / 1e6 / sim.now
            if sim.now > 0 else 0.0,
        }
        return sim, payload

    # Packet mode: netserver-style drain on each receiver, one real TCP
    # transfer per flow (same arrival pattern: everything at t=0).
    from repro.apps.netperf import netserver
    from repro.apps.ttcp import ttcp_transfer

    port = 5201
    for rx in receivers:
        sim.process(netserver(rx, port=port))
    procs = []
    for k in range(n_flows):
        i = k % n_pairs
        procs.append(sim.process(
            ttcp_transfer(senders[i], dst_ips[i], flow_bytes, port=port),
            name=f"f{k}"))
    sim.run()
    completed = sum(1 for p in procs if p.processed and p.ok)
    payload = {
        "fidelity": fidelity, "n_flows": n_flows,
        "completed": completed,
        "sim_seconds": sim.now,
        "goodput_mbps": completed * flow_bytes * 8 / 1e6 / sim.now
        if sim.now > 0 else 0.0,
    }
    return sim, payload
