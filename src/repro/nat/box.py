"""The NAT gateway node.

A :class:`NatBox` is a router whose pre-/post-routing hooks rewrite
addresses, one mapping table per protocol (ports are per-protocol
namespaces). Behaviour — endpoint-independent vs per-destination
mapping, inbound filtering — is governed by :class:`NatType`.

ICMP echo is NATed on the ``ident`` field, as real NAT implementations
do, so ping works from behind the NAT.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.nat.mapping import MappingTable
from repro.nat.types import NatType, split_nat_spec
from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    IcmpMessage,
    IPv4Packet,
    TcpSegment,
    UdpDatagram,
)
from repro.net.stack import Interface, Router
from repro.sim.engine import Simulator
from repro.sim.lifecycle import Component

__all__ = ["NatBox"]


class NatBox(Router, Component):
    """NAT/firewall gateway between an inside LAN and the public Internet.

    As a lifecycle :class:`~repro.sim.lifecycle.Component` (kind
    ``nat``): ``crash`` powers the box off — every mapping table is
    flushed (bindings are RAM) and all traffic is dropped; ``restore``
    powers it back on with empty tables, so hosts behind it must re-open
    their mappings with outbound traffic. :meth:`reboot` is the common
    fast cycle (crash + immediate restore): connectivity blips, but the
    lasting damage is the mapping flush.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac_mint: Callable[[], MacAddress],
        nat_type: NatType | str = NatType.PORT_RESTRICTED,
        udp_timeout: float = 60.0,
        tcp_timeout: float = 3600.0,
        icmp_timeout: float = 30.0,
        port_alloc: Optional[str] = None,
        port_stride: int = 1,
    ) -> None:
        super().__init__(sim, name, mac_mint)
        Component.__init__(self, sim, "nat", name)
        # Combined specs ("symmetric-sequential") carry the allocation
        # policy; an explicit port_alloc= argument wins over the suffix.
        parsed, spec_alloc = split_nat_spec(nat_type)
        self.nat_type = parsed
        if self.nat_type is NatType.OPEN:
            raise ValueError("NatBox cannot model an OPEN (no-NAT) path")
        if port_alloc is None:
            port_alloc = spec_alloc
        # Per-box deterministic RNG stream: allocation order depends only
        # on the box name, never on global draw order.
        port_rng = sim.rng.stream(f"nat.ports.{name}")
        metrics = sim.metrics.scope(f"nat.{name}")
        self.metrics = metrics
        self.udp_mappings = MappingTable(self.nat_type, udp_timeout, port_rng=port_rng,
                                         metrics=metrics.scope("udp"),
                                         port_alloc=port_alloc, port_stride=port_stride)
        self.tcp_mappings = MappingTable(self.nat_type, tcp_timeout, first_port=30000,
                                         port_rng=port_rng, metrics=metrics.scope("tcp"),
                                         port_alloc=port_alloc, port_stride=port_stride)
        self.icmp_mappings = MappingTable(self.nat_type, icmp_timeout, first_port=40000,
                                          port_rng=port_rng, metrics=metrics.scope("icmp"),
                                          port_alloc=port_alloc, port_stride=port_stride)
        self.port_alloc = self.udp_mappings.port_alloc
        self.port_stride = self.udp_mappings.port_stride
        self.inside: Optional[Interface] = None
        self.outside: Optional[Interface] = None
        self.inside_network: Optional[IPv4Network] = None
        self.public_ip: Optional[IPv4Address] = None
        self.translated_out = 0
        self.translated_in = 0
        self.dropped_unsolicited = 0
        self.stack.pre_routing = self._pre_routing
        self.stack.post_routing = self._post_routing

    # -- lifecycle ---------------------------------------------------------
    def _on_crash(self) -> None:
        for table in (self.udp_mappings, self.tcp_mappings, self.icmp_mappings):
            table.flush()

    def _on_stop(self) -> None:
        pass  # graceful stop keeps tables; traffic still drops while down

    def reboot(self) -> None:
        """Power-cycle: flush all mapping tables, forwarding resumes at
        once (the blackout window is below frame resolution)."""
        self.crash()
        self.restore()

    # -- setup -------------------------------------------------------------
    def add_inside(self, ip: IPv4Address | str, network: IPv4Network | str) -> Interface:
        self.inside = self.stack.add_interface("inside", self.mac_mint())
        self.inside.configure(ip, network)
        self.inside_network = self.inside.network
        self.stack.connected_route_for(self.inside)
        return self.inside

    def add_outside(self, ip: IPv4Address | str, network: IPv4Network | str = "0.0.0.0/0") -> Interface:
        self.outside = self.stack.add_interface("outside", self.mac_mint())
        self.outside.configure(ip, network)
        self.public_ip = self.outside.ip
        self.stack.add_route("0.0.0.0/0", self.outside)
        return self.outside

    def _table_for(self, proto: int) -> Optional[MappingTable]:
        if proto == PROTO_UDP:
            return self.udp_mappings
        if proto == PROTO_TCP:
            return self.tcp_mappings
        if proto == PROTO_ICMP:
            return self.icmp_mappings
        return None

    # -- datapath hooks ------------------------------------------------------
    def _pre_routing(self, packet: IPv4Packet, iface: Interface) -> Optional[IPv4Packet]:
        """Inbound DNAT: rewrite public (ip, port) back to the inside host."""
        if not self.running:
            return None  # box is down/crashed: everything blackholes
        if iface is not self.outside or packet.dst != self.public_ip:
            return packet
        table = self._table_for(packet.proto)
        if table is None:
            return packet
        now = self.sim.now
        payload = packet.payload
        if packet.proto == PROTO_UDP:
            dgram: UdpDatagram = payload
            mapping = table.inbound(dgram.dst_port, packet.src, dgram.src_port, now)
            if mapping is None:
                self.dropped_unsolicited += 1
                return None
            self.translated_in += 1
            return packet.with_dst(mapping.internal_ip).with_payload(
                replace(dgram, dst_port=mapping.internal_port))
        if packet.proto == PROTO_TCP:
            seg: TcpSegment = payload
            mapping = table.inbound(seg.dst_port, packet.src, seg.src_port, now)
            if mapping is None:
                self.dropped_unsolicited += 1
                return None
            self.translated_in += 1
            return packet.with_dst(mapping.internal_ip).with_payload(
                replace(seg, dst_port=mapping.internal_port))
        if packet.proto == PROTO_ICMP:
            msg: IcmpMessage = payload
            if msg.kind == "echo-request":
                return packet  # ping to the NAT itself: answer locally
            mapping = table.inbound(msg.ident, packet.src, 0, now)
            if mapping is None:
                self.dropped_unsolicited += 1
                return None
            self.translated_in += 1
            return packet.with_dst(mapping.internal_ip).with_payload(
                replace(msg, ident=mapping.internal_port))
        return packet

    def _post_routing(self, packet: IPv4Packet, iface: Interface) -> Optional[IPv4Packet]:
        """Outbound SNAT: rewrite inside (ip, port) to the public endpoint."""
        if not self.running:
            return None
        if iface is not self.outside:
            return packet
        if self.inside_network is None or packet.src not in self.inside_network:
            return packet  # NAT's own traffic
        table = self._table_for(packet.proto)
        if table is None:
            return None  # unsupported protocol cannot traverse
        now = self.sim.now
        payload = packet.payload
        if packet.proto == PROTO_UDP:
            dgram: UdpDatagram = payload
            mapping = table.outbound(packet.src, dgram.src_port, packet.dst, dgram.dst_port, now)
            self.translated_out += 1
            return packet.with_src(self.public_ip).with_payload(
                replace(dgram, src_port=mapping.external_port))
        if packet.proto == PROTO_TCP:
            seg: TcpSegment = payload
            mapping = table.outbound(packet.src, seg.src_port, packet.dst, seg.dst_port, now)
            self.translated_out += 1
            return packet.with_src(self.public_ip).with_payload(
                replace(seg, src_port=mapping.external_port))
        if packet.proto == PROTO_ICMP:
            msg: IcmpMessage = payload
            # NAT on the ident field; destination "port" is 0.
            mapping = table.outbound(packet.src, msg.ident, packet.dst, 0, now)
            self.translated_out += 1
            return packet.with_src(self.public_ip).with_payload(
                replace(msg, ident=mapping.external_port))
        return packet

    def external_endpoint_for(
        self, int_ip: IPv4Address, int_port: int, dst_ip: IPv4Address, dst_port: int
    ) -> tuple[IPv4Address, int]:
        """Test/diagnostic helper: the public endpoint an outbound UDP flow
        would be seen as (what STUN discovers)."""
        mapping = self.udp_mappings.outbound(int_ip, int_port, dst_ip, dst_port, self.sim.now)
        return (self.public_ip, mapping.external_port)
