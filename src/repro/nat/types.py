"""NAT classification (RFC 3489 taxonomy used by the paper)."""

from __future__ import annotations

import enum
from typing import Optional

__all__ = ["NatType", "split_nat_spec"]


class NatType(enum.Enum):
    """Mapping/filtering behaviour classes.

    * ``FULL_CONE`` — endpoint-independent mapping, no inbound filter.
    * ``RESTRICTED_CONE`` — endpoint-independent mapping, inbound allowed
      only from IPs previously contacted.
    * ``PORT_RESTRICTED`` — inbound allowed only from (IP, port) pairs
      previously contacted.
    * ``SYMMETRIC`` — per-destination mapping (a new external port per
      destination), port-restricted filtering; classic hole punching
      fails when both sides are symmetric.
    * ``OPEN`` — no NAT (public host); used by STUN classification.
    """

    OPEN = "open"
    FULL_CONE = "full-cone"
    RESTRICTED_CONE = "restricted-cone"
    PORT_RESTRICTED = "port-restricted"
    SYMMETRIC = "symmetric"

    @classmethod
    def parse(cls, value: "NatType | str") -> "NatType":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ValueError(f"unknown NAT type {value!r}")

    @property
    def endpoint_independent_mapping(self) -> bool:
        return self is not NatType.SYMMETRIC

    @property
    def per_destination_mapping(self) -> bool:
        return self is NatType.SYMMETRIC

    @property
    def hole_punchable(self) -> bool:
        """Whether WAVNet's UDP hole punching works against this type
        (assuming the peer is at most port-restricted)."""
        return self in (
            NatType.OPEN,
            NatType.FULL_CONE,
            NatType.RESTRICTED_CONE,
            NatType.PORT_RESTRICTED,
        )


#: Port-allocation policy suffixes accepted in combined NAT specs such as
#: ``"symmetric-sequential"`` (see :func:`split_nat_spec`).
PORT_ALLOC_POLICIES = ("sequential", "stride", "random")


def split_nat_spec(value: "NatType | str") -> tuple[NatType, Optional[str]]:
    """Split a NAT spec into ``(NatType, port_alloc | None)``.

    Scenario configs name symmetric variants by allocation policy —
    ``"symmetric-sequential"``, ``"symmetric-stride"``,
    ``"symmetric-random"`` — because the policy decides whether port
    prediction can traverse the NAT. Plain specs (``"port-restricted"``,
    ``NatType.SYMMETRIC``) pass through with ``None`` (the table's
    default policy applies).
    """
    if isinstance(value, NatType):
        return value, None
    for policy in PORT_ALLOC_POLICIES:
        suffix = f"-{policy}"
        if isinstance(value, str) and value.endswith(suffix):
            return NatType.parse(value[: -len(suffix)]), policy
    return NatType.parse(value), None
