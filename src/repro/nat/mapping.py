"""NAT mapping table with idle timeouts.

A mapping binds an internal (ip, port) — plus the destination, for
symmetric NATs — to an external port. Mappings expire after an idle
timeout; *any* traffic in either direction refreshes them, which is what
makes the paper's 2-byte CONNECT_PULSE keepalive sufficient.

Filtering state (which remote endpoints may send inbound) is tracked per
mapping as the set of endpoints the internal host has sent to.
"""

from __future__ import annotations

from typing import Optional

from repro.nat.types import NatType
from repro.net.addresses import IPv4Address

__all__ = ["MappingTable", "NatMapping"]


class NatMapping:
    """One NAT binding."""

    __slots__ = (
        "internal_ip",
        "internal_port",
        "external_port",
        "dest_key",
        "last_used",
        "contacted_ips",
        "contacted_endpoints",
    )

    def __init__(
        self,
        internal_ip: IPv4Address,
        internal_port: int,
        external_port: int,
        dest_key: Optional[tuple[IPv4Address, int]],
        now: float,
    ) -> None:
        self.internal_ip = internal_ip
        self.internal_port = internal_port
        self.external_port = external_port
        self.dest_key = dest_key  # None for cone NATs
        self.last_used = now
        self.contacted_ips: set[IPv4Address] = set()
        self.contacted_endpoints: set[tuple[IPv4Address, int]] = set()

    def touch(self, now: float) -> None:
        self.last_used = now

    def note_outbound(self, dst_ip: IPv4Address, dst_port: int, now: float) -> None:
        self.contacted_ips.add(dst_ip)
        self.contacted_endpoints.add((dst_ip, dst_port))
        self.last_used = now

    def allows_inbound(self, nat_type: NatType, src_ip: IPv4Address, src_port: int) -> bool:
        if nat_type is NatType.FULL_CONE:
            return True
        if nat_type is NatType.RESTRICTED_CONE:
            return src_ip in self.contacted_ips
        # Port-restricted and symmetric both filter on (ip, port).
        return (src_ip, src_port) in self.contacted_endpoints


class MappingTable:
    """All bindings of one NAT box, with idle expiry and port allocation."""

    def __init__(self, nat_type: NatType, timeout: float, first_port: int = 20000,
                 port_rng=None, metrics=None, port_alloc: Optional[str] = None,
                 port_stride: int = 1) -> None:
        self.nat_type = nat_type
        self.timeout = timeout
        self._next_port = first_port
        # Allocation policy. Symmetric NATs default to "random" (that
        # unpredictability is exactly what defeats classic hole punching);
        # cone NATs default to "sequential". "sequential" and "stride"
        # symmetric boxes are the predictable kind Ford et al. show can be
        # traversed by port prediction.
        if port_alloc is None:
            port_alloc = "random" if nat_type is NatType.SYMMETRIC else "sequential"
        if port_alloc not in ("sequential", "stride", "random"):
            raise ValueError(f"unknown port allocation policy {port_alloc!r}")
        self.port_alloc = port_alloc
        self.port_stride = 1 if port_alloc == "sequential" else max(1, int(port_stride))
        self._port_rng = port_rng if port_alloc == "random" else None
        # outbound lookup: (int_ip, int_port[, dst]) -> mapping
        self._by_internal: dict[tuple, NatMapping] = {}
        # inbound lookup: external port -> mapping
        self._by_external: dict[int, NatMapping] = {}
        self.expired_count = 0
        self.allocated_count = 0
        # Optional MetricsScope (e.g. "nat.<box>.udp"): allocation/expiry
        # counters plus a live-binding gauge, for keepalive ablations.
        if metrics is not None:
            self._m_allocated = metrics.counter("mappings.allocated")
            self._m_expired = metrics.counter("mappings.expired")
            self._m_flushed = metrics.counter("mappings.flushed")
            self._m_bindings = metrics.gauge("bindings")
        else:
            self._m_allocated = self._m_expired = self._m_flushed = self._m_bindings = None

    def _internal_key(
        self, ip: IPv4Address, port: int, dst_ip: IPv4Address, dst_port: int
    ) -> tuple:
        if self.nat_type is NatType.SYMMETRIC:
            return (ip, port, dst_ip, dst_port)
        return (ip, port)

    def _expire_if_idle(self, mapping: NatMapping, now: float) -> bool:
        if now - mapping.last_used > self.timeout:
            self._drop(mapping)
            self.expired_count += 1
            if self._m_expired is not None:
                self._m_expired.add()
            return True
        return False

    def _drop(self, mapping: NatMapping) -> None:
        self._by_external.pop(mapping.external_port, None)
        for key, m in list(self._by_internal.items()):
            if m is mapping:
                del self._by_internal[key]
        if self._m_bindings is not None:
            self._m_bindings.set(len(self._by_external))

    def flush(self) -> int:
        """Drop every binding at once — what a NAT reboot does to the
        hosts behind it. Returns the number of bindings lost."""
        n = len(self._by_external)
        self._by_internal.clear()
        self._by_external.clear()
        if self._m_flushed is not None:
            self._m_flushed.add(n)
            self._m_bindings.set(0)
        return n

    def _alloc_port(self) -> int:
        if self._port_rng is not None:
            while True:
                port = int(self._port_rng.integers(20000, 60000))
                if port not in self._by_external:
                    return port
        step = self.port_stride
        while self._next_port in self._by_external:
            self._next_port += step
        port = self._next_port
        self._next_port += step
        return port

    def outbound(
        self,
        int_ip: IPv4Address,
        int_port: int,
        dst_ip: IPv4Address,
        dst_port: int,
        now: float,
    ) -> NatMapping:
        """Find-or-create the mapping for an outbound flow and record the
        contacted endpoint."""
        key = self._internal_key(int_ip, int_port, dst_ip, dst_port)
        mapping = self._by_internal.get(key)
        if mapping is not None and self._expire_if_idle(mapping, now):
            mapping = None
        if mapping is None:
            mapping = NatMapping(int_ip, int_port, self._alloc_port(),
                                 key[2:] if self.nat_type is NatType.SYMMETRIC else None,
                                 now)
            self._by_internal[key] = mapping
            self._by_external[mapping.external_port] = mapping
            self.allocated_count += 1
            if self._m_allocated is not None:
                self._m_allocated.add()
                self._m_bindings.set(len(self._by_external))
        mapping.note_outbound(dst_ip, dst_port, now)
        return mapping

    def inbound(
        self, ext_port: int, src_ip: IPv4Address, src_port: int, now: float
    ) -> Optional[NatMapping]:
        """Mapping for an inbound datagram, or None if filtered/absent."""
        mapping = self._by_external.get(ext_port)
        if mapping is None or self._expire_if_idle(mapping, now):
            return None
        if self.nat_type is NatType.SYMMETRIC and mapping.dest_key != (src_ip, src_port):
            return None
        if not mapping.allows_inbound(self.nat_type, src_ip, src_port):
            return None
        mapping.touch(now)
        return mapping

    def active_count(self, now: float) -> int:
        return sum(1 for m in self._by_external.values() if now - m.last_used <= self.timeout)

    def __len__(self) -> int:
        return len(self._by_external)
