"""NAT/firewall behavioural models.

Implements the four NAT classes of RFC 3489 that the paper's connection
layer must traverse (§II.B): Full Cone, Restricted Cone, Port Restricted
Cone, and Symmetric — with per-flow mapping timeouts that the WAVNet
CONNECT_PULSE keepalive must refresh.
"""

from repro.nat.box import NatBox
from repro.nat.mapping import MappingTable, NatMapping
from repro.nat.types import NatType

__all__ = ["MappingTable", "NatBox", "NatMapping", "NatType"]
