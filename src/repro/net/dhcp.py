"""Minimal DHCP over the simulated L2.

The paper's claim that WAVNet connects hosts "as if to an Ethernet
switch" is exercised by running unmodified DHCP across the virtual
network: a client on one host's bridge obtains a lease from a server
living behind a tap on a different continent. Only DISCOVER → OFFER →
REQUEST → ACK is implemented (enough for the transparency demonstration
and tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import BROADCAST_MAC, IPv4Address, IPv4Network, MacAddress
from repro.net.packet import IPv4Packet, Payload, UdpDatagram, frame_for
from repro.net.stack import Interface, NetworkStack

__all__ = ["DhcpClient", "DhcpLease", "DhcpServer"]

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68
ZERO_IP = IPv4Address(0)
BCAST_IP = IPv4Address((1 << 32) - 1)
DHCP_MSG_SIZE = 300  # typical BOOTP payload


@dataclass(frozen=True)
class _DhcpMessage:
    op: str  # discover | offer | request | ack
    client_mac: MacAddress
    your_ip: Optional[IPv4Address] = None
    server_ip: Optional[IPv4Address] = None
    network: Optional[IPv4Network] = None
    xid: int = 0


@dataclass
class DhcpLease:
    ip: IPv4Address
    network: IPv4Network
    server: IPv4Address


class DhcpServer:
    """Leases addresses from a pool on one L2 segment."""

    def __init__(self, stack: NetworkStack, iface: Interface, pool: IPv4Network,
                 first_host: int = 100) -> None:
        if iface.ip is None:
            raise ValueError("DHCP server interface needs an address")
        self.stack = stack
        self.iface = iface
        self.pool = pool
        self.leases: dict[MacAddress, IPv4Address] = {}
        self._next = first_host
        self.offers_made = 0
        self.acks_sent = 0
        self.sock = stack.udp.bind(DHCP_SERVER_PORT)
        stack.sim.process(self._serve(), name=f"dhcpd:{stack.name}")

    def _allocate(self, mac: MacAddress) -> IPv4Address:
        existing = self.leases.get(mac)
        if existing is not None:
            return existing
        ip = self.pool.host(self._next)
        self._next += 1
        self.leases[mac] = ip
        return ip

    def _serve(self):
        while True:
            payload, _src_ip, _src_port = yield self.sock.recvfrom()
            msg: _DhcpMessage = payload.data
            if msg.op == "discover":
                ip = self._allocate(msg.client_mac)
                self.offers_made += 1
                self._reply(_DhcpMessage("offer", msg.client_mac, your_ip=ip,
                                         server_ip=self.iface.ip, network=self.pool,
                                         xid=msg.xid), msg.client_mac)
            elif msg.op == "request":
                ip = self._allocate(msg.client_mac)
                self.acks_sent += 1
                self._reply(_DhcpMessage("ack", msg.client_mac, your_ip=ip,
                                         server_ip=self.iface.ip, network=self.pool,
                                         xid=msg.xid), msg.client_mac)

    def _reply(self, msg: _DhcpMessage, client_mac: MacAddress) -> None:
        # The client has no IP yet: answer to the broadcast address but
        # unicast the frame to the client's MAC (standard DHCP behaviour).
        datagram = UdpDatagram(DHCP_SERVER_PORT, DHCP_CLIENT_PORT,
                               Payload(DHCP_MSG_SIZE, data=msg, kind="dhcp"))
        packet = IPv4Packet(self.iface.ip, BCAST_IP, 17, datagram)
        self.iface.send_frame(frame_for(packet, self.iface.mac, client_mac))


class DhcpClient:
    """Acquires a lease and configures the interface with it."""

    def __init__(self, stack: NetworkStack, iface: Interface, timeout: float = 5.0,
                 retries: int = 3) -> None:
        self.stack = stack
        self.iface = iface
        self.timeout = timeout
        self.retries = retries
        self.lease: Optional[DhcpLease] = None

    def _broadcast(self, msg: _DhcpMessage) -> None:
        datagram = UdpDatagram(DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
                               Payload(DHCP_MSG_SIZE, data=msg, kind="dhcp"))
        packet = IPv4Packet(ZERO_IP, BCAST_IP, 17, datagram)
        self.iface.send_frame(frame_for(packet, self.iface.mac, BROADCAST_MAC))

    def acquire(self):
        """Process: run the 4-way exchange; returns a DhcpLease or None."""
        sim = self.stack.sim
        sock = self.stack.udp.bind(DHCP_CLIENT_PORT)
        xid = id(self) & 0xFFFF
        try:
            for _attempt in range(self.retries):
                self._broadcast(_DhcpMessage("discover", self.iface.mac, xid=xid))
                offer = yield from self._await(sock, "offer", xid)
                if offer is None:
                    continue
                self._broadcast(_DhcpMessage("request", self.iface.mac,
                                             your_ip=offer.your_ip,
                                             server_ip=offer.server_ip, xid=xid))
                ack = yield from self._await(sock, "ack", xid)
                if ack is None:
                    continue
                self.lease = DhcpLease(ack.your_ip, ack.network, ack.server_ip)
                self.iface.configure(ack.your_ip, ack.network)
                self.stack.connected_route_for(self.iface)
                return self.lease
        finally:
            sock.close()
        return None

    def _await(self, sock, op: str, xid: int):
        sim = self.stack.sim
        deadline = sim.timeout(self.timeout)
        pending = None
        while True:
            if pending is None:
                pending = sock.recvfrom()
            yield sim.any_of([pending, deadline])
            if not pending.processed:
                return None
            payload, _ip, _port = pending.value
            pending = None
            msg = payload.data
            if msg.op == op and msg.xid == xid and msg.client_mac == self.iface.mac:
                return msg
