"""Pluggable congestion-control plane.

Every throughput result in the paper (ttcp Fig 6, netperf Figs 7-9,
ApacheBench Tables III-IV, migration Table V) is TCP-shaped, and the
fairness scenario family (``repro.scenarios.fairness``) asks how
L2-over-UDP tunneling reshapes TCP dynamics per algorithm. Congestion
control is therefore a *strategy plane*: one
:class:`CongestionControl` object per :class:`~repro.net.tcp.TcpConnection`
owns the ``cwnd``/``ssthresh`` state and reacts to the transport's loss
and ACK events, and the same strategy class answers the fluid plane's
steady-state question (:meth:`CongestionControl.rate_cap`) so packet and
flow-level fidelities agree per algorithm.

The transport drives exactly four event hooks:

* :meth:`~CongestionControl.on_ack` — a cumulative ACK advanced
  ``snd_una`` outside fast recovery (window growth lives here, gated by
  RFC 2861 congestion-window validation);
* :meth:`~CongestionControl.on_dup_ack` — the third duplicate ACK
  inferred a loss; set ``ssthresh``/``cwnd`` for the recovery episode;
* :meth:`~CongestionControl.on_rto` — the retransmission timer fired;
* :meth:`~CongestionControl.on_loss_exit` — fast recovery completed.

Algorithms register by name (:func:`register`); the transport resolves
``cc="..."`` through :func:`cc_algorithm`, so unknown names fail with
the list of registered algorithms. Three algorithms ship:

* ``reno`` — NewReno-style AIMD (multiplicative decrease 0.5);
* ``cubic`` — RFC 8312 window growth with HyStart slow-start exit and
  the TCP-friendliness floor (decrease 0.7) — the default, as in Linux;
* ``bbr`` — a BBR-like pacing model: windowed-max delivery-rate filter,
  min-RTT BDP tracking, a pacing-gain probe cycle, and **no
  loss-coupled cwnd collapse** (duplicate ACKs trigger retransmission
  but not multiplicative decrease).

The shared slow-start ramp model (:func:`slow_start_rounds`) is the one
account of "how many RTTs does a cold connection spend before the
window clears this transfer" — used by the fluid-mode ApacheBench and
anywhere else latency-bound short transfers are charged analytically.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "BbrCC",
    "CongestionControl",
    "CubicCC",
    "INITIAL_CWND_SEGMENTS",
    "RenoCC",
    "cc_algorithm",
    "cc_class",
    "cc_names",
    "mathis_rate_bps",
    "register",
    "slow_start_rounds",
    "window_rate_bps",
]

# Initial congestion window, in segments (all algorithms).
INITIAL_CWND_SEGMENTS = 3


def window_rate_bps(send_buf: int, recv_buf: int, rtt: float) -> float:
    """Steady-state throughput ceiling from socket buffers: one window
    per round trip, bounded by the smaller of the two buffers."""
    return min(send_buf, recv_buf) * 8.0 / rtt


def mathis_rate_bps(mss: int, rtt: float, loss: float) -> float:
    """Mathis et al. steady-state TCP throughput under i.i.d. loss
    ``p``: rate = (MSS/RTT) * C/sqrt(p), C ≈ 1.22."""
    if loss <= 0.0:
        return float("inf")
    return mss * 8.0 * 1.22 / (rtt * (loss ** 0.5))


def slow_start_rounds(size_bytes: int, mss: int, per_rtt_bytes: float,
                      iw_segments: int = INITIAL_CWND_SEGMENTS) -> tuple[int, int]:
    """Slow-start round accounting for a cold connection shipping
    ``size_bytes``: round k carries ``IW * 2^(k-1)`` bytes, one RTT
    each. Counting stops once the doubled window would exceed
    ``per_rtt_bytes`` (what the path can carry per RTT) — past that the
    transfer is rate-bound, not round-bound.

    Returns ``(rounds, bytes_before_final_round)``: the number of
    rounds charged (>= 1) and how many bytes the counted rounds already
    shipped before the final (residual) round."""
    sent, cwnd = 0, iw_segments * mss
    rounds = 1
    while sent + cwnd < size_bytes and cwnd < per_rtt_bytes:
        sent += cwnd
        cwnd *= 2
        rounds += 1
    return rounds, sent


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register(name: str):
    """Class decorator: register a :class:`CongestionControl` subclass
    under ``name`` (the value apps pass as ``cc=``)."""
    def deco(cls: type) -> type:
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return deco


def cc_names() -> list[str]:
    """Registered algorithm names, sorted."""
    return sorted(_REGISTRY)


def cc_class(name: str) -> type:
    """Resolve an algorithm name to its strategy class."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def cc_algorithm(name: str, conn) -> "CongestionControl":
    """Instantiate the named strategy bound to ``conn``."""
    return cc_class(name)(conn)


# ----------------------------------------------------------------------
# Strategy interface
# ----------------------------------------------------------------------

class CongestionControl:
    """Per-connection congestion-control strategy.

    Owns ``cwnd`` and ``ssthresh`` (bytes); the connection exposes them
    as delegating properties so existing readers are untouched. The
    bound ``conn`` gives strategies read access to path state the
    transport already tracks (``srtt``, ``_min_rtt``,
    ``_last_rtt_sample``, ``bytes_acked_total``, ``sim.now``)."""

    name = "base"

    def __init__(self, conn) -> None:
        self.conn = conn
        self.mss: int = conn.mss
        self.cwnd: int = INITIAL_CWND_SEGMENTS * self.mss
        # Initial ssthresh is effectively unbounded (as in Linux): slow
        # start runs until the first loss or the receiver window binds.
        self.ssthresh: int = 1 << 30

    # -- event hooks (driven by TcpConnection) --------------------------
    def on_ack(self, acked: int, flight_before: int) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``acked`` bytes
        outside fast recovery. ``flight_before`` is the pre-ACK flight;
        window growth applies congestion-window validation (RFC 2861):
        only grow when the window was actually the binding constraint."""
        raise NotImplementedError

    def on_dup_ack(self, flight: int) -> None:
        """Third duplicate ACK: a loss was inferred. Set ``ssthresh``
        and the ``cwnd`` the recovery episode runs under."""
        raise NotImplementedError

    def on_rto(self, flight: int) -> None:
        """Retransmission timeout with ``flight`` unacked bytes."""
        raise NotImplementedError

    def on_loss_exit(self) -> None:
        """Fast recovery completed (ACK covered ``recover``)."""
        self.cwnd = self.ssthresh

    def pacing_rate(self) -> Optional[float]:
        """Bytes/second the sender's micro-burst pacer should spread
        segments at, or ``None`` for the default window/RTT heuristic
        (2 windows per RTT). Only rate-based algorithms override this."""
        return None

    # -- fluid-plane steady state ---------------------------------------
    @staticmethod
    def rate_cap(mss: int, rtt: float, loss: float) -> float:
        """Steady-state goodput cap (bits/s) this algorithm sustains on
        a path with i.i.d. loss ``loss`` — the loss-response curve the
        fluid solver applies on top of window and fair-share caps."""
        raise NotImplementedError


@register("reno")
class RenoCC(CongestionControl):
    """NewReno-style AIMD: slow start, linear congestion avoidance,
    multiplicative decrease 0.5."""

    def on_ack(self, acked: int, flight_before: int) -> None:
        if flight_before < self.cwnd - self.mss:
            return  # window was not the binding constraint (RFC 2861)
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked, self.mss)  # slow start
        else:
            self.cwnd += max(self.mss * self.mss // self.cwnd, 1)

    def on_dup_ack(self, flight: int) -> None:
        self.ssthresh = max(flight // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss

    def on_rto(self, flight: int) -> None:
        if flight <= 4 * self.mss:
            # Tail loss: keep half the window (TLP-style) instead of
            # collapsing ssthresh to the tiny residual flight.
            self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        else:
            self.ssthresh = max(int(flight * 0.5), 2 * self.mss)
        self.cwnd = self.mss

    @staticmethod
    def rate_cap(mss: int, rtt: float, loss: float) -> float:
        return mathis_rate_bps(mss, rtt, loss)


@register("cubic")
class CubicCC(CongestionControl):
    """RFC 8312 CUBIC: cubic window growth anchored at w_max, HyStart
    delay-increase slow-start exit, TCP-friendliness floor, decrease
    factor 0.7."""

    C = 0.4
    BETA = 0.7

    def __init__(self, conn) -> None:
        super().__init__(conn)
        self._wmax = 0.0                    # segments
        self._epoch: Optional[float] = None

    def _note_loss_window(self, flight: int) -> None:
        """Record w_max and restart the cubic epoch at a loss event."""
        if flight > 0:
            self._wmax = flight / self.mss
        self._epoch = self.conn.sim.now

    def _hystart_exit(self) -> bool:
        """HyStart delay-increase heuristic: once queueing pushes the RTT
        an eighth (>= 4 ms) above the path minimum, slow start has found
        the pipe — exit before overflowing the bottleneck queue."""
        conn = self.conn
        if conn._min_rtt is None or conn._last_rtt_sample is None:
            return False
        if self.cwnd < 16 * self.mss:
            return False  # let tiny flows ramp unhindered
        threshold = conn._min_rtt + max(conn._min_rtt / 8, 0.004)
        return conn._last_rtt_sample > threshold

    def _cubic_grow(self) -> None:
        """Per-ACK congestion-avoidance growth toward the cubic curve."""
        now = self.conn.sim.now
        if self._epoch is None:
            self._epoch = now
            self._wmax = max(self._wmax, self.cwnd / self.mss)
        t = now - self._epoch
        k = (self._wmax * (1.0 - self.BETA) / self.C) ** (1.0 / 3.0)
        target = self.C * (t - k) ** 3 + self._wmax
        cur = self.cwnd / self.mss
        if target > cur:
            # Close the gap within ~one RTT's worth of ACKs, at most one
            # segment per ACK (standard cubic pacing).
            self.cwnd += max(min(int(self.mss * (target - cur) / cur), self.mss), 1)
        else:
            # TCP-friendliness floor: Reno-rate growth.
            self.cwnd += max(self.mss * self.mss // self.cwnd, 1)

    def on_ack(self, acked: int, flight_before: int) -> None:
        if flight_before < self.cwnd - self.mss:
            return  # window was not the binding constraint (RFC 2861)
        if self.cwnd < self.ssthresh:
            if self._hystart_exit():
                self.ssthresh = self.cwnd  # leave slow start early
            else:
                self.cwnd += min(acked, self.mss)  # slow start
        else:
            self._cubic_grow()

    def on_dup_ack(self, flight: int) -> None:
        self._note_loss_window(flight)
        self.ssthresh = max(int(flight * self.BETA), 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss

    def on_rto(self, flight: int) -> None:
        self._note_loss_window(max(flight, self.cwnd if flight <= 4 * self.mss else 0))
        if flight <= 4 * self.mss:
            # Tail loss: keep half the window (TLP-style).
            self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        else:
            self.ssthresh = max(int(flight * self.BETA), 2 * self.mss)
        self.cwnd = self.mss

    @staticmethod
    def rate_cap(mss: int, rtt: float, loss: float) -> float:
        """RFC 8312 average-window response function, floored at Reno's
        Mathis rate (TCP friendliness). Derivation: a loss cycle drops
        the window to ``beta*Wmax`` and climbs back in ``K`` seconds
        with ``K = ((1-beta) Wmax / C)^(1/3)``; the average window over
        the cycle is ``Wmax (3+beta)/4``, and the cycle carries ``1/p``
        segments."""
        if loss <= 0.0:
            return float("inf")
        beta, c = CubicCC.BETA, CubicCC.C
        wmax = ((4.0 * rtt / (loss * (3.0 + beta))) ** 0.75
                * (c / (1.0 - beta)) ** 0.25)
        cubic = wmax * (3.0 + beta) / 4.0 * mss * 8.0 / rtt
        return max(cubic, mathis_rate_bps(mss, rtt, loss))


@register("bbr")
class BbrCC(CongestionControl):
    """BBR-like pacing model.

    Tracks the path's bottleneck bandwidth as a windowed max over
    per-round delivery-rate samples and the propagation delay as the
    connection's minimum RTT, then paces at ``gain * btl_bw`` while
    holding ``cwnd = cwnd_gain * BDP``. STARTUP doubles the rate every
    round (gain 2/ln2) until the bandwidth filter plateaus, then the
    flow enters PROBE_BW and cycles pacing gains (one probe round, one
    drain round, six cruise rounds). Loss events retransmit (the
    transport's SACK machinery is unchanged) but do **not** collapse the
    window — the defining BBR property the fairness scenarios measure
    against loss-based algorithms.

    Rounds are delimited by ``snd_una`` crossing the round-start
    ``snd_nxt``, the standard packet-conservation round marker."""

    STARTUP_GAIN = 2.885          # 2/ln2
    CWND_GAIN = 2.0
    CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    BW_WINDOW = 10                # rounds kept in the max filter
    MIN_RTT_WINDOW = 10.0         # seconds kept in the min-RTT filter
    MIN_CWND_SEGMENTS = 4

    def __init__(self, conn) -> None:
        super().__init__(conn)
        self.mode = "startup"
        self.btl_bw = 0.0         # bytes/second, windowed max
        self._bw_samples: list[float] = []
        self._rtt_samples: list = []  # (time, rtt) windowed min filter
        self._round_end = 0       # snd_nxt at round start
        self._round_start_t = -1.0  # <0: first round only initializes
        self._round_start_delivered = 0
        self._full_bw = 0.0       # plateau detector
        self._full_bw_rounds = 0
        self._cycle_idx = 0
        self._rounds = 0

    # -- filters --------------------------------------------------------
    def _min_rtt(self) -> Optional[float]:
        """Windowed min-RTT (the last MIN_RTT_WINDOW seconds), as real
        BBR keeps: with a standing queue the path's base RTT is never
        re-observed, and a *lifetime* min would hand early flows a
        permanently smaller BDP than late arrivals (whose floor already
        includes the queue) — the first-mover starvation the fairness
        scenarios would otherwise show. The window lets every flow's
        estimate converge to the same ambient floor. (Real BBR also
        drains into PROBE_RTT to re-measure; this model does not.)"""
        if self._rtt_samples:
            return min(rtt for _t, rtt in self._rtt_samples)
        return self.conn._min_rtt

    def _bdp_bytes(self) -> float:
        rtt = self._min_rtt() or self.conn.srtt
        if rtt is None or self.btl_bw <= 0.0:
            return INITIAL_CWND_SEGMENTS * self.mss
        return self.btl_bw * rtt

    def _end_round(self, now: float) -> None:
        conn = self.conn
        rtt = conn._last_rtt_sample
        if rtt is not None:
            self._rtt_samples.append((now, rtt))
            cutoff = now - self.MIN_RTT_WINDOW
            while self._rtt_samples and self._rtt_samples[0][0] < cutoff:
                self._rtt_samples.pop(0)
        elapsed = now - self._round_start_t if self._round_start_t >= 0.0 else 0.0
        if elapsed > 0.0:
            sample = (conn.bytes_acked_total - self._round_start_delivered) / elapsed
            self._bw_samples.append(sample)
            if len(self._bw_samples) > self.BW_WINDOW:
                self._bw_samples.pop(0)
            self.btl_bw = max(self._bw_samples)
        self._round_start_t = now
        self._round_start_delivered = conn.bytes_acked_total
        self._round_end = conn.snd_nxt
        self._rounds += 1
        if self.mode == "startup":
            # Plateau: <25% growth for 3 consecutive rounds ends STARTUP.
            if self.btl_bw > self._full_bw * 1.25:
                self._full_bw = self.btl_bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self.mode = "probe_bw"
                    self._cycle_idx = 0
        else:
            self._cycle_idx = (self._cycle_idx + 1) % len(self.CYCLE)

    def on_ack(self, acked: int, flight_before: int) -> None:
        conn = self.conn
        now = conn.sim.now
        if conn.snd_una >= self._round_end:
            self._end_round(now)
        if self.mode == "startup":
            # Exponential ramp via the ACK clock, as in slow start.
            if flight_before >= self.cwnd - self.mss:
                self.cwnd += min(acked, self.mss)
        else:
            target = max(self.CWND_GAIN * self._bdp_bytes(),
                         self.MIN_CWND_SEGMENTS * self.mss)
            self.cwnd = int(target)

    def on_dup_ack(self, flight: int) -> None:
        # Loss is retransmitted but not interpreted as congestion: hold
        # the model-based window. ssthresh mirrors cwnd so the
        # transport's recovery exit (cwnd = ssthresh) is a no-op.
        self.ssthresh = self.cwnd

    def on_rto(self, flight: int) -> None:
        # A full timeout means the pipe estimate is stale; restart from
        # a conservative window but keep the bandwidth filter.
        self.ssthresh = self.cwnd
        self.cwnd = self.MIN_CWND_SEGMENTS * self.mss

    def on_loss_exit(self) -> None:
        if self.mode != "startup":
            self.cwnd = int(max(self.CWND_GAIN * self._bdp_bytes(),
                                self.MIN_CWND_SEGMENTS * self.mss))
        # startup: keep the ramped cwnd (ssthresh mirrored it on entry).

    def pacing_rate(self) -> Optional[float]:
        if self.btl_bw <= 0.0:
            return None  # no estimate yet: default heuristic
        gain = (self.STARTUP_GAIN if self.mode == "startup"
                else self.CYCLE[self._cycle_idx])
        return gain * self.btl_bw

    @staticmethod
    def rate_cap(mss: int, rtt: float, loss: float) -> float:
        # Rate is bandwidth-probed, not loss-derived: random loss does
        # not cap a BBR flow (until loss is so heavy retransmissions
        # dominate — beyond this model's regime). The fluid solver's
        # fair-share and window caps still apply.
        return math.inf
