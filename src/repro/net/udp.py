"""UDP layer and sockets.

Sockets follow BSD semantics closely enough for the protocols above them
(STUN, hole punching, WAVNet tunnels, DHCP): bind to a local port,
``sendto`` any destination, receive (payload, source) tuples from a FIFO
inbox. Unbound-port sends get an ephemeral port, which is what creates
NAT mappings when the datagram crosses a NAT box.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import IPv4Address
from repro.net.packet import Payload, UdpDatagram, ipv4
from repro.sim.engine import Event
from repro.sim.queues import Store

__all__ = ["UdpLayer", "UdpSocket"]

EPHEMERAL_BASE = 32768
EPHEMERAL_LIMIT = 60999


class UdpSocket:
    """A bound UDP endpoint.

    ``recvfrom()`` returns an event yielding ``(payload, src_ip,
    src_port)``. The inbox is bounded (default 512 datagrams) with
    drop-tail overflow, mirroring a kernel socket buffer.
    """

    def __init__(self, layer: "UdpLayer", port: int, inbox_capacity: int = 512) -> None:
        self.layer = layer
        self.port = port
        self.inbox: Store = Store(layer.stack.sim, capacity=inbox_capacity)
        self.closed = False
        self.drops = 0
        self._taps: Optional[list] = None

    @property
    def name(self) -> str:
        return f"{self.layer.stack.name}:udp:{self.port}"

    def add_tap(self, tap) -> None:
        """Attach a :class:`~repro.obs.taps.PacketTap` capturing every
        datagram sent from or delivered to this socket."""
        if self._taps is None:
            self._taps = []
        self._taps.append(tap)

    def sendto(self, dst_ip: IPv4Address, dst_port: int, payload: Payload) -> None:
        if self.closed:
            raise RuntimeError("sendto on closed socket")
        if self._taps is not None:
            for tap in self._taps:
                tap.datagram(self.name, "tx", payload.size,
                             dst=f"{dst_ip}:{dst_port}",
                             info=type(payload.data).__name__)
        self.layer.send(self.port, dst_ip, dst_port, payload)

    def recvfrom(self) -> Event:
        if self.closed:
            raise RuntimeError("recvfrom on closed socket")
        return self.inbox.get()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.layer._unbind(self.port)

    def _enqueue(self, payload: Payload, src_ip: IPv4Address, src_port: int) -> None:
        if self._taps is not None:
            for tap in self._taps:
                tap.datagram(self.name, "rx", payload.size,
                             src=f"{src_ip}:{src_port}",
                             info=type(payload.data).__name__)
        inbox = self.inbox
        if inbox._getters:
            # Common case: a receiver is parked in recvfrom(), so the
            # buffer is empty — hand the datagram straight to its event
            # and skip the bounded-buffer bookkeeping.
            inbox._getters.popleft().succeed((payload, src_ip, src_port))
        elif not inbox.try_put((payload, src_ip, src_port)):
            self.drops += 1


class UdpLayer:
    """Per-stack UDP demultiplexer."""

    def __init__(self, stack) -> None:
        self.stack = stack
        self.sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rx_datagrams = 0
        self.rx_unmatched = 0

    # -- socket management ------------------------------------------------
    def bind(self, port: Optional[int] = None, inbox_capacity: int = 512) -> UdpSocket:
        """Bind a socket to ``port`` (or an ephemeral port when None)."""
        if port is None:
            port = self._alloc_ephemeral()
        elif port in self.sockets:
            raise RuntimeError(f"UDP port {port} already bound on {self.stack.name}")
        sock = UdpSocket(self, port, inbox_capacity=inbox_capacity)
        self.sockets[port] = sock
        return sock

    def _alloc_ephemeral(self) -> int:
        start = self._next_ephemeral
        port = start
        while port in self.sockets:
            port += 1
            if port > EPHEMERAL_LIMIT:
                port = EPHEMERAL_BASE
            if port == start:
                raise RuntimeError("ephemeral UDP ports exhausted")
        self._next_ephemeral = port + 1
        if self._next_ephemeral > EPHEMERAL_LIMIT:
            self._next_ephemeral = EPHEMERAL_BASE
        return port

    def _unbind(self, port: int) -> None:
        self.sockets.pop(port, None)

    # -- datapath -----------------------------------------------------------
    def send(self, src_port: int, dst_ip: IPv4Address, dst_port: int, payload: Payload) -> None:
        datagram = UdpDatagram(src_port, dst_port, payload)
        src_ip = self.stack.source_ip_for(dst_ip)
        self.stack.send_ip(ipv4(src_ip, dst_ip, datagram))

    def receive(self, packet) -> None:
        datagram: UdpDatagram = packet.payload
        self.rx_datagrams += 1
        sock = self.sockets.get(datagram.dst_port)
        if sock is None or sock.closed:
            self.rx_unmatched += 1
            return
        sock._enqueue(datagram.payload, packet.src, datagram.src_port)
