"""Simulated network substrate: L2 Ethernet, links, IP, UDP/TCP/ICMP.

This package is the "physical network" of the reproduction. It provides:

* :mod:`repro.net.addresses` — MAC/IPv4 addressing and CIDR helpers.
* :mod:`repro.net.packet` — wire formats with byte-accurate size accounting.
* :mod:`repro.net.l2` — links (latency/bandwidth/loss/queues), learning
  switches, and software bridges.
* :mod:`repro.net.stack` — per-host network stack (interfaces, ARP,
  routing, forwarding) and the :class:`Host` node.
* :mod:`repro.net.udp`, :mod:`repro.net.tcp`, :mod:`repro.net.icmp` —
  transport layers (TCP implements Reno congestion control).
* :mod:`repro.net.wan` — a latency-matrix "Internet cloud" joining site
  gateways.
* :mod:`repro.net.dhcp` — minimal DHCP, used to demonstrate L2
  transparency of the virtual network.
"""

from repro.net.addresses import (
    BROADCAST_MAC,
    IPv4Address,
    IPv4Network,
    MacAddress,
    mac_factory,
)
from repro.net.l2 import Bridge, Link, Switch
from repro.net.packet import (
    ArpPacket,
    EthernetFrame,
    IcmpMessage,
    IPv4Packet,
    Payload,
    TcpSegment,
    UdpDatagram,
)
from repro.net.stack import Host, Interface, NetworkStack, Router
from repro.net.wan import WanCloud

__all__ = [
    "ArpPacket",
    "BROADCAST_MAC",
    "Bridge",
    "EthernetFrame",
    "Host",
    "IcmpMessage",
    "IPv4Address",
    "IPv4Network",
    "IPv4Packet",
    "Interface",
    "Link",
    "MacAddress",
    "NetworkStack",
    "Payload",
    "Router",
    "Switch",
    "TcpSegment",
    "UdpDatagram",
    "WanCloud",
    "mac_factory",
]
