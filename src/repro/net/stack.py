"""Per-host network stack: interfaces, ARP, routing, forwarding.

A :class:`NetworkStack` owns one or more :class:`Interface` objects, an
ARP cache, a longest-prefix-match routing table, and the three transport
layers. :class:`Host` is a stack with forwarding disabled;
:class:`Router` forwards.

The stack is deliberately interface-agnostic about what its ports attach
to — a wired :class:`~repro.net.l2.Link`, a software bridge port, or a
WAVNet tap. That is what lets a VM's stack stay untouched across live
migration: the VM's interface port is simply re-patched to a bridge on
the destination host.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net.addresses import BROADCAST_MAC, IPv4Address, IPv4Network, MacAddress
from repro.net.icmp import IcmpLayer
from repro.net.l2 import Port
from repro.net.packet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    ArpPacket,
    EthernetFrame,
    IPv4Packet,
    frame_for,
)
from repro.net.tcp import TcpLayer
from repro.net.udp import UdpLayer
from repro.sim.engine import Simulator

__all__ = ["Host", "Interface", "NetworkStack", "Route", "Router"]

ARP_TIMEOUT = 1.0
ARP_RETRIES = 3
ARP_CACHE_TTL = 600.0


class Interface:
    """A network interface: MAC + optional IP config + an L2 port."""

    def __init__(self, stack: "NetworkStack", name: str, mac: MacAddress) -> None:
        self.stack = stack
        self.name = name
        self.mac = mac
        self.ip: Optional[IPv4Address] = None
        self.network: Optional[IPv4Network] = None
        self.port = Port(self, name=f"{stack.name}.{name}")
        self.promiscuous = False
        self.rx_frames = 0
        self.tx_frames = 0

    def configure(self, ip: IPv4Address | str, network: IPv4Network | str) -> "Interface":
        self.ip = IPv4Address(ip)
        self.network = IPv4Network(network) if isinstance(network, str) else network
        if self.ip not in self.network:
            raise ValueError(f"{self.ip} not in {self.network}")
        return self

    def deconfigure(self) -> None:
        self.ip = None
        self.network = None

    # Port owner protocol -------------------------------------------------
    def on_frame(self, frame: EthernetFrame, port: Port) -> None:
        self.rx_frames += 1
        self.stack.receive_frame(self, frame)

    def send_frame(self, frame: EthernetFrame) -> None:
        self.tx_frames += 1
        self.port.transmit(frame)

    def __repr__(self) -> str:
        return f"Interface({self.name}, mac={self.mac}, ip={self.ip})"


class Route:
    """Routing table entry: destination prefix -> (interface, gateway)."""

    __slots__ = ("network", "iface", "gateway", "metric")

    def __init__(self, network: IPv4Network, iface: Interface,
                 gateway: Optional[IPv4Address] = None, metric: int = 0) -> None:
        self.network = network
        self.iface = iface
        self.gateway = gateway
        self.metric = metric

    def __repr__(self) -> str:
        via = f" via {self.gateway}" if self.gateway else ""
        return f"Route({self.network} dev {self.iface.name}{via})"


class NetworkStack:
    """IP stack shared by hosts, routers, and NAT boxes."""

    def __init__(self, sim: Simulator, name: str, forwarding: bool = False,
                 tcp_mss: int = 1460, tcp_send_buf: int = 262144,
                 tcp_recv_buf: int = 262144, tcp_cc: str = "cubic") -> None:
        self.sim = sim
        self.name = name
        self.forwarding = forwarding
        self.interfaces: list[Interface] = []
        self.routes: list[Route] = []
        self.arp_cache: dict[IPv4Address, tuple[MacAddress, float]] = {}
        self._arp_pending: dict[IPv4Address, list[tuple[Interface, IPv4Packet]]] = {}
        self.udp = UdpLayer(self)
        self.tcp = TcpLayer(self, mss=tcp_mss, send_buf=tcp_send_buf,
                            recv_buf=tcp_recv_buf, cc=tcp_cc)
        self.icmp = IcmpLayer(self)
        # Hook points used by NAT boxes and the WAVNet driver.
        self.pre_routing: Optional[Callable[[IPv4Packet, Interface], Optional[IPv4Packet]]] = None
        self.post_routing: Optional[Callable[[IPv4Packet, Interface], Optional[IPv4Packet]]] = None
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self._taps: Optional[list] = None

    def add_tap(self, tap) -> None:
        """Attach a :class:`~repro.obs.taps.PacketTap` at the IP layer:
        captures locally-originated packets on send and locally-delivered
        packets on receive (the tcpdump-on-the-host view)."""
        if self._taps is None:
            self._taps = []
        self._taps.append(tap)

    # -- configuration ------------------------------------------------------
    def add_interface(self, name: str, mac: MacAddress) -> Interface:
        iface = Interface(self, name, mac)
        self.interfaces.append(iface)
        return iface

    def interface(self, name: str) -> Interface:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise KeyError(f"no interface {name!r} on {self.name}")

    def add_route(self, network: IPv4Network | str, iface: Interface,
                  gateway: Optional[IPv4Address | str] = None, metric: int = 0) -> None:
        net = IPv4Network(network) if isinstance(network, str) else network
        gw = IPv4Address(gateway) if isinstance(gateway, str) else gateway
        self.routes.append(Route(net, iface, gw, metric))
        self.routes.sort(key=lambda r: (-r.network.prefix_len, r.metric))

    def del_routes_via(self, iface: Interface) -> None:
        self.routes = [r for r in self.routes if r.iface is not iface]

    def connected_route_for(self, iface: Interface) -> None:
        """Add the directly-connected route implied by the iface config."""
        if iface.network is None:
            raise ValueError(f"{iface.name} has no IP config")
        self.add_route(iface.network, iface)

    def lookup_route(self, dst: IPv4Address) -> Optional[Route]:
        for route in self.routes:
            if dst in route.network:
                return route
        return None

    def source_ip_for(self, dst: IPv4Address) -> IPv4Address:
        """Source address selection: the out-interface's address."""
        route = self.lookup_route(dst)
        if route is not None and route.iface.ip is not None:
            return route.iface.ip
        for iface in self.interfaces:
            if iface.ip is not None:
                return iface.ip
        raise RuntimeError(f"{self.name}: no configured interface for {dst}")

    @property
    def ips(self) -> list[IPv4Address]:
        return [i.ip for i in self.interfaces if i.ip is not None]

    # -- transmit path ---------------------------------------------------
    def send_ip(self, packet: IPv4Packet) -> None:
        if self._taps is not None:
            for tap in self._taps:
                tap.packet(self.name, "tx", packet)
        route = self.lookup_route(packet.dst)
        if route is None:
            self.packets_dropped += 1
            return
        self._send_via(route, packet)

    def _send_via(self, route: Route, packet: IPv4Packet) -> None:
        iface = route.iface
        if self.post_routing is not None:
            maybe = self.post_routing(packet, iface)
            if maybe is None:
                self.packets_dropped += 1
                return
            packet = maybe
        self.packets_sent += 1
        dst = packet.dst
        if dst.is_broadcast or (iface.network is not None and dst == iface.network.broadcast):
            iface.send_frame(frame_for(packet, iface.mac, BROADCAST_MAC))
            return
        next_hop = route.gateway if route.gateway is not None else dst
        mac = self._arp_lookup(next_hop)
        if mac is not None:
            iface.send_frame(frame_for(packet, iface.mac, mac))
        else:
            self._arp_resolve(iface, next_hop, packet)

    # -- ARP ------------------------------------------------------------------
    def _arp_lookup(self, ip: IPv4Address) -> Optional[MacAddress]:
        entry = self.arp_cache.get(ip)
        if entry is None:
            return None
        mac, when = entry
        if self.sim.now - when > ARP_CACHE_TTL:
            del self.arp_cache[ip]
            return None
        return mac

    def _arp_resolve(self, iface: Interface, next_hop: IPv4Address, packet: IPv4Packet) -> None:
        pending = self._arp_pending.setdefault(next_hop, [])
        pending.append((iface, packet))
        if len(pending) == 1:
            self.sim.process(self._arp_requester(iface, next_hop), name=f"arp:{next_hop}")

    def _arp_requester(self, iface: Interface, target: IPv4Address):
        for _attempt in range(ARP_RETRIES):
            if iface.ip is None:
                break
            request = ArpPacket("request", iface.mac, iface.ip, None, target)
            iface.send_frame(frame_for(request, iface.mac, BROADCAST_MAC))
            yield self.sim.timeout(ARP_TIMEOUT)
            if target not in self._arp_pending:
                return  # resolved; queue flushed by the reply handler
        dropped = self._arp_pending.pop(target, [])
        self.packets_dropped += len(dropped)

    def _learn_arp(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.arp_cache[ip] = (mac, self.sim.now)
        pending = self._arp_pending.pop(ip, None)
        if pending:
            for _iface, packet in pending:
                self.send_ip(packet)

    def gratuitous_arp(self, iface: Interface) -> None:
        """Announce (ip, mac) to the whole L2 segment — the post-migration
        broadcast of Fig 5."""
        if iface.ip is None:
            raise RuntimeError(f"{iface.name}: gratuitous ARP without IP")
        announce = ArpPacket("reply", iface.mac, iface.ip, BROADCAST_MAC, iface.ip)
        iface.send_frame(frame_for(announce, iface.mac, BROADCAST_MAC))

    def _handle_arp(self, iface: Interface, arp: ArpPacket) -> None:
        # Learn the sender mapping from every ARP we see (requests,
        # replies, and gratuitous announcements alike).
        self._learn_arp(arp.sender_ip, arp.sender_mac)
        if arp.op == "request" and iface.ip is not None and arp.target_ip == iface.ip:
            reply = ArpPacket("reply", iface.mac, iface.ip, arp.sender_mac, arp.sender_ip)
            iface.send_frame(frame_for(reply, iface.mac, arp.sender_mac))

    # -- receive path -----------------------------------------------------------
    def receive_frame(self, iface: Interface, frame: EthernetFrame) -> None:
        if frame.ethertype == ETHERTYPE_ARP:
            self._handle_arp(iface, frame.payload)
            return
        if frame.ethertype != ETHERTYPE_IPV4:
            return
        if not (frame.dst == iface.mac or frame.dst.is_broadcast or iface.promiscuous):
            return
        packet: IPv4Packet = frame.payload
        if self.pre_routing is not None:
            maybe = self.pre_routing(packet, iface)
            if maybe is None:
                self.packets_dropped += 1
                return
            packet = maybe
        if self._is_local(packet.dst) or packet.dst.is_broadcast or self._is_subnet_broadcast(packet.dst):
            self.deliver_local(packet)
        elif self.forwarding:
            self.forward(packet)
        else:
            self.packets_dropped += 1

    def _is_local(self, ip: IPv4Address) -> bool:
        for iface in self.interfaces:
            if iface.ip == ip:
                return True
        return False

    def _is_subnet_broadcast(self, ip: IPv4Address) -> bool:
        for iface in self.interfaces:
            if iface.network is not None and ip == iface.network.broadcast:
                return True
        return False

    def deliver_local(self, packet: IPv4Packet) -> None:
        if self._taps is not None:
            for tap in self._taps:
                tap.packet(self.name, "rx", packet)
        self.packets_received += 1
        if packet.proto == PROTO_UDP:
            self.udp.receive(packet)
        elif packet.proto == PROTO_TCP:
            self.tcp.receive(packet)
        elif packet.proto == PROTO_ICMP:
            self.icmp.receive(packet)

    def forward(self, packet: IPv4Packet) -> None:
        if packet.ttl <= 1:
            self.packets_dropped += 1
            return
        route = self.lookup_route(packet.dst)
        if route is None:
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        self._send_via(route, packet.decremented())


class Host:
    """An end host: a node with a non-forwarding stack.

    ``cpu_factor`` scales modeled computation times (used by the MPI
    kernels to reflect the heterogeneous testbed of Table I).
    """

    def __init__(self, sim: Simulator, name: str, mac_mint: Callable[[], MacAddress],
                 cpu_factor: float = 1.0, **stack_kwargs: Any) -> None:
        self.sim = sim
        self.name = name
        self.mac_mint = mac_mint
        self.cpu_factor = cpu_factor
        self.stack = NetworkStack(sim, name, forwarding=False, **stack_kwargs)

    def add_nic(self, name: str = "eth0") -> Interface:
        return self.stack.add_interface(name, self.mac_mint())

    # Convenience pass-throughs used everywhere in apps/benchmarks.
    @property
    def udp(self) -> UdpLayer:
        return self.stack.udp

    @property
    def tcp(self) -> TcpLayer:
        return self.stack.tcp

    @property
    def icmp(self) -> IcmpLayer:
        return self.stack.icmp

    def __repr__(self) -> str:
        return f"Host({self.name})"


class Router(Host):
    """A forwarding node (stack with ``forwarding=True``)."""

    def __init__(self, sim: Simulator, name: str, mac_mint: Callable[[], MacAddress],
                 **stack_kwargs: Any) -> None:
        super().__init__(sim, name, mac_mint, **stack_kwargs)
        self.stack.forwarding = True
