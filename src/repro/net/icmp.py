"""ICMP echo (the substrate for every ping measurement in the paper).

The layer answers echo-requests addressed to the stack and routes
echo-replies back to the :class:`Pinger` that issued them. RTT is
measured from the timestamp the requester stamped into the message, which
the responder echoes back unchanged — exactly how ``ping`` works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address
from repro.net.packet import IcmpMessage, ipv4
from repro.sim.queues import Store

__all__ = ["IcmpLayer", "PingResult", "Pinger"]


class IcmpLayer:
    """Per-stack ICMP echo responder and reply demultiplexer."""

    def __init__(self, stack) -> None:
        self.stack = stack
        self._listeners: dict[int, Store] = {}  # ident -> reply inbox
        self._next_ident = 1
        self.echo_requests_answered = 0

    def new_ident(self) -> int:
        ident = self._next_ident
        self._next_ident += 1
        return ident

    def listen(self, ident: int) -> Store:
        inbox = Store(self.stack.sim)
        self._listeners[ident] = inbox
        return inbox

    def unlisten(self, ident: int) -> None:
        self._listeners.pop(ident, None)

    def send_echo_request(
        self, dst: IPv4Address, ident: int, seq: int, payload_size: int = 56
    ) -> None:
        msg = IcmpMessage(
            "echo-request", ident, seq, payload_size=payload_size, timestamp=self.stack.sim.now
        )
        self.stack.send_ip(ipv4(self.stack.source_ip_for(dst), dst, msg))

    def receive(self, packet) -> None:
        msg: IcmpMessage = packet.payload
        if msg.kind == "echo-request":
            self.echo_requests_answered += 1
            reply = IcmpMessage(
                "echo-reply", msg.ident, msg.seq, msg.payload_size, timestamp=msg.timestamp
            )
            self.stack.send_ip(ipv4(self.stack.source_ip_for(packet.src), packet.src, reply))
        elif msg.kind == "echo-reply":
            inbox = self._listeners.get(msg.ident)
            if inbox is not None:
                inbox.try_put((msg, packet.src))


@dataclass
class PingResult:
    """Outcome of a ping run: per-probe RTTs (seconds) and loss count."""

    rtts: list = field(default_factory=list)
    sent: int = 0
    lost: int = 0
    # (send_time, rtt_or_None) per probe, for timeline figures (Fig 10).
    samples: list = field(default_factory=list)

    @property
    def received(self) -> int:
        return self.sent - self.lost

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    def mean_rtt(self) -> float:
        return sum(self.rtts) / len(self.rtts) if self.rtts else float("nan")

    def min_rtt(self) -> float:
        return min(self.rtts) if self.rtts else float("nan")

    def max_rtt(self) -> float:
        return max(self.rtts) if self.rtts else float("nan")


class Pinger:
    """``ping``-style prober: periodic echo requests with a per-probe timeout."""

    def __init__(self, stack, dst: IPv4Address, interval: float = 1.0, timeout: float = 1.0,
                 payload_size: int = 56) -> None:
        self.stack = stack
        self.dst = dst
        self.interval = interval
        self.timeout = timeout
        self.payload_size = payload_size
        self.result = PingResult()

    def run(self, count: int):
        """Process: send ``count`` probes; returns the PingResult.

        Per-probe RTTs also land in the metrics registry under
        ``<stack>.ping.rtt`` (series) / ``<stack>.ping.lost`` (counter)
        so benchmarks can read measurements without holding the Pinger.
        """
        sim = self.stack.sim
        icmp: IcmpLayer = self.stack.icmp
        obs = sim.metrics.scope(f"{self.stack.name}.ping")
        rtt_series = obs.series("rtt")
        lost_counter = obs.counter("lost")
        ident = icmp.new_ident()
        inbox = icmp.listen(ident)
        # A single outstanding inbox.get() is reused across probes so that
        # a probe timing out never strands a getter that would swallow the
        # next probe's reply.
        pending_get = None
        try:
            for seq in range(count):
                send_time = sim.now
                icmp.send_echo_request(self.dst, ident, seq, self.payload_size)
                self.result.sent += 1
                deadline = sim.timeout(self.timeout)
                got_reply = False
                # Drain replies until ours arrives or the timeout fires;
                # late replies to earlier probes are discarded (as ping does).
                while True:
                    if pending_get is None:
                        pending_get = inbox.get()
                    yield sim.any_of([pending_get, deadline])
                    if not pending_get.processed:
                        break  # timed out; pending_get stays armed
                    msg, _src = pending_get.value
                    pending_get = None
                    if msg.seq == seq:
                        rtt = sim.now - msg.timestamp
                        self.result.rtts.append(rtt)
                        self.result.samples.append((send_time, rtt))
                        rtt_series.record(rtt)
                        got_reply = True
                        break
                if not got_reply:
                    self.result.lost += 1
                    lost_counter.add()
                    self.result.samples.append((send_time, None))
                remaining = self.interval - (sim.now - send_time)
                if remaining > 0:
                    yield sim.timeout(remaining)
        finally:
            icmp.unlisten(ident)
        return self.result
