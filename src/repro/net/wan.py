"""The Internet as a latency cloud.

Site-pair RTTs in the paper (Table I / Table II / Table V) are direct
measurements, not derivable from any metric topology — so we model the
Internet core the same way: a :class:`WanCloud` delivers frames between
attachment points with a configurable per-pair one-way latency. Capacity
bottlenecks live on the *access links* between each site gateway and the
cloud, matching how the paper's sites were actually constrained.

The cloud behaves like a giant learning switch (so ARP between public
addresses works), but with per-pair delays instead of a uniform fabric
delay.
"""

from __future__ import annotations


from repro.net.addresses import MacAddress
from repro.net.l2 import Port
from repro.net.packet import EthernetFrame
from repro.sim.engine import Simulator

__all__ = ["WanCloud"]


class WanCloud:
    """Per-pair-latency frame fabric joining site gateways."""

    def __init__(self, sim: Simulator, name: str = "internet",
                 default_latency: float = 0.050) -> None:
        self.sim = sim
        self.name = name
        self.default_latency = default_latency
        self.ports: dict[str, Port] = {}
        self._port_names: dict[Port, str] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self.mac_table: dict[MacAddress, str] = {}
        self.frames_carried = 0
        # Inter-site partitions: ordered pairs whose frames are dropped.
        self._partitioned: set[tuple[str, str]] = set()
        self.frames_partitioned = 0
        self._watchers: list = []
        # PDES boundary: sites that exist in this topology but are owned
        # by another partition's process. Frames addressed to them are
        # captured into the outbox instead of scheduled locally; the pdes
        # runtime drains the outbox at every window barrier.
        self._remote_sites: dict[str, int] = {}
        self._outbox: list[tuple] = []
        self._out_seq = 0

    def add_watcher(self, fn) -> None:
        """Subscribe ``fn(cloud)`` to partition/heal changes (fluid-plane
        re-solve hook)."""
        self._watchers.append(fn)

    def _notify_watchers(self) -> None:
        for fn in self._watchers:
            fn(self)

    # -- topology -----------------------------------------------------------
    def attach(self, site: str) -> Port:
        """Create the cloud-side port for ``site``; wire it to the site's
        gateway with a Link (that link models the site's access capacity)."""
        if site in self.ports:
            raise ValueError(f"site {site!r} already attached")
        port = Port(self, name=f"{self.name}.{site}")
        self.ports[site] = port
        self._port_names[port] = site
        return port

    def detach(self, site: str) -> None:
        port = self.ports.pop(site)
        del self._port_names[port]
        self.mac_table = {m: s for m, s in self.mac_table.items() if s != site}

    def set_latency(self, a: str, b: str, one_way: float) -> None:
        """Symmetric one-way latency between two attachment points."""
        if one_way < 0:
            raise ValueError(f"negative latency {one_way}")
        self._latency[(a, b)] = one_way
        self._latency[(b, a)] = one_way

    def set_rtt(self, a: str, b: str, rtt: float) -> None:
        self.set_latency(a, b, rtt / 2.0)

    def latency(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._latency.get((a, b), self.default_latency)

    # -- partitions (fault plane) ---------------------------------------
    def partition(self, group_a, group_b) -> None:
        """Drop all frames between sites in ``group_a`` and ``group_b``
        (both directions) until :meth:`heal` — a WAN inter-site
        partition. Sites not named keep full connectivity."""
        for a in group_a:
            for b in group_b:
                if a != b:
                    self._partitioned.add((a, b))
                    self._partitioned.add((b, a))
        self.sim.trace.event("fault.partition", cloud=self.name,
                             a=sorted(group_a), b=sorted(group_b))
        self._notify_watchers()

    def heal(self, group_a=None, group_b=None) -> None:
        """Remove a specific partition, or all of them when called with
        no arguments."""
        if group_a is None:
            self._partitioned.clear()
        else:
            for a in group_a:
                for b in group_b or ():
                    self._partitioned.discard((a, b))
                    self._partitioned.discard((b, a))
        self.sim.trace.event("fault.heal", cloud=self.name)
        self._notify_watchers()

    def partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitioned

    # -- pdes boundary --------------------------------------------------
    def declare_remote_site(self, site: str, partition: int) -> None:
        """Declare that ``site`` is attached to this cloud in another
        partition's process. Frames toward it are captured into the
        outbox (timestamped, in send order) instead of scheduled on the
        local calendar."""
        if site in self.ports:
            raise ValueError(f"site {site!r} is attached locally")
        self._remote_sites[site] = partition

    def is_remote(self, site: str) -> bool:
        """True when ``site`` is a declared other-partition attachment."""
        return site in self._remote_sites

    def remote_partitions(self) -> list[int]:
        """Partition ids that own at least one declared remote site."""
        return sorted(set(self._remote_sites.values()))

    def min_remote_latency(self) -> float:
        """Minimum one-way latency from any local site to any remote
        site — the conservative PDES lookahead for this partition."""
        best = float("inf")
        for local in self.ports:
            for remote in self._remote_sites:
                lat = self.latency(local, remote)
                if lat < best:
                    best = lat
        return best if best != float("inf") else self.default_latency

    def drain_outbox(self) -> list[tuple]:
        """Return and clear the captured cross-partition frame records.

        Each record is ``(partition, deliver_time, send_time, src_site,
        seq, dst_site, frame)``; ``dst_site is None`` marks a flood
        record the receiving partition expands over its own ports.
        """
        out, self._outbox = self._outbox, []
        return out

    def _capture(self, src: str, dst: str | None, frame: EthernetFrame,
                 partition: int | None = None) -> None:
        if dst is not None:
            if self._partitioned and (src, dst) in self._partitioned:
                self.frames_partitioned += 1
                return
            deliver = self.sim.now + self.latency(src, dst)
            if partition is None:
                partition = self._remote_sites[dst]
        else:
            deliver = None  # flood: receiver computes per-site latency
        self._out_seq += 1
        self._outbox.append(
            (partition, deliver, self.sim.now, src, self._out_seq, dst, frame)
        )

    def inject_remote_frame(self, src_site: str, dst_site: str,
                            deliver_time: float, frame: EthernetFrame) -> None:
        """Deliver a frame captured at another partition's boundary.

        Learns the source MAC exactly as serial ingress would (no local
        host can have addressed this MAC before the frame arrives, so
        learning at the barrier preserves unicast/flood decisions) and
        schedules the delivery; ``frames_carried`` is *not* incremented —
        the sending partition already counted this frame.
        """
        if self._partitioned and (src_site, dst_site) in self._partitioned:
            self.frames_partitioned += 1
            return
        self.mac_table[frame.src] = src_site
        port = self.ports.get(dst_site)
        if port is None:
            return
        self.sim.call_at(deliver_time, _CloudDelivery(port, frame))

    def expand_flood(self, src_site: str, send_time: float):
        """Destinations of a remote flood record, in attachment order:
        yields ``(dst_site, deliver_time)`` for every local port."""
        for site in list(self.ports):
            if site != src_site:
                yield site, send_time + self.latency(src_site, site)

    # -- datapath -------------------------------------------------------------
    def on_frame(self, frame: EthernetFrame, in_port: Port) -> None:
        src_site = self._port_names.get(in_port)
        if src_site is None:
            return  # detached mid-flight
        self.mac_table[frame.src] = src_site
        self.frames_carried += 1
        if not frame.dst.is_broadcast:
            dst_site = self.mac_table.get(frame.dst)
            if dst_site is not None:
                if dst_site in self._remote_sites:
                    self._capture(src_site, dst_site, frame)
                else:
                    self._deliver(src_site, dst_site, frame)
                return
        # Broadcast / unknown destination: flood (ARP resolution path).
        for site in list(self.ports):
            if site != src_site:
                self._deliver(src_site, site, frame)
        if self._remote_sites:
            # One flood record per remote partition; each receiver
            # expands it over its own attachment points.
            seen: set[int] = set()
            for pid in self._remote_sites.values():
                if pid not in seen:
                    seen.add(pid)
                    self._capture(src_site, None, frame, pid)

    def _deliver(self, src: str, dst: str, frame: EthernetFrame) -> None:
        if self._partitioned and (src, dst) in self._partitioned:
            self.frames_partitioned += 1
            return
        port = self.ports.get(dst)
        if port is None:
            return
        # Kernel fast lane: one calendar entry per frame, no Event churn
        # (same treatment as the unshaped-link bypass in net/l2).
        self.sim.call_in(self.latency(src, dst), _CloudDelivery(port, frame))


class _CloudDelivery:
    __slots__ = ("port", "frame")

    def __init__(self, port: Port, frame: EthernetFrame) -> None:
        self.port = port
        self.frame = frame

    def __call__(self) -> None:
        self.port.transmit(self.frame)
