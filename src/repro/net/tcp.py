"""TCP with pluggable congestion control (see :mod:`repro.net.cc`).

Every throughput experiment in the paper (ttcp Fig 6, netperf Figs 7-9,
ApacheBench Tables III-IV, migration traffic Table V) is TCP-shaped, so
the transport has to reproduce real TCP dynamics:

* slow start / congestion avoidance with ``ssthresh`` — delegated to a
  per-connection :class:`~repro.net.cc.CongestionControl` strategy
  (``cc="reno" | "cubic" | "bbr"``, cubic by default);
* fast retransmit + fast recovery on 3 duplicate ACKs;
* retransmission timeout with Jacobson/Karn RTT estimation and
  exponential backoff;
* receiver flow control (advertised window backed by a finite buffer);
* byte-counted streams with in-order delivery and out-of-order reassembly.

Simplifications relative to a kernel stack: no SACK, no Nagle, no delayed
ACKs, no TIME_WAIT, sequence numbers never wrap (Python ints). None of
these affect the phenomena the paper measures.

Application data is modeled as byte *counts*; message objects ride along
as "markers" pinned to a byte offset and surface at the receiver exactly
when that offset is delivered in order — giving apps (HTTP, migration)
reliable message framing on top of the byte stream.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.addresses import IPv4Address
# Re-exported for back-compat: these historically lived here, and the
# fluid plane / apps import them from this module.
from repro.net.cc import (INITIAL_CWND_SEGMENTS, cc_algorithm,  # noqa: F401
                          mathis_rate_bps, window_rate_bps)
from repro.net.packet import ACK, FIN, RST, SYN, TcpSegment, ipv4
from repro.sim.engine import Event, Simulator, Timer
from repro.sim.queues import Store

__all__ = ["TcpConnection", "TcpLayer", "TcpListener", "ConnectionReset"]

EPHEMERAL_BASE = 33000
EPHEMERAL_LIMIT = 60999

MIN_RTO = 0.2
MAX_RTO = 60.0
INITIAL_RTO = 1.0

# -- capacity accounting (shared with the fluid plane, repro.net.fluid) --
# Wire bytes added per MSS of goodput on a native path: TCP header (20)
# + IPv4 header (20) + Ethernet header (14) + FCS (4).
WIRE_OVERHEAD_TCP = 58


class ConnectionReset(Exception):
    """Raised to waiters when the peer resets or the connection aborts."""


class TcpListener:
    """Passive endpoint; ``accept()`` yields established connections."""

    def __init__(self, layer: "TcpLayer", port: int, backlog: int = 64) -> None:
        self.layer = layer
        self.port = port
        self.accept_queue: Store = Store(layer.stack.sim, capacity=backlog)
        self.closed = False

    def accept(self) -> Event:
        return self.accept_queue.get()

    def close(self) -> None:
        self.closed = True
        self.layer.listeners.pop(self.port, None)


class TcpConnection:
    """One endpoint of a TCP connection."""

    def __init__(
        self,
        layer: "TcpLayer",
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        mss: int,
        send_buf: int,
        recv_buf: int,
        cc: str = "cubic",
    ) -> None:
        self.layer = layer
        self.sim: Simulator = layer.stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.mss = mss
        self.send_buf_capacity = send_buf
        self.recv_buf_capacity = recv_buf

        self.state = "CLOSED"
        self.established_event: Event = Event(self.sim)

        # --- sender state (byte sequence space; ISS = 0 for clarity) ---
        self.snd_una = 0          # oldest unacknowledged byte
        self.snd_nxt = 0          # next byte to send
        self.snd_max = 0          # highest byte ever sent (for ack sanity)
        self.snd_buffered = 0     # bytes accepted from app, not yet sent
        self.snd_markers: list[tuple[int, Any]] = []  # (end_offset, obj)
        self._app_write_total = 0  # absolute offset of last byte accepted
        self.snd_wnd = recv_buf   # peer's advertised window
        self._send_waiters: list[tuple[int, Event]] = []  # (bytes, event)
        self.fin_pending = False
        self.fin_sent = False
        self.fin_seq: Optional[int] = None

        # --- congestion control (strategy plane, repro.net.cc) ---
        # Path RTT tracking shared by the strategies (HyStart's
        # delay-increase exit, BBR's BDP): the path minimum and the
        # freshest sample.
        self._min_rtt: Optional[float] = None
        self._last_rtt_sample: Optional[float] = None
        self.cc = cc
        self.cc_algo = cc_algorithm(cc, self)
        self._cc_series: Optional[tuple] = None
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recover = 0
        # SACK scoreboard: disjoint sorted (start, end) ranges the peer
        # holds above snd_una; _rtx_next tracks recovery progress.
        self._sacked: list[tuple[int, int]] = []
        self._rtx_next = 0
        self._stale_dupacks = 0  # dupacks since the last head retransmit
        self._fr_credit = 0      # new-data sends allowed during recovery
        self._head_rtx_mark = 0  # sack high-water when head was last resent
        self._head_rtx_time = -1.0

        # --- RTT estimation ---
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rtt_probe: Optional[tuple[int, float]] = None  # (seq_end, sent_at)
        self._retransmitted_since_probe = False

        # --- retransmit timer ---
        # Cancelable kernel timer instead of a dedicated timer process:
        # arming is one calendar push, rearming reuses a live timer when
        # it fires at/before the new deadline (the fire re-arms itself).
        self._rto_deadline: Optional[float] = None
        self._rto_timer: Optional[Timer] = None
        self._timer_cb = self._timer_fire  # bind once, not per arm

        # --- receiver state ---
        self.rcv_nxt = 0
        self.ooo: dict[int, int] = {}  # seq -> length (out-of-order runs)
        self._rx_markers: dict[int, Any] = {}  # end offset -> app object
        self.rcv_unread = 0    # in-order bytes delivered to the app inbox, unread
        self.ooo_bytes = 0     # bytes parked in the out-of-order store
        self.app_inbox: Store = Store(self.sim)
        self.peer_fin_seq: Optional[int] = None
        self._eof_delivered = False

        # --- bookkeeping ---
        self.bytes_acked_total = 0
        self.bytes_delivered_total = 0
        self.retransmits = 0
        self.timeouts = 0
        self._send_kick = Event(self.sim)
        self._closed_for_send = False
        self.reset = False

        self.sim.process(self._sender_loop(), name=f"tcp-send:{local_port}")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple[int, IPv4Address, int]:
        return (self.local_port, self.remote_ip, self.remote_port)

    # Window state is owned by the strategy; delegate so every existing
    # reader (apps, tests, benchmarks) keeps working unchanged.
    @property
    def cwnd(self) -> int:
        return self.cc_algo.cwnd

    @cwnd.setter
    def cwnd(self, value: int) -> None:
        self.cc_algo.cwnd = value

    @property
    def ssthresh(self) -> int:
        return self.cc_algo.ssthresh

    @ssthresh.setter
    def ssthresh(self, value: int) -> None:
        self.cc_algo.ssthresh = value

    def enable_cc_trace(self, label: Optional[str] = None) -> None:
        """Record per-flow cwnd/ssthresh/srtt time series into the
        simulator's metrics registry (``repro.obs``) on every cumulative
        ACK, under ``<stack>.tcp.<label>.{cwnd,ssthresh,srtt_ms}``
        (label defaults to the local port)."""
        m = self.sim.metrics
        base = f"{self.layer.stack.name}.tcp.{label or self.local_port}"
        self._cc_series = (m.series(f"{base}.cwnd"),
                           m.series(f"{base}.ssthresh"),
                           m.series(f"{base}.srtt_ms"))

    def wait_established(self) -> Event:
        return self.established_event

    def send(self, nbytes: int, obj: Any = None) -> Event:
        """Queue ``nbytes`` for transmission; the event fires once the bytes
        fit in the send buffer (backpressure). ``obj`` surfaces at the
        receiver when the last of these bytes is delivered in order."""
        if self._closed_for_send or self.reset:
            ev = Event(self.sim)
            ev.fail(ConnectionReset("send on closed/reset connection"))
            return ev
        if nbytes < 0:
            raise ValueError("negative send size")
        ev = Event(self.sim)
        in_flight_or_buffered = (self.snd_nxt - self.snd_una) + self.snd_buffered
        if in_flight_or_buffered + nbytes <= self.send_buf_capacity or in_flight_or_buffered == 0:
            self._accept_bytes(nbytes, obj)
            ev.succeed(nbytes)
        else:
            self._send_waiters.append((nbytes, _Pending(ev, obj)))
        return ev

    def recv(self) -> Event:
        """Event yielding ``(nbytes, [objs])`` or ``None`` at EOF."""
        return self.app_inbox.get()

    def close(self) -> None:
        """Half-close: FIN after all queued data; receiving still works."""
        if self._closed_for_send:
            return
        self._closed_for_send = True
        self.fin_pending = True
        self._kick_send()

    def abort(self) -> None:
        """Send RST and tear down immediately."""
        if self.state not in ("CLOSED",):
            self._emit(TcpSegment(self.local_port, self.remote_port,
                                  self.snd_nxt, self.rcv_nxt, RST | ACK, 0))
        self._do_reset()

    # ------------------------------------------------------------------
    # Sender internals
    # ------------------------------------------------------------------
    def _accept_bytes(self, nbytes: int, obj: Any) -> None:
        self._app_write_total += nbytes
        self.snd_buffered += nbytes
        if obj is not None:
            self.snd_markers.append((self._app_write_total, obj))
        self._kick_send()

    def _kick_send(self) -> None:
        if not self._send_kick.triggered:
            self._send_kick.succeed(None)

    def _kick_timer(self) -> None:
        """(Re)arm the RTO timer to cover ``_rto_deadline``."""
        dl = self._rto_deadline
        if dl is None:
            return
        t = self._rto_timer
        if t is not None and t.active:
            if t.when <= dl + 1e-12:
                return  # fires at/before the deadline; re-arms itself
            t.cancel()
        self._rto_timer = self.sim.timer(max(dl - self.sim.now, 0.0), self._timer_cb)

    def _effective_window(self) -> int:
        return min(self.cwnd, self.snd_wnd)

    def _sender_loop(self):
        sim = self.sim
        burst = 0
        while True:
            if self.reset:
                return
            progressed = self._pump()
            if progressed:
                burst += 1
                if burst >= 10 and self.srtt:
                    # Micro-burst pacing: spread window-sized sends over
                    # a fraction of the RTT instead of blasting them
                    # back-to-back into a short bottleneck queue.
                    # Rate-based strategies (BBR) supply the rate; the
                    # default is two windows per RTT.
                    rate = self.cc_algo.pacing_rate()
                    if rate is None:
                        rate = 2.0 * max(self._effective_window(), self.mss) / self.srtt
                    yield sim.timeout(burst * self.mss / rate)
                    burst = 0
                continue
            burst = 0
            self._send_kick = Event(sim)
            yield self._send_kick

    def _pump(self) -> bool:
        """Emit at most one segment; True if something was sent."""
        if self.state != "ESTABLISHED" and self.state != "CLOSE_WAIT":
            return False
        window = self._effective_window()
        in_flight = self.snd_nxt - self.snd_una
        if self.in_fast_recovery:
            # Pipe-based accounting (RFC 3517): SACKed bytes left the
            # network, so new data may flow while recovery proceeds.
            in_flight -= self._sacked_bytes()
        room = window - in_flight
        if self.snd_buffered > 0 and room > 0:
            # Selective repeat across a post-RTO rewind: never resend
            # ranges the SACK scoreboard says the receiver already holds
            # (resending them would raise duplicate-ACK storms and
            # phantom fast-retransmit cycles).
            next_sack_start = None
            for start, end in self._sacked:
                if start <= self.snd_nxt < end:
                    skip = min(end - self.snd_nxt, self.snd_buffered)
                    self.snd_nxt += skip
                    self.snd_buffered -= skip
                    if self.snd_nxt > self.snd_max:
                        self.snd_max = self.snd_nxt
                    return True  # re-enter the pump with updated state
                if start > self.snd_nxt:
                    next_sack_start = start
                    break
            if self.in_fast_recovery:
                # Strict ack clocking while recovering: at most one new
                # segment per ACK processed, or the pipe estimate lets the
                # sender outrun the congested bottleneck indefinitely.
                if self._fr_credit <= 0:
                    return False
                self._fr_credit -= 1
            size = min(self.mss, self.snd_buffered, room)
            if next_sack_start is not None:
                size = min(size, next_sack_start - self.snd_nxt)
            if size <= 0:
                return False
            self._transmit_range(self.snd_nxt, size)
            self.snd_nxt += size
            self.snd_buffered -= size
            if self.snd_nxt > self.snd_max:
                self.snd_max = self.snd_nxt
            self._arm_rto()
            return True
        if (
            self.fin_pending
            and not self.fin_sent
            and self.snd_buffered == 0
            and self.snd_nxt == self._app_write_total
        ):
            self.fin_seq = self.snd_nxt
            self.fin_sent = True
            self.snd_nxt += 1  # FIN occupies one sequence number
            if self.snd_nxt > self.snd_max:
                self.snd_max = self.snd_nxt
            self._emit(TcpSegment(self.local_port, self.remote_port,
                                  self.fin_seq, self.rcv_nxt, FIN | ACK,
                                  self._advertised_window()))
            self._arm_rto()
            return True
        if self.snd_buffered > 0 and self.snd_nxt == self.snd_una:
            self._arm_rto()  # stalled on zero window: arm the persist timer
        return False

    def _transmit_range(self, seq: int, size: int, is_retransmit: bool = False) -> None:
        markers = [(end, obj) for end, obj in self.snd_markers if seq < end <= seq + size]
        seg = TcpSegment(
            self.local_port, self.remote_port, seq, self.rcv_nxt, ACK,
            self._advertised_window(), payload_size=size,
            payload_data=markers or None,
        )
        if not is_retransmit and self._rtt_probe is None:
            self._rtt_probe = (seq + size, self.sim.now)
            self._retransmitted_since_probe = False
        self._emit(seg)

    def _emit(self, seg: TcpSegment) -> None:
        self.layer.transmit(self, seg)

    def _arm_rto(self) -> None:
        if self._rto_deadline is None:
            self._rto_deadline = self.sim.now + self.rto
            self._kick_timer()

    def _timer_fire(self) -> None:
        self._rto_timer = None
        if self.reset:
            return
        dl = self._rto_deadline
        if dl is None:
            return  # everything acked while we slept; go dormant
        sim = self.sim
        if dl - sim.now > 1e-12:
            # Deadline moved later while we slept (ACKs restart the RTO
            # without rescheduling); sleep out the remainder.
            self._rto_timer = sim.timer(dl - sim.now, self._timer_cb)
            return
        # Deadline reached: anything outstanding?
        if self.snd_una < self.snd_nxt or (self.state == "SYN_SENT"):
            self._on_rto()
        elif self.snd_buffered > 0 and self._effective_window() < self.mss:
            self._persist_probe()
        else:
            self._rto_deadline = None
        self._kick_timer()  # no-op if the deadline was cleared

    def _on_rto(self) -> None:
        self.timeouts += 1
        if self.state == "SYN_SENT":
            self._send_syn()
        else:
            flight = self.snd_nxt - self.snd_una
            self.cc_algo.on_rto(flight)
            self.dupacks = 0
            self.in_fast_recovery = False
            self._rewind_to_una()
            self.retransmits += 1
            self._kick_send()
        self.rto = min(self.rto * 2, MAX_RTO)
        self._rto_deadline = self.sim.now + self.rto
        self._rtt_probe = None
        self._retransmitted_since_probe = True

    def _rewind_to_una(self) -> None:
        """Go-back-N after a timeout: unacked bytes return to the unsent
        pool so the pump resends them under the collapsed cwnd. The
        receiver's out-of-order cache turns most resends into fast,
        cumulative ACK jumps."""
        if self.snd_nxt == self.snd_una:
            return
        if self.fin_sent and self.fin_seq is not None and self.fin_seq >= self.snd_una:
            self.fin_sent = False  # FIN will be re-emitted after the data
            self.fin_seq = None
        self.snd_nxt = self.snd_una
        self.snd_buffered = self._app_write_total - self.snd_nxt

    # -- SACK machinery -------------------------------------------------
    def _merge_sack(self, blocks: tuple) -> None:
        ranges = [r for r in self._sacked if r[1] > self.snd_una]
        for start, end in blocks:
            if end <= self.snd_una or start >= end:
                continue
            ranges.append((max(start, self.snd_una), min(end, self.snd_max)))
        ranges.sort()
        merged: list[tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._sacked = merged

    def _sacked_bytes(self) -> int:
        """SACKed bytes *within the current flight* [snd_una, snd_nxt).
        After a rewind the scoreboard legitimately holds ranges beyond
        snd_nxt (the receiver does have them); counting those into the
        pipe estimate would make it negative and unleash bursts."""
        total = 0
        for start, end in self._sacked:
            lo = max(start, self.snd_una)
            hi = min(end, self.snd_nxt)
            if hi > lo:
                total += hi - lo
        return total

    def _sack_retransmit(self) -> bool:
        """Fill scoreboard holes in [snd_una, recover) within the cwnd
        budget. Returns True if anything was retransmitted."""
        if not self._sacked:
            return False
        pipe = (self.snd_nxt - self.snd_una) - self._sacked_bytes()
        # ACK clocking: one segment per incoming ACK while the pipe is
        # above cwnd (pure replacement), two when there is headroom — a
        # recovery episode cannot itself overflow the bottleneck queue.
        headroom = self.cwnd - pipe
        budget = 2 * self.mss if headroom >= 2 * self.mss else self.mss
        seq = max(self._rtx_next, self.snd_una)
        sent_any = False
        while budget > 0 and seq < self.recover:
            if self.fin_seq is not None and seq >= self.fin_seq:
                # The hole is the FIN itself: re-emit it as a FIN, never
                # as data (a data byte at fin_seq would make the receiver
                # skip the FIN and lose the EOF).
                self._emit(TcpSegment(self.local_port, self.remote_port,
                                      self.fin_seq, self.rcv_nxt, FIN | ACK,
                                      self._advertised_window()))
                self.retransmits += 1
                seq = self.recover
                self._rtx_next = seq
                sent_any = True
                break
            hole_end = self.recover
            if self.fin_seq is not None:
                hole_end = min(hole_end, self.fin_seq)
            covered = False
            for start, end in self._sacked:
                if start <= seq < end:
                    seq = end  # already at the receiver; skip
                    covered = True
                    break
                if start > seq:
                    hole_end = min(hole_end, start)
                    break
            if covered:
                continue
            size = min(self.mss, hole_end - seq)
            if size <= 0:
                break
            self._transmit_range(seq, size, is_retransmit=True)
            self.retransmits += 1
            seq += size
            self._rtx_next = seq
            budget -= size
            sent_any = True
        if sent_any:
            self._arm_rto()
        return sent_any

    def _persist_probe(self) -> None:
        """Zero-window probe: push one byte past the window so the peer's
        ACK re-advertises its (possibly reopened) window."""
        self._transmit_range(self.snd_nxt, 1, is_retransmit=True)
        self.snd_nxt += 1
        self.snd_buffered -= 1
        if self.snd_nxt > self.snd_max:
            self.snd_max = self.snd_nxt
        self.rto = min(self.rto * 2, MAX_RTO)
        self._rto_deadline = self.sim.now + self.rto

    def _retransmit_head(self) -> None:
        if self.snd_una >= self.snd_nxt:
            return
        self.retransmits += 1
        if self.fin_sent and self.snd_una == self.fin_seq:
            self._emit(TcpSegment(self.local_port, self.remote_port,
                                  self.fin_seq, self.rcv_nxt, FIN | ACK,
                                  self._advertised_window()))
            return
        size = min(self.mss, self.snd_nxt - self.snd_una)
        if self.fin_seq is not None:
            size = min(size, max(self.fin_seq - self.snd_una, 0)) or size
        self._transmit_range(self.snd_una, size, is_retransmit=True)
        self._retransmitted_since_probe = True

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def _send_syn(self) -> None:
        self._emit(TcpSegment(self.local_port, self.remote_port, 0, 0, SYN,
                              self._advertised_window()))

    def _start_active_open(self) -> None:
        self.state = "SYN_SENT"
        self.snd_una = 0
        self.snd_nxt = 1  # SYN consumes sequence 0
        self.snd_max = 1
        self._app_write_total = 1
        self._send_syn()
        self.rto = INITIAL_RTO
        self._rto_deadline = self.sim.now + self.rto
        self._kick_timer()

    def _start_passive_open(self, syn: TcpSegment) -> None:
        self.state = "SYN_RCVD"
        self.rcv_nxt = syn.seq + 1
        self.snd_una = 0
        self.snd_nxt = 1
        self.snd_max = 1
        self._app_write_total = 1
        self._emit(TcpSegment(self.local_port, self.remote_port, 0, self.rcv_nxt,
                              SYN | ACK, self._advertised_window()))
        self.rto = INITIAL_RTO
        self._rto_deadline = self.sim.now + self.rto
        self._kick_timer()

    def _become_established(self) -> None:
        self.state = "ESTABLISHED"
        self._rto_deadline = None
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        # Writes issued during the handshake were queued against the SYN
        # occupying sequence space; release them now.
        self._admit_waiters()
        self._kick_send()

    # ------------------------------------------------------------------
    # Segment arrival
    # ------------------------------------------------------------------
    def on_segment(self, seg: TcpSegment, src_ip: IPv4Address) -> None:
        if self.reset:
            return
        if seg.rst:
            self._do_reset()
            return

        if self.state == "SYN_SENT":
            if seg.syn and seg.ack_flag and seg.ack == 1:
                self.rcv_nxt = seg.seq + 1
                self.snd_una = 1
                self.snd_wnd = seg.window
                self._sample_rtt_handshake()
                self._become_established()
                self._send_ack()
            return
        if self.state == "SYN_RCVD":
            if seg.syn and not seg.ack_flag:
                # Duplicate SYN: peer missed our SYN-ACK.
                self._emit(TcpSegment(self.local_port, self.remote_port, 0,
                                      self.rcv_nxt, SYN | ACK, self._advertised_window()))
                return
            if seg.ack_flag and seg.ack >= 1:
                self.snd_una = max(self.snd_una, 1)
                self.snd_wnd = seg.window
                self._become_established()
                # fall through: the ACK may carry data
            else:
                return

        if self.state not in ("ESTABLISHED", "CLOSE_WAIT", "FIN_WAIT"):
            return

        if seg.ack_flag:
            self._process_ack(seg)
        if seg.payload_size > 0 or seg.fin:
            self._process_data(seg)

    def _sample_rtt_handshake(self) -> None:
        # Handshake RTT seeds the estimator (SYN sent at connection start).
        pass  # seeded lazily by the first data probe; INITIAL_RTO covers setup

    def _process_ack(self, seg: TcpSegment) -> None:
        old_wnd = self.snd_wnd
        self.snd_wnd = seg.window
        if seg.window > old_wnd:
            self._kick_send()  # window update reopens transmission
        if seg.sack:
            self._merge_sack(seg.sack)
        ack = seg.ack
        if ack > self.snd_max:
            return  # acks something we never sent; ignore
        if ack > self.snd_nxt:
            # A post-rewind ACK for data sent before the timeout: fast-
            # forward past the bytes the receiver already holds.
            data_end = self._app_write_total
            if self._closed_for_send and ack == data_end + 1:
                self.fin_sent = True
                self.fin_seq = data_end
                self.snd_nxt = ack
                self.snd_buffered = 0
            else:
                self.snd_nxt = min(ack, data_end)
                self.snd_buffered = data_end - self.snd_nxt
        if ack > self.snd_una:
            flight_before = self.snd_nxt - self.snd_una
            acked = ack - self.snd_una
            self.snd_una = ack
            self._stale_dupacks = 0
            if self._sacked and self._sacked[0][1] <= ack:
                self._sacked = [r for r in self._sacked if r[1] > ack]
            self.bytes_acked_total += acked
            self.dupacks = 0
            # RTT sample (Karn: skip if a retransmission is ambiguous).
            if self._rtt_probe is not None:
                probe_end, sent_at = self._rtt_probe
                if ack >= probe_end:
                    if not self._retransmitted_since_probe:
                        self._update_rtt(self.sim.now - sent_at)
                    self._rtt_probe = None
            if self.in_fast_recovery:
                if ack >= self.recover:
                    self.cc_algo.on_loss_exit()
                    self.in_fast_recovery = False
                    self._rtx_next = 0
                else:
                    # Partial ACK: keep filling holes (SACK-based recovery;
                    # no Reno inflation/deflation games needed).
                    self._rtx_next = max(self._rtx_next, self.snd_una)
                    self._sack_retransmit()
                    self._fr_credit = min(self._fr_credit + 1, 3)
            else:
                # Window growth is the strategy's call; congestion-window
                # validation (RFC 2861) happens inside on_ack using the
                # pre-ACK flight.
                self.cc_algo.on_ack(acked, flight_before)
            # Release send-buffer waiters now that bytes left the buffer.
            self._admit_waiters()
            # Restart RTO for remaining flight (backoff cleared by new
            # data). No timer wakeup needed: the deadline only moves
            # *later* here, and the sleeping timer re-checks on expiry —
            # saving three event allocations per ACK.
            self.rto = self._computed_rto()
            self._rto_deadline = (self.sim.now + self.rto) if self.snd_una < self.snd_nxt else None
            self._trim_markers()
            if self._cc_series is not None:
                cwnd_s, ssthresh_s, srtt_s = self._cc_series
                cwnd_s.record(float(self.cwnd))
                ssthresh_s.record(float(self.ssthresh))
                srtt_s.record((self.srtt or 0.0) * 1000.0)
            if self.fin_sent and self.snd_una > self.fin_seq:
                self._maybe_finish()
            self._kick_send()
        elif (ack == self.snd_una and self.snd_una < self.snd_nxt
              and seg.payload_size == 0 and seg.window == old_wnd):
            # A true duplicate ACK: same ack, no data, *unchanged window*
            # (window updates from the receiving app draining its buffer
            # must not be mistaken for loss signals).
            self.dupacks += 1
            if self.in_fast_recovery:
                if not self._sack_retransmit():
                    # RFC 3517 IsLost: if >= 3 segments were SACKed above
                    # the head since its last retransmission, that
                    # retransmission is deemed lost - resend it now
                    # instead of stalling until the RTO.
                    high = self._sacked[-1][1] if self._sacked else 0
                    waited = self.sim.now - self._head_rtx_time
                    if (high >= self._head_rtx_mark + 3 * self.mss
                            and waited > (self.srtt or 0.0)):
                        self._head_rtx_mark = high
                        self._head_rtx_time = self.sim.now
                        self._retransmit_head()
                self._fr_credit = min(self._fr_credit + 1, 3)  # ack clock
                self._kick_send()
            elif self.dupacks == 3:
                flight = self.snd_nxt - self.snd_una
                self.cc_algo.on_dup_ack(flight)
                self.in_fast_recovery = True
                self.recover = self.snd_nxt
                self._rtx_next = self.snd_una
                self._fr_credit = 0
                self._head_rtx_mark = self._sacked[-1][1] if self._sacked else 0
                if not self._sack_retransmit():
                    self._retransmit_head()

    def _admit_waiters(self) -> None:
        while self._send_waiters:
            nbytes, pending = self._send_waiters[0]
            in_use = (self.snd_nxt - self.snd_una) + self.snd_buffered
            if in_use + nbytes > self.send_buf_capacity and in_use > 0:
                break
            self._send_waiters.pop(0)
            self._accept_bytes(nbytes, pending.obj)
            pending.event.succeed(nbytes)

    def _trim_markers(self) -> None:
        while self.snd_markers and self.snd_markers[0][0] <= self.snd_una:
            self.snd_markers.pop(0)

    def _update_rtt(self, sample: float) -> None:
        self._last_rtt_sample = sample
        if self._min_rtt is None or sample < self._min_rtt:
            self._min_rtt = sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = self._computed_rto()

    def _computed_rto(self) -> float:
        if self.srtt is None:
            return INITIAL_RTO
        return min(max(self.srtt + 4 * self.rttvar, MIN_RTO), MAX_RTO)

    # -- receive side -------------------------------------------------
    @property
    def rcv_buffered(self) -> int:
        return self.rcv_unread + self.ooo_bytes

    def _advertised_window(self) -> int:
        # Canonical receive window: free space against *in-order* unread
        # data only. Out-of-order bytes do not shrink the advertisement
        # (shrinking it would make every hole-induced duplicate ACK look
        # like a window update and defeat fast retransmit).
        return max(self.recv_buf_capacity - self.rcv_unread, 0)

    def _process_data(self, seg: TcpSegment) -> None:
        seq, size = seg.seq, seg.payload_size
        if seg.fin:
            self.peer_fin_seq = seq + size
        # Stash app message markers keyed by absolute end offset; released
        # in offset order once the stream reaches them (idempotent across
        # retransmissions).
        if seg.payload_data:
            for end, obj in seg.payload_data:
                if end > self.rcv_nxt:
                    self._rx_markers[end] = obj
        if size > 0:
            if seq + size <= self.rcv_nxt:
                self._send_ack()  # pure duplicate
                return
            if seq > self.rcv_nxt:
                self._insert_ooo(seq, size)
                self._send_ack()  # duplicate ACK signals the hole
                return
            # In-order (possibly overlapping) delivery.
            old_nxt = self.rcv_nxt
            self.rcv_nxt = seq + size
            # Absorb out-of-order runs that are now contiguous or stale;
            # ascending order guarantees each run is checked against the
            # frontier it may extend.
            for oseq in sorted(self.ooo):
                if oseq > self.rcv_nxt:
                    break
                osize = self.ooo.pop(oseq)
                self.ooo_bytes -= osize
                if oseq + osize > self.rcv_nxt:
                    self.rcv_nxt = oseq + osize
            total = self.rcv_nxt - old_nxt
            ready = sorted(end for end in self._rx_markers if end <= self.rcv_nxt)
            allobjs = [self._rx_markers.pop(end) for end in ready]
            self.bytes_delivered_total += total
            self.rcv_unread += total  # held until app reads
            self.app_inbox.put_nowait(_RxChunk(total, allobjs, self))
        if self.peer_fin_seq is not None and self.rcv_nxt == self.peer_fin_seq:
            self.rcv_nxt += 1  # consume FIN
            if not self._eof_delivered:
                self._eof_delivered = True
                self.app_inbox.put_nowait(None)
            if self.state == "ESTABLISHED":
                self.state = "CLOSE_WAIT"
        self._send_ack()
        self._maybe_finish()

    def _insert_ooo(self, seq: int, size: int) -> None:
        """Store an out-of-order run, merging overlaps so byte accounting
        stays exact across rewound retransmissions."""
        start, end = max(seq, self.rcv_nxt), seq + size
        if start >= end:
            return
        for s in sorted(self.ooo):
            e = s + self.ooo[s]
            if e < start or s > end:
                continue
            start = min(start, s)
            end = max(end, e)
            self.ooo_bytes -= e - s
            del self.ooo[s]
        if self.rcv_unread + self.ooo_bytes + (end - start) <= self.recv_buf_capacity:
            self.ooo[start] = end - start
            self.ooo_bytes += end - start

    def _sack_blocks(self) -> tuple:
        if not self.ooo:
            return ()
        runs = sorted(self.ooo.items())
        return tuple((s, s + sz) for s, sz in runs[:4])

    def app_read(self, nbytes: int) -> None:
        """Called by the receive wrapper when the app consumes bytes."""
        window_before = self._advertised_window()
        self.rcv_unread -= nbytes
        if window_before < self.mss and self._advertised_window() >= self.mss:
            self._send_ack()  # window update

    def _send_ack(self) -> None:
        self._emit(TcpSegment(self.local_port, self.remote_port, self.snd_nxt,
                              self.rcv_nxt, ACK, self._advertised_window(),
                              sack=self._sack_blocks()))

    def _maybe_finish(self) -> None:
        sent_all = self.fin_sent and self.fin_seq is not None and self.snd_una > self.fin_seq
        got_all = self._eof_delivered
        if sent_all and got_all and self.state != "CLOSED":
            self.state = "CLOSED"
            self.layer._remove(self)

    def _do_reset(self) -> None:
        self.reset = True
        self.state = "CLOSED"
        if not self.established_event.triggered:
            self.established_event.fail(ConnectionReset("connection reset"))
            self.established_event.defuse()
        if not self._eof_delivered:
            self._eof_delivered = True
            self.app_inbox.try_put(None)
        for _n, pending in self._send_waiters:
            pending.event.fail(ConnectionReset("connection reset"))
            pending.event.defuse()
        self._send_waiters.clear()
        self._kick_send()
        self._rto_deadline = None
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        self.layer._remove(self)


class _Pending:
    __slots__ = ("event", "obj")

    def __init__(self, event: Event, obj: Any) -> None:
        self.event = event
        self.obj = obj


class _RxChunk(tuple):
    """(nbytes, objs) that notifies flow control when unpacked via .read()."""

    def __new__(cls, nbytes: int, objs: list, conn: TcpConnection):
        self = super().__new__(cls, (nbytes, objs))
        return self

    def __init__(self, nbytes: int, objs: list, conn: TcpConnection) -> None:
        self.conn = conn

    @property
    def nbytes(self) -> int:
        return self[0]

    @property
    def objs(self) -> list:
        return self[1]


class TcpLayer:
    """Per-stack TCP demultiplexer and connection factory."""

    def __init__(self, stack, mss: int = 1460, send_buf: int = 262144,
                 recv_buf: int = 262144, cc: str = "cubic") -> None:
        self.stack = stack
        self.mss = mss
        self.send_buf = send_buf
        self.recv_buf = recv_buf
        self.cc = cc
        self.listeners: dict[int, TcpListener] = {}
        self.connections: dict[tuple[int, IPv4Address, int], TcpConnection] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rx_segments = 0
        self.segments_sent = 0

    # -- API ------------------------------------------------------------
    def listen(self, port: int, backlog: int = 64) -> TcpListener:
        if port in self.listeners:
            raise RuntimeError(f"TCP port {port} already listening on {self.stack.name}")
        listener = TcpListener(self, port, backlog)
        self.listeners[port] = listener
        return listener

    def connect(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        mss: Optional[int] = None,
        send_buf: Optional[int] = None,
        recv_buf: Optional[int] = None,
        cc: Optional[str] = None,
    ) -> TcpConnection:
        """Start an active open; wait on ``conn.wait_established()``.
        ``cc`` picks the congestion-control algorithm for this
        connection (default: the layer's, normally "cubic")."""
        local_port = self._alloc_ephemeral(dst_ip, dst_port)
        conn = TcpConnection(
            self, local_port, dst_ip, dst_port,
            mss or self.mss, send_buf or self.send_buf, recv_buf or self.recv_buf,
            cc=cc or self.cc,
        )
        self.connections[conn.key] = conn
        conn._start_active_open()
        return conn

    def _alloc_ephemeral(self, dst_ip: IPv4Address, dst_port: int) -> int:
        start = self._next_ephemeral
        port = start
        while (port, dst_ip, dst_port) in self.connections or port in self.listeners:
            port += 1
            if port > EPHEMERAL_LIMIT:
                port = EPHEMERAL_BASE
            if port == start:
                raise RuntimeError("ephemeral TCP ports exhausted")
        self._next_ephemeral = port + 1 if port < EPHEMERAL_LIMIT else EPHEMERAL_BASE
        return port

    def _remove(self, conn: TcpConnection) -> None:
        self.connections.pop(conn.key, None)

    # -- datapath ---------------------------------------------------------
    def transmit(self, conn: TcpConnection, seg: TcpSegment) -> None:
        self.segments_sent += 1
        src_ip = self.stack.source_ip_for(conn.remote_ip)
        self.stack.send_ip(ipv4(src_ip, conn.remote_ip, seg))

    def receive(self, packet) -> None:
        seg: TcpSegment = packet.payload
        self.rx_segments += 1
        key = (seg.dst_port, packet.src, seg.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.on_segment(seg, packet.src)
            return
        listener = self.listeners.get(seg.dst_port)
        if listener is not None and seg.syn and not seg.ack_flag and not listener.closed:
            conn = TcpConnection(self, seg.dst_port, packet.src, seg.src_port,
                                 self.mss, self.send_buf, self.recv_buf,
                                 cc=self.cc)
            self.connections[key] = conn
            conn._start_passive_open(seg)
            if not listener.accept_queue.try_put(conn):
                conn.abort()  # backlog overflow
            return
        # No matching endpoint: RST (unless the stray is itself a RST).
        if not seg.rst:
            rst = TcpSegment(seg.dst_port, seg.src_port, seg.ack, seg.seq + seg.payload_size,
                             RST | ACK, 0)
            self.stack.send_ip(ipv4(self.stack.source_ip_for(packet.src), packet.src, rst))


# ----------------------------------------------------------------------
# Convenience processes used by apps and tests
# ----------------------------------------------------------------------

def stream_bytes(conn: TcpConnection, total: int, chunk: int = 65536, obj_last: Any = None):
    """Process body: write ``total`` bytes through ``conn`` with backpressure."""
    sent = 0
    while sent < total:
        n = min(chunk, total - sent)
        is_last = sent + n >= total
        yield conn.send(n, obj=obj_last if is_last else None)
        sent += n
    return sent


def drain_bytes(conn: TcpConnection, expected: Optional[int] = None):
    """Process body: read until EOF (or ``expected`` bytes); returns count."""
    got = 0
    while True:
        chunk = yield conn.recv()
        if chunk is None:
            break
        nbytes = chunk.nbytes
        conn.app_read(nbytes)
        got += nbytes
        if expected is not None and got >= expected:
            break
    return got
