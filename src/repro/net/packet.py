"""Wire formats with byte-accurate size accounting.

Packets are lightweight value objects. Payload *contents* are opaque
(simulation models timing, not data), but payload *sizes* are exact so
that serialization delay, header overhead, and throughput accounting all
match the real protocols:

* Ethernet II header: 14 B (+ 4 B FCS counted in ``ETHERNET_OVERHEAD``)
* IPv4 header: 20 B
* UDP header: 8 B
* TCP header: 20 B
* ICMP echo header: 8 B

Every object exposes ``.size`` — its on-wire byte count including the
sizes of everything it encapsulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net.addresses import IPv4Address, MacAddress

__all__ = [
    "ArpPacket",
    "ETHERNET_HEADER",
    "EthernetFrame",
    "ICMP_HEADER",
    "IPV4_HEADER",
    "IcmpMessage",
    "IPv4Packet",
    "Payload",
    "TCP_HEADER",
    "TcpSegment",
    "UDP_HEADER",
    "UdpDatagram",
]

ETHERNET_HEADER = 14
ETHERNET_FCS = 4
IPV4_HEADER = 20
UDP_HEADER = 8
TCP_HEADER = 20
ICMP_HEADER = 8
ARP_SIZE = 28

# Ethertypes / protocol numbers we use.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True)
class Payload:
    """Opaque application payload: a byte count plus optional metadata.

    ``data`` is never serialized; it carries simulation-level objects
    (e.g. an HTTP request descriptor or a WAVNet-encapsulated frame).
    """

    size: int
    data: Any = None
    kind: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative payload size {self.size}")


@dataclass(frozen=True)
class IcmpMessage:
    """ICMP echo request/reply (``kind`` is 'echo-request'/'echo-reply')."""

    kind: str
    ident: int
    seq: int
    payload_size: int = 56
    timestamp: float = 0.0  # sender's clock, echoed back for RTT

    @property
    def size(self) -> int:
        return ICMP_HEADER + self.payload_size


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: Payload

    @property
    def size(self) -> int:
        return UDP_HEADER + self.payload.size


# TCP flag bits.
SYN = 0x02
ACK = 0x10
FIN = 0x01
RST = 0x04


@dataclass(frozen=True)
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload_size: int = 0
    payload_data: Any = None
    # SACK blocks: up to 4 (start, end) byte ranges the receiver holds
    # above the cumulative ACK (RFC 2018; on by default as in 2011 Linux).
    sack: tuple = ()

    @property
    def size(self) -> int:
        return TCP_HEADER + self.payload_size

    @property
    def syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & RST)

    def describe(self) -> str:
        names = []
        if self.syn:
            names.append("SYN")
        if self.ack_flag:
            names.append("ACK")
        if self.fin:
            names.append("FIN")
        if self.rst:
            names.append("RST")
        return f"TCP[{'|'.join(names) or 'DATA'} seq={self.seq} ack={self.ack} len={self.payload_size}]"


@dataclass(frozen=True)
class IPv4Packet:
    src: IPv4Address
    dst: IPv4Address
    proto: int
    payload: Any  # UdpDatagram | TcpSegment | IcmpMessage
    ttl: int = 64

    @property
    def size(self) -> int:
        return IPV4_HEADER + self.payload.size

    def decremented(self) -> "IPv4Packet":
        return IPv4Packet(self.src, self.dst, self.proto, self.payload, self.ttl - 1)

    def with_src(self, src: IPv4Address) -> "IPv4Packet":
        return IPv4Packet(src, self.dst, self.proto, self.payload, self.ttl)

    def with_dst(self, dst: IPv4Address) -> "IPv4Packet":
        return IPv4Packet(self.src, dst, self.proto, self.payload, self.ttl)

    def with_payload(self, payload: Any) -> "IPv4Packet":
        return IPv4Packet(self.src, self.dst, self.proto, payload, self.ttl)


@dataclass(frozen=True)
class ArpPacket:
    """ARP request/reply ('request'/'reply'); gratuitous ARP is a reply
    whose sender == target (the post-migration announcement)."""

    op: str
    sender_mac: MacAddress
    sender_ip: IPv4Address
    target_mac: Optional[MacAddress]
    target_ip: IPv4Address

    @property
    def size(self) -> int:
        return ARP_SIZE

    @property
    def is_gratuitous(self) -> bool:
        return self.op == "reply" and self.sender_ip == self.target_ip


@dataclass(frozen=True)
class EthernetFrame:
    src: MacAddress
    dst: MacAddress
    ethertype: int
    payload: Any  # IPv4Packet | ArpPacket
    vlan: Optional[int] = None

    @property
    def size(self) -> int:
        # Minimum Ethernet payload is 46 B (frames are padded on the wire).
        body = max(self.payload.size, 46)
        return ETHERNET_HEADER + ETHERNET_FCS + body


def ipv4(src: IPv4Address, dst: IPv4Address, payload: Any, ttl: int = 64) -> IPv4Packet:
    """Build an IPv4 packet inferring the protocol number from the payload."""
    if isinstance(payload, UdpDatagram):
        proto = PROTO_UDP
    elif isinstance(payload, TcpSegment):
        proto = PROTO_TCP
    elif isinstance(payload, IcmpMessage):
        proto = PROTO_ICMP
    else:
        raise TypeError(f"cannot infer protocol for {type(payload).__name__}")
    return IPv4Packet(src, dst, proto, payload, ttl)


def frame_for(packet: Any, src: MacAddress, dst: MacAddress) -> EthernetFrame:
    """Wrap an L3 packet in an Ethernet frame with the right ethertype."""
    if isinstance(packet, IPv4Packet):
        etype = ETHERTYPE_IPV4
    elif isinstance(packet, ArpPacket):
        etype = ETHERTYPE_ARP
    else:
        raise TypeError(f"cannot frame {type(packet).__name__}")
    return EthernetFrame(src, dst, etype, packet)
