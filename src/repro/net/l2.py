"""Layer-2 plumbing: ports, links, learning switches, software bridges.

The medium model:

* :class:`Port` — attachment point owned by a device (interface, switch,
  bridge, tap). ``transmit`` pushes a frame into whatever medium the port
  is connected to; ``deliver`` hands an arriving frame to the owner.
* :class:`Link` — full-duplex point-to-point wire with propagation delay,
  serialization at a configured bandwidth, a drop-tail queue, and optional
  random loss. This is also where ``tc``-style traffic shaping lives
  (shaping a link is just configuring its bandwidth/queue).
* :func:`patch` — a zero-cost back-to-back connection (VM vif to bridge
  port, tap to bridge port).
* :class:`Switch` — MAC-learning Ethernet switch; :class:`Bridge` is the
  in-host software variant (Linux ``brctl`` equivalent) with a per-frame
  CPU cost.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.net.addresses import MacAddress
from repro.net.packet import EthernetFrame
from repro.sim.engine import Simulator
from repro.sim.lifecycle import Component
from repro.sim.queues import Channel

__all__ = ["Bridge", "Link", "Port", "Switch", "patch"]


class FrameHandler(Protocol):  # pragma: no cover - typing helper
    def on_frame(self, frame: EthernetFrame, port: "Port") -> None: ...


class Port:
    """Device attachment point. A port is connected to at most one medium."""

    __slots__ = ("owner", "name", "_medium", "up", "_taps")

    def __init__(self, owner: FrameHandler, name: str = "") -> None:
        self.owner = owner
        self.name = name
        self._medium: Optional[Callable[[EthernetFrame], None]] = None
        self.up = True
        self._taps: Optional[list] = None  # lazily created; hot path stays a None check

    @property
    def connected(self) -> bool:
        return self._medium is not None

    def connect(self, medium: Callable[[EthernetFrame], None]) -> None:
        if self._medium is not None:
            raise RuntimeError(f"port {self.name!r} already connected")
        self._medium = medium

    def disconnect(self) -> None:
        self._medium = None

    def add_tap(self, tap) -> None:
        """Attach a :class:`~repro.obs.taps.PacketTap` to both directions."""
        if self._taps is None:
            self._taps = []
        self._taps.append(tap)

    def remove_tap(self, tap) -> None:
        if self._taps is not None and tap in self._taps:
            self._taps.remove(tap)

    def transmit(self, frame: EthernetFrame) -> None:
        """Push a frame out of the device into the medium (if any)."""
        if self._medium is not None and self.up:
            if self._taps is not None:
                for tap in self._taps:
                    tap.frame(self.name, "tx", frame)
            self._medium(frame)

    def deliver(self, frame: EthernetFrame) -> None:
        """Hand an arriving frame to the owning device."""
        if self.up:
            if self._taps is not None:
                for tap in self._taps:
                    tap.frame(self.name, "rx", frame)
            self.owner.on_frame(frame, self)


def patch(a: Port, b: Port) -> None:
    """Connect two ports back-to-back with zero delay (virtual patch cable)."""
    a.connect(b.deliver)
    b.connect(a.deliver)


class _Pipe:
    """One direction of a link: queue -> serializer -> propagation.

    The datapath is callback-driven on the kernel fast lane — no
    transmitter process, no per-frame Event round-trip:

    * **Unshaped bypass** — with ``bandwidth_bps is None`` and an idle
      serializer, ``send`` schedules the delivery directly: one calendar
      entry per frame, zero Event allocations.
    * **Shaped path** — an idle serializer starts the frame immediately
      via one ``call_in``; completion pulls the next frame off the
      drop-tail queue. Two calendar entries per frame total.

    Timing is identical to the old process-based transmitter: frames
    serialize strictly in order, loss is drawn after serialization, and
    reshaping mid-frame lets the in-service frame finish at the old rate.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Port,
        latency: float,
        bandwidth_bps: Optional[float],
        queue_capacity: int,
        loss: float,
        loss_rng,
        name: str,
    ) -> None:
        self.sim = sim
        self.dst = dst
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss = loss
        self._loss_rng = loss_rng
        self.name = name
        self.queue = Channel(sim, capacity=queue_capacity)
        self.up = True  # admin state, mirrored from the owning Link
        self.bytes_sent = 0
        self.frames_sent = 0
        self.frames_lost = 0
        self.frames_dropped_down = 0  # offered while admin-down
        self._tx_frame: Optional[EthernetFrame] = None  # frame in service
        self._finish_cb = self._finish_tx  # bind once, not per frame

    def send(self, frame: EthernetFrame) -> None:
        if not self.up:
            self.frames_dropped_down += 1
            return
        if self._tx_frame is None and not self.queue.items:
            bw = self.bandwidth_bps
            if bw is None:
                self._emit(frame)  # unshaped bypass: straight to the wire
                return
            self._tx_frame = frame
            self.sim.call_in(frame.size * 8.0 / bw, self._finish_cb)
            return
        self.queue.offer(frame)  # drop-tail on overflow (counted by Channel)

    @property
    def drops(self) -> int:
        return self.queue.drops

    def _emit(self, frame: EthernetFrame) -> None:
        """Post-serialization half: accounting, loss, propagation."""
        self.bytes_sent += frame.size
        self.frames_sent += 1
        if self.loss > 0.0 and self._loss_rng.random() < self.loss:
            self.frames_lost += 1
            return
        self.sim.call_in(self.latency, _Delivery(self.dst, frame))

    def _finish_tx(self) -> None:
        frame = self._tx_frame
        self._tx_frame = None
        assert frame is not None
        self._emit(frame)
        # Pull queued frames; loop (not recursion) in case the link was
        # reshaped to unbounded rate while frames were queued.
        queue = self.queue
        while queue.items:
            frame = queue.get_nowait()
            bw = self.bandwidth_bps
            if bw:
                self._tx_frame = frame
                self.sim.call_in(frame.size * 8.0 / bw, self._finish_cb)
                return
            self._emit(frame)


class _Delivery:
    """Bound frame delivery; avoids closure allocation churn on hot path."""

    __slots__ = ("port", "frame")

    def __init__(self, port: Port, frame: EthernetFrame) -> None:
        self.port = port
        self.frame = frame

    def __call__(self) -> None:
        self.port.deliver(self.frame)


class Link(Component):
    """Full-duplex point-to-point link between two ports.

    ``bandwidth_bps=None`` means no serialization delay (used for the WAN
    cloud's internal pipes where the bottleneck is modeled at access
    links). ``loss`` is an i.i.d. per-frame drop probability.

    A link is a lifecycle :class:`~repro.sim.lifecycle.Component`:
    :meth:`admin_down` / :meth:`admin_up` (aliases of ``stop`` /
    ``restore``) model ``ip link set down`` — new frames are dropped
    and counted, frames already serialized or queued drain normally.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        latency: float = 0.0,
        bandwidth_bps: Optional[float] = None,
        queue_capacity: int = 128,
        loss: float = 0.0,
        name: str = "link",
    ) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0,1), got {loss}")
        self.name = name
        rng = sim.rng.stream(f"link.loss.{name}")
        self.ab = _Pipe(sim, b, latency, bandwidth_bps, queue_capacity, loss, rng, f"{name}.ab")
        self.ba = _Pipe(sim, a, latency, bandwidth_bps, queue_capacity, loss, rng, f"{name}.ba")
        a.connect(self.ab.send)
        b.connect(self.ba.send)
        self._watchers: list = []
        super().__init__(sim, "link", name)

    def add_watcher(self, fn) -> None:
        """Subscribe ``fn(link)`` to capacity-affecting changes (admin
        up/down, reshaping, loss changes). Used by the fluid plane to
        trigger re-solves; keep callbacks cheap and non-reentrant."""
        self._watchers.append(fn)

    def _notify_watchers(self) -> None:
        for fn in self._watchers:
            fn(self)

    @property
    def up(self) -> bool:
        return self.ab.up

    def admin_down(self) -> None:
        self.stop()

    def admin_up(self) -> None:
        self.restore()

    def _on_stop(self) -> None:
        self.ab.up = self.ba.up = False
        self._notify_watchers()

    def _on_restore(self) -> None:
        self.ab.up = self.ba.up = True
        self._notify_watchers()

    def set_bandwidth(self, bandwidth_bps: Optional[float]) -> None:
        """``tc``-style reshaping of both directions."""
        self.ab.bandwidth_bps = bandwidth_bps
        self.ba.bandwidth_bps = bandwidth_bps
        self._notify_watchers()

    def set_latency(self, latency: float) -> None:
        self.ab.latency = latency
        self.ba.latency = latency
        self._notify_watchers()

    def set_loss(self, loss: float) -> None:
        """Reconfigure the i.i.d. per-frame drop probability mid-run
        (loss bursts); draws keep coming from the link's named stream."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0,1), got {loss}")
        self.ab.loss = loss
        self.ba.loss = loss
        self._notify_watchers()

    @property
    def frames_dropped_down(self) -> int:
        return self.ab.frames_dropped_down + self.ba.frames_dropped_down

    @property
    def total_bytes(self) -> int:
        return self.ab.bytes_sent + self.ba.bytes_sent


class Switch:
    """MAC-learning Ethernet switch.

    Frames to learned unicast MACs go out one port; broadcast and unknown
    destinations flood all other ports. ``forward_delay`` models the
    per-frame switching cost.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        forward_delay: float = 5e-6,
        mac_age_limit: float = 300.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.forward_delay = forward_delay
        self.mac_age_limit = mac_age_limit
        self.ports: list[Port] = []
        self.mac_table: dict[MacAddress, tuple[Port, float]] = {}
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self._taps: Optional[list] = None

    def add_tap(self, tap) -> None:
        """Attach a :class:`~repro.obs.taps.PacketTap`: captures every
        frame entering the switch, before the forwarding decision."""
        if self._taps is None:
            self._taps = []
        self._taps.append(tap)

    def new_port(self, name: str = "") -> Port:
        port = Port(self, name or f"{self.name}.p{len(self.ports)}")
        self.ports.append(port)
        return port

    def remove_port(self, port: Port) -> None:
        self.ports.remove(port)
        for mac, (p, _t) in list(self.mac_table.items()):
            if p is port:
                del self.mac_table[mac]

    def lookup(self, mac: MacAddress) -> Optional[Port]:
        entry = self.mac_table.get(mac)
        if entry is None:
            return None
        port, when = entry
        if self.sim.now - when > self.mac_age_limit:
            del self.mac_table[mac]
            return None
        return port

    def on_frame(self, frame: EthernetFrame, in_port: Port) -> None:
        if self._taps is not None:
            for tap in self._taps:
                tap.frame(f"{self.name}<{in_port.name}", "fwd", frame)
        # Learn the sender's location (moves on migration are picked up
        # here: a gratuitous ARP from a new port rewrites the entry).
        self.mac_table[frame.src] = (in_port, self.sim.now)
        out = None if frame.dst.is_broadcast else self.lookup(frame.dst)
        if out is not None and out is not in_port:
            self.frames_forwarded += 1
            self._emit(out, frame)
        elif out is None:
            self.frames_flooded += 1
            for port in self.ports:
                if port is not in_port:
                    self._emit(port, frame)
        # out is in_port: destination is on the segment it came from; drop.

    def _emit(self, port: Port, frame: EthernetFrame) -> None:
        if self.forward_delay > 0:
            self.sim.call_in(self.forward_delay, _PortEmit(port, frame))
        else:
            port.transmit(frame)


class _PortEmit:
    __slots__ = ("port", "frame")

    def __init__(self, port: Port, frame: EthernetFrame) -> None:
        self.port = port
        self.frame = frame

    def __call__(self) -> None:
        self.port.transmit(self.frame)


class Bridge(Switch):
    """In-host software bridge (the Xen/``brctl`` bridge of Fig 5).

    Semantically a switch; the default per-frame cost is higher because
    frames cross the host CPU.
    """

    def __init__(self, sim: Simulator, name: str = "br0", forward_delay: float = 15e-6) -> None:
        super().__init__(sim, name=name, forward_delay=forward_delay)
