"""Fluid (flow-level) data plane: max-min bandwidth sharing for bulk traffic.

The packet plane simulates every frame of every flow; a 32 MB ttcp run
is ~10^5 calendar events. For the paper's bulk-transfer experiments
(fig06/fig07 ttcp, table4 HTTP, fig08 scale-out) the *steady-state
throughput* is fully determined by bottleneck sharing, so this module
models a bulk transfer as one :class:`FluidFlow` whose rate comes from a
max-min fair-share solver (progressive filling) over the capacity graph.
The simulator then schedules only *rate-change* events: flow arrival,
flow departure, a slow-start ramp step, a capacity/fault change, and one
completion timer per flow.

The plane is **hybrid**: the control plane (punching, pulses,
keepalives, rendezvous RPC) and any flow opened with
``fidelity="packet"`` stay on the packet path. Fluid and packet traffic
coexist on shared links by the capacity-sharing rule: the fluid-visible
capacity of a link is its configured bandwidth minus the packet path's
*measured* utilization (sampled from ``_Pipe.bytes_sent`` at every
re-solve and on a periodic refresh tick while flows are active).

Model elements
--------------

* :class:`FluidLink` — one direction of capacity. Usually bound to a
  packet-plane ``_Pipe`` (so reshaping, ``admin_down`` and loss changes
  flow straight through); unbound links model non-wire resources such as
  the IPOP user-level stack CPU (capacity 1.0 cpu-second/second).
* :class:`FluidPath` — the ordered ``(link, factor)`` list one flow
  direction consumes, plus the path RTT, the WAN-cloud site pair (for
  partition checks) and the WAV tunnel conduits it rides. ``factor`` is
  resource units consumed per goodput bit/s — wire links use
  ``wire_bytes_per_mss / mss`` (header + encapsulation overhead), CPU
  links use ``cpu_seconds_per_mss / (mss * 8)``.
* :class:`FluidFlow` — one bulk transfer. Its instantaneous cap is
  ``min(window/RTT, cc.rate_cap(loss), ramp)`` where the loss response
  comes from the congestion-control plane (:mod:`repro.net.cc`;
  ``cc=None`` keeps the historical Reno/Mathis curve); the ramp models
  TCP slow
  start (initial window delivered at once, then the rate cap doubles
  each RTT until it clears the window cap), which is what makes short
  and mid-size transfers agree with the packet plane, not just t→∞.
* :class:`FluidNetwork` — per-simulator registry + solver. Re-solves are
  dirty-flagged and batched per timestamp, so 10^4 flow arrivals at one
  instant cost one waterfill pass.

Faults: ``link_flap``/``admin_down`` zero the link's capacity,
``loss_burst`` engages the Mathis cap, and WAN partitions stall every
flow whose site pair is cut — all through the same watcher hooks the
fault injector already drives. Stalled flows hold their delivered byte
count and resume when the path heals; ``stall_timeout`` aborts them
instead (``flow.done`` fails with :class:`FluidAborted`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.net.cc import (INITIAL_CWND_SEGMENTS, cc_class, mathis_rate_bps,
                          window_rate_bps)
from repro.sim.engine import Event, Simulator

__all__ = ["FluidAborted", "FluidFlow", "FluidLink", "FluidNetwork",
           "FluidPath"]

_EPS = 1e-9


class FluidAborted(Exception):
    """A fluid flow was aborted (fault, stall timeout, or explicit)."""


class FluidLink:
    """One direction of capacity in the fluid graph.

    ``pipe`` binds the link to a packet-plane ``_Pipe``: capacity,
    admin state and loss are read from the pipe at every solve, and the
    pipe's ``bytes_sent`` counter feeds the hybrid utilization
    subtraction. Unbound links (``pipe=None``) carry their own fields —
    used by solver unit tests and by non-wire resources (CPU)."""

    __slots__ = ("name", "kind", "capacity_bps", "pipe", "up", "loss",
                 "_pkt_bytes", "_pkt_at", "pkt_util_bps")

    def __init__(self, name: str, capacity_bps: Optional[float] = None,
                 pipe=None, kind: str = "wire") -> None:
        self.name = name
        self.kind = kind
        self.capacity_bps = capacity_bps
        self.pipe = pipe
        self.up = True
        self.loss = 0.0
        self._pkt_bytes = 0 if pipe is None else pipe.bytes_sent
        self._pkt_at = 0.0
        self.pkt_util_bps = 0.0

    def capacity(self) -> float:
        """Raw capacity in resource units/s (bits/s for wire links)."""
        if self.pipe is not None:
            if not self.pipe.up:
                return 0.0
            bw = self.pipe.bandwidth_bps
            return math.inf if bw is None else float(bw)
        if not self.up:
            return 0.0
        return math.inf if self.capacity_bps is None else float(self.capacity_bps)

    def current_loss(self) -> float:
        return float(self.pipe.loss) if self.pipe is not None else self.loss

    def sample_packet_util(self, now: float, min_window: float = 1e-3) -> None:
        """Refresh the measured packet-path utilization (windowed mean
        over the interval since the previous sample)."""
        if self.pipe is None:
            return
        dt = now - self._pkt_at
        if dt < min_window:
            return
        sent = self.pipe.bytes_sent
        self.pkt_util_bps = (sent - self._pkt_bytes) * 8.0 / dt
        self._pkt_bytes = sent
        self._pkt_at = now

    def available(self, util_floor: float) -> float:
        """Fluid-visible capacity: raw capacity minus measured packet
        utilization, floored at ``util_floor`` of raw capacity so fluid
        flows are never fully starved by packet bursts."""
        cap = self.capacity()
        if cap == 0.0 or not math.isfinite(cap):
            return cap
        return max(cap - self.pkt_util_bps, cap * util_floor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FluidLink({self.name}, cap={self.capacity():.3g})"


@dataclass(frozen=True)
class FluidPath:
    """One direction of a route through the fluid capacity graph."""

    links: tuple  # of (FluidLink, factor) pairs
    rtt: float
    mss: int = 1460
    sites: Optional[tuple] = None     # (src_site, dst_site) on `cloud`
    cloud: object = None              # WanCloud carrying `sites`
    conduits: tuple = ()              # WAV tunnel keys gating the path

    def blocked(self, net: "FluidNetwork") -> Optional[str]:
        """Why this path cannot carry traffic right now (None if it can)."""
        for link, _factor in self.links:
            if link.capacity() == 0.0:
                return f"link_down:{link.name}"
        if self.cloud is not None and self.sites is not None:
            if self.cloud.partitioned(*self.sites):
                return "partitioned"
        for key in self.conduits:
            if not net.conduit_up(key):
                return f"tunnel_down:{key[0]}-{key[1]}"
        return None

    def loss(self) -> float:
        """Combined i.i.d. frame loss probability along the path."""
        keep = 1.0
        for link, _factor in self.links:
            keep *= 1.0 - link.current_loss()
        return 1.0 - keep


class FluidFlow:
    """One bulk transfer on the fluid plane.

    ``size_bytes=None`` makes a duration-mode flow (netperf style): it
    runs until :meth:`close` and reports ``delivered``. Otherwise the
    flow completes when ``delivered`` reaches ``size_bytes`` and
    ``done`` succeeds ``deliver_offset`` seconds later (last-byte
    propagation to the receiver)."""

    __slots__ = ("net", "name", "path", "size_bytes", "delivered", "rate",
                 "window_bps", "mss", "state", "done", "opened_at",
                 "deliver_offset", "cc", "_rate_cap", "_last_t", "_cap_ramp",
                 "_ramp_timer", "_done_timer", "_done_eta", "_stall_timer",
                 "_new_rate")

    def __init__(self, net: "FluidNetwork", name: str, path: FluidPath,
                 size_bytes: Optional[int], window_bps: float,
                 ramp: bool, deliver_offset: float,
                 cc: Optional[str] = None) -> None:
        sim = net.sim
        self.net = net
        self.name = name
        self.path = path
        self.size_bytes = size_bytes
        self.delivered = 0.0
        self.rate = 0.0            # allocated goodput, bits/s
        self.window_bps = window_bps
        self.mss = path.mss
        self.state = "active"
        # cc=None keeps the plane's historical Reno/Mathis loss response
        # (the calibrated default every agreement gate was tuned on);
        # naming an algorithm swaps in its steady-state response curve.
        self.cc = cc
        self._rate_cap = (mathis_rate_bps if cc is None
                          else cc_class(cc).rate_cap)
        self.done: Event = Event(sim)
        self.opened_at = sim.now
        self.deliver_offset = deliver_offset
        self._last_t = sim.now
        self._ramp_timer = None
        self._done_timer = None
        self._done_eta = math.inf
        self._stall_timer = None
        self._new_rate = 0.0
        # Slow start: the initial window goes out as one burst (delivered
        # "instantly" on the fluid clock; propagation is deliver_offset),
        # then the rate cap doubles each RTT starting from 2*IW/RTT.
        iw = INITIAL_CWND_SEGMENTS * self.mss
        if ramp and window_bps > 2 * iw * 8.0 / path.rtt:
            self.delivered = float(min(iw, size_bytes)) if size_bytes is not None else float(iw)
            self._cap_ramp = 2 * iw * 8.0 / path.rtt
            self._ramp_timer = sim.timer(path.rtt, self._ramp_step)
        else:
            self._cap_ramp = math.inf

    # -- caps -----------------------------------------------------------
    def cap_bps(self) -> float:
        cap = min(self.window_bps, self._cap_ramp)
        loss = self.path.loss()
        if loss > 0.0:
            cap = min(cap, self._rate_cap(self.mss, self.path.rtt, loss))
        return cap

    def _ramp_step(self) -> None:
        self._cap_ramp *= 2.0
        if self._cap_ramp >= self.window_bps:
            self._cap_ramp = math.inf  # window cap takes over
            self._ramp_timer = None
        else:
            self._ramp_timer = self.net.sim.timer(self.path.rtt, self._ramp_step)
        self.net._schedule_solve()

    # -- progress -------------------------------------------------------
    def progress(self) -> float:
        """Delivered bytes as of now (read-only; does not settle)."""
        if self.state != "active":
            return self.delivered
        return self.delivered + self.rate * (self.net.sim.now - self._last_t) / 8.0

    def _settle(self, now: float) -> None:
        if self.state == "active" and now > self._last_t:
            self.delivered += self.rate * (now - self._last_t) / 8.0
        self._last_t = now

    def remaining(self) -> float:
        if self.size_bytes is None:
            return math.inf
        return max(self.size_bytes - self.delivered, 0.0)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Finish a duration-mode flow (or cut a sized flow short)."""
        if self.state in ("done", "aborted"):
            return
        self.net._finish(self, aborted=False)

    def abort(self, reason: str = "aborted") -> None:
        if self.state in ("done", "aborted"):
            return
        self.net._finish(self, aborted=True, reason=reason)

    def _cancel_timers(self) -> None:
        for timer in (self._ramp_timer, self._done_timer, self._stall_timer):
            if timer is not None:
                timer.cancel()
        self._ramp_timer = self._done_timer = self._stall_timer = None
        self._done_eta = math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FluidFlow({self.name}, {self.state}, "
                f"rate={self.rate / 1e6:.2f}Mbps, "
                f"delivered={self.delivered:.0f}B)")


class FluidNetwork:
    """Per-simulator fluid plane: capacity graph, routes, solver.

    Registers itself as ``sim.fluid`` so apps and the WAVNet driver can
    find it without plumbing. Construction is cheap; nothing runs until
    the first flow opens."""

    def __init__(self, sim: Simulator, refresh_interval: float = 0.5,
                 util_floor: float = 0.01,
                 stall_timeout: Optional[float] = None) -> None:
        if getattr(sim, "fluid", None) is not None:
            raise RuntimeError("simulator already has a fluid network")
        self.sim = sim
        sim.fluid = self
        self.refresh_interval = refresh_interval
        self.util_floor = util_floor
        self.stall_timeout = stall_timeout
        self.flows: list[FluidFlow] = []      # active + stalled
        self._links: dict[int, FluidLink] = {}   # id(pipe) -> FluidLink
        self._routes: dict[tuple, FluidPath] = {}
        self._conduits: dict[tuple, bool] = {}
        self._watched_links: set[int] = set()
        self._watched_clouds: set[int] = set()
        self._solve_scheduled = False
        self._refresh_timer = None
        self._flow_seq = 0
        m = sim.metrics.scope("fluid")
        self._m_opened = m.counter("flows.opened")
        self._m_completed = m.counter("flows.completed")
        self._m_aborted = m.counter("flows.aborted")
        self._m_stalls = m.counter("flows.stalls")
        self._m_active = m.gauge("flows.active")
        self._m_solves = m.counter("solves")
        self._m_rate_changes = m.counter("rate_changes")
        self._m_bytes = m.counter("bytes.delivered")

    # ------------------------------------------------------------------
    # Capacity graph construction
    # ------------------------------------------------------------------
    def link_for(self, link, direction: str = "ab") -> FluidLink:
        """The FluidLink bound to one direction of a packet-plane
        :class:`~repro.net.l2.Link` (cached; subscribes to the link's
        change notifications on first use)."""
        pipe = link.ab if direction == "ab" else link.ba
        cached = self._links.get(id(pipe))
        if cached is not None:
            return cached
        flink = FluidLink(f"{link.name}.{direction}", pipe=pipe)
        self._links[id(pipe)] = flink
        if id(link) not in self._watched_links:
            link.add_watcher(self._on_link_change)
            self._watched_links.add(id(link))
        return flink

    def watch_cloud(self, cloud) -> None:
        """Subscribe to a WAN cloud's partition/heal notifications."""
        if id(cloud) not in self._watched_clouds:
            cloud.add_watcher(self._on_cloud_change)
            self._watched_clouds.add(id(cloud))

    def add_route(self, src: str, dst_ip, path: FluidPath) -> None:
        """Register the path a flow from host ``src`` to ``dst_ip``
        rides (apps resolve routes by ``(host.name, str(dst_ip))``)."""
        if path.cloud is not None:
            self.watch_cloud(path.cloud)
        self._routes[(src, str(dst_ip))] = path

    def route(self, src: str, dst_ip) -> FluidPath:
        try:
            return self._routes[(src, str(dst_ip))]
        except KeyError:
            raise KeyError(f"no fluid route {src} -> {dst_ip}; "
                           "register one with add_route()/fluidify()")

    def path_rate(self, path: FluidPath) -> float:
        """Steady goodput estimate for a lone flow on ``path``: the
        bottleneck link's fluid-visible capacity over its consumption
        factor. Apps use this to decide when TCP ramp-up would already
        saturate the path (e.g. sizing slow-start latency)."""
        rate = math.inf
        for link, factor in path.links:
            rate = min(rate, link.available(self.util_floor) / factor)
        return rate

    # -- WAV tunnel conduits -------------------------------------------
    @staticmethod
    def conduit_key(a: str, b: str) -> tuple:
        return tuple(sorted((a, b)))

    def set_conduit(self, key: tuple, up: bool) -> None:
        """Driver hook: a WAV tunnel between the key's two endpoints
        came up / died. Flows riding it stall or resume accordingly."""
        key = self.conduit_key(*key)
        if self._conduits.get(key) == up:
            return
        self._conduits[key] = up
        self._schedule_solve()

    def conduit_up(self, key: tuple) -> bool:
        return self._conduits.get(key, True)

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def open(self, src: Optional[str] = None, dst_ip=None, *,
             path: Optional[FluidPath] = None,
             size_bytes: Optional[int] = None,
             send_buf: int = 262144, recv_buf: int = 262144,
             ramp: bool = True, name: Optional[str] = None,
             deliver_offset: Optional[float] = None,
             cc: Optional[str] = None) -> FluidFlow:
        """Open a fluid bulk transfer and (re)solve the share allocation.

        Returns the :class:`FluidFlow`; wait on ``flow.done`` for
        completion (sized flows) or :meth:`FluidFlow.close` it
        (duration mode)."""
        if path is None:
            path = self.route(src, dst_ip)
        if path.cloud is not None and path.sites is not None:
            # PDES solver ownership: each partition runs its own fluid
            # solver over the links it owns, so a flow's whole path —
            # in particular its WAN site pair — must live in one
            # partition. Cross-partition bulk traffic should use
            # fidelity="packet" (frames cross via the cloud boundary).
            remote = [s for s in path.sites if path.cloud.is_remote(s)]
            if remote:
                raise RuntimeError(
                    f"fluid flow {name or src} rides WAN site(s) {remote} "
                    "owned by another PDES partition; fluid flows must be "
                    "intra-partition — co-locate both endpoints' site "
                    "groups or run the transfer at packet fidelity")
        if name is None:
            name = f"flow{self._flow_seq}"
        self._flow_seq += 1
        window = window_rate_bps(send_buf, recv_buf, path.rtt)
        offset = path.rtt / 2.0 if deliver_offset is None else deliver_offset
        flow = FluidFlow(self, name, path, size_bytes, window, ramp, offset,
                         cc=cc)
        self._m_opened.add()
        self.sim.trace.event("fluid.open", flow=name,
                             size=size_bytes if size_bytes is not None else -1)
        if size_bytes is not None and flow.delivered >= size_bytes:
            # Fits in the initial window: delivered in one burst.
            self._complete_now(flow)
            return flow
        self.flows.append(flow)
        self._m_active.set(len(self.flows))
        self._schedule_solve()
        if self._refresh_timer is None and self.refresh_interval:
            self._refresh_timer = self.sim.timer(self.refresh_interval,
                                                 self._refresh_tick)
        return flow

    def _finish(self, flow: FluidFlow, aborted: bool, reason: str = "") -> None:
        flow._settle(self.sim.now)
        flow._cancel_timers()
        if flow in self.flows:
            self.flows.remove(flow)
        self._m_active.set(len(self.flows))
        self._m_bytes.add(flow.delivered)
        if aborted:
            flow.state = "aborted"
            self._m_aborted.add()
            self.sim.trace.event("fluid.abort", flow=flow.name, reason=reason,
                                 delivered=round(flow.delivered))
            exc = FluidAborted(f"{flow.name}: {reason}")
            flow.done.fail(exc)
            flow.done.defuse()  # waiters still see it; unwaited aborts don't crash
        else:
            flow.state = "done"
            self._m_completed.add()
            self.sim.trace.event("fluid.complete", flow=flow.name,
                                 delivered=round(flow.delivered),
                                 seconds=round(self.sim.now - flow.opened_at, 6))
            if flow.deliver_offset > 0:
                self.sim.call_in(flow.deliver_offset, _DoneSucceed(flow))
            else:
                flow.done.succeed(flow)
        self._schedule_solve()

    def _complete_now(self, flow: FluidFlow) -> None:
        flow.state = "done"
        self._m_completed.add()
        self._m_bytes.add(flow.delivered)
        self.sim.trace.event("fluid.complete", flow=flow.name,
                             delivered=round(flow.delivered), seconds=0.0)
        if flow.deliver_offset > 0:
            self.sim.call_in(flow.deliver_offset, _DoneSucceed(flow))
        else:
            flow.done.succeed(flow)

    # ------------------------------------------------------------------
    # Re-solve triggers
    # ------------------------------------------------------------------
    def _on_link_change(self, _link) -> None:
        self._schedule_solve()

    def _on_cloud_change(self, _cloud) -> None:
        self._schedule_solve()

    def _schedule_solve(self) -> None:
        """Dirty-flag + one fast-lane event: any number of triggers at
        the same timestamp collapse into a single waterfill pass."""
        if not self._solve_scheduled:
            self._solve_scheduled = True
            self.sim.call_in(0.0, self._solve_cb)

    def _solve_cb(self) -> None:
        if self._solve_scheduled:
            self.solve_now()

    def _refresh_tick(self) -> None:
        self._refresh_timer = None
        if not self.flows:
            return
        # Periodic hybrid refresh: re-sample packet utilization so long
        # fluid flows track packet traffic that starts or stops mid-run.
        self.solve_now()
        self._refresh_timer = self.sim.timer(self.refresh_interval,
                                             self._refresh_tick)

    # ------------------------------------------------------------------
    # The solver
    # ------------------------------------------------------------------
    def solve_now(self) -> None:
        """Settle progress, re-check path health, waterfill, re-arm
        completion timers. Deterministic: iteration order is flow/link
        registration order everywhere."""
        self._solve_scheduled = False
        now = self.sim.now
        self._m_solves.add()
        for flow in self.flows:
            flow._settle(now)

        # Stall / resume on path health.
        active: list[FluidFlow] = []
        for flow in self.flows:
            why = flow.path.blocked(self)
            if why is not None:
                if flow.state == "active":
                    flow.state = "stalled"
                    flow.rate = 0.0
                    self._m_stalls.add()
                    self.sim.trace.event("fluid.stall", flow=flow.name,
                                         reason=why)
                    if flow._done_timer is not None:
                        flow._done_timer.cancel()
                        flow._done_timer = None
                        flow._done_eta = math.inf
                    if self.stall_timeout is not None and flow._stall_timer is None:
                        flow._stall_timer = self.sim.timer(
                            self.stall_timeout, _StallAbort(flow))
            else:
                if flow.state == "stalled":
                    flow.state = "active"
                    self.sim.trace.event("fluid.resume", flow=flow.name)
                    if flow._stall_timer is not None:
                        flow._stall_timer.cancel()
                        flow._stall_timer = None
                active.append(flow)

        if active:
            for link in self._links.values():
                link.sample_packet_util(now)
            self._waterfill(active)

        # Apply rates and (re)arm completion timers.
        for flow in active:
            new = flow._new_rate
            if abs(new - flow.rate) > max(1e-6, 1e-9 * new):
                flow.rate = new
                self._m_rate_changes.add()
            if flow.size_bytes is None:
                continue
            eta = (now + flow.remaining() * 8.0 / flow.rate
                   if flow.rate > 0 else math.inf)
            # Re-arm only when the new ETA is *earlier* than the armed
            # one (a later ETA just means the timer fires early, finds
            # bytes remaining, and re-arms itself — see _flow_eta_fire).
            if eta < flow._done_eta - 1e-9:
                if flow._done_timer is not None:
                    flow._done_timer.cancel()
                flow._done_eta = eta
                flow._done_timer = self.sim.timer(eta - now,
                                                  _EtaFire(flow))
            elif flow._done_timer is None and eta < math.inf:
                flow._done_eta = eta
                flow._done_timer = self.sim.timer(eta - now, _EtaFire(flow))

    def _eta_fire(self, flow: FluidFlow) -> None:
        flow._done_timer = None
        flow._done_eta = math.inf
        flow._settle(self.sim.now)
        if flow.remaining() <= max(1.0, _EPS * (flow.size_bytes or 1)):
            flow.delivered = float(flow.size_bytes)
            self._finish(flow, aborted=False)
        else:
            # Rate dropped since this timer was armed; re-estimate.
            self._schedule_solve()

    def _waterfill(self, active: list[FluidFlow]) -> None:
        """Progressive filling: raise every unfrozen flow's goodput rate
        together; freeze flows at their cap and flows on saturated
        links; repeat. Heterogeneous per-(flow, link) consumption
        factors (header overhead, CPU seconds) are respected, so this is
        weighted max-min in goodput space."""
        # Gather the links in deterministic (registration-ish) order.
        entries: list[list] = []   # per link: [rem, sat_eps, [(idx, factor)...]]
        link_index: dict[int, int] = {}
        caps: list[float] = []
        rates: list[float] = []
        frozen: list[bool] = []
        for idx, flow in enumerate(active):
            caps.append(flow.cap_bps())
            rates.append(0.0)
            frozen.append(False)
            for link, factor in flow.path.links:
                li = link_index.get(id(link))
                if li is None:
                    li = len(entries)
                    link_index[id(link)] = li
                    avail = link.available(self.util_floor)
                    sat_eps = max(1e-6, avail * 1e-9) if math.isfinite(avail) else 0.0
                    entries.append([avail, sat_eps, []])
                entries[li][2].append((idx, factor))
        n_unfrozen = len(active)
        guard = 0
        while n_unfrozen > 0:
            guard += 1
            if guard > 2 * (len(active) + len(entries)) + 4:  # pragma: no cover
                break  # numerical safety; freeze everything as-is
            inc = math.inf
            for rem, _sat_eps, users in entries:
                weight = 0.0
                for idx, factor in users:
                    if not frozen[idx]:
                        weight += factor
                if weight > 0.0:
                    share = rem / weight
                    if share < inc:
                        inc = share
            for idx in range(len(active)):
                if not frozen[idx]:
                    room = caps[idx] - rates[idx]
                    if room < inc:
                        inc = room
            if inc == math.inf:
                break  # no finite constraint (all caps infinite, links unshaped)
            if inc > 0.0:
                for entry in entries:
                    weight = 0.0
                    for idx, factor in entry[2]:
                        if not frozen[idx]:
                            weight += factor
                    entry[0] -= inc * weight
                for idx in range(len(active)):
                    if not frozen[idx]:
                        rates[idx] += inc
            # Freeze cap-limited flows.
            progressed = False
            for idx in range(len(active)):
                if not frozen[idx] and rates[idx] >= caps[idx] - max(1e-6, caps[idx] * 1e-12):
                    frozen[idx] = True
                    n_unfrozen -= 1
                    progressed = True
            # Freeze flows on saturated links.
            for rem, sat_eps, users in entries:
                if rem <= sat_eps:
                    for idx, _factor in users:
                        if not frozen[idx]:
                            frozen[idx] = True
                            n_unfrozen -= 1
                            progressed = True
            if not progressed and inc <= 0.0:  # pragma: no cover
                break
        for idx, flow in enumerate(active):
            flow._new_rate = rates[idx]


class _DoneSucceed:
    """Bound completion-event trigger (avoids closure churn)."""

    __slots__ = ("flow",)

    def __init__(self, flow: FluidFlow) -> None:
        self.flow = flow

    def __call__(self) -> None:
        self.flow.done.succeed(self.flow)


class _EtaFire:
    __slots__ = ("flow",)

    def __init__(self, flow: FluidFlow) -> None:
        self.flow = flow

    def __call__(self) -> None:
        self.flow.net._eta_fire(self.flow)


class _StallAbort:
    __slots__ = ("flow",)

    def __init__(self, flow: FluidFlow) -> None:
        self.flow = flow

    def __call__(self) -> None:
        flow = self.flow
        flow._stall_timer = None
        if flow.state == "stalled":
            flow.abort("stall_timeout")
