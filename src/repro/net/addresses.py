"""MAC and IPv4 addressing.

Addresses are small immutable value objects backed by integers so they are
cheap to hash and compare on the packet fast path. IPv4 parsing accepts
dotted-quad strings; CIDR networks support containment tests and host
enumeration for scenario builders.
"""

from __future__ import annotations

from typing import Iterator, Union

__all__ = [
    "BROADCAST_MAC",
    "IPv4Address",
    "IPv4Network",
    "MacAddress",
    "mac_factory",
]


class MacAddress:
    """48-bit Ethernet address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self.value = value.value
            return
        if isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"bad MAC {value!r}")
            value = 0
            for p in parts:
                value = (value << 8) | int(p, 16)
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC out of range: {value:#x}")
        self.value = value

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        octets = [(self.value >> (8 * i)) & 0xFF for i in range(5, -1, -1)]
        return ":".join(f"{o:02x}" for o in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


BROADCAST_MAC = MacAddress((1 << 48) - 1)


def mac_factory(prefix: int = 0x02_00_00_00_00_00):
    """Return a callable minting locally-administered MACs sequentially.

    Scenario builders use one factory per topology so MACs are stable
    across runs regardless of construction interleaving.
    """
    counter = {"next": 1}

    def mint() -> MacAddress:
        mac = MacAddress(prefix | counter["next"])
        counter["next"] += 1
        return mac

    return mint


class IPv4Address:
    """32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self.value = value.value
            return
        if isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"bad IPv4 {value!r}")
            value = 0
            for p in parts:
                octet = int(p)
                if not 0 <= octet <= 255:
                    raise ValueError(f"bad IPv4 {value!r}")
                value = (value << 8) | octet
        if not 0 <= value < (1 << 32):
            raise ValueError(f"IPv4 out of range: {value:#x}")
        self.value = value

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 32) - 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and other.value == self.value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ip", self.value))

    def __str__(self) -> str:
        octets = [(self.value >> (8 * i)) & 0xFF for i in range(3, -1, -1)]
        return ".".join(str(o) for o in octets)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


class IPv4Network:
    """CIDR prefix, e.g. ``IPv4Network('10.1.0.0/24')``."""

    __slots__ = ("network", "prefix_len", "_mask")

    def __init__(self, cidr: str) -> None:
        addr, _, plen = cidr.partition("/")
        if not plen:
            raise ValueError(f"missing prefix length in {cidr!r}")
        self.prefix_len = int(plen)
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length in {cidr!r}")
        self._mask = ((1 << self.prefix_len) - 1) << (32 - self.prefix_len) if self.prefix_len else 0
        base = IPv4Address(addr).value & self._mask
        self.network = IPv4Address(base)

    def __contains__(self, ip: IPv4Address) -> bool:
        return (ip.value & self._mask) == self.network.value

    @property
    def broadcast(self) -> IPv4Address:
        return IPv4Address(self.network.value | (~self._mask & 0xFFFFFFFF))

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th host address (1-based; 0 is the network address)."""
        ip = IPv4Address(self.network.value + index)
        if ip not in self or ip == self.broadcast and self.prefix_len < 31:
            raise ValueError(f"host index {index} outside {self}")
        return ip

    def hosts(self) -> Iterator[IPv4Address]:
        first = self.network.value + (1 if self.prefix_len < 31 else 0)
        last = self.broadcast.value - (1 if self.prefix_len < 31 else 0)
        for v in range(first, last + 1):
            yield IPv4Address(v)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IPv4Network)
            and other.network == self.network
            and other.prefix_len == self.prefix_len
        )

    def __hash__(self) -> int:
        return hash(("net", self.network.value, self.prefix_len))

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network('{self}')"
