"""Fault primitives: the verbs a fault schedule can apply.

Component faults (crash/stop/restore) address lifecycle components by
their registry id (``driver:h0``, ``rendezvous:rvz0``, ``nat:h3.nat``,
``link:h2.access``); network faults (flap, loss burst, partition) take
the :class:`~repro.net.l2.Link` / :class:`~repro.net.wan.WanCloud`
objects directly. Every injection is observable: one ``fault`` trace
event plus a ``faults.injected.<kind>`` counter.
"""

from __future__ import annotations

from typing import Optional

from repro.net.l2 import Link
from repro.net.wan import WanCloud

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies fault primitives to one simulation."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.injected = 0

    def _note(self, kind: str, **attrs) -> None:
        self.injected += 1
        self.sim.metrics.counter(f"faults.injected.{kind}").add()
        self.sim.trace.event("fault", kind=kind, **attrs)

    # -- component lifecycle faults -------------------------------------
    def crash(self, component_id: str) -> None:
        """Ungraceful death of any lifecycle component (host driver,
        rendezvous server, NAT box, CAN node, link)."""
        self._note("crash", component=component_id)
        self.sim.components.crash(component_id)

    def stop(self, component_id: str) -> None:
        """Graceful shutdown of a lifecycle component."""
        self._note("stop", component=component_id)
        self.sim.components.stop(component_id)

    def restore(self, component_id: str) -> None:
        """Bring a crashed/stopped component back up."""
        self._note("restore", component=component_id)
        self.sim.components.restore(component_id)

    # -- link faults ----------------------------------------------------
    def link_down(self, link: Link) -> None:
        self._note("link_down", link=link.name)
        link.admin_down()

    def link_up(self, link: Link) -> None:
        self._note("link_up", link=link.name)
        link.admin_up()

    def link_flap(self, link: Link, down_for: float) -> None:
        """Take a link down now and bring it back after ``down_for``."""
        self._note("link_flap", link=link.name, down_for=down_for)
        link.admin_down()
        self.sim.call_in(down_for, link.admin_up)

    def loss_burst(self, link: Link, loss: float, duration: float) -> None:
        """Raise a link's drop probability to ``loss`` for ``duration``
        seconds, then restore the previous value."""
        prior = link.ab.loss
        self._note("loss_burst", link=link.name, loss=loss, duration=duration)
        link.set_loss(loss)
        self.sim.call_in(duration, _RestoreLoss(link, prior))

    # -- WAN faults -----------------------------------------------------
    def partition(self, cloud: WanCloud, group_a, group_b,
                  duration: Optional[float] = None) -> None:
        """Partition two site groups; heals after ``duration`` if given."""
        self._note("partition", cloud=cloud.name,
                   a=sorted(group_a), b=sorted(group_b))
        cloud.partition(group_a, group_b)
        if duration is not None:
            self.sim.call_in(duration, _Heal(cloud, tuple(group_a), tuple(group_b)))

    def heal(self, cloud: WanCloud, group_a=None, group_b=None) -> None:
        self._note("heal", cloud=cloud.name)
        cloud.heal(group_a, group_b)

    # -- NAT faults -----------------------------------------------------
    def nat_reboot(self, nat) -> None:
        """Power-cycle a NAT box: every mapping table is flushed."""
        self._note("nat_reboot", nat=nat.name)
        nat.reboot()

    # -- table-resident endpoint faults ---------------------------------
    # Churn at 10^5-10^6 endpoints operates on HostTable rows directly:
    # no object stack is materialized just to kill an idle endpoint.
    def endpoint_down(self, table, names) -> int:
        """Endpoints go dark: registrations drop immediately (their rows
        and directory state survive, so a later reconnect needs no side
        channel). Materialized hosts are crashed through their driver
        component instead, so both representations get one verb."""
        names = [names] if isinstance(names, str) else list(names)
        table_names = []
        for name in names:
            host_id = table.lookup(name)
            if host_id >= 0 and host_id in table.active:
                stack = table.active[host_id]
                self.crash(stack.driver.component_id)
            else:
                table_names.append(name)
        downed = table.mark_down(table_names)
        self._note("endpoint_down", count=len(names), table_resident=downed)
        return downed + (len(names) - len(table_names))

    def endpoint_reconnect(self, table, names, owner: int = -1,
                           region: int = -1) -> int:
        """Table-resident endpoints re-register from their surviving row
        state (the storm scenario drives real re-registration RPCs; this
        verb is the cheap local flavor for schedules that only need the
        directory effect)."""
        names = [names] if isinstance(names, str) else list(names)
        count = 0
        now = self.sim.now
        for name in names:
            host_id = table.lookup(name)
            if host_id < 0:
                continue
            table.flags[host_id] |= 1  # FLAG_REGISTERED
            table.generation[host_id] += 1
            table.owner[host_id] = owner
            if region >= 0:
                table.region[host_id] = region
            table.last_seen[host_id] = now
            count += 1
        self._note("endpoint_reconnect", count=count)
        return count

    def regional_outage(self, table, region: int) -> list:
        """Every registered endpoint in a region goes dark at once — the
        precursor to a mass-reconnect registration storm. Returns the
        affected names (the storm re-registers exactly these)."""
        names = table.names_in_region(region)
        self.endpoint_down(table, names)
        self._note("regional_outage", region=region, endpoints=len(names))
        return names


class _RestoreLoss:
    __slots__ = ("link", "loss")

    def __init__(self, link: Link, loss: float) -> None:
        self.link = link
        self.loss = loss

    def __call__(self) -> None:
        self.link.set_loss(self.loss)


class _Heal:
    __slots__ = ("cloud", "a", "b")

    def __init__(self, cloud: WanCloud, a, b) -> None:
        self.cloud = cloud
        self.a = a
        self.b = b

    def __call__(self) -> None:
        self.cloud.heal(self.a, self.b)
