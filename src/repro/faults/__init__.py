"""repro.faults — deterministic fault injection plane.

Failure modes in WAVNet experiments (host churn, link flaps, loss
bursts, WAN partitions, NAT reboots, rendezvous death) are expressed as
fault *injections* against lifecycle components and network elements:

* :class:`FaultInjector` — the primitive verbs. Every injection emits a
  ``fault`` trace event and bumps a ``faults.injected.<kind>`` counter,
  so recovery analysis can line injections up against repairs.
* :class:`FaultPlan` — a declarative, deterministic schedule of
  injections. Scripted entries via :meth:`FaultPlan.at`; randomized
  churn via :meth:`FaultPlan.random_churn`, drawn from a named RNG
  stream of the simulator seed so two runs of the same plan inject the
  identical fault sequence.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["FaultEvent", "FaultInjector", "FaultPlan"]
