"""Deterministic fault schedules.

A :class:`FaultPlan` is a list of ``(time, kind, kwargs)`` entries
dispatched to :class:`~repro.faults.injector.FaultInjector` verbs.
Entries come from explicit scripting (:meth:`FaultPlan.at`) or from
:meth:`FaultPlan.random_churn`, which draws crash/restore times from a
named stream of the simulator RNG — so the same seed produces the
identical fault sequence, and adding a differently-named plan never
perturbs other random draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injector import FaultInjector

__all__ = ["FaultEvent", "FaultPlan"]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection: ``injector.<kind>(**kwargs)`` at ``at``.

    ``group`` is the PDES site-group the faulted component lives in:
    a partitioned run arms each entry only in the partition that owns
    its group, so every verb executes exactly once, in the process that
    holds the target objects.
    """

    at: float
    kind: str
    kwargs: dict = field(default_factory=dict)
    group: int = 0


class _Injection:
    __slots__ = ("injector", "event")

    def __init__(self, injector: FaultInjector, event: FaultEvent) -> None:
        self.injector = injector
        self.event = event

    def __call__(self) -> None:
        getattr(self.injector, self.event.kind)(**self.event.kwargs)


class FaultPlan:
    """A deterministic schedule of fault injections."""

    def __init__(self, sim, name: str = "plan",
                 injector: FaultInjector | None = None) -> None:
        self.sim = sim
        self.name = name
        self.injector = injector or FaultInjector(sim)
        self.events: list[FaultEvent] = []
        self.armed = False

    def at(self, t: float, kind: str, group: int = 0, **kwargs) -> "FaultPlan":
        """Schedule ``injector.<kind>(**kwargs)`` at absolute time ``t``;
        ``group`` routes the entry to its owning PDES partition (ignored
        by serial runs)."""
        if self.armed:
            raise RuntimeError("plan already armed")
        if not hasattr(self.injector, kind):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.events.append(FaultEvent(float(t), kind, dict(kwargs), int(group)))
        return self

    def random_churn(self, component_ids, start: float, stop: float,
                     rate: float, mean_downtime: float = 20.0) -> "FaultPlan":
        """Poisson crash/restore churn over ``component_ids`` between
        ``start`` and ``stop``: crashes arrive at ``rate`` per second
        (across the whole set), each followed by a restore after an
        exponentially distributed downtime (mean ``mean_downtime``).
        All draws come from the ``faults.<plan-name>`` RNG stream."""
        if self.armed:
            raise RuntimeError("plan already armed")
        rng = self.sim.rng.stream(f"faults.{self.name}")
        ids = list(component_ids)
        t = float(start)
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= stop:
                break
            cid = ids[int(rng.integers(len(ids)))]
            downtime = float(rng.exponential(mean_downtime))
            self.at(t, "crash", component_id=cid)
            self.at(min(stop, t + downtime), "restore", component_id=cid)
        return self

    def arm(self, partition=None) -> "FaultPlan":
        """Install every entry on the simulator calendar (fast-lane
        callables — no process overhead per injection).

        With a :class:`~repro.sim.pdes.PartitionContext`, only the
        entries whose ``group`` this partition owns are armed — the
        verbs run in the process holding the faulted objects, and the
        union over all partitions is exactly the serial schedule.
        """
        if self.armed:
            raise RuntimeError("plan already armed")
        self.armed = True
        for event in sorted(self.events, key=lambda e: e.at):
            if partition is not None and not partition.owns(event.group):
                continue
            self.sim.call_at(event.at, _Injection(self.injector, event))
        return self

    def __len__(self) -> int:
        return len(self.events)
