"""WAVNet reproduction: wide-area network virtualization for virtual
private clouds (Xu, Di, Zhang, Cheng, Wang — ICPP 2011), rebuilt as a
Python library on a deterministic discrete-event network simulator.

Quickstart::

    from repro import Simulator, WavnetEnvironment

    sim = Simulator(seed=1)
    env = WavnetEnvironment(sim)
    env.add_host("alice", nat_type="port-restricted")
    env.add_host("bob", nat_type="full-cone")
    sim.run(until=sim.process(env.start_all()))
    sim.run(until=sim.process(env.connect_pair("alice", "bob")))
    # alice and bob now share a layer-2 virtual LAN across their NATs.

Package map: :mod:`repro.sim` (event kernel), :mod:`repro.net` (network
substrate), :mod:`repro.nat` / :mod:`repro.stun` (NAT traversal),
:mod:`repro.overlay` (CAN rendezvous layer), :mod:`repro.core` (WAVNet
itself), :mod:`repro.vm` (live migration), :mod:`repro.baselines`
(IPOP comparator), :mod:`repro.apps` (workloads), and
:mod:`repro.scenarios` (the paper's testbeds).
"""

from repro.core.driver import WavnetDriver
from repro.core.grouping import (
    brute_force_group,
    greedy_group,
    locality_sensitive_group,
    random_group,
)
from repro.core.latency import LatencyMatrix
from repro.nat.types import NatType
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator
from repro.vm.hypervisor import Hypervisor
from repro.vm.machine import VirtualMachine

__version__ = "1.0.0"

__all__ = [
    "Hypervisor",
    "LatencyMatrix",
    "NatType",
    "Simulator",
    "VirtualMachine",
    "WavnetDriver",
    "WavnetEnvironment",
    "brute_force_group",
    "greedy_group",
    "locality_sensitive_group",
    "random_group",
    "__version__",
]
