"""WAVNet reproduction: wide-area network virtualization for virtual
private clouds (Xu, Di, Zhang, Cheng, Wang — ICPP 2011), rebuilt as a
Python library on a deterministic discrete-event network simulator.

Quickstart::

    from repro import Simulator, WavnetEnvironment

    sim = Simulator(seed=1)
    env = WavnetEnvironment(sim)
    env.add_host("alice", nat_type="port-restricted")
    env.add_host("bob", nat_type="full-cone")
    sim.run(until=sim.process(env.start_all()))
    sim.run(until=sim.process(env.connect_pair("alice", "bob")))
    # alice and bob now share a layer-2 virtual LAN across their NATs.

The names exported here are the supported surface for building and
running experiments: deployment assembly (:class:`WavnetEnvironment`,
:class:`WavnetDriver`, :class:`NatType`), per-call behaviour bundles
(:class:`ConnectOptions`, :class:`TransferOptions`), the experiment
plane (:class:`ExperimentSpec`, :class:`Sweep`, :class:`SweepRunner`,
:func:`run_sweep`, :func:`run_partitioned`), fault injection
(:class:`FaultPlan`, :class:`FaultInjector`), and VM migration
(:class:`Hypervisor`, :class:`VirtualMachine`).

Package map: :mod:`repro.sim` (event kernel), :mod:`repro.net` (network
substrate), :mod:`repro.nat` / :mod:`repro.stun` (NAT traversal),
:mod:`repro.overlay` (CAN rendezvous layer), :mod:`repro.core` (WAVNet
itself), :mod:`repro.vm` (live migration), :mod:`repro.baselines`
(IPOP comparator), :mod:`repro.apps` (workloads), :mod:`repro.exp`
(experiment plane), :mod:`repro.faults` (failure injection), and
:mod:`repro.scenarios` (the paper's testbeds).
"""

from repro.core.driver import WavnetDriver
from repro.core.grouping import (
    brute_force_group,
    greedy_group,
    locality_sensitive_group,
    random_group,
)
from repro.core.latency import LatencyMatrix
from repro.core.options import ConnectOptions, TransferOptions
from repro.exp import ExperimentSpec, Sweep, SweepRunner, run_sweep
from repro.faults import FaultInjector, FaultPlan
from repro.nat.types import NatType
from repro.scenarios.wavnet_env import WavnetEnvironment
from repro.sim.engine import Simulator
from repro.sim.pdes import run_partitioned
from repro.vm.hypervisor import Hypervisor
from repro.vm.machine import VirtualMachine

__version__ = "1.0.0"

__all__ = [
    "ConnectOptions",
    "ExperimentSpec",
    "FaultInjector",
    "FaultPlan",
    "Hypervisor",
    "LatencyMatrix",
    "NatType",
    "Simulator",
    "Sweep",
    "SweepRunner",
    "TransferOptions",
    "VirtualMachine",
    "WavnetDriver",
    "WavnetEnvironment",
    "brute_force_group",
    "greedy_group",
    "locality_sensitive_group",
    "random_group",
    "run_partitioned",
    "run_sweep",
    "__version__",
]
