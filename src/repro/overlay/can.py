"""CAN node: zone ownership, greedy routing, join/leave, resource store.

Protocol (all RPC over UDP between public rendezvous hosts):

* ``can.join``    — routed to the owner of the joiner's point; the owner
  splits its zone and replies with the joiner's half, the records that
  fall in it, and the neighbor set.
* ``can.route``   — generic greedy routing envelope: carried operation is
  executed at the point's owner, the reply unwinds hop-by-hop.
* ``can.nbr``     — neighbor announcement/refresh (zones + address).
* ``can.leave``   — graceful departure: zone and records handed to the
  merge-compatible neighbor, or to the smallest neighbor as an extra
  zone (nodes may own several zones, as in the CAN paper's takeover).
* ``can.ping``    — liveness probe used before declaring a silent
  neighbor dead.
* ``can.dead``    — gossip that a neighbor died ungracefully; receivers
  drop it and the arbitration winner absorbs its zones (see below).
* ``can.replica`` — owner pushes a copy of each stored record to its
  neighbors, so an ungraceful death does not lose the records: the
  takeover node promotes its replicas of the dead node's records.

**Ungraceful takeover.** A neighbor that misses three announcement
intervals is probed (``can.ping``); on timeout it is declared dead and
the death is gossiped. Every node that abutted the dead node computes
the takeover owner locally — the abutting neighbor with the smallest
``node_id`` — and only the owner absorbs the zones and promotes the
replicas. Rendezvous overlays are small and near-clique, so every
detector sees the same candidate set and the arbitration is
deterministic; the graceful ``can.leave`` path is unchanged.

Routing metric: forward to the neighbor whose zone-set is closest (torus
distance) to the destination point, strictly decreasing; the owner
executes the operation. Hop-by-hop latency is real simulated network
latency — this is what makes resource-query timing in the benchmarks
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.net.addresses import IPv4Address
from repro.overlay.resources import ResourceRecord
from repro.overlay.rpc import RpcEndpoint, RpcError, RpcTimeout
from repro.overlay.space import Point, Zone
from repro.sim.lifecycle import Component

__all__ = ["CanNode", "NeighborInfo"]

CAN_PORT = 4000
MAX_HOPS = 64


@dataclass
class NeighborInfo:
    node_id: str
    ip: IPv4Address
    port: int
    zones: list = field(default_factory=list)
    last_seen: float = 0.0

    @property
    def size(self) -> int:
        return 24 + 16 * len(self.zones)


@dataclass(frozen=True)
class _JoinGrant:
    zone: Zone
    records: tuple
    neighbors: tuple  # NeighborInfo snapshots
    handles: tuple = ()  # HostTable handles whose points fall in the zone

    @property
    def size(self) -> int:
        return (64 + sum(r.size for r in self.records)
                + sum(n.size for n in self.neighbors) + 8 * len(self.handles))


@dataclass(frozen=True)
class _ShedPayload:
    """Hot-zone split handoff: half a zone plus the directory entries
    (full records and table handles) that fall in it."""

    shedder: NeighborInfo
    zone: Zone
    records: tuple
    handles: tuple

    @property
    def size(self) -> int:
        return (48 + self.shedder.size + sum(r.size for r in self.records)
                + 8 * len(self.handles))


@dataclass(frozen=True)
class _RouteOp:
    """An operation being routed to the owner of ``point``."""

    point: Point
    op: str  # 'put' | 'get' | 'remove'
    body: Any
    hops: int = 0

    @property
    def size(self) -> int:
        return 24 + 8 * len(self.point) + (getattr(self.body, "size", 16) or 16)


class CanNode(Component):
    """A CAN overlay node living on a public host.

    As a lifecycle :class:`~repro.sim.lifecycle.Component` (kind
    ``can``): stop/crash drop all volatile overlay state (zones,
    records, replicas, neighbors) and close the socket; ``restore``
    rebinds and rejoins through the cached peer addresses — the
    surviving overlay sees the old incarnation die ungracefully and
    takes over its zones, then admits the rejoiner as a fresh node.
    """

    def __init__(self, host, dims: int = 2, port: int = CAN_PORT,
                 node_id: Optional[str] = None,
                 ping_interval: float = 10.0, record_ttl: float = 120.0,
                 table=None, replication_factor: Optional[int] = None,
                 hot_zone_limit: Optional[int] = None,
                 retry_concurrency: Optional[int] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.node_id = node_id or host.name
        Component.__init__(self, host.sim, "can", self.node_id)
        self.dims = dims
        self.port = port
        self.ip: IPv4Address = host.stack.ips[0]
        self.zones: list[Zone] = []
        self.neighbors: dict[str, NeighborInfo] = {}
        self.records: dict[str, ResourceRecord] = {}
        self.ping_interval = ping_interval
        self.record_ttl = record_ttl
        self.joined = False
        self.routed_ops = 0
        # Shared HostTable (fleet deployments): directory entries for
        # table-registered endpoints are stored as generation-checked
        # *handles* instead of full ResourceRecord copies.
        self.table = table
        self.handles: set[int] = set()
        # None = replicate every stored record to every neighbor (the
        # original small-overlay behavior); an int caps the copies.
        self.replication_factor = replication_factor
        # When set, a zone holding more than this many directory entries
        # is split and half is handed to an abutting neighbor. The scan
        # is throttled: re-checked only after the handle store grows by
        # a quarter of the limit since the last scan (``_split_mark``),
        # so storm-scale batch inserts don't pay a per-batch zone sweep.
        self.hot_zone_limit = hot_zone_limit
        self._split_mark = -1
        # Replicas of records owned by other nodes, keyed by owner id —
        # promoted into ``records`` if that owner dies ungracefully.
        self.replicas: dict[str, dict[str, ResourceRecord]] = {}
        self.handle_replicas: dict[str, set[int]] = {}
        # Peer addresses learned over time; survives a crash the way an
        # on-disk peer cache would, so a restored node can rejoin.
        self._known_peers: dict[str, tuple[IPv4Address, int]] = {}
        self.metrics = self.sim.metrics.scope(f"{self.node_id}.can")
        self._m_takeovers = self.metrics.counter("takeovers")
        self._m_deaths = self.metrics.counter("deaths_detected")
        self._m_replicas = self.metrics.counter("replicas.stored")
        self._m_splits = self.metrics.counter("splits")
        self._m_merges = self.metrics.counter("merges")
        self._m_remerges = self.metrics.counter("remerges")
        self._m_handles = self.metrics.counter("handles.stored")
        self.rpc = RpcEndpoint(host.stack, host.udp.bind(port),
                               name=f"can:{self.node_id}",
                               retry_concurrency=retry_concurrency)
        self.rpc.register("can.route", self._on_route)
        self.rpc.register("can.nbr", self._on_neighbor)
        self.rpc.register("can.leave", self._on_leave)
        self.rpc.register("can.ping", self._on_ping)
        self.rpc.register("can.dead", self._on_dead)
        self.rpc.register("can.replica", self._on_replica)
        self.rpc.register("can.replica_ids", self._on_replica_ids)
        self.rpc.register("can.shed", self._on_shed)
        self.rpc.register("can.remerge", self._on_remerge)
        self._pinger = None
        self._probing: set[str] = set()
        self._remerging = False

    # -- lifecycle ------------------------------------------------------
    def _on_stop(self) -> None:
        # No graceful handover here (that is :meth:`leave`, a protocol
        # action); a stopped node just goes dark and rejoins fresh.
        if self._pinger is not None and self._pinger.is_alive:
            self._pinger.interrupt("stopped")
        self._pinger = None
        self.rpc.shutdown()
        self.joined = False
        self.zones = []
        self.records.clear()
        self.replicas.clear()
        self.handles.clear()
        self.handle_replicas.clear()
        self.neighbors.clear()
        self._probing.clear()
        self._split_mark = -1

    def _on_restore(self) -> None:
        self.rpc.rebind(self.host.udp.bind(self.port))
        self.sim.process(self._rejoin(), name=f"can-rejoin:{self.node_id}")

    def _rejoin(self):
        """Process: rejoin through any cached peer; fall back to
        bootstrapping a fresh overlay if nobody answers."""
        for node_id, (ip, port) in sorted(self._known_peers.items()):
            if node_id == self.node_id:
                continue
            try:
                yield from self.join_via(ip, port)
                return
            except (RpcTimeout, RpcError):
                continue
        self.bootstrap()

    # -- membership -----------------------------------------------------
    def bootstrap(self) -> None:
        """Become the first node: own the whole space."""
        self.zones = [Zone.whole(self.dims)]
        self.joined = True
        self._start_pinger()

    def join_via(self, bootstrap_ip: IPv4Address, bootstrap_port: int = CAN_PORT):
        """Process: join the overlay through an existing node."""
        rng = self.sim.rng.stream(f"can.join.{self.node_id}")
        point = tuple(float(x) for x in rng.random(self.dims))
        me = self._my_info()
        grant: _JoinGrant = yield from self.rpc.call(
            bootstrap_ip, bootstrap_port, "can.route",
            _RouteOp(point, "join", me), timeout=5.0)
        self.zones = [grant.zone]
        for record in grant.records:
            self.records[record.host_name] = record
        self.handles.update(grant.handles)
        for info in grant.neighbors:
            if info.node_id != self.node_id:
                self.neighbors[info.node_id] = info
                self._known_peers[info.node_id] = (info.ip, info.port)
        self.joined = True
        self._announce_to_neighbors()
        self._prune_non_neighbors()
        self._start_pinger()
        return self

    def leave(self):
        """Process: graceful departure — hand zones and records to a
        neighbor (merge-compatible if possible, else smallest)."""
        if not self.joined:
            return None
        target = self._handover_target()
        if target is not None:
            yield from self.rpc.call(
                target.ip, target.port, "can.leave",
                _LeavePayload(self._my_info(), tuple(self.zones),
                              tuple(self.records.values()),
                              tuple(sorted(self.handles))), timeout=5.0)
        self.joined = False
        self.zones = []
        self.records.clear()
        self.handles.clear()
        if self._pinger is not None and self._pinger.is_alive:
            self._pinger.interrupt("leaving")
        return None

    def _handover_target(self) -> Optional[NeighborInfo]:
        if not self.neighbors:
            return None
        # Prefer a neighbor that can absorb us into a clean box.
        for info in self.neighbors.values():
            for nz in info.zones:
                if any(z.can_merge(nz) for z in self.zones):
                    return info
        return min(self.neighbors.values(),
                   key=lambda i: sum(z.volume() for z in i.zones))

    # -- geometry helpers ------------------------------------------------
    def owns(self, point: Point) -> bool:
        return any(z.contains(point) for z in self.zones)

    def distance_to(self, point: Point) -> float:
        if not self.zones:
            return float("inf")
        return min(z.distance_to_point(point) for z in self.zones)

    def _my_info(self) -> NeighborInfo:
        return NeighborInfo(self.node_id, self.ip, self.port,
                            zones=list(self.zones), last_seen=self.sim.now)

    def _is_neighbor(self, info: NeighborInfo) -> bool:
        for mine in self.zones:
            for theirs in info.zones:
                if mine.is_neighbor(theirs):
                    return True
        return False

    def _prune_non_neighbors(self) -> None:
        for node_id in list(self.neighbors):
            if not self._is_neighbor(self.neighbors[node_id]):
                del self.neighbors[node_id]

    def _announce_to_neighbors(self) -> None:
        me = self._my_info()
        for info in self.neighbors.values():
            self.rpc.notify(info.ip, info.port, "can.nbr", me)

    # -- periodic maintenance ----------------------------------------------
    def _start_pinger(self) -> None:
        self._pinger = self.sim.process(self._ping_loop(), name=f"can-ping:{self.node_id}")

    def _ping_loop(self):
        from repro.sim.engine import Interrupt
        try:
            while self.joined:
                yield self.sim.timeout(self.ping_interval)
                self._announce_to_neighbors()
                self._expire_records()
                self._check_neighbors()
                self._maybe_remerge()
        except Interrupt:
            return

    def _expire_records(self) -> None:
        now = self.sim.now
        for name in [n for n, r in self.records.items() if r.expired(now)]:
            del self.records[name]
        for owner, reps in self.replicas.items():
            for name in [n for n, r in reps.items() if r.expired(now)]:
                del reps[name]
        self._prune_handles()

    def _prune_handles(self) -> None:
        """Drop handles whose table row was unregistered or re-registered
        (generation bump) — one vectorized validity mask per store."""
        if self.table is None:
            return
        for store in [self.handles, *self.handle_replicas.values()]:
            if not store:
                continue
            arr = np.fromiter(store, dtype=np.int64, count=len(store))
            stale = arr[~self.table.valid_mask(arr)]
            store.difference_update(int(h) for h in stale)

    def _check_neighbors(self) -> None:
        """Probe neighbors that have gone silent instead of silently
        forgetting them: a probe timeout means an ungraceful death and
        triggers the takeover protocol."""
        horizon = self.sim.now - 3 * self.ping_interval - 1e-9
        for node_id in list(self.neighbors):
            info = self.neighbors[node_id]
            if 0 < info.last_seen < horizon and node_id not in self._probing:
                self._probing.add(node_id)
                self.sim.process(self._probe_neighbor(info),
                                 name=f"can-probe:{self.node_id}->{node_id}")

    def _probe_neighbor(self, info: NeighborInfo):
        try:
            fresh = yield from self.rpc.call(info.ip, info.port, "can.ping",
                                            self.node_id, timeout=2.0, retries=2)
        except (RpcTimeout, RpcError):
            self._declare_dead(info)
        else:
            # Alive: the pong carries its current zones, so apply the
            # same refresh-or-drop rule as a ``can.nbr`` announcement
            # (a live peer whose zones no longer abut ours is simply
            # forgotten, not declared dead).
            fresh.last_seen = self.sim.now
            if self._is_neighbor(fresh):
                self.neighbors[fresh.node_id] = fresh
            else:
                self.neighbors.pop(fresh.node_id, None)
        finally:
            self._probing.discard(info.node_id)

    # -- ungraceful death and takeover -------------------------------------
    def _declare_dead(self, dead: NeighborInfo) -> None:
        """A neighbor died without ``can.leave``: drop it, gossip the
        death, and absorb its zones iff we win the local arbitration."""
        if self.neighbors.pop(dead.node_id, None) is None:
            return  # already handled (gossip raced with our own probe)
        self._m_deaths.add()
        self.sim.trace.event("can.dead", node=self.node_id, dead=dead.node_id)
        for info in self.neighbors.values():
            self.rpc.notify(info.ip, info.port, "can.dead", dead)
        if self._takeover_owner(dead) == self.node_id:
            self._takeover(dead)

    def _takeover_owner(self, dead: NeighborInfo) -> Optional[str]:
        """The abutting neighbor with the smallest node_id takes over.
        Each detector computes this from its own neighbor set; rendezvous
        overlays are small and near-clique, so all detectors agree."""
        def abuts(zones) -> bool:
            return any(z.is_neighbor(dz) for z in zones for dz in dead.zones)

        candidates = [nid for nid, info in self.neighbors.items() if abuts(info.zones)]
        if abuts(self.zones):
            candidates.append(self.node_id)
        return min(candidates) if candidates else None

    def _takeover(self, dead: NeighborInfo) -> None:
        """Absorb the dead node's zones and promote our replicas of its
        records — the CAN paper's TAKEOVER, previously implemented only
        for graceful ``can.leave``."""
        self._m_takeovers.add()
        self._absorb_zones(dead.zones)
        promoted = self.replicas.pop(dead.node_id, {})
        refresh = self.sim.now + self.record_ttl
        for record in promoted.values():
            self.records[record.host_name] = record.refreshed(refresh)
        promoted_ids = self.handle_replicas.pop(dead.node_id, None)
        if promoted_ids:
            self.handles.update(promoted_ids)
            self._prune_handles()
        self.sim.trace.event("can.takeover", node=self.node_id, dead=dead.node_id,
                             zones=len(dead.zones), records=len(promoted))
        self._announce_to_neighbors()
        self._prune_non_neighbors()

    def _absorb_zones(self, zones) -> None:
        for zone in zones:
            merged = False
            for i, mine in enumerate(self.zones):
                if mine.can_merge(zone):
                    self.zones[i] = mine.merge(zone)
                    merged = True
                    self._m_merges.add()
                    self.sim.trace.event("can.merge", node=self.node_id,
                                         zones=len(self.zones))
                    break
            if not merged:
                self.zones.append(zone)

    # -- routing --------------------------------------------------------------
    def route(self, op: str, point: Point, body: Any, timeout: float = 5.0):
        """Process: execute ``op`` at the owner of ``point``; returns result."""
        request = _RouteOp(point, op, body)
        if self.owns(point):
            return self._execute(request)
        nxt = self._next_hop(point)
        if nxt is None:
            raise RpcTimeout(f"no route toward {point}")
        result = yield from self.rpc.call(nxt.ip, nxt.port, "can.route", request,
                                          timeout=timeout)
        return result

    def _next_hop(self, point: Point, exclude: Optional[set] = None) -> Optional[NeighborInfo]:
        best: Optional[NeighborInfo] = None
        best_d = self.distance_to(point)
        for info in self.neighbors.values():
            if exclude and info.node_id in exclude:
                continue
            d = min((z.distance_to_point(point) for z in info.zones), default=float("inf"))
            if d < best_d - 1e-15:
                best_d = d
                best = info
        return best

    def _on_route(self, op: _RouteOp, _src_ip, _src_port):
        self.routed_ops += 1
        if op.op == "put_ids":
            # Batched handle stores partition themselves: every hop keeps
            # what it owns and forwards per-destination sub-batches.
            return self._store_ids(op.body, op.hops)
        if self.owns(op.point):
            return self._execute(op)
        if op.hops >= MAX_HOPS:
            raise_err = RpcError(f"hop limit reached at {self.node_id}")
            raise raise_err

        def forward():
            nxt = self._next_hop(op.point)
            if nxt is None:
                raise RpcError(f"routing dead end at {self.node_id} for {op.point}")
            fwd = _RouteOp(op.point, op.op, op.body, hops=op.hops + 1)
            result = yield from self.rpc.call(nxt.ip, nxt.port, "can.route", fwd)
            return result

        return forward()

    # -- operations executed at the owner --------------------------------------
    def _execute(self, op: _RouteOp):
        if op.op == "put":
            record: ResourceRecord = op.body
            stored = record.refreshed(self.sim.now + self.record_ttl)
            self.records[record.host_name] = stored
            self._replicate(stored)
            return ("stored", self.node_id)
        if op.op == "put_ids":
            return self._store_ids(op.body, op.hops)
        if op.op == "remove":
            self.records.pop(op.body, None)
            if self.table is not None:
                host_id = self.table.lookup(op.body)
                if host_id >= 0:
                    self.handles.discard(self.table.handle(host_id))
            return ("removed", self.node_id)
        if op.op == "get":
            limit = int(op.body) if op.body else 16
            now = self.sim.now
            live = [r for r in self.records.values() if not r.expired(now)]
            live.extend(self._handle_records(op.point, limit))
            live.sort(key=lambda r: sum((a - b) ** 2 for a, b in zip(r.point, op.point)))
            return tuple(live[:limit])
        if op.op == "join":
            return self._admit(op.body)
        raise RpcError(f"unknown CAN op {op.op!r}")

    def _handle_records(self, point: Point, limit: int) -> list:
        """Build ResourceRecords for the ``limit`` live table handles
        nearest ``point`` — the only rows a query forces out of columnar
        form. Distance ranking is vectorized over the coords column."""
        if self.table is None or not self.handles:
            return []
        arr = np.fromiter(self.handles, dtype=np.int64, count=len(self.handles))
        arr = arr[self.table.valid_mask(arr)]
        if not len(arr):
            return []
        ids = self.table.handle_ids(arr)
        delta = self.table.coords[ids] - np.asarray(point, dtype=np.float64)
        d2 = (delta * delta).sum(axis=1)
        top = np.lexsort((ids, d2))[:limit]
        expires = self.sim.now + self.record_ttl
        return [self.table.record(int(ids[k]), expires_at=expires) for k in top]

    # -- batched handle storage (registration-storm fast path) -------------
    def put_ids(self, ids) -> Any:
        """Process: publish directory handles for freshly registered table
        rows. Handles whose points this node owns are stored locally; the
        rest are forwarded in per-destination sub-batches — one routed
        RPC per destination node, not one per endpoint."""
        if self.table is None:
            raise RpcError(f"{self.node_id} has no host table")
        handles = tuple(self.table.handle(int(i)) for i in np.asarray(ids))
        result = self._store_ids(handles, 0)
        if hasattr(result, "__next__"):
            result = yield from result
        return result

    def _store_ids(self, handles, hops: int):
        if self.table is None:
            raise RpcError(f"{self.node_id} has no host table")
        arr = np.asarray(handles, dtype=np.int64)
        ids = self.table.handle_ids(arr)
        pts = self.table.coords[ids]
        own = np.zeros(len(arr), dtype=bool)
        for zone in self.zones:
            m = np.ones(len(arr), dtype=bool)
            for d in range(self.dims):
                m &= (pts[:, d] >= zone.lows[d]) & (pts[:, d] < zone.highs[d])
            own |= m
        mine = arr[own]
        if len(mine):
            self.handles.update(int(h) for h in mine)
            self._m_handles.add(len(mine))
            self._replicate_ids(mine)
            self._maybe_split()
        rest = arr[~own]
        if not len(rest):
            return ("stored", int(len(mine)))
        if hops >= MAX_HOPS:
            raise RpcError(f"hop limit reached at {self.node_id}")

        def forward():
            stored = int(len(mine))
            rest_pts = pts[~own]
            buckets: dict[str, list[int]] = {}
            for k, handle in enumerate(rest):
                point = tuple(float(x) for x in rest_pts[k])
                nxt = self._next_hop(point)
                if nxt is None:
                    continue  # unroutable while a neighbor is down; the
                    # endpoint's next keepalive re-publishes it
                buckets.setdefault(nxt.node_id, []).append(int(handle))
            for node_id, batch in buckets.items():
                info = self.neighbors.get(node_id)
                if info is None:
                    continue
                first = self.table.coords[self.table.handle_ids(
                    np.asarray(batch[:1], dtype=np.int64))][0]
                fwd = _RouteOp(tuple(float(x) for x in first), "put_ids",
                               tuple(batch), hops=hops + 1)
                try:
                    reply = yield from self.rpc.call(info.ip, info.port,
                                                     "can.route", fwd)
                except (RpcTimeout, RpcError):
                    continue
                stored += int(reply[1])
            return ("stored", stored)

        return forward()

    def _replicate_ids(self, handles) -> None:
        payload = (self.node_id, tuple(int(h) for h in handles))
        for info in self._replica_targets():
            self.rpc.notify(info.ip, info.port, "can.replica_ids", payload)

    def _replica_targets(self) -> list:
        if self.replication_factor is None:
            return list(self.neighbors.values())
        infos = sorted(self.neighbors.values(), key=lambda i: i.node_id)
        return infos[: self.replication_factor]

    # -- hot-zone splitting -------------------------------------------------
    def zone_load(self, zone: Zone) -> int:
        """Directory entries (records + live handles) in one zone."""
        load = sum(1 for r in self.records.values() if zone.contains(r.point))
        if self.table is not None and self.handles:
            arr = np.fromiter(self.handles, dtype=np.int64,
                              count=len(self.handles))
            ids = self.table.handle_ids(arr[self.table.valid_mask(arr)])
            load += int(len(self.table.ids_in_zone(zone, ids)))
        return load

    def _maybe_split(self) -> None:
        """Shed half of any over-loaded zone to an abutting neighbor —
        load-driven splitting on top of the join-driven splits of the
        CAN paper."""
        if self.hot_zone_limit is None or len(self.neighbors) == 0:
            return
        if (self._split_mark >= 0 and len(self.handles) - self._split_mark
                < max(1, self.hot_zone_limit // 4)):
            return
        self._split_mark = len(self.handles)
        for zone in list(self.zones):
            load = self.zone_load(zone)
            if load <= self.hot_zone_limit:
                continue
            lower, upper = zone.split()
            keep, shed = lower, upper
            if self.zone_load(shed) < self.zone_load(keep):
                keep, shed = shed, keep
            abutting = sorted(
                nid for nid, info in self.neighbors.items()
                if any(shed.is_neighbor(nz) for nz in info.zones))
            if not abutting:
                continue
            target = self.neighbors[abutting[0]]
            self.zones.remove(zone)
            self.zones.append(keep)
            shed_records, shed_handles = self._extract_entries(shed)
            self._m_splits.add()
            self.sim.trace.event("can.split", node=self.node_id,
                                 load=load, target=target.node_id,
                                 entries=len(shed_records) + len(shed_handles))
            self.sim.process(
                self._shed_zone(target, shed, shed_records, shed_handles),
                name=f"can-shed:{self.node_id}->{target.node_id}")

    def _extract_entries(self, zone: Zone) -> tuple[tuple, tuple]:
        """Remove and return the directory entries (full records + table
        handles) falling inside ``zone`` — the transferable half of a
        split or re-merge handoff."""
        records = tuple(r for r in self.records.values()
                        if zone.contains(r.point))
        for record in records:
            del self.records[record.host_name]
        handles: tuple = ()
        if self.table is not None and self.handles:
            arr = np.fromiter(self.handles, dtype=np.int64,
                              count=len(self.handles))
            ids = self.table.handle_ids(arr)
            inside = self.table.ids_in_zone(zone, ids)
            picked = arr[np.isin(ids, inside)]
            handles = tuple(int(h) for h in picked)
            self.handles.difference_update(handles)
        return records, handles

    def _shed_zone(self, target: NeighborInfo, zone: Zone,
                   records: tuple, handles: tuple):
        payload = _ShedPayload(self._my_info(), zone, records, handles)
        try:
            yield from self.rpc.call(target.ip, target.port, "can.shed",
                                     payload, timeout=5.0)
        except (RpcTimeout, RpcError):
            # Handoff failed: reabsorb so the directory entries survive.
            self._absorb_zones([zone])
            for record in records:
                self.records[record.host_name] = record
            self.handles.update(handles)
            return
        self._announce_to_neighbors()
        self._prune_non_neighbors()

    def _on_shed(self, payload: _ShedPayload, _src_ip, _src_port):
        self._absorb_zones([payload.zone])
        for record in payload.records:
            self.records[record.host_name] = record
        self.handles.update(payload.handles)
        info = payload.shedder
        info.last_seen = self.sim.now
        self.neighbors[info.node_id] = info
        self._known_peers[info.node_id] = (info.ip, info.port)
        self._announce_to_neighbors()
        return ("absorbed", self.node_id)

    # -- zone re-merge when load drains -------------------------------------
    def _maybe_remerge(self) -> None:
        """Reverse of hot-zone splitting: once a storm drains, hand a
        near-empty zone back to a neighbor whose zone merges with it.

        Hysteresis keeps split/merge from oscillating: we only offer a
        zone at or below a quarter of ``hot_zone_limit``, and the
        receiver refuses unless the merged zone would still sit at or
        below half the limit after absorbing the entries.
        """
        if (self.hot_zone_limit is None or self._remerging
                or not self.joined or len(self.zones) <= 1):
            return
        low_water = max(1, self.hot_zone_limit // 4)
        for zone in list(self.zones):
            if self.zone_load(zone) > low_water:
                continue
            candidates = sorted(
                nid for nid, info in self.neighbors.items()
                if any(nz.can_merge(zone) for nz in info.zones))
            if not candidates:
                continue
            target = self.neighbors[candidates[0]]
            self.zones.remove(zone)
            records, handles = self._extract_entries(zone)
            self._remerging = True
            self.sim.process(
                self._remerge_zone(target, zone, records, handles),
                name=f"can-remerge:{self.node_id}->{target.node_id}")
            return  # at most one offer per maintenance sweep

    def _remerge_zone(self, target: NeighborInfo, zone: Zone,
                      records: tuple, handles: tuple):
        payload = _ShedPayload(self._my_info(), zone, records, handles)
        try:
            result = yield from self.rpc.call(target.ip, target.port,
                                              "can.remerge", payload,
                                              timeout=5.0)
        except (RpcTimeout, RpcError):
            result = None
        finally:
            self._remerging = False
        if not result or result[0] != "merged":
            # Refused (receiver too loaded / zones drifted) or the call
            # failed: reabsorb so the directory entries survive.
            self._absorb_zones([zone])
            for record in records:
                self.records[record.host_name] = record
            self.handles.update(handles)
            return
        self._m_remerges.add()
        self.sim.trace.event("can.remerge", node=self.node_id,
                             target=target.node_id,
                             entries=len(records) + len(handles),
                             zones=len(self.zones))
        self._announce_to_neighbors()
        self._prune_non_neighbors()

    def _on_remerge(self, payload: _ShedPayload, _src_ip, _src_port):
        zone = payload.zone
        merged_into = next((m for m in self.zones if m.can_merge(zone)), None)
        if merged_into is None:
            return ("refused", self.node_id)
        if self.hot_zone_limit is not None:
            incoming = len(payload.records) + len(payload.handles)
            if (self.zone_load(merged_into) + incoming
                    > self.hot_zone_limit // 2):
                return ("refused", self.node_id)
        self._absorb_zones([zone])
        for record in payload.records:
            self.records[record.host_name] = record
        self.handles.update(payload.handles)
        info = payload.shedder
        info.last_seen = self.sim.now
        self.neighbors[info.node_id] = info
        self._known_peers[info.node_id] = (info.ip, info.port)
        self._announce_to_neighbors()
        return ("merged", self.node_id)

    def _admit(self, joiner: NeighborInfo) -> _JoinGrant:
        """Split the zone covering the joiner's point and grant half."""
        # Split the largest zone we own (classic CAN splits the zone that
        # contains the join point; with multi-zone takeover state, the
        # containing zone is the right choice when we have it).
        zone = max(self.zones, key=lambda z: z.volume())
        self.zones.remove(zone)
        lower, upper = zone.split()
        # Keep the half containing more of our records; grant the other.
        mine, granted = lower, upper
        self.zones.append(mine)
        moved = tuple(r for r in self.records.values() if granted.contains(r.point))
        for record in moved:
            del self.records[record.host_name]
        moved_handles: tuple = ()
        if self.table is not None and self.handles:
            arr = np.fromiter(self.handles, dtype=np.int64,
                              count=len(self.handles))
            ids = self.table.handle_ids(arr)
            in_granted = self.table.ids_in_zone(granted, ids)
            picked = arr[np.isin(ids, in_granted)]
            moved_handles = tuple(int(h) for h in picked)
            self.handles.difference_update(moved_handles)
        joiner_info = NeighborInfo(joiner.node_id, joiner.ip, joiner.port,
                                   zones=[granted], last_seen=self.sim.now)
        self._known_peers[joiner.node_id] = (joiner.ip, joiner.port)
        # Neighbor set for the joiner: us + any of our neighbors abutting it.
        grant_neighbors = [self._my_info()]
        for info in self.neighbors.values():
            if any(granted.is_neighbor(nz) for nz in info.zones):
                grant_neighbors.append(info)
        self.neighbors[joiner.node_id] = joiner_info
        self._prune_non_neighbors()
        self._announce_to_neighbors()
        return _JoinGrant(granted, moved, tuple(grant_neighbors), moved_handles)

    # -- inbound notifications ---------------------------------------------------
    def _on_neighbor(self, info: NeighborInfo, _src_ip, _src_port):
        if info.node_id == self.node_id:
            return None
        info.last_seen = self.sim.now
        self._known_peers[info.node_id] = (info.ip, info.port)
        if self._is_neighbor(info):
            self.neighbors[info.node_id] = info
        else:
            self.neighbors.pop(info.node_id, None)
        return None

    def _on_leave(self, payload: "_LeavePayload", _src_ip, _src_port):
        # Absorb zones (merging into boxes where possible) and records.
        self._absorb_zones(payload.zones)
        for record in payload.records:
            self.records[record.host_name] = record
        self.handles.update(payload.handles)
        self.neighbors.pop(payload.leaver.node_id, None)
        self.replicas.pop(payload.leaver.node_id, None)
        self.handle_replicas.pop(payload.leaver.node_id, None)
        self._announce_to_neighbors()
        return ("absorbed", self.node_id)

    def _on_ping(self, peer_id: str, _src_ip, _src_port) -> NeighborInfo:
        info = self.neighbors.get(peer_id)
        if info is not None:
            info.last_seen = self.sim.now
        return self._my_info()

    def _on_dead(self, dead: NeighborInfo, _src_ip, _src_port):
        self._declare_dead(dead)
        return None

    def _on_replica(self, payload: tuple, _src_ip, _src_port):
        owner_id, record = payload
        self.replicas.setdefault(owner_id, {})[record.host_name] = record
        self._m_replicas.add()
        return None

    def _on_replica_ids(self, payload: tuple, _src_ip, _src_port):
        owner_id, handles = payload
        self.handle_replicas.setdefault(owner_id, set()).update(handles)
        self._m_replicas.add(len(handles))
        return None

    def _replicate(self, record: ResourceRecord) -> None:
        """Push a copy of a freshly stored record to neighbors, so an
        ungraceful death does not lose it (every neighbor by default —
        overlays are small — or the first ``replication_factor`` by
        node id)."""
        payload = (self.node_id, record)
        for info in self._replica_targets():
            self.rpc.notify(info.ip, info.port, "can.replica", payload)


@dataclass(frozen=True)
class _LeavePayload:
    leaver: NeighborInfo
    zones: tuple
    records: tuple
    handles: tuple = ()

    @property
    def size(self) -> int:
        return (32 + 16 * len(self.zones) + sum(r.size for r in self.records)
                + 8 * len(self.handles))
