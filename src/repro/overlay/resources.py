"""Host resource descriptors and their mapping into the CAN key space.

The paper stores each host's *state* — "a multi-dimensional vector" of
attributes such as available CPU and memory — at the CAN node whose zone
covers that vector (§II.B, Fig 3). :class:`ResourceSpec` defines the
attribute schema and normalization; :class:`ResourceRecord` is what is
actually stored, bundling the resource state with the connection
information a peer needs to reach the host (rendezvous address + NAT
2-tuple, exactly the fields listed in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.overlay.space import Point

__all__ = ["ConnectionInfo", "ResourceRecord", "ResourceSpec"]


@dataclass(frozen=True)
class ResourceSpec:
    """Attribute schema: names and (min, max) normalization ranges."""

    attributes: tuple = (("cpu_ghz", 0.0, 16.0), ("mem_mb", 0.0, 32768.0))

    @property
    def dims(self) -> int:
        return len(self.attributes)

    def to_point(self, **values: float) -> Point:
        coords = []
        for name, lo, hi in self.attributes:
            if name not in values:
                raise KeyError(f"missing attribute {name!r}")
            x = (float(values[name]) - lo) / (hi - lo)
            coords.append(min(max(x, 0.0), 1.0 - 1e-9))
        extra = set(values) - {name for name, _lo, _hi in self.attributes}
        if extra:
            raise KeyError(f"unknown attributes {sorted(extra)}")
        return tuple(coords)

    def names(self) -> list[str]:
        return [name for name, _lo, _hi in self.attributes]


@dataclass(frozen=True)
class ConnectionInfo:
    """Everything a peer needs to initiate hole punching to this host:
    the host's rendezvous server and the STUN-discovered NAT 2-tuple.

    ``alloc_stride`` carries the STUN-inferred symmetric port-allocation
    stride (0 = unpredictable; prediction disabled). ``observed_port`` is
    the host's *freshest* externally observed mapping — stamped by the
    rendezvous from live traffic at brokering time — which peers use as
    the base for predicted-port punching; 0 means "none observed, fall
    back to public_port".
    """

    rendezvous_ip: IPv4Address
    rendezvous_port: int
    public_ip: IPv4Address
    public_port: int
    private_ip: IPv4Address
    private_port: int
    nat_type: NatType
    alloc_stride: int = 0
    observed_port: int = 0

    @property
    def size(self) -> int:
        # Wire size is pinned: the two prediction fields pack into the
        # same 32-byte record (stride is a byte, observed port 2 bytes,
        # absorbed by existing padding), keeping packet timing identical
        # for scenarios that never exercise prediction.
        return 32


@dataclass(frozen=True)
class ResourceRecord:
    """One host's entry in the CAN-distributed resource directory."""

    host_name: str
    point: Point
    attrs: dict
    conn: ConnectionInfo
    expires_at: float = float("inf")

    @property
    def size(self) -> int:
        return 64 + 8 * len(self.point)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def refreshed(self, expires_at: float) -> "ResourceRecord":
        return replace(self, expires_at=expires_at)
